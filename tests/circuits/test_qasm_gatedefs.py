"""Tests for OpenQASM custom gate definitions (macro expansion)."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit, QasmError, from_qasm
from repro.statevector import DenseSimulator


class TestGateDefinitions:
    def test_simple_definition(self):
        src = """
        OPENQASM 2.0;
        gate bell a,b { h a; cx a,b; }
        qreg q[2];
        bell q[0],q[1];
        """
        c = from_qasm(src)
        assert [g.name for g in c] == ["h", "cx"]
        assert c[1].qubits == (0, 1)

    def test_argument_mapping(self):
        src = """
        OPENQASM 2.0;
        gate pair a,b { cx a,b; }
        qreg q[3];
        pair q[2],q[0];
        """
        c = from_qasm(src)
        assert c[0].qubits == (2, 0)

    def test_parameterized_definition(self):
        src = """
        OPENQASM 2.0;
        gate halfrot(theta) a { rz(theta/2) a; ry(theta*2) a; }
        qreg q[1];
        halfrot(pi) q[0];
        """
        c = from_qasm(src)
        assert c[0].name == "rz" and c[0].params[0] == pytest.approx(math.pi / 2)
        assert c[1].name == "ry" and c[1].params[0] == pytest.approx(2 * math.pi)

    def test_nested_definitions(self, dense):
        src = """
        OPENQASM 2.0;
        gate bell a,b { h a; cx a,b; }
        gate doublebell a,b,c { bell a,b; bell b,c; }
        qreg q[3];
        doublebell q[0],q[1],q[2];
        """
        c = from_qasm(src)
        assert [g.name for g in c] == ["h", "cx", "h", "cx"]
        ref = DenseSimulator().run(
            Circuit(3).h(0).cx(0, 1).h(1).cx(1, 2)
        ).data
        assert np.allclose(DenseSimulator().run(c).data, ref, atol=1e-12)

    def test_definition_semantics_match_qiskit_style(self, dense):
        # The canonical qelib1-style ch definition expands to the same
        # unitary as our built-in ch.
        src = """
        OPENQASM 2.0;
        gate mych a,b { ry(pi/4) b; cx a,b; ry(-pi/4) b; }
        qreg q[2];
        h q[0]; h q[1];
        mych q[0],q[1];
        """
        c = from_qasm(src)
        ref = DenseSimulator().run(Circuit(2).h(0).h(1).ch(0, 1)).data
        got = DenseSimulator().run(c).data
        # equal up to global phase
        assert abs(abs(np.vdot(got, ref)) - 1.0) < 1e-9

    def test_shadowing_builtin_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0; gate h a { x a; } qreg q[1]; h q[0];")

    def test_wrong_arity_rejected(self):
        src = "OPENQASM 2.0; gate pair a,b { cx a,b; } qreg q[2]; pair q[0];"
        with pytest.raises(QasmError):
            from_qasm(src)

    def test_wrong_param_count_rejected(self):
        src = ("OPENQASM 2.0; gate rot(t) a { rz(t) a; } qreg q[1]; "
               "rot(1,2) q[0];")
        with pytest.raises(QasmError):
            from_qasm(src)

    def test_undeclared_body_qubit_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0; gate bad a { x b; } qreg q[1]; bad q[0];")

    def test_duplicate_args_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0; gate bad a,a { x a; } qreg q[2];")

    def test_unknown_body_gate_rejected(self):
        src = "OPENQASM 2.0; gate bad a { warp a; } qreg q[1]; bad q[0];"
        with pytest.raises(QasmError):
            from_qasm(src)

    def test_unused_definition_is_fine(self):
        src = "OPENQASM 2.0; gate unused a { x a; } qreg q[1]; h q[0];"
        c = from_qasm(src)
        assert [g.name for g in c] == ["h"]

    def test_recursive_definition_detected(self):
        src = ("OPENQASM 2.0; gate loop a { loop a; } qreg q[1]; loop q[0];")
        with pytest.raises(QasmError):
            from_qasm(src)

    def test_params_scoped_per_call(self):
        src = """
        OPENQASM 2.0;
        gate rot(t) a { rz(t) a; }
        qreg q[1];
        rot(1.0) q[0];
        rot(2.0) q[0];
        """
        c = from_qasm(src)
        assert c[0].params[0] == pytest.approx(1.0)
        assert c[1].params[0] == pytest.approx(2.0)
