"""Unit tests for repro.circuits.gates."""

import math

import numpy as np
import pytest

from repro.circuits.gates import (
    GATE_SET,
    Gate,
    adjoint_matrix,
    controlled_matrix,
    gate_matrix,
    is_diagonal,
    is_permutation,
    is_unitary,
    make_diagonal_gate,
    make_gate,
)

PARAM_SAMPLES = {
    0: [()],
    1: [(0.3,), (math.pi,), (-1.7,)],
    2: [(0.4, 1.1), (math.pi / 2, -0.2)],
    3: [(0.5, 1.2, -0.7), (math.pi, 0.0, math.pi / 4)],
}


class TestGateMatrices:
    @pytest.mark.parametrize("name", sorted(GATE_SET))
    def test_all_named_gates_are_unitary(self, name):
        spec = GATE_SET[name]
        for params in PARAM_SAMPLES[spec.num_params]:
            m = gate_matrix(name, params)
            assert m.shape == (1 << spec.num_qubits, 1 << spec.num_qubits)
            assert is_unitary(m), f"{name}{params} not unitary"

    @pytest.mark.parametrize("name", sorted(GATE_SET))
    def test_matrix_cache_returns_same_object(self, name):
        spec = GATE_SET[name]
        params = PARAM_SAMPLES[spec.num_params][0]
        assert gate_matrix(name, params) is gate_matrix(name, params)

    def test_matrices_are_readonly(self):
        m = gate_matrix("h")
        with pytest.raises(ValueError):
            m[0, 0] = 5.0

    def test_x_matrix(self):
        assert np.allclose(gate_matrix("x"), [[0, 1], [1, 0]])

    def test_h_squared_is_identity(self):
        h = gate_matrix("h")
        assert np.allclose(h @ h, np.eye(2))

    def test_s_squared_is_z(self):
        s = gate_matrix("s")
        assert np.allclose(s @ s, gate_matrix("z"))

    def test_t_fourth_is_z(self):
        t = gate_matrix("t")
        assert np.allclose(np.linalg.matrix_power(t, 4), gate_matrix("z"))

    def test_sx_squared_is_x(self):
        sx = gate_matrix("sx")
        assert np.allclose(sx @ sx, gate_matrix("x"))

    def test_rz_pi_is_z_up_to_phase(self):
        rz = gate_matrix("rz", (math.pi,))
        z = gate_matrix("z")
        phase = rz[0, 0] / z[0, 0]
        assert np.allclose(rz, phase * z)

    def test_u3_covers_h(self):
        u = gate_matrix("u3", (math.pi / 2, 0.0, math.pi))
        h = gate_matrix("h")
        # equal up to global phase
        phase = u[0, 0] / h[0, 0]
        assert np.allclose(u, phase * h)

    def test_cx_little_endian_layout(self):
        # Control = qubit 0 (LSB), target = qubit 1.
        cx = gate_matrix("cx")
        # |01> (q0=1, q1=0) -> |11>: index 1 -> index 3
        v = np.zeros(4)
        v[1] = 1.0
        assert np.allclose(cx @ v, np.eye(4)[3])
        # |10> (q0=0, q1=1) unaffected
        v = np.zeros(4)
        v[2] = 1.0
        assert np.allclose(cx @ v, v)

    def test_swap_matrix_swaps(self):
        sw = gate_matrix("swap")
        v = np.zeros(4)
        v[1] = 1.0  # |q1 q0> = |01>
        assert np.allclose(sw @ v, np.eye(4)[2])

    def test_ccx_flips_only_when_both_controls_set(self):
        ccx = gate_matrix("ccx")
        # controls = qubits 0,1; target = qubit 2.
        v = np.zeros(8)
        v[3] = 1.0  # q0=1,q1=1,q2=0 -> index 3 -> should go to 7
        assert np.allclose(ccx @ v, np.eye(8)[7])
        v = np.zeros(8)
        v[1] = 1.0  # only q0 set: unchanged
        assert np.allclose(ccx @ v, v)

    def test_cswap_swaps_targets_when_control_set(self):
        csw = gate_matrix("cswap")
        # control q0, targets q1,q2: |q2 q1 q0>=|011> (idx 3) -> |101> (idx 5)
        v = np.zeros(8)
        v[3] = 1.0
        assert np.allclose(csw @ v, np.eye(8)[5])

    def test_rzz_diagonal(self):
        m = gate_matrix("rzz", (0.7,))
        assert is_diagonal(m)

    def test_fsim_zero_is_identity(self):
        assert np.allclose(gate_matrix("fsim", (0.0, 0.0)), np.eye(4))


class TestControlledMatrix:
    def test_controlled_x_is_cx(self):
        assert np.allclose(controlled_matrix(gate_matrix("x")), gate_matrix("cx"))

    def test_double_controlled_x_is_ccx(self):
        assert np.allclose(controlled_matrix(gate_matrix("x"), 2), gate_matrix("ccx"))

    def test_zero_controls_identity(self):
        x = gate_matrix("x")
        assert controlled_matrix(x, 0) is x

    def test_controlled_preserves_unitarity(self, rng):
        from scipy.stats import unitary_group

        u = unitary_group.rvs(4, random_state=rng)
        cu = controlled_matrix(u, 1)
        assert is_unitary(cu)
        # Identity on the non-all-ones control subspace.
        assert np.allclose(cu[0, 0], 1.0)
        assert np.allclose(cu[2, 2], 1.0)


class TestPredicates:
    def test_is_diagonal(self):
        assert is_diagonal(gate_matrix("z"))
        assert is_diagonal(gate_matrix("cz"))
        assert not is_diagonal(gate_matrix("x"))
        assert not is_diagonal(gate_matrix("h"))

    def test_is_permutation(self):
        assert is_permutation(gate_matrix("x"))
        assert is_permutation(gate_matrix("cx"))
        assert is_permutation(gate_matrix("swap"))
        assert is_permutation(np.eye(4))
        assert not is_permutation(gate_matrix("h"))
        assert not is_permutation(gate_matrix("z"))  # -1 phase disqualifies

    def test_adjoint_matrix(self):
        s = gate_matrix("s")
        assert np.allclose(adjoint_matrix(s), gate_matrix("sdg"))


class TestGateObjects:
    def test_make_gate_validates_arity(self):
        with pytest.raises(ValueError):
            make_gate("cx", (0,))
        with pytest.raises(ValueError):
            make_gate("h", (0, 1))

    def test_make_gate_validates_params(self):
        with pytest.raises(ValueError):
            make_gate("rx", (0,))
        with pytest.raises(ValueError):
            make_gate("h", (0,), (0.4,))

    def test_make_gate_unknown_name(self):
        with pytest.raises(KeyError):
            make_gate("bogus", (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            make_gate("cx", (1, 1))

    def test_negative_qubits_rejected(self):
        with pytest.raises(ValueError):
            make_gate("h", (-1,))

    def test_explicit_matrix_must_be_unitary(self):
        with pytest.raises(ValueError):
            make_gate("unitary", (0,), matrix=np.array([[1, 1], [0, 1]], dtype=complex))

    def test_explicit_matrix_shape_checked(self):
        with pytest.raises(ValueError):
            make_gate("unitary", (0, 1), matrix=np.eye(2, dtype=complex))

    def test_adjoint_self_adjoint(self):
        g = make_gate("x", (3,))
        assert g.adjoint() is g

    def test_adjoint_named_inverse(self):
        assert make_gate("s", (0,)).adjoint().name == "sdg"
        assert make_gate("tdg", (0,)).adjoint().name == "t"

    def test_adjoint_parametric_negates(self):
        g = make_gate("rx", (0,), (0.7,))
        ga = g.adjoint()
        assert ga.name == "rx" and ga.params == (-0.7,)
        assert np.allclose(g.matrix @ ga.matrix, np.eye(2))

    def test_adjoint_generic_unitary(self, rng):
        from scipy.stats import unitary_group

        u = unitary_group.rvs(2, random_state=rng)
        g = make_gate("unitary", (0,), matrix=u)
        assert np.allclose(g.matrix @ g.adjoint().matrix, np.eye(2))

    def test_adjoint_iswap(self):
        g = make_gate("iswap", (0, 1))
        assert np.allclose(g.matrix @ g.adjoint().matrix, np.eye(4))

    def test_remapped(self):
        g = make_gate("cx", (0, 1))
        h = g.remapped({0: 5, 1: 2})
        assert h.qubits == (5, 2)
        assert h.name == "cx"

    def test_str(self):
        assert "rx(0.5) q[2]" == str(make_gate("rx", (2,), (0.5,)))

    def test_gate_properties(self):
        g = make_gate("cz", (0, 1))
        assert g.is_diagonal and not g.is_permutation
        assert g.num_controls == 1


class TestDiagonalGates:
    def test_make_diagonal_gate_roundtrip(self):
        d = np.array([1, -1, 1j, -1j], dtype=complex)
        g = make_diagonal_gate((0, 1), d)
        assert g.diag is not None
        assert np.allclose(g.matrix, np.diag(d))

    def test_diagonal_must_be_unit_modulus(self):
        with pytest.raises(ValueError):
            make_diagonal_gate((0,), np.array([1.0, 0.5]))

    def test_diagonal_length_checked(self):
        with pytest.raises(ValueError):
            make_diagonal_gate((0, 1), np.ones(3))

    def test_diagonal_adjoint_conjugates(self):
        d = np.exp(1j * np.linspace(0, 1, 4))
        g = make_diagonal_gate((0, 1), d)
        ga = g.adjoint()
        assert np.allclose(ga.diag, d.conj())

    def test_diagonal_remap_keeps_diag(self):
        d = np.array([1, -1], dtype=complex)
        g = make_diagonal_gate((0,), d).remapped({0: 3})
        assert g.qubits == (3,)
        assert np.allclose(g.diag, d)
