"""Unit tests for repro.circuits.circuit."""

import numpy as np
import pytest

from repro.circuits import Circuit, make_gate
from repro.statevector import DenseSimulator


class TestConstruction:
    def test_empty(self):
        c = Circuit(3)
        assert len(c) == 0
        assert c.depth() == 0
        assert c.num_qubits == 3

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Circuit(0)

    def test_builder_chain(self):
        c = Circuit(2).h(0).cx(0, 1)
        assert [g.name for g in c] == ["h", "cx"]

    def test_out_of_range_gate_rejected(self):
        c = Circuit(2)
        with pytest.raises(ValueError):
            c.h(2)
        with pytest.raises(ValueError):
            c.append(make_gate("h", (5,)))

    def test_all_builder_methods(self):
        c = Circuit(3)
        c.i(0).x(0).y(0).z(0).h(0).s(0).sdg(0).t(0).tdg(0).sx(0).sxdg(0)
        c.rx(0.1, 0).ry(0.2, 0).rz(0.3, 0).p(0.4, 0).u(0.1, 0.2, 0.3, 0)
        c.cx(0, 1).cy(0, 1).cz(0, 1).ch(0, 1).cp(0.5, 0, 1)
        c.crx(0.1, 0, 1).cry(0.2, 0, 1).crz(0.3, 0, 1)
        c.swap(0, 1).iswap(0, 1).rxx(0.1, 0, 1).ryy(0.2, 0, 1).rzz(0.3, 0, 1)
        c.fsim(0.4, 0.5, 0, 1).ccx(0, 1, 2).ccz(0, 1, 2).cswap(0, 1, 2)
        assert len(c) == 33

    def test_unitary_and_diagonal_builders(self):
        c = Circuit(2)
        c.unitary(np.eye(4, dtype=complex), 0, 1)
        c.diagonal(np.array([1, -1], dtype=complex), 0)
        assert len(c) == 2
        assert c[1].diag is not None


class TestContainer:
    def test_slicing_returns_circuit(self):
        c = Circuit(2).h(0).cx(0, 1).x(1)
        head = c[:2]
        assert isinstance(head, Circuit)
        assert len(head) == 2
        assert head.num_qubits == 2

    def test_indexing_returns_gate(self):
        c = Circuit(2).h(0)
        assert c[0].name == "h"

    def test_equality(self):
        a = Circuit(2).h(0).rx(0.5, 1)
        b = Circuit(2).h(0).rx(0.5, 1)
        assert a == b
        assert a != Circuit(2).h(0).rx(0.6, 1)
        assert a != Circuit(3).h(0).rx(0.5, 1)

    def test_iteration_order(self):
        c = Circuit(2).x(0).y(1).z(0)
        assert [g.name for g in c] == ["x", "y", "z"]


class TestStats:
    def test_depth_parallel_gates(self):
        c = Circuit(4).h(0).h(1).h(2).h(3)
        assert c.depth() == 1

    def test_depth_chain(self):
        c = Circuit(2).h(0).cx(0, 1).h(1)
        assert c.depth() == 3

    def test_gate_counts(self):
        c = Circuit(2).h(0).h(1).cx(0, 1)
        assert c.count_ops() == {"h": 2, "cx": 1}

    def test_two_qubit_count(self):
        c = Circuit(3).h(0).cx(0, 1).ccx(0, 1, 2)
        assert c.two_qubit_count() == 2

    def test_qubits_used(self):
        c = Circuit(5).h(1).cx(3, 1)
        assert c.qubits_used() == (1, 3)
        assert c.max_qubit_touched() == 3

    def test_max_qubit_empty(self):
        assert Circuit(3).max_qubit_touched() == -1


class TestTransforms:
    def test_compose(self, dense):
        a = Circuit(2).h(0)
        b = Circuit(2).cx(0, 1)
        ab = a.compose(b)
        assert [g.name for g in ab] == ["h", "cx"]
        # original untouched
        assert len(a) == 1

    def test_compose_size_check(self):
        with pytest.raises(ValueError):
            Circuit(2).compose(Circuit(3))

    def test_inverse_restores_zero(self, dense):
        c = Circuit(3).h(0).cx(0, 1).t(1).rx(0.3, 2).ccx(0, 1, 2)
        sv = dense.run(c.compose(c.inverse()))
        assert abs(sv.data[0]) == pytest.approx(1.0, abs=1e-12)

    def test_remapped(self, dense):
        c = Circuit(2).h(0).cx(0, 1)
        r = c.remapped({0: 1, 1: 0})
        assert r[1].qubits == (1, 0)

    def test_repeated(self, dense):
        c = Circuit(1).x(0)
        twice = c.repeated(2)
        sv = dense.run(twice)
        assert abs(sv.data[0]) == pytest.approx(1.0)

    def test_to_unitary_matches_simulation(self, dense, rng):
        from repro.circuits import random_circuit

        c = random_circuit(4, 20, seed=9)
        u = c.to_unitary()
        sv = dense.run(c)
        assert np.allclose(u[:, 0], sv.data, atol=1e-10)
        assert np.allclose(u @ u.conj().T, np.eye(16), atol=1e-10)

    def test_to_unitary_size_guard(self):
        with pytest.raises(ValueError):
            Circuit(13).to_unitary()

    def test_str_and_repr(self):
        c = Circuit(2, name="demo").h(0)
        assert "demo" in repr(c)
        assert "h q[0]" in str(c)
