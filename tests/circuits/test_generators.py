"""Unit tests for the workload generators: each produces the right state."""

import math

import numpy as np
import pytest

from repro.circuits import (
    WORKLOADS,
    bernstein_vazirani,
    deutsch_jozsa,
    get_workload,
    ghz,
    grover,
    iqft,
    phase_estimation,
    qaoa_maxcut,
    qft,
    quantum_volume,
    random_circuit,
    supremacy_brickwork,
    vqe_ansatz,
    w_state,
)
from repro.statevector import DenseSimulator, sample_counts


@pytest.fixture(scope="module")
def sim():
    return DenseSimulator()


class TestGHZ:
    def test_amplitudes(self, sim):
        sv = sim.run(ghz(5))
        amp = 1 / math.sqrt(2)
        assert sv.data[0] == pytest.approx(amp)
        assert sv.data[-1] == pytest.approx(amp)
        assert np.count_nonzero(np.abs(sv.data) > 1e-12) == 2

    def test_single_qubit(self, sim):
        sv = sim.run(ghz(1))
        assert abs(sv.data[0]) == pytest.approx(1 / math.sqrt(2))


class TestWState:
    @pytest.mark.parametrize("n", [2, 3, 4, 6])
    def test_w_state_uniform_one_hot(self, sim, n):
        sv = sim.run(w_state(n))
        expected = np.zeros(1 << n, dtype=complex)
        for q in range(n):
            expected[1 << q] = 1 / math.sqrt(n)
        probs = np.abs(sv.data) ** 2
        want = np.abs(expected) ** 2
        assert np.allclose(probs, want, atol=1e-10)


class TestQFT:
    def test_qft_of_zero_is_uniform(self, sim):
        sv = sim.run(qft(4))
        assert np.allclose(sv.data, 1 / 4.0)

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_qft_matches_dft_matrix(self, n):
        u = qft(n).to_unitary()
        dim = 1 << n
        k = np.arange(dim)
        dft = np.exp(2j * math.pi * np.outer(k, k) / dim) / math.sqrt(dim)
        assert np.allclose(u, dft, atol=1e-10)

    def test_iqft_inverts_qft(self, sim):
        from repro.circuits import random_circuit

        prep = random_circuit(4, 15, seed=2)
        c = prep.compose(qft(4)).compose(iqft(4))
        ref = sim.run(prep).data
        got = sim.run(c).data
        assert np.allclose(got, ref, atol=1e-10)

    def test_qft_no_swaps(self, sim):
        # Without swaps the output is bit-reversed.
        u = qft(3, swaps=False).to_unitary()
        us = qft(3, swaps=True).to_unitary()
        rev = [int(format(i, "03b")[::-1], 2) for i in range(8)]
        assert np.allclose(us, u[rev, :], atol=1e-10)


class TestGrover:
    @pytest.mark.parametrize("n,marked", [(3, 5), (4, 0), (5, 19), (6, 63)])
    def test_grover_amplifies_marked(self, sim, n, marked):
        sv = sim.run(grover(n, marked=marked))
        p = sv.probability_of(marked)
        assert p > 0.8

    def test_invalid_marked(self):
        with pytest.raises(ValueError):
            grover(3, marked=8)

    def test_explicit_iterations(self, sim):
        c1 = grover(4, marked=3, iterations=1)
        c3 = grover(4, marked=3, iterations=3)
        assert sim.run(c3).probability_of(3) > sim.run(c1).probability_of(3)


class TestBVAndDJ:
    @pytest.mark.parametrize("secret", [0b101, 0b1111, 0b0, 0b1000])
    def test_bv_recovers_secret(self, sim, secret):
        sv = sim.run(bernstein_vazirani(secret, 4))
        assert sv.probability_of(secret) == pytest.approx(1.0, abs=1e-10)

    def test_dj_constant_returns_zero(self, sim):
        sv = sim.run(deutsch_jozsa(4, balanced=False))
        assert sv.probability_of(0) == pytest.approx(1.0, abs=1e-10)

    def test_dj_balanced_never_zero(self, sim):
        sv = sim.run(deutsch_jozsa(4, balanced=True))
        assert sv.probability_of(0) == pytest.approx(0.0, abs=1e-10)


class TestQPE:
    @pytest.mark.parametrize("phase", [0.25, 0.5, 0.125])
    def test_exact_phase_recovered(self, sim, phase):
        t = 3
        sv = sim.run(phase_estimation(phase, t))
        # Counting register should read round(phase * 2^t).
        want = int(round(phase * (1 << t)))
        marg = sv.marginal_probabilities(list(range(t)))
        assert marg[want] == pytest.approx(1.0, abs=1e-8)


class TestQAOA:
    def test_qaoa_builds_and_normalizes(self, sim):
        import networkx as nx

        g = nx.cycle_graph(6)
        c = qaoa_maxcut(g, p=2)
        assert c.num_qubits == 6
        sv = sim.run(c)
        assert sv.norm() == pytest.approx(1.0, abs=1e-10)

    def test_qaoa_rejects_bad_labels(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(ValueError):
            qaoa_maxcut(g)

    def test_qaoa_param_validation(self):
        import networkx as nx

        with pytest.raises(ValueError):
            qaoa_maxcut(nx.path_graph(3), p=2, gammas=[0.1], betas=[0.2, 0.3])


class TestParamAnsatz:
    def test_vqe_param_count(self):
        with pytest.raises(ValueError):
            vqe_ansatz(3, layers=2, params=np.zeros(5))

    def test_vqe_deterministic_by_seed(self):
        assert vqe_ansatz(4, seed=3) == vqe_ansatz(4, seed=3)

    def test_vqe_normalized(self, sim):
        sv = sim.run(vqe_ansatz(5, layers=2))
        assert sv.norm() == pytest.approx(1.0, abs=1e-10)


class TestRandomFamilies:
    def test_random_circuit_reproducible(self):
        assert random_circuit(5, 30, seed=7) == random_circuit(5, 30, seed=7)

    def test_random_circuit_gate_count(self):
        assert len(random_circuit(5, 37, seed=1)) == 37

    def test_supremacy_structure(self, sim):
        c = supremacy_brickwork(5, depth=4, seed=2)
        assert c.count_ops().get("fsim", 0) > 0
        assert sim.run(c).norm() == pytest.approx(1.0, abs=1e-10)

    def test_quantum_volume_normalized(self, sim):
        sv = sim.run(quantum_volume(4, depth=3, seed=5))
        assert sv.norm() == pytest.approx(1.0, abs=1e-10)


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_workload_builds_and_runs(self, sim, name):
        c = get_workload(name, 6)
        assert c.num_qubits == 6
        sv = sim.run(c)
        assert sv.norm() == pytest.approx(1.0, abs=1e-9)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("nope", 4)
