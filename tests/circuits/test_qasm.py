"""Unit tests for the OpenQASM 2.0 emitter/parser."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit, QasmError, from_qasm, random_circuit, to_qasm
from repro.statevector import DenseSimulator


class TestEmit:
    def test_header_and_register(self):
        q = to_qasm(Circuit(3).h(0))
        assert q.startswith("OPENQASM 2.0;")
        assert "qreg q[3];" in q
        assert "h q[0];" in q

    def test_parametric_pi_formatting(self):
        q = to_qasm(Circuit(1).rz(math.pi / 2, 0))
        assert "rz(pi/2) q[0];" in q

    def test_negative_pi_multiple(self):
        q = to_qasm(Circuit(1).rz(-3 * math.pi / 4, 0))
        assert "rz(-3*pi/4) q[0];" in q

    def test_zero_param(self):
        assert "rz(0) q[0];" in to_qasm(Circuit(1).rz(0.0, 0))

    def test_irrational_param_survives(self):
        q = to_qasm(Circuit(1).rz(0.123456789, 0))
        c = from_qasm(q)
        assert c[0].params[0] == pytest.approx(0.123456789, abs=1e-15)

    def test_multi_qubit_args(self):
        q = to_qasm(Circuit(3).ccx(0, 1, 2))
        assert "ccx q[0],q[1],q[2];" in q

    def test_unitary_gate_not_exportable(self):
        c = Circuit(1).unitary(np.eye(2, dtype=complex), 0)
        with pytest.raises(QasmError):
            to_qasm(c)

    def test_diagonal_gate_not_exportable(self):
        c = Circuit(1).diagonal(np.array([1, -1], dtype=complex), 0)
        with pytest.raises(QasmError):
            to_qasm(c)

    def test_custom_register_name(self):
        q = to_qasm(Circuit(1).x(0), qreg="r")
        assert "qreg r[1];" in q and "x r[0];" in q


class TestParse:
    def test_roundtrip_random(self):
        c = random_circuit(6, 50, seed=4)
        assert from_qasm(to_qasm(c)) == c

    def test_roundtrip_preserves_semantics(self, dense):
        c = random_circuit(5, 40, seed=8)
        a = dense.run(c).data
        b = dense.run(from_qasm(to_qasm(c))).data
        assert np.allclose(a, b, atol=1e-12)

    def test_comments_ignored(self):
        src = """
        OPENQASM 2.0; // header comment
        include "qelib1.inc";
        qreg q[2];
        // full line comment
        h q[0]; // trailing
        cx q[0],q[1];
        """
        c = from_qasm(src)
        assert [g.name for g in c] == ["h", "cx"]

    def test_measure_creg_barrier_ignored(self):
        src = """OPENQASM 2.0;
        qreg q[2]; creg c[2];
        h q[0];
        barrier q[0],q[1];
        measure q[0] -> c[0];
        reset q[1];
        """
        c = from_qasm(src)
        assert [g.name for g in c] == ["h"]

    def test_parameter_expressions(self):
        c = from_qasm("OPENQASM 2.0; qreg q[1]; rz(2*pi/3) q[0]; rx(-pi) q[0]; ry(0.5+0.25) q[0];")
        assert c[0].params[0] == pytest.approx(2 * math.pi / 3)
        assert c[1].params[0] == pytest.approx(-math.pi)
        assert c[2].params[0] == pytest.approx(0.75)

    def test_power_expression(self):
        c = from_qasm("OPENQASM 2.0; qreg q[1]; rz(2**3) q[0];")
        assert c[0].params[0] == pytest.approx(8.0)

    def test_unknown_gate_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0; qreg q[1]; frobnicate q[0];")

    def test_out_of_range_qubit_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0; qreg q[2]; h q[2];")

    def test_unknown_register_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0; qreg q[2]; h r[0];")

    def test_gate_before_qreg_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0; h q[0]; qreg q[2];")

    def test_no_qreg_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0;")

    def test_multiple_qregs_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0; qreg a[1]; qreg b[1];")

    def test_bad_expression_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0; qreg q[1]; rz(import os) q[0];")

    def test_malicious_expression_rejected(self):
        with pytest.raises(QasmError):
            from_qasm('OPENQASM 2.0; qreg q[1]; rz(__import__("os")) q[0];')
