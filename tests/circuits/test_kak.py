"""Tests for the KAK two-qubit decomposition."""

import math

import numpy as np
import pytest
from scipy.stats import unitary_group

from repro.circuits import Circuit, decompose_to_natives, gate_matrix, quantum_volume
from repro.circuits.kak import (
    DecompositionError,
    KakDecomposition,
    decompose_two_qubit,
    kak_decompose,
)
from repro.statevector import DenseSimulator


def states_equal(a, b, atol=1e-8):
    return np.allclose(a, b, atol=atol)


class TestKakDecompose:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_su4_reconstructs(self, seed):
        u = unitary_group.rvs(4, random_state=np.random.default_rng(seed))
        dec = kak_decompose(u)
        assert np.max(np.abs(dec.unitary() - u)) < 1e-8

    def test_random_u4_with_phase(self):
        u = unitary_group.rvs(4, random_state=np.random.default_rng(42))
        u = u * np.exp(0.37j)
        dec = kak_decompose(u)
        assert np.max(np.abs(dec.unitary() - u)) < 1e-8

    @pytest.mark.parametrize("name,want", [
        ("cx", (math.pi / 4, 0.0, 0.0)),
        ("cz", (math.pi / 4, 0.0, 0.0)),
        ("swap", (math.pi / 4, math.pi / 4, math.pi / 4)),
        ("iswap", (0.0, math.pi / 4, math.pi / 4)),
    ])
    def test_canonical_interaction_strengths(self, name, want):
        dec = kak_decompose(gate_matrix(name))
        got = sorted(abs(x) for x in dec.interaction)
        expect = sorted(abs(x) for x in want)
        assert np.allclose(got, expect, atol=1e-9)

    def test_tensor_product_zero_interaction(self):
        rng = np.random.default_rng(3)
        u = np.kron(unitary_group.rvs(2, random_state=rng),
                    unitary_group.rvs(2, random_state=rng))
        dec = kak_decompose(u)
        assert np.allclose(dec.interaction, 0.0, atol=1e-9)

    def test_identity(self):
        dec = kak_decompose(np.eye(4))
        assert np.allclose(dec.interaction, 0.0, atol=1e-12)
        assert np.max(np.abs(dec.unitary() - np.eye(4))) < 1e-9

    def test_diagonal_unitary(self):
        d = np.exp(1j * np.array([0.1, 0.9, -0.4, 2.2]))
        u = np.diag(d)
        dec = kak_decompose(u)
        assert np.max(np.abs(dec.unitary() - u)) < 1e-8

    def test_degenerate_spectrum(self):
        # rzz has a doubly-degenerate V^T V spectrum — the random-mixing
        # diagonalization must still converge.
        u = gate_matrix("rzz", (0.7,))
        dec = kak_decompose(u)
        assert np.max(np.abs(dec.unitary() - u)) < 1e-8

    def test_non_unitary_rejected(self):
        with pytest.raises(ValueError):
            kak_decompose(np.ones((4, 4)))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            kak_decompose(np.eye(2))


class TestCircuitEmission:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("qubits", [(0, 1), (1, 0), (0, 3), (2, 1)])
    def test_fragment_equals_gate(self, seed, qubits, dense):
        u = unitary_group.rvs(4, random_state=np.random.default_rng(seed + 50))
        frag = decompose_two_qubit(u, qubits[0], qubits[1], 4)
        ref = dense.run(Circuit(4).unitary(u, *qubits)).data
        got = dense.run(frag).data
        assert states_equal(got, ref)

    def test_natives_cover_quantum_volume(self, dense):
        circ = quantum_volume(4, depth=3, seed=9)
        native = decompose_to_natives(circ)
        # After KAK, no multi-qubit explicit unitaries remain.
        for g in native:
            if g.num_qubits >= 2 and g.diag is None:
                assert g.name == "cx", g.name
        a = dense.run(circ).data
        b = dense.run(native).data
        assert abs(abs(np.vdot(a, b)) - 1.0) < 1e-7

    def test_natives_cover_iswap_and_fsim(self, dense):
        circ = Circuit(3).h(0).iswap(0, 1).fsim(0.4, 0.9, 1, 2)
        native = decompose_to_natives(circ)
        for g in native:
            if g.num_qubits >= 2 and g.diag is None:
                assert g.name == "cx"
        a = dense.run(circ).data
        b = dense.run(native).data
        assert abs(abs(np.vdot(a, b)) - 1.0) < 1e-8

    def test_cx_count_bounded(self):
        u = unitary_group.rvs(4, random_state=np.random.default_rng(77))
        frag = decompose_two_qubit(u, 0, 1, 2)
        native = decompose_to_natives(frag)
        assert native.count_ops().get("cx", 0) <= 6
