"""Unit tests for transpilation passes."""

import cmath
import math

import numpy as np
import pytest
from scipy.stats import unitary_group

from repro.circuits import (
    Circuit,
    decompose_to_natives,
    fuse_adjacent_1q,
    random_circuit,
    remap_for_locality,
    zyz_angles,
)
from repro.statevector import DenseSimulator


def states_equal_up_to_phase(a: np.ndarray, b: np.ndarray, atol=1e-9) -> bool:
    ov = np.vdot(a, b)
    return abs(abs(ov) - 1.0) < atol


class TestZYZ:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_unitary_reconstructs(self, seed):
        u = unitary_group.rvs(2, random_state=np.random.default_rng(seed))
        a, b, c, d = zyz_angles(u)

        def rz(t):
            return np.diag([cmath.exp(-1j * t / 2), cmath.exp(1j * t / 2)])

        def ry(t):
            return np.array(
                [[math.cos(t / 2), -math.sin(t / 2)],
                 [math.sin(t / 2), math.cos(t / 2)]]
            )

        rec = cmath.exp(1j * a) * (rz(b) @ ry(c) @ rz(d))
        assert np.allclose(rec, u, atol=1e-10)

    def test_identity(self):
        a, b, c, d = zyz_angles(np.eye(2, dtype=complex))
        assert abs(c) < 1e-12

    def test_x_gate(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        a, b, c, d = zyz_angles(x)
        assert c == pytest.approx(math.pi, abs=1e-10)


class TestDecompose:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuit_equivalent(self, dense, seed):
        c = random_circuit(5, 40, seed=seed)
        n = decompose_to_natives(c)
        a = dense.run(c).data
        b = dense.run(n).data
        assert states_equal_up_to_phase(a, b)

    def test_native_set_is_restricted(self):
        c = random_circuit(5, 60, seed=11)
        n = decompose_to_natives(c)
        # With KAK, CX is the only multi-qubit non-diagonal survivor.
        for g in n:
            if g.num_qubits >= 2 and g.diag is None:
                assert g.name == "cx", g.name

    def test_toffoli_decomposition(self, dense):
        c = Circuit(3).h(0).h(1).ccx(0, 1, 2)
        n = decompose_to_natives(c)
        assert "ccx" not in n.count_ops()
        assert states_equal_up_to_phase(dense.run(c).data, dense.run(n).data)

    def test_cswap_decomposition(self, dense):
        c = Circuit(3).h(0).x(1).cswap(0, 1, 2)
        n = decompose_to_natives(c)
        assert "cswap" not in n.count_ops()
        assert states_equal_up_to_phase(dense.run(c).data, dense.run(n).data)

    def test_controlled_rotations(self, dense):
        c = Circuit(2).h(0).h(1).crx(0.7, 0, 1).cry(0.3, 1, 0).crz(1.1, 0, 1).cp(0.5, 0, 1)
        n = decompose_to_natives(c)
        for name in ("crx", "cry", "crz", "cp"):
            assert name not in n.count_ops()
        assert states_equal_up_to_phase(dense.run(c).data, dense.run(n).data)

    def test_two_qubit_rotations(self, dense):
        c = Circuit(2).h(0).rxx(0.4, 0, 1).ryy(0.6, 0, 1).rzz(0.8, 0, 1)
        n = decompose_to_natives(c)
        assert states_equal_up_to_phase(dense.run(c).data, dense.run(n).data)

    def test_small_diagonal_synthesized(self, dense):
        c = Circuit(2).h(0).h(1)
        c.diagonal(np.array([1, -1, 1j, -1j]), 0, 1)
        n = decompose_to_natives(c)
        assert all(g.diag is None for g in n)  # synthesized to phase gates
        a = dense.run(c).data
        b = dense.run(n).data
        assert abs(abs(np.vdot(a, b)) - 1.0) < 1e-10

    def test_wide_diagonal_preserved(self):
        d = np.ones(8, dtype=complex)
        d[-1] = -1
        c = Circuit(3).diagonal(d, 0, 1, 2)
        n = decompose_to_natives(c)
        assert any(g.diag is not None for g in n)


class TestFuse:
    def test_fusion_reduces_gate_count(self):
        c = Circuit(1).h(0).t(0).h(0).s(0)
        f = fuse_adjacent_1q(c)
        assert len(f) == 1
        assert f[0].name == "unitary"

    def test_fusion_stops_at_two_qubit_gates(self):
        c = Circuit(2).h(0).h(0).cx(0, 1).h(0)
        f = fuse_adjacent_1q(c)
        assert [g.name for g in f] == ["unitary", "cx", "unitary"]

    @pytest.mark.parametrize("seed", range(4))
    def test_fusion_equivalent(self, dense, seed):
        c = random_circuit(5, 50, seed=seed + 20)
        f = fuse_adjacent_1q(c)
        assert np.allclose(dense.run(c).data, dense.run(f).data, atol=1e-10)

    def test_fusion_of_unrelated_qubits_keeps_gates(self):
        c = Circuit(3).h(0).h(1).h(2)
        assert len(fuse_adjacent_1q(c)) == 3


class TestLocalityRemap:
    def test_busy_qubits_move_low(self, dense):
        c = Circuit(6)
        for _ in range(10):
            c.cx(4, 5)
        c.cx(0, 1)
        r, mapping = remap_for_locality(c, num_local=2)
        assert {mapping[4], mapping[5]} == {0, 1}

    def test_remap_is_permutation(self):
        c = random_circuit(6, 40, seed=2)
        _, mapping = remap_for_locality(c, 3)
        assert sorted(mapping.values()) == list(range(6))

    def test_remapped_circuit_equivalent_under_inverse_map(self, dense):
        c = random_circuit(5, 30, seed=6)
        r, mapping = remap_for_locality(c, 2)
        # applying the inverse relabeling restores the original circuit
        inv = {v: k for k, v in mapping.items()}
        back = r.remapped(inv)
        assert back == c
