"""Unit tests for circuit DAG analysis."""

import networkx as nx
import pytest

from repro.circuits import (
    Circuit,
    build_dag,
    critical_path_length,
    layers,
    qubit_interaction_graph,
    random_circuit,
)


class TestBuildDag:
    def test_chain_dependencies(self):
        c = Circuit(1).h(0).x(0).z(0)
        dag = build_dag(c)
        assert set(dag.edges()) == {(0, 1), (1, 2)}

    def test_independent_gates_no_edges(self):
        c = Circuit(3).h(0).h(1).h(2)
        dag = build_dag(c)
        assert dag.number_of_edges() == 0

    def test_two_qubit_gate_joins(self):
        c = Circuit(2).h(0).h(1).cx(0, 1)
        dag = build_dag(c)
        assert set(dag.predecessors(2)) == {0, 1}

    def test_only_latest_dependency_recorded(self):
        c = Circuit(1).h(0).x(0).z(0)
        dag = build_dag(c)
        assert not dag.has_edge(0, 2)

    def test_dag_is_acyclic(self):
        dag = build_dag(random_circuit(5, 40, seed=1))
        assert nx.is_directed_acyclic_graph(dag)

    def test_node_attributes_carry_gates(self):
        c = Circuit(2).h(0)
        dag = build_dag(c)
        assert dag.nodes[0]["gate"].name == "h"


class TestLayers:
    def test_parallel_layer(self):
        c = Circuit(3).h(0).h(1).h(2).cx(0, 1)
        ls = layers(c)
        assert ls[0] == [0, 1, 2]
        assert ls[1] == [3]

    def test_layers_match_depth(self):
        c = random_circuit(6, 50, seed=3)
        assert len(layers(c)) == c.depth()
        assert critical_path_length(c) == c.depth()

    def test_every_gate_in_exactly_one_layer(self):
        c = random_circuit(5, 30, seed=5)
        ls = layers(c)
        seen = sorted(i for layer in ls for i in layer)
        assert seen == list(range(len(c)))

    def test_layer_members_are_disjoint_on_qubits(self):
        c = random_circuit(6, 60, seed=7)
        for layer in layers(c):
            used = set()
            for i in layer:
                qs = set(c[i].qubits)
                assert not (qs & used)
                used |= qs

    def test_empty_circuit(self):
        assert layers(Circuit(2)) == []


class TestInteractionGraph:
    def test_edge_weights_count_couplings(self):
        c = Circuit(3).cx(0, 1).cx(0, 1).cx(1, 2)
        g = qubit_interaction_graph(c)
        assert g[0][1]["weight"] == 2
        assert g[1][2]["weight"] == 1
        assert not g.has_edge(0, 2)

    def test_three_qubit_gate_makes_clique(self):
        c = Circuit(3).ccx(0, 1, 2)
        g = qubit_interaction_graph(c)
        assert g.has_edge(0, 1) and g.has_edge(0, 2) and g.has_edge(1, 2)

    def test_isolated_qubits_present(self):
        g = qubit_interaction_graph(Circuit(4).cx(0, 1))
        assert set(g.nodes()) == {0, 1, 2, 3}
