"""HTML run report: structural smoke over a real monitored run."""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET

import pytest

from repro.analysis import render_html, write_html
from repro.circuits import qft
from repro.core import MemQSim
from repro.telemetry import Telemetry

#: every report must contain these section headings, in order
SECTIONS = [
    "Pipeline stage timeline",
    "Memory over time",
    "Per-chunk compression",
    "Metrics",
]


@pytest.fixture(scope="module")
def monitored_result(tight_config_module):
    cfg = tight_config_module.with_updates(monitor_interval_ms=2.0)
    return MemQSim(cfg, telemetry=Telemetry()).run(qft(8))


@pytest.fixture(scope="module")
def tight_config_module():
    from repro.core import MemQSimConfig
    from repro.device import DeviceSpec, HostSpec

    return MemQSimConfig(
        chunk_qubits=4,
        compressor="zlib",
        device=DeviceSpec(memory_bytes=(1 << 6) * 16 * 4),
        host=HostSpec(memory_bytes=1 << 26, cores=4),
    )


def _svgs(doc: str):
    return re.findall(r"<svg.*?</svg>", doc, re.S)


def test_report_structure(monitored_result):
    doc = render_html(monitored_result, title="golden smoke")
    assert doc.startswith("<!doctype html>")
    assert "<title>golden smoke</title>" in doc
    pos = -1
    for section in SECTIONS:
        nxt = doc.index(f"<h2>{section}</h2>")
        assert nxt > pos  # headings present, in order
        pos = nxt
    # self-contained: no external fetches of any kind
    for marker in ("http://", "https://", "<script", "<link", "@import"):
        assert marker not in doc, marker


def test_report_svgs_well_formed(monitored_result):
    doc = render_html(monitored_result)
    svgs = _svgs(doc)
    # light + dark stage timelines, one memory chart
    assert len(svgs) == 3
    for svg in svgs:
        ET.fromstring(svg)  # raises on malformed markup
    timeline = svgs[0]
    assert timeline.count("<rect") > 0
    assert timeline.count("<title>") == timeline.count("<rect")  # tooltips
    memory = svgs[2]
    assert memory.count("<polyline") == 3  # rss, store, arena


def test_report_renders_real_numbers(monitored_result):
    doc = render_html(monitored_result)
    # memory legend + peaks from the run's own monitor series
    assert "process RSS" in doc
    assert "device arena" in doc
    assert "no resource timeline captured" not in doc
    # per-chunk table rows for each chunk of the 8-qubit / 4-chunk layout
    assert doc.count("zero chunk") <= 16
    assert "derived gauge" in doc


def test_report_without_monitor_degrades(tight_config_module):
    res = MemQSim(tight_config_module, telemetry=Telemetry()).run(qft(8))
    doc = render_html(res)
    assert "no resource timeline captured" in doc
    assert len(_svgs(doc)) == 2  # timelines still render, no memory chart


def test_dark_mode_palette_scoped(monitored_result):
    doc = render_html(monitored_result)
    assert "prefers-color-scheme: dark" in doc
    # light and dark series hexes both present (kernel stage, slot 3)
    assert "#1baf7a" in doc and "#199e70" in doc


def test_write_html(monitored_result, tmp_path):
    out = tmp_path / "run.report.html"
    nb = write_html(monitored_result, str(out))
    assert out.stat().st_size == nb > 10_000


def test_report_cli(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "r.html"
    assert main(["report", "qft", "-n", "8", "--chunk-qubits", "4",
                 "-o", str(out)]) == 0
    assert "HTML report written" in capsys.readouterr().out
    assert out.stat().st_size > 10_000
