"""Tests for the plan-vs-actual audit: predictor exactness, failure modes."""

import pytest

from repro.analysis.audit import (
    audit_run,
    predict_access_schedule,
    predict_traffic,
)
from repro.circuits import get_workload
from repro.core import MemQSim, MemQSimConfig
from repro.device import DeviceSpec
from repro.memory import ChunkAccessRecorder, TrafficLedger
from repro.telemetry import Telemetry


class _CapturePlanCache:
    plan = None

    def lookup(self, key):
        return None

    def store(self, key, value):
        self.plan = value


def audited_run(n=8, chunk_qubits=4, serpentine=False, execution="serial",
                device_mb=None, workers=2, workload="qft"):
    """Run under the audit contract and return everything the audit needs."""
    tel = Telemetry()
    tel.access = ChunkAccessRecorder()
    cap = _CapturePlanCache()
    kw = {}
    if device_mb is not None:
        kw["device"] = DeviceSpec(memory_bytes=int(device_mb * (1 << 20)))
    if execution == "parallel":
        kw["workers"] = workers
    cfg = MemQSimConfig(
        chunk_qubits=chunk_qubits,
        compressor="zlib",
        cache_chunks=0,
        cpu_offload_fraction=0.0,
        execution=execution,
        serpentine_groups=serpentine,
        **kw,
    )
    res = MemQSim(cfg, telemetry=tel, plan_cache=cap).run(
        get_workload(workload, n))
    assert cap.plan is not None
    _plan, cplan = cap.plan
    return cplan.stages, res.store.layout, tel


class TestPredictor:
    @pytest.mark.parametrize("serpentine", [False, True])
    @pytest.mark.parametrize("execution", ["serial", "parallel"])
    def test_schedule_matches_recorded_trace(self, serpentine, execution):
        stages, layout, tel = audited_run(
            serpentine=serpentine, execution=execution)
        predicted = predict_access_schedule(stages, layout, serpentine)
        assert predicted == tel.access.trace()

    def test_streaming_run_matches(self):
        # tiny device memory forces multi-stage streaming with real reuse
        stages, layout, tel = audited_run(
            n=9, chunk_qubits=3, device_mb=0.002, serpentine=True)
        predicted = predict_access_schedule(stages, layout, True)
        assert len(predicted) > layout.num_chunks * 2  # several passes
        assert predicted == tel.access.trace()

    def test_permutation_stages_become_barriers(self):
        stages, layout, tel = audited_run(n=9, chunk_qubits=3,
                                          device_mb=0.002)
        predicted = predict_access_schedule(stages, layout)
        barriers = [(si, c, op) for si, c, op in predicted if op == "b"]
        assert barriers, "streaming plan should include permutation stages"
        assert all(c == -1 for _si, c, _op in barriers)
        traffic = predict_traffic(stages, layout)
        for si, _c, _op in barriers:
            assert traffic[si] == {}

    def test_traffic_prediction_shape(self):
        stages, layout, _tel = audited_run()
        traffic = predict_traffic(stages, layout)
        stage_bytes = layout.num_chunks * layout.chunk_nbytes
        gate_rows = [r for r in traffic.values() if r]
        assert gate_rows
        for row in gate_rows:
            assert row == {
                "codec.raw_out": stage_bytes,
                "codec.raw_in": stage_bytes,
                "arena.h2d": stage_bytes,
                "arena.d2h": stage_bytes,
            }

    def test_unknown_stage_type_rejected(self):
        _stages, layout, _tel = audited_run()
        with pytest.raises(TypeError):
            predict_access_schedule([object()], layout)


class TestAuditRun:
    def test_clean_run_passes(self):
        stages, layout, tel = audited_run(n=9, chunk_qubits=3,
                                          device_mb=0.002, serpentine=True)
        rep = audit_run(stages, layout, tel.access.trace(), tel.traffic,
                        serpentine=True)
        assert rep.ok, rep.render()
        assert rep.schedule_ok and rep.traffic_ok and rep.envelope_ok
        assert rep.first_divergence is None
        assert "PASS" in rep.render()

    def test_perturbed_trace_fails_with_divergence(self):
        stages, layout, tel = audited_run()
        trace = tel.access.trace()
        trace[0], trace[-1] = trace[-1], trace[0]
        rep = audit_run(stages, layout, trace, tel.traffic)
        assert not rep.ok
        assert not rep.schedule_ok
        assert rep.first_divergence is not None
        assert rep.first_divergence[0] == 0
        assert "FAIL" in rep.render()

    def test_truncated_trace_fails_on_length(self):
        stages, layout, tel = audited_run()
        trace = tel.access.trace()[:-1]
        rep = audit_run(stages, layout, trace, tel.traffic)
        assert not rep.schedule_ok
        assert rep.first_divergence[0] == len(trace)

    def test_inflated_ledger_fails_traffic(self):
        stages, layout, tel = audited_run()
        # phantom load the plan does not explain
        with tel.traffic.attributed(0, 0):
            tel.traffic.record("arena", "h2d", 1)
        rep = audit_run(stages, layout, tel.access.trace(), tel.traffic)
        assert not rep.traffic_ok
        assert any("arena.h2d" in e for e in rep.errors)

    def test_traffic_on_unplanned_stage_fails(self):
        stages, layout, tel = audited_run()
        with tel.traffic.attributed(len(stages) + 5, 0):
            tel.traffic.record("disk", "write", 10)
        rep = audit_run(stages, layout, tel.access.trace(), tel.traffic)
        assert not rep.traffic_ok
        assert any("unplanned stage" in e for e in rep.errors)

    def test_envelope_violation_fails(self):
        stages, layout, tel = audited_run()
        # blow the compressed side far past slack * raw
        raw = tel.traffic.total_bytes("codec", "raw_in")
        with tel.traffic.attributed(0, 0):
            tel.traffic.record("codec", "compressed_out", 2 * raw)
        rep = audit_run(stages, layout, tel.access.trace(), tel.traffic)
        assert not rep.envelope_ok
        assert any("envelope" in e for e in rep.errors)

    def test_missing_compressed_bytes_fails(self):
        stages, layout, tel = audited_run()
        led = TrafficLedger()
        # replay only the raw side of the codec into a fresh ledger
        for si, row in tel.traffic.by_stage().items():
            for key, nbytes in row.items():
                if "compressed" in key:
                    continue
                edge, direction = key.split(".")
                with led.attributed(si, 0):
                    led.record(edge, direction, nbytes)
        rep = audit_run(stages, layout, tel.access.trace(), led)
        assert not rep.envelope_ok
        assert any("no compressed bytes" in e for e in rep.errors)

    def test_to_dict_round_trips(self):
        import json

        stages, layout, tel = audited_run()
        rep = audit_run(stages, layout, tel.access.trace(), tel.traffic)
        doc = json.loads(json.dumps(rep.to_dict()))
        assert doc["ok"] is True
        assert doc["schedule_predicted"] == doc["schedule_measured"]
        assert doc["stages"]
