"""Tests for the access-trace analysis: reuse distance, LRU, Belady."""

import itertools

import pytest

from repro.analysis.memtrace import (
    analyze_trace,
    belady_misses,
    hit_rate_curve,
    reuse_distance_histogram,
    reuse_distances,
    simulate_cache,
    simulate_lru,
)
from repro.circuits import get_workload
from repro.core import MemQSim, MemQSimConfig
from repro.device import DeviceSpec
from repro.telemetry import Telemetry
from repro.memory import ChunkAccessRecorder


def R(chunk, stage=0):
    return (stage, chunk, "r")


def W(chunk, stage=0):
    return (stage, chunk, "w")


BARRIER = (1, -1, "b")


class TestReuseDistances:
    def test_cold_then_reuse(self):
        trace = [R(0), R(1), R(0)]
        # 0 cold, 1 cold, 0 reused with one distinct other chunk between
        assert reuse_distances(trace) == [None, None, 1]

    def test_immediate_reuse_is_zero(self):
        assert reuse_distances([R(5), R(5)]) == [None, 0]

    def test_duplicates_between_count_once(self):
        trace = [R(0), R(1), R(1), R(1), R(0)]
        assert reuse_distances(trace) == [None, None, 0, 0, 1]

    def test_barrier_resets_history(self):
        trace = [R(0), BARRIER, R(0)]
        assert reuse_distances(trace) == [None, None]

    def test_writes_participate_in_stack(self):
        trace = [W(0), R(0)]
        assert reuse_distances(trace) == [None, 0]

    def test_bad_op_raises(self):
        with pytest.raises(ValueError):
            reuse_distances([(0, 0, "x")])

    def test_histogram(self):
        trace = [R(0), R(1), R(0), R(1)]
        assert reuse_distance_histogram(trace) == {"cold": 2, "1": 2}


class TestHitRateCurve:
    def test_hand_trace(self):
        # distances of reads: None, None, 1, 1
        trace = [R(0), R(1), R(0), R(1)]
        caps, rates = hit_rate_curve(trace)
        assert caps == [1, 2]
        # C=1: only d==0 hits -> 0/4. C=2: d<=1 hits -> 2/4.
        assert rates == [0.0, 0.5]

    def test_curve_is_monotone_and_matches_simulation(self):
        # pseudo-random but deterministic trace over 6 chunks
        seq = [0, 1, 2, 3, 0, 1, 4, 5, 2, 0, 3, 1, 5, 4, 0, 2]
        trace = [R(c) for c in seq]
        caps, rates = hit_rate_curve(trace)
        assert all(b >= a for a, b in zip(rates, rates[1:]))
        reads = len(seq)
        for cap, rate in zip(caps, rates):
            hits, misses = simulate_lru(trace, cap)
            assert hits + misses == reads
            assert rate == pytest.approx(hits / reads)

    def test_empty_trace(self):
        caps, rates = hit_rate_curve([])
        assert caps == [1]
        assert rates == [0.0]


class TestSimulateLru:
    def test_capacity_one(self):
        trace = [R(0), R(0), R(1), R(0)]
        assert simulate_lru(trace, 1) == (1, 3)

    def test_writes_insert_but_do_not_count(self):
        # write makes chunk 0 resident; the read then hits, and the
        # (hits + misses) tally only ever covers reads
        trace = [W(0), R(0)]
        assert simulate_lru(trace, 2) == (1, 0)

    def test_barrier_flushes(self):
        trace = [R(0), BARRIER, R(0)]
        assert simulate_lru(trace, 4) == (0, 2)

    def test_lru_eviction_order(self):
        # with C=2: 0,1 resident; touching 0 makes 1 the LRU victim for 2
        trace = [R(0), R(1), R(0), R(2), R(0)]
        hits, misses = simulate_lru(trace, 2)
        assert (hits, misses) == (2, 3)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            simulate_lru([], 0)


class TestBelady:
    def test_belady_beats_lru_on_classic_pattern(self):
        # cyclic scan of 3 chunks with capacity 2: LRU misses everything,
        # MIN keeps one chunk pinned
        trace = [R(c) for c in [0, 1, 2] * 4]
        _h, lru = simulate_lru(trace, 2)
        opt = belady_misses(trace, 2)
        assert lru == 12
        assert opt < lru

    def test_belady_never_exceeds_lru(self):
        seqs = itertools.product(range(4), repeat=6)
        for i, seq in enumerate(seqs):
            if i % 7:  # keep runtime modest but coverage broad
                continue
            trace = [R(c) for c in seq]
            for cap in (1, 2, 3):
                _h, lru = simulate_lru(trace, cap)
                assert belady_misses(trace, cap) <= lru

    def test_barrier_bounds_lookahead(self):
        # Next use of chunk 0 is across the barrier; Belady must not use
        # it to justify keeping 0 resident (and must still flush).
        trace = [R(0), R(1), R(2), BARRIER, R(0)]
        assert belady_misses(trace, 2) == 4

    def test_writes_make_resident_without_counting(self):
        trace = [W(0), R(0), R(1), R(0)]
        assert belady_misses(trace, 2) == 1  # only chunk 1's read misses


class TestAnalyzeTrace:
    def test_report_fields(self):
        trace = [R(0), W(0), R(1), BARRIER, R(0)]
        rep = analyze_trace(trace, capacity=2)
        assert rep.accesses == 4
        assert rep.reads == 3
        assert rep.writes == 1
        assert rep.barriers == 1
        assert rep.distinct_chunks == 2
        assert rep.lru_hits + rep.lru_misses == rep.reads
        assert rep.belady_misses <= rep.lru_misses
        doc = rep.to_dict()
        assert doc["gap"] == rep.lru_misses - rep.belady_misses
        assert "hit_rate_curve" in doc
        assert "C=" in rep.render()

    def test_measured_misses_drive_the_gap(self):
        trace = [R(0), R(1), R(0)]
        rep = analyze_trace(trace, capacity=1, measured_lru_misses=5)
        assert rep.gap == 5 - rep.belady_misses


class TestAgainstLiveCache:
    def test_simulated_lru_matches_live_cache(self):
        """The offline LRU replay must equal the live cache's miss count."""
        tel = Telemetry()
        tel.access = ChunkAccessRecorder()
        cfg = MemQSimConfig(
            chunk_qubits=3,
            compressor="zlib",
            cache_chunks=4,
            cache_policy="lru",
            execution="serial",
            device=DeviceSpec(memory_bytes=int(0.002 * (1 << 20))),
        )
        res = MemQSim(cfg, telemetry=tel).run(get_workload("qft", 8))
        stats = getattr(res.store, "cache_stats", None)
        assert stats is not None
        trace = tel.access.trace()
        assert len(trace) > 0
        hits, misses = simulate_lru(trace, 4)
        assert misses == stats.misses
        assert hits == stats.hits
        assert belady_misses(trace, 4) <= misses


class TestSimulateCache:
    def test_lru_shorthand_equivalence(self):
        trace = [R(k % 5) for k in range(20)] + [W(2), R(7), R(2)]
        assert simulate_cache(trace, 3, "lru") == simulate_lru(trace, 3)

    def test_mru_evicts_most_recent(self):
        # fill 0,1 then touch 2: MRU evicts 1 (most recent), keeps 0
        trace = [R(0), R(1), R(2), R(0), R(1)]
        hits, misses = simulate_cache(trace, 2, "mru")
        assert (hits, misses) == (1, 4)
        # LRU on the same trace keeps 1,2 -> 0 misses again
        assert simulate_cache(trace, 2, "lru") == (0, 5)

    def test_mru_beats_lru_on_cyclic_sweep(self):
        cycle = [R(k) for k in range(4)]
        trace = cycle * 6
        _, lru_m = simulate_cache(trace, 3, "lru")
        _, mru_m = simulate_cache(trace, 3, "mru")
        assert mru_m < lru_m

    def test_belady_policy_is_the_bound(self):
        trace = [R(k % 7) for k in range(50)] + [W(1), R(1), R(6)]
        hits, misses = simulate_cache(trace, 3, "belady")
        assert misses == belady_misses(trace, 3)
        reads = sum(1 for _s, _c, op in trace if op == "r")
        assert hits == reads - misses

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            simulate_cache([R(0)], 2, "fifo")
        with pytest.raises(ValueError):
            simulate_cache([R(0)], 0, "lru")


class TestAnalyzePolicy:
    def test_policy_fields_default_lru(self):
        trace = [R(0), R(1), R(0), W(2), R(2)]
        rep = analyze_trace(trace, 2, measured_lru_misses=3)
        assert rep.policy == "lru"
        assert rep.policy_misses == rep.lru_misses
        assert rep.measured_misses == 3
        d = rep.to_dict()
        assert d["measured_lru_misses"] == 3  # legacy key intact

    def test_policy_mru_keeps_lru_baseline(self):
        trace = ([R(k) for k in range(4)] * 5)
        rep = analyze_trace(trace, 3, policy="mru", measured_misses=None)
        assert rep.policy == "mru"
        assert rep.policy_misses == simulate_cache(trace, 3, "mru")[1]
        assert rep.lru_misses == simulate_lru(trace, 3)[1]
        assert rep.belady_misses <= rep.policy_misses

    def test_measured_misses_backfills_legacy_field(self):
        trace = [R(0), R(1), R(0)]
        rep = analyze_trace(trace, 2, policy="lru", measured_misses=2)
        assert rep.measured_lru_misses == 2

    def test_render_mentions_policy(self):
        trace = ([R(k) for k in range(4)] * 3)
        rep = analyze_trace(trace, 2, policy="mru", measured_misses=None)
        assert "MRU" in rep.render()
