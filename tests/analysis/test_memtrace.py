"""Tests for the access-trace analysis: reuse distance, LRU, Belady."""

import itertools

import pytest

from repro.analysis.memtrace import (
    analyze_trace,
    belady_misses,
    hit_rate_curve,
    reuse_distance_histogram,
    reuse_distances,
    simulate_lru,
)
from repro.circuits import get_workload
from repro.core import MemQSim, MemQSimConfig
from repro.device import DeviceSpec
from repro.telemetry import Telemetry
from repro.memory import ChunkAccessRecorder


def R(chunk, stage=0):
    return (stage, chunk, "r")


def W(chunk, stage=0):
    return (stage, chunk, "w")


BARRIER = (1, -1, "b")


class TestReuseDistances:
    def test_cold_then_reuse(self):
        trace = [R(0), R(1), R(0)]
        # 0 cold, 1 cold, 0 reused with one distinct other chunk between
        assert reuse_distances(trace) == [None, None, 1]

    def test_immediate_reuse_is_zero(self):
        assert reuse_distances([R(5), R(5)]) == [None, 0]

    def test_duplicates_between_count_once(self):
        trace = [R(0), R(1), R(1), R(1), R(0)]
        assert reuse_distances(trace) == [None, None, 0, 0, 1]

    def test_barrier_resets_history(self):
        trace = [R(0), BARRIER, R(0)]
        assert reuse_distances(trace) == [None, None]

    def test_writes_participate_in_stack(self):
        trace = [W(0), R(0)]
        assert reuse_distances(trace) == [None, 0]

    def test_bad_op_raises(self):
        with pytest.raises(ValueError):
            reuse_distances([(0, 0, "x")])

    def test_histogram(self):
        trace = [R(0), R(1), R(0), R(1)]
        assert reuse_distance_histogram(trace) == {"cold": 2, "1": 2}


class TestHitRateCurve:
    def test_hand_trace(self):
        # distances of reads: None, None, 1, 1
        trace = [R(0), R(1), R(0), R(1)]
        caps, rates = hit_rate_curve(trace)
        assert caps == [1, 2]
        # C=1: only d==0 hits -> 0/4. C=2: d<=1 hits -> 2/4.
        assert rates == [0.0, 0.5]

    def test_curve_is_monotone_and_matches_simulation(self):
        # pseudo-random but deterministic trace over 6 chunks
        seq = [0, 1, 2, 3, 0, 1, 4, 5, 2, 0, 3, 1, 5, 4, 0, 2]
        trace = [R(c) for c in seq]
        caps, rates = hit_rate_curve(trace)
        assert all(b >= a for a, b in zip(rates, rates[1:]))
        reads = len(seq)
        for cap, rate in zip(caps, rates):
            hits, misses = simulate_lru(trace, cap)
            assert hits + misses == reads
            assert rate == pytest.approx(hits / reads)

    def test_empty_trace(self):
        caps, rates = hit_rate_curve([])
        assert caps == [1]
        assert rates == [0.0]


class TestSimulateLru:
    def test_capacity_one(self):
        trace = [R(0), R(0), R(1), R(0)]
        assert simulate_lru(trace, 1) == (1, 3)

    def test_writes_insert_but_do_not_count(self):
        # write makes chunk 0 resident; the read then hits, and the
        # (hits + misses) tally only ever covers reads
        trace = [W(0), R(0)]
        assert simulate_lru(trace, 2) == (1, 0)

    def test_barrier_flushes(self):
        trace = [R(0), BARRIER, R(0)]
        assert simulate_lru(trace, 4) == (0, 2)

    def test_lru_eviction_order(self):
        # with C=2: 0,1 resident; touching 0 makes 1 the LRU victim for 2
        trace = [R(0), R(1), R(0), R(2), R(0)]
        hits, misses = simulate_lru(trace, 2)
        assert (hits, misses) == (2, 3)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            simulate_lru([], 0)


class TestBelady:
    def test_belady_beats_lru_on_classic_pattern(self):
        # cyclic scan of 3 chunks with capacity 2: LRU misses everything,
        # MIN keeps one chunk pinned
        trace = [R(c) for c in [0, 1, 2] * 4]
        _h, lru = simulate_lru(trace, 2)
        opt = belady_misses(trace, 2)
        assert lru == 12
        assert opt < lru

    def test_belady_never_exceeds_lru(self):
        seqs = itertools.product(range(4), repeat=6)
        for i, seq in enumerate(seqs):
            if i % 7:  # keep runtime modest but coverage broad
                continue
            trace = [R(c) for c in seq]
            for cap in (1, 2, 3):
                _h, lru = simulate_lru(trace, cap)
                assert belady_misses(trace, cap) <= lru

    def test_barrier_bounds_lookahead(self):
        # Next use of chunk 0 is across the barrier; Belady must not use
        # it to justify keeping 0 resident (and must still flush).
        trace = [R(0), R(1), R(2), BARRIER, R(0)]
        assert belady_misses(trace, 2) == 4

    def test_writes_make_resident_without_counting(self):
        trace = [W(0), R(0), R(1), R(0)]
        assert belady_misses(trace, 2) == 1  # only chunk 1's read misses


class TestAnalyzeTrace:
    def test_report_fields(self):
        trace = [R(0), W(0), R(1), BARRIER, R(0)]
        rep = analyze_trace(trace, capacity=2)
        assert rep.accesses == 4
        assert rep.reads == 3
        assert rep.writes == 1
        assert rep.barriers == 1
        assert rep.distinct_chunks == 2
        assert rep.lru_hits + rep.lru_misses == rep.reads
        assert rep.belady_misses <= rep.lru_misses
        doc = rep.to_dict()
        assert doc["gap"] == rep.lru_misses - rep.belady_misses
        assert "hit_rate_curve" in doc
        assert "C=" in rep.render()

    def test_measured_misses_drive_the_gap(self):
        trace = [R(0), R(1), R(0)]
        rep = analyze_trace(trace, capacity=1, measured_lru_misses=5)
        assert rep.gap == 5 - rep.belady_misses


class TestAgainstLiveCache:
    def test_simulated_lru_matches_live_cache(self):
        """The offline LRU replay must equal the live cache's miss count."""
        tel = Telemetry()
        tel.access = ChunkAccessRecorder()
        cfg = MemQSimConfig(
            chunk_qubits=3,
            compressor="zlib",
            cache_chunks=4,
            cache_policy="lru",
            execution="serial",
            device=DeviceSpec(memory_bytes=int(0.002 * (1 << 20))),
        )
        res = MemQSim(cfg, telemetry=tel).run(get_workload("qft", 8))
        stats = getattr(res.store, "cache_stats", None)
        assert stats is not None
        trace = tel.access.trace()
        assert len(trace) > 0
        hits, misses = simulate_lru(trace, 4)
        assert misses == stats.misses
        assert hits == stats.hits
        assert belady_misses(trace, 4) <= misses
