"""Unit tests for the analysis helpers (fidelity comparisons, report tables)."""

import math

import numpy as np
import pytest

from repro.analysis import Table, compare_states, format_bytes, format_seconds


class TestCompareStates:
    def test_identical(self):
        v = np.array([1, 0, 0, 0], dtype=complex)
        c = compare_states(v, v.copy())
        assert c.fidelity == pytest.approx(1.0)
        assert c.l2_error == 0.0
        assert c.tv_distance == 0.0

    def test_orthogonal(self):
        a = np.array([1, 0], dtype=complex)
        b = np.array([0, 1], dtype=complex)
        c = compare_states(a, b)
        assert c.fidelity == pytest.approx(0.0)
        assert c.tv_distance == pytest.approx(1.0)

    def test_global_phase_invariant_fidelity(self):
        rng = np.random.default_rng(0)
        v = rng.standard_normal(16) + 1j * rng.standard_normal(16)
        v /= np.linalg.norm(v)
        c = compare_states(v, v * np.exp(0.7j))
        assert c.fidelity == pytest.approx(1.0, abs=1e-12)

    def test_unnormalized_inputs_handled(self):
        v = np.array([2, 0], dtype=complex)
        c = compare_states(v, v * 3)
        assert c.fidelity == pytest.approx(1.0)
        assert c.norm_exact == pytest.approx(2.0)
        assert c.norm_approx == pytest.approx(6.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            compare_states(np.zeros(2, dtype=complex), np.zeros(4, dtype=complex))

    def test_zero_norm_rejected(self):
        with pytest.raises(ValueError):
            compare_states(np.zeros(2, dtype=complex), np.ones(2, dtype=complex))

    def test_row_renders(self):
        v = np.array([1, 0], dtype=complex)
        assert "F=" in compare_states(v, v).row()


class TestFormatting:
    def test_format_seconds_scales(self):
        assert format_seconds(2.5e-9).endswith("ns")
        assert format_seconds(2.5e-6).endswith("us")
        assert format_seconds(2.5e-3).endswith("ms")
        assert format_seconds(2.5).endswith("s")

    def test_format_seconds_negative(self):
        assert format_seconds(-0.001).startswith("-")

    def test_format_bytes_scales(self):
        assert format_bytes(512) == "512 B"
        assert "KiB" in format_bytes(2048)
        assert "MiB" in format_bytes(5 << 20)
        assert "GiB" in format_bytes(3 << 30)


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "value"], title="demo")
        t.add("a", 1)
        t.add("longer-name", 23456)
        out = t.render()
        assert "demo" in out
        assert "longer-name" in out
        lines = out.splitlines()
        assert len(lines) == 5  # title, header, rule, 2 rows

    def test_row_arity_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add("only-one")

    def test_csv(self):
        t = Table(["a", "b"])
        t.add("x,y", 2)
        csv = t.csv()
        assert csv.splitlines()[0] == "a,b"
        assert "x;y" in csv  # commas inside cells escaped

    def test_str_is_render(self):
        t = Table(["a"])
        t.add(1)
        assert str(t) == t.render()
