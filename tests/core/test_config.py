"""Unit tests for MemQSimConfig."""

import pytest

from repro.core import MemQSimConfig
from repro.device import DeviceSpec, HostSpec


class TestDefaults:
    def test_default_construction(self):
        cfg = MemQSimConfig()
        assert cfg.compressor == "szlike"
        assert cfg.transfer == "sync"
        assert cfg.num_buffers == 2

    def test_make_compressor(self):
        cfg = MemQSimConfig(compressor="zlib", compressor_options={"level": 6})
        c = cfg.make_compressor()
        assert c.name == "zlib"
        assert c.level == 6

    def test_with_updates(self):
        a = MemQSimConfig()
        b = a.with_updates(chunk_qubits=7)
        assert b.chunk_qubits == 7
        assert a.chunk_qubits == 0  # frozen original untouched

    def test_summary_renders(self):
        s = MemQSimConfig(compressor_options={"error_bound": 1e-5}).summary()
        assert "szlike" in s and "error_bound" in s


class TestChunkResolution:
    def test_explicit_passthrough(self):
        cfg = MemQSimConfig(chunk_qubits=6)
        assert cfg.resolve_chunk_qubits(10) == 6

    def test_explicit_too_large_rejected(self):
        with pytest.raises(ValueError):
            MemQSimConfig(chunk_qubits=12).resolve_chunk_qubits(10)

    def test_auto_keeps_min_chunks(self):
        cfg = MemQSimConfig(min_chunks=4, device=DeviceSpec(memory_bytes=1 << 30))
        c = cfg.resolve_chunk_qubits(10)
        assert (1 << (10 - c)) >= 4

    def test_auto_respects_device(self):
        # Tiny device: chunk must shrink so 2 group-of-2 buffers fit.
        cfg = MemQSimConfig(device=DeviceSpec(memory_bytes=(1 << 8) * 16))
        c = cfg.resolve_chunk_qubits(20)
        assert (1 << (c + 1)) * 16 * 2 <= (1 << 8) * 16 * 2
        assert c <= 6

    def test_auto_cap(self):
        cfg = MemQSimConfig(max_chunk_qubits=5, device=DeviceSpec(memory_bytes=1 << 30))
        assert cfg.resolve_chunk_qubits(30) == 5

    def test_auto_minimum_one(self):
        cfg = MemQSimConfig()
        assert cfg.resolve_chunk_qubits(2) >= 1
