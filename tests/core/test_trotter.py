"""Tests for generalized Trotterization against the exact propagator."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.circuits import Circuit
from repro.observables import (
    PauliSum,
    append_pauli_rotation,
    heisenberg_hamiltonian,
    ising_hamiltonian,
    trotterize,
)
from repro.statevector import DenseSimulator


def prep(n=4):
    """A generic (non-eigenstate) initial state."""
    c = Circuit(n)
    for q in range(n):
        c.ry(0.3 + 0.2 * q, q)
    return c


def evolve_exact(h, t, n, psi0):
    return expm(-1j * t * h.to_matrix(n)) @ psi0


def fidelity(a, b):
    return abs(np.vdot(a, b)) ** 2


class TestPauliRotation:
    @pytest.mark.parametrize("pauli,qubits", [
        ("Z", [0]), ("X", [1]), ("Y", [2]),
        ("ZZ", [0, 2]), ("XY", [1, 3]), ("XYZ", [0, 1, 3]),
    ])
    def test_matches_matrix_exponential(self, pauli, qubits):
        theta = 0.73
        c = prep()
        append_pauli_rotation(c, pauli, qubits, theta)
        got = DenseSimulator().run(c).data
        h = PauliSum().add(1.0, pauli, qubits)
        want = expm(-1j * (theta / 2) * h.to_matrix(4)) @ \
            DenseSimulator().run(prep()).data
        assert fidelity(got, want) == pytest.approx(1.0, abs=1e-10)

    def test_identity_string_is_global_phase(self):
        c = Circuit(2)
        append_pauli_rotation(c, "II", [0, 1], 0.8)
        sv = DenseSimulator().run(c).data
        assert sv[0] == pytest.approx(np.exp(-1j * 0.4))


class TestTrotterize:
    def test_first_order_converges(self):
        n, t = 4, 0.5
        h = ising_hamiltonian(n, 1.0, 0.6)
        psi0 = DenseSimulator().run(prep(n)).data
        exact = evolve_exact(h, t, n, psi0)
        fids = []
        for steps in (2, 8, 32):
            circ = prep(n).compose(trotterize(h, t, steps, order=1))
            fids.append(fidelity(exact, DenseSimulator().run(circ).data))
        assert fids[0] <= fids[1] <= fids[2] + 1e-12
        assert fids[-1] > 0.999

    def test_second_order_beats_first(self):
        n, t, steps = 4, 0.8, 4
        h = heisenberg_hamiltonian(n)
        psi0 = DenseSimulator().run(prep(n)).data
        exact = evolve_exact(h, t, n, psi0)
        f1 = fidelity(exact, DenseSimulator().run(
            prep(n).compose(trotterize(h, t, steps, order=1))).data)
        f2 = fidelity(exact, DenseSimulator().run(
            prep(n).compose(trotterize(h, t, steps, order=2))).data)
        assert f2 > f1

    def test_matches_hand_rolled_ising_circuit(self):
        from repro.circuits import trotter_ising

        n, steps, dt = 5, 3, 0.1
        h = ising_hamiltonian(n, j=1.0, g=0.5)
        a = DenseSimulator().run(trotter_ising(n, steps, dt, 1.0, 0.5)).data
        b = DenseSimulator().run(trotterize(h, steps * dt, steps, order=1)).data
        # same product formula up to global phase and term ordering
        assert fidelity(a, b) == pytest.approx(1.0, abs=1e-6)

    def test_runs_on_memqsim(self):
        from repro.core import MemQSim, MemQSimConfig
        from repro.device import DeviceSpec

        h = heisenberg_hamiltonian(8)
        circ = trotterize(h, 0.3, 4, order=2)
        cfg = MemQSimConfig(chunk_qubits=4, compressor="zlib",
                            device=DeviceSpec(memory_bytes=1 << 13))
        res = MemQSim(cfg).run(circ)
        ref = DenseSimulator().run(circ).data
        assert res.fidelity_vs(ref) == pytest.approx(1.0, abs=1e-10)

    def test_validation(self):
        h = ising_hamiltonian(3)
        with pytest.raises(ValueError):
            trotterize(h, 1.0, 0)
        with pytest.raises(ValueError):
            trotterize(h, 1.0, 2, order=3)
        with pytest.raises(ValueError):
            trotterize(h, 1.0, 2, num_qubits=2)

    def test_register_extension(self):
        h = PauliSum().add(0.5, "Z", (1,))
        circ = trotterize(h, 1.0, 1, num_qubits=5)
        assert circ.num_qubits == 5
