"""Unit tests for the pluggable kernel backends (cross-validation)."""

import numpy as np
import pytest

from repro.circuits import make_diagonal_gate, make_gate, random_circuit
from repro.core import EinsumBackend, NumpyKernelBackend, get_backend, register_backend
from repro.core.backend import Backend


def rand_state(n, seed=0):
    g = np.random.default_rng(seed)
    v = g.standard_normal(1 << n) + 1j * g.standard_normal(1 << n)
    return v / np.linalg.norm(v)


class TestRegistry:
    def test_get_by_name(self):
        assert isinstance(get_backend("numpy"), NumpyKernelBackend)
        assert isinstance(get_backend("einsum"), EinsumBackend)

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_backend("cuda")

    def test_register_custom(self):
        class MyBackend(NumpyKernelBackend):
            name = "custom-test"

        register_backend(MyBackend)
        assert isinstance(get_backend("custom-test"), MyBackend)


class TestCrossValidation:
    """einsum and numpy backends are independent implementations —
    agreement on random circuits validates both."""

    @pytest.mark.parametrize("seed", range(5))
    def test_backends_agree_on_random_circuits(self, seed):
        c = random_circuit(6, 40, seed=seed)
        a = rand_state(6, seed)
        b = a.copy()
        NumpyKernelBackend().apply(a, list(c))
        EinsumBackend().apply(b, list(c))
        assert np.allclose(a, b, atol=1e-10)

    def test_backends_agree_on_3q_gates(self):
        gates = [make_gate("ccx", (2, 0, 4)), make_gate("cswap", (1, 3, 0))]
        a = rand_state(5, 9)
        b = a.copy()
        NumpyKernelBackend().apply(a, gates)
        EinsumBackend().apply(b, gates)
        assert np.allclose(a, b, atol=1e-10)

    def test_backends_agree_on_diagonals(self):
        d = np.exp(1j * np.linspace(0, 3, 8))
        gates = [make_diagonal_gate((4, 1, 3), d)]
        a = rand_state(5, 10)
        b = a.copy()
        NumpyKernelBackend().apply(a, gates)
        EinsumBackend().apply(b, gates)
        assert np.allclose(a, b, atol=1e-10)

    def test_einsum_preserves_norm(self):
        c = random_circuit(5, 30, seed=6)
        v = rand_state(5, 11)
        EinsumBackend().apply(v, list(c))
        assert np.linalg.norm(v) == pytest.approx(1.0, abs=1e-10)


class TestBackendContract:
    def test_backend_is_abstract(self):
        with pytest.raises(TypeError):
            Backend()
