"""Unit tests for the MemQSim simulator facade."""

import numpy as np
import pytest

from repro.circuits import Circuit, ghz, qft, random_circuit
from repro.core import MemQSim, MemQSimConfig
from repro.device import DeviceSpec
from repro.statevector import DenseSimulator, StateVector


class TestBasics:
    def test_default_config_runs(self):
        res = MemQSim().run(ghz(6))
        assert res.num_qubits == 6
        assert res.norm() == pytest.approx(1.0, abs=1e-3)

    def test_override_kwargs(self):
        sim = MemQSim(compressor="zlib", chunk_qubits=3)
        assert sim.config.compressor == "zlib"
        assert sim.config.chunk_qubits == 3

    def test_config_object(self):
        cfg = MemQSimConfig(compressor="zlib")
        sim = MemQSim(cfg)
        assert sim.config is cfg

    def test_repr(self):
        assert "szlike" in repr(MemQSim())


class TestCorrectness:
    def test_lossless_identical_to_dense(self, tight_config):
        c = random_circuit(9, 70, seed=13)
        ref = DenseSimulator().run(c).data
        got = MemQSim(tight_config).run(c).statevector()
        assert np.allclose(got, ref, atol=1e-12)

    def test_initial_state(self, tight_config):
        c = Circuit(8).cx(0, 1)
        init = StateVector.basis_state(8, 1)
        res = MemQSim(tight_config).run(c, initial_state=init)
        assert res.probability_of(3) == pytest.approx(1.0)

    def test_initial_state_size_checked(self, tight_config):
        with pytest.raises(ValueError):
            MemQSim(tight_config).run(Circuit(8).h(0), initial_state=StateVector(4))

    def test_lossy_fidelity_floor(self):
        from repro.compression import fidelity_floor

        c = qft(10)
        eb = 1e-6
        ref = DenseSimulator().run(c).data
        res = MemQSim(
            compressor="szlike",
            compressor_options={"error_bound": eb},
            chunk_qubits=5,
            device=DeviceSpec(memory_bytes=1 << 16),
        ).run(c)
        f = res.fidelity_vs(ref)
        # Each of the plan's recompressions can add eb; bound by stages+1.
        total_eb = eb * (res.plan.num_stages + 1)
        assert f >= fidelity_floor(total_eb, 1 << 10) - 1e-9

    def test_host_budget_enforced(self):
        from repro.device import HostSpec

        cfg = MemQSimConfig(
            chunk_qubits=8,
            host=HostSpec(memory_bytes=1024),  # absurdly small
            device=DeviceSpec(memory_bytes=1 << 24),
        )
        with pytest.raises(MemoryError):
            MemQSim(cfg).run(ghz(10))


class TestResultQueries:
    @pytest.fixture
    def result(self, tight_config):
        return MemQSim(tight_config).run(ghz(8))

    def test_sample_streaming(self, result):
        counts = result.sample(500, seed=1)
        assert set(counts) <= {"0" * 8, "1" * 8}
        assert sum(counts.values()) == 500

    def test_sample_distribution(self, result):
        counts = result.sample(2000, seed=2)
        assert abs(counts.get("0" * 8, 0) - 1000) < 150

    def test_probability_of(self, result):
        assert result.probability_of(0) == pytest.approx(0.5, abs=1e-9)
        assert result.probability_of(255) == pytest.approx(0.5, abs=1e-9)
        assert result.probability_of(7) == pytest.approx(0.0, abs=1e-12)

    def test_amplitude(self, result):
        assert result.amplitude(0) == pytest.approx(1 / np.sqrt(2))

    def test_expectation_z_local_and_global(self, result):
        # GHZ: <Z_q> = 0 for every qubit.
        for q in (0, 7):
            assert result.expectation_z(q) == pytest.approx(0.0, abs=1e-9)

    def test_expectation_z_matches_dense(self, tight_config):
        c = random_circuit(8, 40, seed=17)
        res = MemQSim(tight_config).run(c)
        ref = DenseSimulator().run(c)
        for q in range(8):
            assert res.expectation_z(q) == pytest.approx(
                ref.expectation_pauli("Z", [q]), abs=1e-9
            )

    def test_chunk_masses_sum_to_one(self, result):
        assert result.chunk_probability_masses().sum() == pytest.approx(1.0, abs=1e-9)

    def test_report_renders(self, result):
        rep = result.report()
        assert "MEMQSim result" in rep
        assert "stage breakdown" in rep
        assert "ratio" in rep

    def test_pipeline_speedup_sane(self, result):
        assert 1.0 <= result.pipeline_speedup < 100
        assert result.pipelined_seconds <= result.serial_seconds + 1e-9

    def test_memory_accounting_sane(self, result):
        assert result.peak_host_bytes > 0
        assert result.peak_device_bytes > 0
        assert result.dense_bytes == 256 * 16


class TestConvenience:
    def test_sample_facade(self, tight_config):
        counts = MemQSim(tight_config).sample(ghz(8), shots=100, seed=4)
        assert sum(counts.values()) == 100

    def test_statevector_facade(self, tight_config):
        sv = MemQSim(tight_config).statevector(ghz(8))
        assert sv.shape == (256,)


class TestDiskStore:
    def test_disk_store_identical_to_memory(self, tmp_path):
        from repro.circuits import random_circuit

        circ = random_circuit(8, 40, seed=77)
        base = MemQSimConfig(chunk_qubits=4, compressor="zlib",
                             device=DeviceSpec(memory_bytes=1 << 13))
        ref = MemQSim(base).run(circ).statevector()
        cfg = base.with_updates(store="disk",
                                disk_path=str(tmp_path / "sim.log"))
        res = MemQSim(cfg).run(circ)
        assert np.allclose(res.statevector(), ref, atol=1e-12)
        assert res.tracker.peak("disk_store") > 0
        assert res.tracker.peak("chunk_store") == 0
        res.store.close()

    def test_disk_store_default_temp_path(self):
        cfg = MemQSimConfig(chunk_qubits=3, compressor="zlib",
                            device=DeviceSpec(memory_bytes=1 << 12),
                            store="disk")
        res = MemQSim(cfg).run(ghz(6))
        assert res.norm() == pytest.approx(1.0, abs=1e-9)
        path = res.store.path
        res.store.close()
        import os

        os.unlink(path)

    def test_unknown_store_kind(self):
        cfg = MemQSimConfig(store="tape")
        with pytest.raises(ValueError):
            MemQSim(cfg).run(ghz(4))
