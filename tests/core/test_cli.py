"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "qft"])
        assert args.workload == "qft"
        assert args.qubits == 12
        assert args.compressor == "szlike"


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "qft" in out and "grover" in out

    def test_compressors_list(self, capsys):
        assert main(["compressors"]) == 0
        out = capsys.readouterr().out
        assert "szlike" in out and "lossless" in out

    def test_compressors_evaluate(self, capsys):
        assert main(["compressors", "--evaluate", "ghz", "-n", "8"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out or "x" in out

    def test_run_workload(self, capsys):
        rc = main([
            "run", "ghz", "-n", "8", "--chunk-qubits", "4",
            "--device-mb", "0.01", "--shots", "50", "--seed", "3",
            "--compare-dense",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MEMQSim result" in out
        assert "fidelity vs dense" in out
        assert "top outcomes" in out

    def test_run_with_checkpoint_roundtrip(self, tmp_path, capsys):
        ck = tmp_path / "state.mqs"
        assert main([
            "run", "ghz", "-n", "8", "--chunk-qubits", "4",
            "--compressor", "zlib", "--save-state", str(ck),
        ]) == 0
        assert ck.exists()
        assert main([
            "run", "ghz", "-n", "8", "--chunk-qubits", "4",
            "--compressor", "zlib", "--checkpoint", str(ck),
        ]) == 0
        # ghz twice: h0 + cx chain applied twice returns near |0..0>... not
        # exactly; just confirm it ran and reported.
        assert "MEMQSim result" in capsys.readouterr().out

    def test_run_qasm_file(self, tmp_path, capsys):
        qasm = tmp_path / "c.qasm"
        qasm.write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[3];\n'
            "h q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n"
        )
        assert main(["run", "--qasm", str(qasm), "--compressor", "zlib",
                     "--chunk-qubits", "2", "--device-mb", "0.01"]) == 0
        assert "MEMQSim result" in capsys.readouterr().out

    def test_run_without_workload_errors(self):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_plan(self, capsys):
        assert main(["plan", "qft", "-n", "10", "--chunk-qubits", "5"]) == 0
        out = capsys.readouterr().out
        assert "stages" in out and "group passes" in out
