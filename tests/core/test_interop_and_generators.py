"""Tests for the SV-Sim-style session adapter and the new generators."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.circuits import Circuit, cuccaro_adder, trotter_ising
from repro.core import MemQSimConfig
from repro.device import DeviceSpec
from repro.interop import SvSession
from repro.observables import ising_hamiltonian
from repro.statevector import DenseSimulator, StateVector


def session(n=8):
    chunk = max(1, min(4, n - 1))
    return SvSession(n, MemQSimConfig(chunk_qubits=chunk, compressor="zlib",
                                      device=DeviceSpec(memory_bytes=1 << 13)),
                     seed=5)


class TestSvSession:
    def test_bell_counts(self):
        sim = session(2)
        sim.h(0).cx(0, 1)
        counts = sim.measure_all(shots=400)
        assert set(counts) <= {"00", "11"}
        assert sum(counts.values()) == 400

    def test_gate_verbs_from_gate_set(self):
        sim = session(3)
        sim.h(0)
        sim.rz(0.5, 1)
        sim.ccx(0, 1, 2)
        assert sim.num_gates == 3

    def test_unknown_gate_rejected(self):
        sim = session(2)
        with pytest.raises(KeyError):
            sim.append("frobnicate", 0)
        with pytest.raises(AttributeError):
            sim.frobnicate(0)

    def test_statevector_matches_dense(self):
        sim = session(4)
        sim.h(0).cx(0, 1).t(1).cx(1, 2).rx(0.3, 3)
        c = Circuit(4).h(0).cx(0, 1).t(1).cx(1, 2).rx(0.3, 3)
        ref = DenseSimulator().run(c).data
        assert np.allclose(sim.get_statevector(), ref, atol=1e-12)

    def test_incremental_execution_continues_state(self):
        sim = session(3)
        sim.h(0)
        _ = sim.get_statevector()  # forces a run
        sim.cx(0, 1)  # appended after the run
        sv = sim.get_statevector()
        ref = DenseSimulator().run(Circuit(3).h(0).cx(0, 1)).data
        assert np.allclose(sv, ref, atol=1e-12)

    def test_mid_circuit_measure_then_continue(self):
        sim = session(3)
        sim.h(0).cx(0, 1)
        bit = sim.measure(0)
        sim.x(2)  # continue after collapse
        sv = sim.get_statevector()
        want_index = (bit | (bit << 1)) | (1 << 2)
        assert abs(sv[want_index]) == pytest.approx(1.0, abs=1e-9)

    def test_reset_sim(self):
        sim = session(2)
        sim.x(0)
        sim.run()
        sim.reset_sim()
        sv = sim.get_statevector()
        assert sv[0] == pytest.approx(1.0)

    def test_run_caching(self):
        sim = session(2)
        sim.h(0)
        r1 = sim.run()
        r2 = sim.run()
        assert r1 is r2

    def test_expectation_z(self):
        sim = session(2)
        sim.x(1)
        assert sim.expectation_z(1) == pytest.approx(-1.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            SvSession(0)

    def test_repr(self):
        assert "SvSession" in repr(session(2))


class TestTrotterIsing:
    def test_short_time_matches_exact_evolution(self):
        n, dt, steps = 4, 0.02, 10
        h = ising_hamiltonian(n, j=1.0, g=0.5)
        circ = trotter_ising(n, steps=steps, dt=dt, j=1.0, g=0.5)
        sv = DenseSimulator().run(circ)
        exact = expm(-1j * steps * dt * h.to_matrix(n)) @ StateVector(n).data
        fidelity = abs(np.vdot(exact, sv.data)) ** 2
        assert fidelity > 0.999

    def test_trotter_error_shrinks_with_dt(self):
        n, t = 4, 0.4
        h = ising_hamiltonian(n, j=1.0, g=0.5)
        exact = expm(-1j * t * h.to_matrix(n)) @ StateVector(n).data
        fids = []
        for steps in (2, 8, 32):
            circ = trotter_ising(n, steps=steps, dt=t / steps, j=1.0, g=0.5)
            sv = DenseSimulator().run(circ).data
            fids.append(abs(np.vdot(exact, sv)) ** 2)
        assert fids[0] <= fids[1] <= fids[2] + 1e-12

    def test_energy_conserved_under_evolution(self):
        # <H> is invariant under exp(-iHt); Trotter should nearly conserve it.
        n = 6
        h = ising_hamiltonian(n, j=1.0, g=0.7)
        prep = Circuit(n)
        for q in range(n):
            prep.ry(0.4 + 0.1 * q, q)
        e0 = h.expectation_dense(DenseSimulator().run(prep))
        evolved = prep.compose(trotter_ising(n, steps=20, dt=0.02, j=1.0, g=0.7))
        e1 = h.expectation_dense(DenseSimulator().run(evolved))
        assert e1 == pytest.approx(e0, abs=0.05)


class TestCuccaroAdder:
    @staticmethod
    def prepare_and_run(n_bits, a_val, b_val):
        circ = cuccaro_adder(n_bits)
        prep = Circuit(circ.num_qubits)
        for i in range(n_bits):
            if (a_val >> i) & 1:
                prep.x(1 + 2 * i)
            if (b_val >> i) & 1:
                prep.x(2 + 2 * i)
        sv = DenseSimulator().run(prep.compose(circ))
        outcome = int(np.argmax(np.abs(sv.data)))
        b_out = 0
        for i in range(n_bits):
            b_out |= ((outcome >> (2 + 2 * i)) & 1) << i
        carry = (outcome >> (2 * n_bits + 1)) & 1
        a_out = 0
        for i in range(n_bits):
            a_out |= ((outcome >> (1 + 2 * i)) & 1) << i
        return a_out, b_out, carry

    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (3, 1), (2, 3), (3, 3)])
    def test_two_bit_addition(self, a, b):
        a_out, b_out, carry = self.prepare_and_run(2, a, b)
        total = a + b
        assert b_out == total % 4
        assert carry == total // 4
        assert a_out == a  # a register restored

    @pytest.mark.parametrize("a,b", [(5, 3), (7, 7), (0, 6), (4, 4)])
    def test_three_bit_addition(self, a, b):
        a_out, b_out, carry = self.prepare_and_run(3, a, b)
        total = a + b
        assert b_out == total % 8
        assert carry == total // 8
        assert a_out == a

    def test_validation(self):
        with pytest.raises(ValueError):
            cuccaro_adder(0)

    def test_adder_in_memqsim(self):
        from repro.core import MemQSim

        circ = cuccaro_adder(3)
        prep = Circuit(circ.num_qubits)
        # a = 5, b = 6
        for i in range(3):
            if (5 >> i) & 1:
                prep.x(1 + 2 * i)
            if (6 >> i) & 1:
                prep.x(2 + 2 * i)
        cfg = MemQSimConfig(chunk_qubits=4, compressor="zlib",
                            device=DeviceSpec(memory_bytes=1 << 13))
        res = MemQSim(cfg).run(prep.compose(circ))
        counts = res.sample(10, seed=1)
        assert len(counts) == 1
        outcome = int(next(iter(counts)), 2)
        b_out = sum((((outcome >> (2 + 2 * i)) & 1) << i) for i in range(3))
        carry = (outcome >> 7) & 1
        assert b_out + (carry << 3) == 11
