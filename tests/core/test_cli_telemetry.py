"""CLI telemetry flags: --trace-out/--metrics-out/--json and `trace`."""

import json

import pytest

from repro.cli import build_parser, main

RUN = ["run", "ghz", "-n", "8", "--chunk-qubits", "4", "--compressor", "zlib"]


class TestParser:
    def test_run_accepts_telemetry_flags(self):
        args = build_parser().parse_args(
            RUN + ["--trace-out", "t.json", "--metrics-out", "m.json",
                   "--log-level", "debug"])
        assert args.trace_out == "t.json"
        assert args.metrics_out == "m.json"
        assert args.log_level == "debug"

    def test_json_flag_bare_means_stdout(self):
        args = build_parser().parse_args(RUN + ["--json"])
        assert args.json == "-"
        args = build_parser().parse_args(RUN + ["--json", "out.json"])
        assert args.json == "out.json"

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "qft"])
        assert args.workload == "qft"
        assert args.qubits == 12
        assert args.trace_out is None  # filled in at run time


class TestRunExports:
    def test_trace_and_metrics_out(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        assert main(RUN + ["--trace-out", str(trace),
                           "--metrics-out", str(metrics)]) == 0
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        for stage in ("decompress", "h2d", "kernel", "d2h", "compress"):
            assert stage in names
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["transfer.h2d.bytes"] > 0
        out = capsys.readouterr().out
        assert str(trace) in out and str(metrics) in out

    def test_jsonl_out(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        assert main(RUN + ["--jsonl-out", str(path)]) == 0
        lines = path.read_text().splitlines()
        assert len(lines) > 5
        assert all("name" in json.loads(line) for line in lines)

    def test_json_stdout_is_pure(self, capsys):
        assert main(RUN + ["--shots", "20", "--compare-dense", "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)  # nothing but the document on stdout
        assert payload["num_qubits"] == 8
        assert payload["counts"]
        assert payload["fidelity_vs_dense"] == pytest.approx(1.0)
        assert payload["stage_event_counts"]["kernel"] >= 1

    def test_json_to_file_keeps_report(self, tmp_path, capsys):
        path = tmp_path / "res.json"
        assert main(RUN + ["--json", str(path)]) == 0
        assert json.loads(path.read_text())["num_qubits"] == 8
        assert "MEMQSim result" in capsys.readouterr().out

    def test_json_includes_metrics_when_tracing(self, capsys, tmp_path):
        assert main(RUN + ["--trace-out", str(tmp_path / "t.json"),
                           "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["counters"]["transfer.h2d.count"] > 0


class TestTraceCommand:
    def test_default_output_name(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "ghz", "-n", "8", "--chunk-qubits", "4",
                     "--compressor", "zlib"]) == 0
        doc = json.loads((tmp_path / "ghz.trace.json").read_text())
        assert doc["traceEvents"]
        out = capsys.readouterr().out
        assert "ghz.trace.json" in out
        assert "perfetto" in out.lower() or "chrome://tracing" in out

    def test_explicit_outputs_and_summary(self, tmp_path, capsys):
        trace = tmp_path / "q.trace.json"
        metrics = tmp_path / "q.metrics.json"
        assert main(["trace", "qft", "-n", "8", "--chunk-qubits", "4",
                     "--compressor", "zlib", "--trace-out", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        assert trace.exists() and metrics.exists()
        out = capsys.readouterr().out
        # span summary table names the pipeline hops
        assert "h2d" in out and "kernel" in out
