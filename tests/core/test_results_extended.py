"""Tests for streamed Pauli expectations, fusion, and the Pauli substrate."""

import numpy as np
import pytest

from repro.circuits import ghz, random_circuit
from repro.core import MemQSim, MemQSimConfig
from repro.device import DeviceSpec
from repro.statevector import DenseSimulator, StateVector
from repro.statevector.pauli import parse_pauli, pauli_phase


@pytest.fixture(scope="module")
def rig():
    cfg = MemQSimConfig(chunk_qubits=4, compressor="zlib",
                        device=DeviceSpec(memory_bytes=1 << 13))
    circ = random_circuit(8, 50, seed=31)
    res = MemQSim(cfg).run(circ)
    ref = DenseSimulator().run(circ)
    return res, ref


class TestParsePauli:
    def test_masks(self):
        ps = parse_pauli("XYZI", [0, 1, 2, 3])
        assert ps.x_mask == 0b011
        assert ps.z_mask == 0b100
        assert ps.y_qubits == (1,)
        assert ps.num_qubits == 4

    def test_diagonal_detection(self):
        assert parse_pauli("ZIZ", [0, 1, 2]).is_diagonal
        assert not parse_pauli("X", [0]).is_diagonal

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            parse_pauli("XX", [1, 1])

    def test_bad_letter(self):
        with pytest.raises(ValueError):
            parse_pauli("W", [0])

    def test_phase_identity_string(self):
        ps = parse_pauli("II", [0, 1])
        idx = np.arange(4, dtype=np.uint64)
        assert np.allclose(pauli_phase(ps, idx), 1.0)

    def test_phase_z_parity(self):
        ps = parse_pauli("ZZ", [0, 1])
        idx = np.arange(4, dtype=np.uint64)
        assert np.allclose(pauli_phase(ps, idx), [1, -1, -1, 1])


class TestStreamedPauli:
    PAULIS = [
        ("Z", [0]), ("Z", [7]), ("X", [0]), ("X", [7]), ("Y", [5]),
        ("ZZ", [0, 7]), ("XX", [3, 6]), ("YY", [1, 4]),
        ("XY", [2, 7]), ("ZX", [6, 1]), ("XYZ", [7, 0, 4]),
        ("YZXZ", [5, 2, 7, 0]),
    ]

    @pytest.mark.parametrize("pauli,qubits", PAULIS)
    def test_matches_dense(self, rig, pauli, qubits):
        res, ref = rig
        got = res.expectation_pauli(pauli, qubits)
        want = ref.expectation_pauli(pauli, qubits)
        assert got == pytest.approx(want, abs=1e-9)

    def test_ghz_correlations(self):
        cfg = MemQSimConfig(chunk_qubits=3, compressor="zlib",
                            device=DeviceSpec(memory_bytes=1 << 12))
        res = MemQSim(cfg).run(ghz(7))
        # <X...X> = 1 and <Z_i Z_j> = 1 for GHZ.
        assert res.expectation_pauli("X" * 7) == pytest.approx(1.0, abs=1e-9)
        assert res.expectation_pauli("ZZ", [0, 6]) == pytest.approx(1.0, abs=1e-9)
        assert res.expectation_pauli("Z", [3]) == pytest.approx(0.0, abs=1e-9)

    def test_out_of_range_rejected(self, rig):
        res, _ = rig
        with pytest.raises(ValueError):
            res.expectation_pauli("X", [8])


class TestFusedExecution:
    @pytest.mark.parametrize("seed", range(3))
    def test_fused_equals_unfused(self, seed):
        cfg = MemQSimConfig(chunk_qubits=4, compressor="zlib",
                            device=DeviceSpec(memory_bytes=1 << 13))
        circ = random_circuit(8, 60, seed=seed + 40)
        plain = MemQSim(cfg).run(circ).statevector()
        fused = MemQSim(cfg.with_updates(fuse_gates=True)).run(circ).statevector()
        assert np.allclose(plain, fused, atol=1e-12)

    def test_fusion_reduces_kernel_gates(self):
        from repro.circuits import Circuit

        c = Circuit(8)
        for _ in range(4):
            c.h(0).t(0).s(0)
        cfg = MemQSimConfig(chunk_qubits=4, compressor="zlib",
                            device=DeviceSpec(memory_bytes=1 << 13))
        plain = MemQSim(cfg).run(c)
        fused = MemQSim(cfg.with_updates(fuse_gates=True)).run(c)
        assert fused.scheduler_stats.gates_applied < plain.scheduler_stats.gates_applied
