"""Unit tests for the precision axis: dtype maps, plan keys, the mixed
backend wrapper, layout itemsize plumbing, and c64 checkpoint persistence."""

import numpy as np
import pytest

from repro.compression import get_compressor
from repro.core.backend import (
    MixedPrecisionBackend,
    NumpyKernelBackend,
    get_backend,
)
from repro.core.config import MemQSimConfig
from repro.core.precision import (
    DEFAULT_PRECISION,
    PRECISIONS,
    analytic_overlap_bound,
    compute_dtype,
    storage_dtype,
    storage_itemsize,
    validate_precision,
)
from repro.circuits.generators import qft
from repro.memory import (
    ChunkLayout,
    CompressedChunkStore,
    MemoryTracker,
    load_store,
    save_store,
)


class TestPrecisionModule:
    def test_dtype_maps(self):
        assert storage_dtype("c128") == np.complex128
        assert storage_dtype("c64") == np.complex64
        assert storage_dtype("mixed") == np.complex64  # c64 at rest
        assert compute_dtype("c128") == np.complex128
        assert compute_dtype("c64") == np.complex64
        assert compute_dtype("mixed") == np.complex128  # c128 accumulation

    def test_itemsize(self):
        assert storage_itemsize("c128") == 16
        assert storage_itemsize("c64") == 8
        assert storage_itemsize("mixed") == 8

    def test_validate(self):
        for p in PRECISIONS:
            assert validate_precision(p) == p
        assert validate_precision("auto", allow_auto=True) == "auto"
        with pytest.raises(ValueError):
            validate_precision("auto")
        with pytest.raises(ValueError):
            validate_precision("fp16")
        with pytest.raises(ValueError):
            storage_dtype("auto")  # must resolve before sizing math

    def test_default_is_full_precision(self):
        assert DEFAULT_PRECISION == "c128"
        assert MemQSimConfig().precision == "c128"

    def test_analytic_bound(self):
        assert analytic_overlap_bound("c128", 10 ** 9) == 1.0
        b = analytic_overlap_bound("c64", 100)
        assert 0.999 < b < 1.0
        # monotone in gate count, clamped at zero
        assert analytic_overlap_bound("c64", 1000) < b
        assert analytic_overlap_bound("c64", 10 ** 12) == 0.0


class TestConfigPlanKey:
    def test_precision_is_plan_relevant(self):
        k128 = MemQSimConfig(chunk_qubits=4).plan_key()
        k64 = MemQSimConfig(chunk_qubits=4, precision="c64").plan_key()
        assert k128 != k64

    def test_auto_has_no_plan_key(self):
        cfg = MemQSimConfig(chunk_qubits=4, precision="auto")
        assert cfg.needs_auto_resolution()
        with pytest.raises(ValueError):
            cfg.plan_key()

    def test_storage_helpers_delegate(self):
        cfg = MemQSimConfig(precision="mixed")
        assert cfg.storage_dtype() == np.complex64
        assert cfg.storage_itemsize() == 8


class TestLayoutDtype:
    def test_dtype_property(self):
        assert ChunkLayout(6, 3).dtype == np.complex128
        assert ChunkLayout(6, 3, itemsize=8).dtype == np.complex64

    def test_chunk_nbytes_scale(self):
        full = ChunkLayout(10, 5)
        half = ChunkLayout(10, 5, itemsize=8)
        assert half.chunk_nbytes * 2 == full.chunk_nbytes


class TestMixedBackend:
    def test_upcast_round_trip(self):
        circ = list(qft(6))
        ref = np.zeros(1 << 6, dtype=np.complex128)
        ref[0] = 1.0
        NumpyKernelBackend().apply(ref, circ)

        buf = np.zeros(1 << 6, dtype=np.complex64)
        buf[0] = 1.0
        MixedPrecisionBackend(NumpyKernelBackend()).apply(buf, circ)
        assert buf.dtype == np.complex64  # rounded back in place
        # one downcast of the exact c128 result: float32-eps accurate
        assert np.allclose(buf.astype(np.complex128), ref, atol=2e-7)

    def test_c128_buffer_passes_through(self):
        circ = list(qft(5))
        ref = np.zeros(1 << 5, dtype=np.complex128)
        ref[0] = 1.0
        NumpyKernelBackend().apply(ref, circ)

        buf = np.zeros(1 << 5, dtype=np.complex128)
        buf[0] = 1.0
        MixedPrecisionBackend(NumpyKernelBackend()).apply(buf, circ)
        assert np.array_equal(buf, ref)  # no extra rounding step

    def test_not_registered(self):
        # mixed is a wrapper applied by the engine, not a named backend
        with pytest.raises(KeyError):
            get_backend("mixed")


class TestPersistC64:
    def _random_c64_store(self, n=6, c=3, seed=3):
        rng = np.random.default_rng(seed)
        v = rng.standard_normal(1 << n) + 1j * rng.standard_normal(1 << n)
        v = (v / np.linalg.norm(v)).astype(np.complex64)
        store = CompressedChunkStore(
            ChunkLayout(n, c, itemsize=8), get_compressor("zlib"),
            MemoryTracker())
        store.init_from_statevector(v)
        return store, v

    def test_mqs2_round_trip(self, tmp_path):
        store, v = self._random_c64_store()
        p = tmp_path / "c64.mqs"
        save_store(store, p)
        assert p.read_bytes()[:4] == b"MQS2"
        assert p.read_bytes()[4] == 8  # itemsize byte

        back = load_store(p, get_compressor("zlib"))
        assert back.layout.itemsize == 8
        assert back.to_statevector().dtype == np.complex64
        assert np.array_equal(back.to_statevector(), v)

    def test_c128_store_keeps_mqs1(self, tmp_path):
        store = CompressedChunkStore(
            ChunkLayout(4, 2), get_compressor("zlib"), MemoryTracker())
        store.init_zero_state()
        p = tmp_path / "c128.mqs"
        save_store(store, p)
        assert p.read_bytes()[:4] == b"MQS1"  # historical frame untouched
        assert load_store(p, get_compressor("zlib")).layout.itemsize == 16
