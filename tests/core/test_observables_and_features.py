"""Tests for observables, product-state init, mid-circuit measurement on the
compressed store, multi-device execution, and the circuit drawer."""

import numpy as np
import pytest

from repro.circuits import Circuit, draw, ghz, qaoa_maxcut, random_circuit, vqe_ansatz
from repro.compression import get_compressor
from repro.core import MemQSim, MemQSimConfig
from repro.device import DeviceSpec
from repro.memory import ChunkLayout, CompressedChunkStore, MemoryTracker
from repro.observables import (
    PauliSum,
    heisenberg_hamiltonian,
    ising_hamiltonian,
    maxcut_hamiltonian,
)
from repro.statevector import DenseSimulator, StateVector


def cfg(chunk=4):
    return MemQSimConfig(chunk_qubits=chunk, compressor="zlib",
                         device=DeviceSpec(memory_bytes=1 << 13))


class TestPauliSum:
    def test_matrix_matches_terms(self):
        h = PauliSum().add(0.5, "ZZ", (0, 1)).add(-0.25, "X", (0,))
        h.constant = 1.0
        m = h.to_matrix(2)
        z = np.diag([1, -1]).astype(complex)
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        want = (1.0 * np.eye(4) + 0.5 * np.kron(z, z)
                - 0.25 * np.kron(np.eye(2), x))
        assert np.allclose(m, want)

    def test_dense_expectation_matches_matrix(self, rng):
        h = ising_hamiltonian(4, j=0.7, g=0.3)
        sv = StateVector.random_state(4, seed=3)
        want = float(np.real(np.vdot(sv.data, h.to_matrix(4) @ sv.data)))
        assert h.expectation_dense(sv) == pytest.approx(want, abs=1e-10)

    @pytest.mark.parametrize("ham_fn", [
        lambda: ising_hamiltonian(8, 1.0, 0.5),
        lambda: heisenberg_hamiltonian(8),
    ])
    def test_chunked_matches_dense(self, ham_fn):
        h = ham_fn()
        circ = vqe_ansatz(8, layers=2, seed=5)
        ref = DenseSimulator().run(circ)
        res = MemQSim(cfg()).run(circ)
        assert h.expectation_chunked(res) == pytest.approx(
            h.expectation_dense(ref), abs=1e-9
        )

    def test_expectation_dispatch(self):
        h = ising_hamiltonian(6)
        circ = ghz(6)
        ref = DenseSimulator().run(circ)
        res = MemQSim(cfg(3)).run(circ)
        assert h.expectation(res) == pytest.approx(h.expectation(ref), abs=1e-9)

    def test_maxcut_on_ghz(self):
        import networkx as nx

        g = nx.path_graph(6)
        h = maxcut_hamiltonian(g)
        # GHZ: all qubits perfectly correlated -> cut value 0.
        res = MemQSim(cfg(3)).run(ghz(6))
        assert h.expectation_chunked(res) == pytest.approx(0.0, abs=1e-9)

    def test_simplify_merges_terms(self):
        h = PauliSum().add(1.0, "ZZ", (0, 1)).add(0.5, "ZZ", (1, 0)).add(-1.5, "ZZ", (0, 1))
        s = h.simplified()
        assert len(s) == 0  # 1.0 + 0.5 - 1.5 (qubit-order canonicalized)

    def test_bad_term_rejected_eagerly(self):
        with pytest.raises(ValueError):
            PauliSum().add(1.0, "Q", (0,))

    def test_str_and_repr(self):
        h = ising_hamiltonian(3)
        assert "terms" in repr(h)
        assert "Z" in str(h)


class TestProductStateInit:
    def test_matches_dense_kron(self, rng):
        lay = ChunkLayout(6, 3)
        store = CompressedChunkStore(lay, get_compressor("zlib"), MemoryTracker())
        factors = []
        for q in range(6):
            v = rng.standard_normal(2) + 1j * rng.standard_normal(2)
            factors.append(v / np.linalg.norm(v))
        store.init_product_state(factors)
        want = np.ones(1, dtype=complex)
        for q in reversed(range(6)):
            want = np.kron(want, factors[q])
        assert np.allclose(store.to_statevector(), want, atol=1e-12)

    def test_basis_factor_interns_zero_chunks(self):
        lay = ChunkLayout(8, 3)
        store = CompressedChunkStore(lay, get_compressor("zlib"), MemoryTracker())
        factors = [np.array([1.0, 0.0])] * 8
        store.init_product_state(factors)
        # only chunk 0 is nonzero; the rest share the interned zero blob
        assert store._zero_refs == lay.num_chunks - 1
        sv = store.to_statevector()
        assert sv[0] == 1.0 and np.count_nonzero(sv) == 1

    def test_plus_state_product(self):
        lay = ChunkLayout(5, 2)
        store = CompressedChunkStore(lay, get_compressor("zlib"), MemoryTracker())
        plus = np.array([1.0, 1.0]) / np.sqrt(2)
        store.init_product_state([plus] * 5)
        assert np.allclose(store.to_statevector(), 1 / np.sqrt(32), atol=1e-12)

    def test_validation(self):
        lay = ChunkLayout(4, 2)
        store = CompressedChunkStore(lay, get_compressor("zlib"), MemoryTracker())
        with pytest.raises(ValueError):
            store.init_product_state([np.array([1.0, 0.0])] * 3)
        with pytest.raises(ValueError):
            store.init_product_state([np.array([1.0, 1.0])] * 4)  # unnormalized


class TestChunkedMeasurement:
    def test_ghz_collapse_local_qubit(self):
        res = MemQSim(cfg(4)).run(ghz(8))
        bit = res.measure_qubit(0, np.random.default_rng(1))
        sv = res.statevector()
        expect = (1 << 8) - 1 if bit else 0
        assert abs(sv[expect]) == pytest.approx(1.0, abs=1e-9)

    def test_ghz_collapse_global_qubit(self):
        res = MemQSim(cfg(4)).run(ghz(8))
        bit = res.measure_qubit(7, np.random.default_rng(2))
        sv = res.statevector()
        expect = (1 << 8) - 1 if bit else 0
        assert abs(sv[expect]) == pytest.approx(1.0, abs=1e-9)

    def test_global_collapse_zeroes_chunks_cheaply(self):
        res = MemQSim(cfg(4)).run(ghz(8))
        before = res.store.stats.stores
        res.measure_qubit(7, np.random.default_rng(3))
        # Half the chunks were zeroed via the interned blob: only the kept
        # half got recompressed.
        assert res.store.stats.stores - before <= res.store.layout.num_chunks // 2
        assert res.store._zero_refs >= res.store.layout.num_chunks // 2

    def test_statistics_match_born_rule(self):
        ones = 0
        for seed in range(60):
            res = MemQSim(cfg(3)).run(ghz(6))
            ones += res.measure_qubit(3, np.random.default_rng(seed))
        assert 15 <= ones <= 45

    def test_norm_preserved_after_collapse(self):
        circ = random_circuit(8, 40, seed=9)
        res = MemQSim(cfg(4)).run(circ)
        res.measure_qubit(5, np.random.default_rng(4))
        assert res.norm() == pytest.approx(1.0, abs=1e-9)

    def test_matches_dense_distribution_after_collapse(self):
        circ = random_circuit(7, 30, seed=10)
        res = MemQSim(MemQSimConfig(chunk_qubits=3, compressor="zlib",
                                    device=DeviceSpec(memory_bytes=1 << 12))).run(circ)
        dense_sv = DenseSimulator().run(circ)
        # force the same outcome on both paths
        from repro.statevector import measure_qubit as dense_measure

        bit = res.measure_qubit(6, np.random.default_rng(5))
        got_dense = dense_measure(dense_sv, 6, np.random.default_rng(5))
        assert bit == got_dense
        assert np.allclose(res.statevector(), dense_sv.data, atol=1e-9)

    def test_out_of_range(self):
        res = MemQSim(cfg(3)).run(ghz(6))
        with pytest.raises(ValueError):
            res.measure_qubit(6)


class TestMultiDevice:
    @pytest.mark.parametrize("devices", [2, 3])
    def test_multi_device_identical_results(self, devices):
        circ = random_circuit(8, 50, seed=11)
        ref = MemQSim(cfg(4)).run(circ).statevector()
        got = MemQSim(cfg(4).with_updates(num_devices=devices)).run(circ).statevector()
        assert np.allclose(got, ref, atol=1e-12)

    def test_more_devices_better_overlap(self):
        from repro.device import PipelineModel

        circ = random_circuit(10, 60, seed=12)
        res = MemQSim(cfg(4)).run(circ)
        # Same measured events, more lanes: the makespan can only shrink
        # (deterministic — avoids comparing two noisy wall-clock runs).
        m1 = PipelineModel(cpu_codec_lanes=3, gpu_lanes=1).makespan(res.timeline)
        m4 = PipelineModel(cpu_codec_lanes=3, gpu_lanes=4).makespan(res.timeline)
        assert m4 <= m1 + 1e-9
        assert m1 <= res.serial_seconds + 1e-9

    def test_invalid_device_count(self):
        with pytest.raises(ValueError):
            MemQSim(cfg(3).with_updates(num_devices=0)).run(ghz(6))


class TestDrawer:
    def test_wire_count(self):
        art = draw(ghz(4))
        assert art.count("q0:") == 1 and art.count("q3:") == 1

    def test_gate_symbols(self):
        art = draw(Circuit(2).h(0).cx(0, 1))
        assert "[H]" in art
        assert "o" in art and "[X]" in art

    def test_swap_symbols(self):
        art = draw(Circuit(3).swap(0, 2))
        assert art.count("x") >= 2
        assert "|" in art  # connector through the middle wire

    def test_parametric_label(self):
        art = draw(Circuit(1).rz(0.5, 0))
        assert "RZ(0.5)" in art

    def test_diagonal_and_unitary_labels(self):
        c = Circuit(2)
        c.diagonal(np.array([1, -1], dtype=complex), 0)
        c.unitary(np.eye(2, dtype=complex), 1)
        art = draw(c)
        assert "[DIAG]" in art and "[U]" in art

    def test_toffoli(self):
        art = draw(Circuit(3).ccx(0, 1, 2))
        assert art.count("o") == 2 and "[X]" in art

    def test_wrap(self):
        from repro.circuits import qft

        art = draw(qft(3), max_width=40)
        assert all(len(l) <= 40 for l in art.splitlines())
