"""Tests for parameter-shift gradients and the descent driver."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.core import MemQSim, MemQSimConfig
from repro.device import DeviceSpec
from repro.observables import PauliSum, ising_hamiltonian
from repro.variational import (
    GradientDescent,
    energy_of,
    parameter_shift_gradient,
)

SIM = MemQSim(MemQSimConfig(chunk_qubits=3, compressor="zlib",
                            device=DeviceSpec(memory_bytes=1 << 12)))
SIM1 = MemQSim(MemQSimConfig(chunk_qubits=1, compressor="zlib",
                             device=DeviceSpec(memory_bytes=1 << 10)))


def single_qubit_ansatz(params):
    c = Circuit(1)
    c.ry(float(params[0]), 0)
    return c


def chain_ansatz(params):
    c = Circuit(4)
    k = 0
    for q in range(4):
        c.ry(float(params[k]), q)
        k += 1
    for q in range(3):
        c.cx(q, q + 1)
    for q in range(4):
        c.rz(float(params[k]), q)
        k += 1
    return c


class TestEnergy:
    def test_analytic_single_qubit(self):
        # E(theta) = <Z> after RY(theta) = cos(theta).
        h = PauliSum().add(1.0, "Z", (0,))
        for theta in (0.0, 0.5, math.pi / 2, 2.0):
            e = energy_of(single_qubit_ansatz, np.array([theta]), h, SIM1)
            assert e == pytest.approx(math.cos(theta), abs=1e-9)


class TestParameterShift:
    def test_analytic_gradient(self):
        h = PauliSum().add(1.0, "Z", (0,))
        for theta in (0.3, 1.1, -0.7):
            g = parameter_shift_gradient(
                single_qubit_ansatz, np.array([theta]), h, SIM1
            )
            assert g[0] == pytest.approx(-math.sin(theta), abs=1e-9)

    def test_matches_finite_differences(self):
        h = ising_hamiltonian(4, j=0.8, g=0.4)
        rng = np.random.default_rng(3)
        params = rng.uniform(0, 2 * math.pi, size=8)
        g = parameter_shift_gradient(chain_ansatz, params, h, SIM)
        eps = 1e-5
        for k in range(8):
            p_plus = params.copy()
            p_plus[k] += eps
            p_minus = params.copy()
            p_minus[k] -= eps
            fd = (energy_of(chain_ansatz, p_plus, h, SIM)
                  - energy_of(chain_ansatz, p_minus, h, SIM)) / (2 * eps)
            assert g[k] == pytest.approx(fd, abs=1e-5)

    def test_indices_subset(self):
        h = ising_hamiltonian(4)
        params = np.full(8, 0.4)
        g = parameter_shift_gradient(chain_ansatz, params, h, SIM, indices=[0, 3])
        assert np.all(g[[1, 2, 4, 5, 6, 7]] == 0.0)

    def test_gradient_zero_at_optimum(self):
        # RY on |0> with H = Z: minimum at theta = pi, gradient 0 there.
        h = PauliSum().add(1.0, "Z", (0,))
        g = parameter_shift_gradient(single_qubit_ansatz,
                                     np.array([math.pi]), h, SIM1)
        assert g[0] == pytest.approx(0.0, abs=1e-9)


class TestGradientDescent:
    def test_single_qubit_converges_to_minus_one(self):
        h = PauliSum().add(1.0, "Z", (0,))
        opt = GradientDescent(learning_rate=0.4, max_iterations=60,
                              tolerance=1e-10)
        res = opt.minimize(single_qubit_ansatz, np.array([0.3]), h, SIM1)
        assert res.energy == pytest.approx(-1.0, abs=1e-4)
        assert res.history[0] > res.energy

    def test_history_monotone_enough(self):
        h = ising_hamiltonian(4, j=1.0, g=0.3)
        rng = np.random.default_rng(4)
        opt = GradientDescent(learning_rate=0.05, max_iterations=10)
        res = opt.minimize(chain_ansatz, rng.uniform(0, 1, 8), h, SIM)
        assert res.history[-1] < res.history[0]
        assert res.iterations >= 1

    def test_callback_invoked(self):
        h = PauliSum().add(1.0, "Z", (0,))
        seen = []
        GradientDescent(learning_rate=0.3, max_iterations=3).minimize(
            single_qubit_ansatz, np.array([0.5]), h, SIM1,
            callback=lambda it, e: seen.append((it, e)),
        )
        assert len(seen) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            GradientDescent(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientDescent(momentum=1.0)
