"""Unit tests for the compile layer's lowering passes.

Covers 1q-run folding, diagonal-run merging, window fusion (width cap and
densify gating), 1:1 lowering when fusion is off, stage-boundary
preservation through ``compile_stages``, and numerical agreement of every
compiled batch with the uncompiled gate sequence.
"""

import numpy as np
import pytest

from repro.circuits import Circuit, get_workload
from repro.circuits.gates import make_diagonal_gate, make_gate
from repro.compile import (
    CompiledGateStage,
    CompileOptions,
    CompileReport,
    FusedOp,
    GateOp,
    as_ops,
    compile_gates,
    compile_stage,
    compile_stages,
)
from repro.compile.passes import fold_1q_runs, fuse_windows, merge_diagonal_runs
from repro.memory import ChunkLayout
from repro.pipeline import plan_stages
from repro.pipeline.stages import GateStage, PermutationStage

FUSION = CompileOptions(fusion=True)


def random_state(n, seed=7):
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(1 << n) + 1j * rng.standard_normal(1 << n)
    return v / np.linalg.norm(v)


def apply_all(buf, items):
    """Apply gates or ops through the production kernels."""
    from repro.statevector.kernels import apply_circuit_gate

    for it in items:
        apply_circuit_gate(buf, it.to_gate() if hasattr(it, "to_gate") else it)


def assert_same_effect(gates, ops, n, atol=1e-10):
    ref = random_state(n)
    got = ref.copy()
    apply_all(ref, gates)
    apply_all(got, ops)
    np.testing.assert_allclose(got, ref, atol=atol)


class TestFold1qRuns:
    def test_dense_run_folds_to_one_matrix(self):
        c = Circuit(1).h(0).t(0).s(0).h(0)
        ops = fold_1q_runs(as_ops(c.gates))
        assert len(ops) == 1
        assert isinstance(ops[0], FusedOp)
        assert ops[0].diag is None
        assert_same_effect(c.gates, ops, 1)

    def test_all_diagonal_run_stays_diagonal(self):
        c = Circuit(1).t(0).s(0).z(0)
        ops = fold_1q_runs(as_ops(c.gates))
        assert len(ops) == 1
        assert ops[0].diag is not None
        assert_same_effect(c.gates, ops, 1)

    def test_runs_split_by_intervening_two_qubit_gate(self):
        c = Circuit(2).h(0).cx(0, 1).h(0)
        ops = fold_1q_runs(as_ops(c.gates))
        assert len(ops) == 3
        assert_same_effect(c.gates, ops, 2)

    def test_single_gate_passes_through_unwrapped(self):
        c = Circuit(1).h(0)
        ops = fold_1q_runs(as_ops(c.gates))
        assert len(ops) == 1
        assert isinstance(ops[0], GateOp)

    def test_can_densify_gate_blocks_dense_fold(self):
        c = Circuit(1).h(0).t(0)
        ops = fold_1q_runs(as_ops(c.gates), can_densify=lambda qs: False)
        assert len(ops) == 2  # mixed run on a non-densifiable qubit: as-is
        assert_same_effect(c.gates, ops, 1)

    def test_non_densifiable_all_diag_run_still_merges(self):
        c = Circuit(1).t(0).s(0)
        ops = fold_1q_runs(as_ops(c.gates), can_densify=lambda qs: False)
        assert len(ops) == 1
        assert ops[0].diag is not None


class TestMergeDiagonalRuns:
    def test_merges_consecutive_diagonals_across_qubits(self):
        c = Circuit(3).t(0).cz(0, 1).cp(np.pi / 3, 1, 2)
        ops = merge_diagonal_runs(as_ops(c.gates))
        assert len(ops) == 1
        assert isinstance(ops[0], FusedOp)
        assert ops[0].qubits == (0, 1, 2)
        assert_same_effect(c.gates, ops, 3)

    def test_run_broken_by_dense_gate(self):
        c = Circuit(2).t(0).h(0).cz(0, 1)
        ops = merge_diagonal_runs(as_ops(c.gates))
        assert len(ops) == 3
        assert_same_effect(c.gates, ops, 2)

    def test_width_cap_splits_run(self):
        c = Circuit(4).cz(0, 1).cz(2, 3)
        ops = merge_diagonal_runs(as_ops(c.gates), max_diag_qubits=2)
        assert len(ops) == 2
        assert all(len(op.qubits) <= 2 for op in ops)
        assert_same_effect(c.gates, ops, 4)

    def test_merged_diag_values(self):
        c = Circuit(2).t(0).cz(0, 1)
        (op,) = merge_diagonal_runs(as_ops(c.gates))
        t = np.exp(1j * np.pi / 4)
        np.testing.assert_allclose(op.diag, [1, t, 1, -t], atol=1e-12)


class TestFuseWindows:
    def test_window_respects_qubit_cap(self):
        c = get_workload("qft", 6)
        ops = fuse_windows(as_ops(c.gates), max_fuse_qubits=3)
        assert all(op.num_qubits <= 3 for op in ops)
        assert len(ops) < len(c.gates)
        assert_same_effect(c.gates, ops, 6)

    def test_cap_one_never_fuses_multiqubit(self):
        c = Circuit(2).h(0).cx(0, 1)
        ops = fuse_windows(as_ops(c.gates), max_fuse_qubits=1)
        assert len(ops) == 2

    def test_all_diag_window_left_unfused(self):
        # A pure-diagonal window is cheaper as a stored diagonal than as a
        # dense 2^k matrix; the window pass leaves it for the merge pass.
        c = Circuit(2).t(0).cz(0, 1)
        ops = fuse_windows(as_ops(c.gates), max_fuse_qubits=2)
        assert all(not isinstance(op, FusedOp) or op.diag is not None
                   for op in ops)

    def test_can_densify_blocks_window(self):
        c = Circuit(2).h(0).cx(0, 1)
        ops = fuse_windows(as_ops(c.gates), max_fuse_qubits=2,
                           can_densify=lambda qs: 1 not in qs)
        assert len(ops) == 2


class TestCompileGates:
    def test_fusion_off_lowers_one_to_one(self):
        c = get_workload("qft", 5)
        ops, stats = compile_gates(c.gates, CompileOptions(fusion=False))
        assert len(ops) == len(c.gates)
        assert all(isinstance(op, GateOp) for op in ops)
        assert [op.to_gate() for op in ops] == list(c.gates)
        assert stats["ops_out"] == stats["gates_in"]

    def test_fusion_on_reduces_and_preserves_semantics(self):
        c = get_workload("qft", 6)
        ops, stats = compile_gates(c.gates, FUSION)
        assert stats["ops_out"] < stats["gates_in"]
        assert_same_effect(c.gates, ops, 6)

    @pytest.mark.parametrize("workload", ["qft", "grover", "qaoa", "ghz"])
    def test_workload_semantics_preserved(self, workload):
        c = get_workload(workload, 6)
        ops, _ = compile_gates(c.gates, FUSION)
        assert_same_effect(c.gates, ops, 6)

    def test_options_validation(self):
        with pytest.raises(ValueError, match="max_fuse_qubits"):
            CompileOptions(max_fuse_qubits=0)
        with pytest.raises(ValueError, match="max_diag_qubits"):
            CompileOptions(max_fuse_qubits=4, max_diag_qubits=3)


class TestCompileStages:
    def _plan(self, n=6, chunk=3, fusion=True):
        layout = ChunkLayout(n, chunk)
        stages = plan_stages(get_workload("qft", n), layout, 2)
        return layout, stages, compile_stages(
            stages, layout, CompileOptions(fusion=fusion))

    def test_stage_boundaries_preserved(self):
        _, stages, cplan = self._plan()
        assert len(cplan.stages) == len(stages)
        for raw, compiled in zip(stages, cplan.stages):
            if isinstance(raw, PermutationStage):
                assert compiled is raw
            else:
                assert isinstance(compiled, CompiledGateStage)
                assert compiled.group_qubits == tuple(raw.group_qubits)
                assert compiled.source_gates == len(raw.gates)

    def test_report_totals(self):
        _, stages, cplan = self._plan()
        gate_stages = [s for s in stages if isinstance(s, GateStage)]
        assert cplan.report.num_gate_stages == len(gate_stages)
        assert cplan.report.gates_in == sum(len(s.gates) for s in gate_stages)
        assert cplan.report.ops_out < cplan.report.gates_in
        assert cplan.report.fusion_ratio > 1.0

    def test_out_of_group_diagonals_stay_diagonal(self):
        # A dense op touching a global qubit outside the stage group could
        # not be executed per-chunk; the densify predicate must keep such
        # diagonals in diagonal form.
        layout, _, cplan = self._plan()
        for stage in cplan.stages:
            if not isinstance(stage, CompiledGateStage):
                continue
            group = set(stage.group_qubits)
            for op in stage.ops:
                if any(not layout.is_local(q) and q not in group
                       for q in op.qubits):
                    assert op.diag is not None

    def test_fusion_off_keeps_gates_verbatim(self):
        _, stages, cplan = self._plan(fusion=False)
        for raw, compiled in zip(stages, cplan.stages):
            if isinstance(compiled, CompiledGateStage):
                assert list(compiled.gates) == list(raw.gates)

    def test_already_compiled_stage_passes_through(self):
        layout, _, cplan = self._plan()
        again = compile_stages(cplan.stages, layout, FUSION)
        for a, b in zip(cplan.stages, again.stages):
            assert a is b


class TestIR:
    def test_fused_op_requires_exactly_one_payload(self):
        with pytest.raises(ValueError):
            FusedOp(qubits=(0,), matrix=None, diag=None)
        with pytest.raises(ValueError):
            FusedOp(qubits=(0,), matrix=np.eye(2), diag=np.ones(2))

    def test_report_round_trips_to_dict(self):
        rep = CompileReport(gates_in=10, ops_out=5, fusion_enabled=True)
        d = rep.to_dict()
        assert d["gates_in"] == 10 and d["ops_out"] == 5
        assert d["fusion_ratio"] == 2.0

    def test_as_ops_wraps_gates_and_keeps_ops(self):
        g = make_gate("h", (0,))
        op = GateOp(g)
        out = as_ops([g, op])
        assert isinstance(out[0], GateOp) and out[0].to_gate() is g
        assert out[1] is op

    def test_fused_diag_to_gate(self):
        op = FusedOp(qubits=(0, 2), diag=np.array([1, 1j, -1, -1j]))
        gate = op.to_gate()
        assert gate.qubits == (0, 2)
        assert gate.diag is not None
        assert op.name == "fused_diag"

    def test_gphase_like_wide_diagonal_survives(self):
        d = np.exp(1j * np.linspace(0, 1, 16))
        g = make_diagonal_gate((0, 1, 2, 3), d)
        ops, _ = compile_gates([g], FUSION)
        (op,) = ops
        assert op.qubits == (0, 1, 2, 3)
        assert_same_effect([g], ops, 4)
