"""Fused-vs-unfused equivalence, per backend and end to end.

Fusion reorders floating-point arithmetic (a folded 2x2 product is not
the same op sequence), so fused-vs-unfused comparisons use ``allclose``
at tight tolerance. Determinism *within* one compiled plan is absolute:
the parallel-vs-serial harness must stay bit-identical with fusion on,
because both engines execute the identical lowered ops.
"""

import numpy as np
import pytest

from repro.circuits import get_workload
from repro.compile import CompileOptions, compile_gates
from repro.core import MemQSim, MemQSimConfig, get_backend
from repro.parallel import run_equivalence

WORKLOADS = ["qft", "grover", "qaoa"]


def random_state(n, seed=3):
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(1 << n) + 1j * rng.standard_normal(1 << n)
    return v / np.linalg.norm(v)


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", ["numpy", "einsum"])
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_fused_matches_unfused(self, backend, workload):
        n = 6
        circ = get_workload(workload, n)
        ops, stats = compile_gates(circ.gates, CompileOptions(fusion=True))
        assert stats["ops_out"] < stats["gates_in"]
        be = get_backend(backend)
        ref = random_state(n)
        fused = ref.copy()
        be.apply(ref, circ.gates)
        be.apply_ops(fused, ops)
        np.testing.assert_allclose(fused, ref, atol=1e-10)

    def test_backends_agree_on_fused_ops(self):
        n = 6
        circ = get_workload("qft", n)
        ops, _ = compile_gates(circ.gates, CompileOptions(fusion=True))
        a = random_state(n)
        b = a.copy()
        get_backend("numpy").apply_ops(a, ops)
        get_backend("einsum").apply_ops(b, ops)
        np.testing.assert_allclose(a, b, atol=1e-10)


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_memqsim_fused_matches_unfused(self, workload):
        circ = get_workload(workload, 8)
        base = MemQSimConfig(chunk_qubits=4, compressor="zlib")
        plain = MemQSim(base).run(circ)
        fused = MemQSim(base.with_updates(fuse_gates=True)).run(circ)
        assert fused.compile_report.ops_out < plain.compile_report.gates_in
        assert (fused.scheduler_stats.gates_applied
                < plain.scheduler_stats.gates_applied)
        np.testing.assert_allclose(fused.statevector(), plain.statevector(),
                                   atol=1e-10)

    def test_einsum_backend_runs_fused_pipeline(self):
        circ = get_workload("qft", 7)
        cfg = MemQSimConfig(chunk_qubits=4, compressor="zlib",
                            fuse_gates=True, backend="einsum")
        res = MemQSim(cfg).run(circ)
        ref = MemQSim(MemQSimConfig(chunk_qubits=4, compressor="zlib")).run(circ)
        np.testing.assert_allclose(res.statevector(), ref.statevector(),
                                   atol=1e-10)

    def test_cpu_offload_shares_compiled_ops(self):
        circ = get_workload("qft", 8)
        cfg = MemQSimConfig(chunk_qubits=4, compressor="zlib",
                            fuse_gates=True, cpu_offload_fraction=1.0)
        res = MemQSim(cfg).run(circ)
        ref = MemQSim(MemQSimConfig(chunk_qubits=4, compressor="zlib")).run(circ)
        assert res.scheduler_stats.cpu_group_passes > 0
        np.testing.assert_allclose(res.statevector(), ref.statevector(),
                                   atol=1e-10)


class TestParallelBitIdentityWithFusion:
    def test_run_equivalence_fusion_on(self):
        """Serial and parallel engines consume one compiled plan:
        bit-identical states and identical blobs, fusion included."""
        rep = run_equivalence(get_workload("qft", 8), workers=2,
                              chunk_qubits=4, compressor="zlib",
                              fuse_gates=True)
        assert rep.ok, rep.summary()
        assert rep.state_max_abs_diff == 0.0

    def test_run_equivalence_fusion_on_lossy_codec(self):
        rep = run_equivalence(get_workload("grover", 8), workers=2,
                              chunk_qubits=4, compressor="szlike",
                              compressor_options={"error_bound": 1e-6},
                              fuse_gates=True)
        assert rep.ok, rep.summary()
