"""The HTTP/JSON API end-to-end (ephemeral port, stdlib client)."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.core import MemQSimConfig
from repro.device import DeviceSpec
from repro.serve import ServeAPIError, ServeClient, ServeManager, ServeServer
from repro.telemetry import Telemetry


@pytest.fixture
def daemon():
    base = MemQSimConfig(device=DeviceSpec(memory_bytes=(1 << 11) * 16),
                         chunk_qubits=5)
    mgr = ServeManager(base, Telemetry(), max_jobs=2)
    srv = ServeServer(mgr, port=0).start()
    try:
        yield mgr, ServeClient(srv.url)
    finally:
        mgr.shutdown()
        srv.stop()


class TestJobAPI:
    def test_submit_poll_result_roundtrip(self, daemon):
        mgr, client = daemon
        job = client.submit({"workload": "qft", "qubits": 9,
                             "tenant": "alice", "shots": 64, "seed": 3})
        assert job["state"] in ("queued", "running")
        assert job["tenant"] == "alice"
        assert len(job["structural_hash"]) == 64
        snap = client.wait(job["id"])
        assert snap["state"] == "done"
        assert snap["progress"]["fraction"] == pytest.approx(1.0)
        doc = client.result(job["id"])
        assert doc["state_digest"]
        assert sum(doc["counts"].values()) == 64
        assert doc["result"]["num_qubits"] == 9

    def test_jobs_listing(self, daemon):
        mgr, client = daemon
        a = client.submit({"workload": "ghz", "qubits": 8})
        client.wait(a["id"])
        listing = client.jobs()
        assert [j["id"] for j in listing] == [a["id"]]

    def test_result_conflict_while_pending(self, daemon):
        mgr, client = daemon
        block = mgr.arena.lease(mgr.arena.capacity)
        try:
            job = client.submit({"workload": "qft", "qubits": 9})
            with pytest.raises(ServeAPIError) as err:
                client.result(job["id"])
            assert err.value.status == 409
        finally:
            mgr.arena.release_lease(block)

    def test_unknown_job_404(self, daemon):
        _, client = daemon
        with pytest.raises(ServeAPIError) as err:
            client.job("deadbeef")
        assert err.value.status == 404

    def test_bad_submission_400(self, daemon):
        _, client = daemon
        with pytest.raises(ServeAPIError) as err:
            client.submit({"workload": "not-a-workload"})
        assert err.value.status == 400
        with pytest.raises(ServeAPIError) as err:
            client.submit({"workload": "qft", "qubits": 9,
                           "config": {"store": "disk"}})
        assert err.value.status == 400

    def test_cancel_queued_job(self, daemon):
        mgr, client = daemon
        block = mgr.arena.lease(mgr.arena.capacity)
        try:
            job = client.submit({"workload": "qft", "qubits": 9})
            snap = client.cancel(job["id"])
            assert snap["state"] == "cancelled"
            with pytest.raises(ServeAPIError) as err:
                client.result(job["id"])
            assert err.value.status == 410
        finally:
            mgr.arena.release_lease(block)


class TestOpsEndpoints:
    def test_root_and_healthz(self, daemon):
        _, client = daemon
        assert client.healthz() == {"ok": True}
        info = client.info()
        assert info["service"] == "repro-serve"
        assert "plan_cache" in info and "arena" in info

    def test_metrics_exposition(self, daemon):
        _, client = daemon
        a = client.submit({"workload": "qft", "qubits": 9})
        b = client.submit({"workload": "qft", "qubits": 9})
        client.wait(a["id"])
        client.wait(b["id"])
        text = client.metrics()
        metrics = dict(
            line.split(" ", 1) for line in text.splitlines()
            if line and not line.startswith("#") and " " in line)
        assert float(metrics["repro_serve_plan_cache_hit_total"]) >= 1
        assert float(metrics["repro_serve_jobs_submitted_total"]) == 2

    def test_sse_event_stream_terminates(self, daemon):
        _, client = daemon
        job = client.submit({"workload": "qft", "qubits": 9})
        client.wait(job["id"])
        url = f"{client.url}/jobs/{job['id']}/events?tail=200&max_seconds=5"
        with urllib.request.urlopen(url, timeout=30) as resp:
            body = resp.read().decode()
        payloads = [json.loads(line[6:]) for line in body.splitlines()
                    if line.startswith("data: ") and line != "data: "]
        kinds = {p.get("kind") for p in payloads if isinstance(p, dict)}
        assert "run.end" in kinds  # the job's own bus, fully drained
        assert "event: done" in body  # self-terminating marker
