"""Shared-arena admission control: lease ledger and capacity safety."""

from __future__ import annotations

import pytest

from repro.core import MemQSimConfig
from repro.device import DeviceArena, DeviceOutOfMemory, DeviceSpec
from repro.serve import JobRejected, ServeManager, device_lease_amplitudes
from repro.telemetry import Telemetry


def small_base(device_amps: int = 1 << 11, **kw) -> MemQSimConfig:
    """A daemon base config over a tiny shared arena."""
    return MemQSimConfig(
        device=DeviceSpec(memory_bytes=device_amps * 16), **kw)


class TestLeaseLedger:
    def test_lease_and_release(self):
        arena = DeviceArena(DeviceSpec(memory_bytes=1024 * 16))
        lease = arena.lease(512, name="a")
        assert arena.leased_amplitudes == 512
        assert arena.can_lease(512)
        assert not arena.can_lease(513)
        arena.release_lease(lease)
        assert arena.leased_amplitudes == 0

    def test_oversubscribe_raises(self):
        arena = DeviceArena(DeviceSpec(memory_bytes=1024 * 16))
        arena.lease(1024)
        with pytest.raises(DeviceOutOfMemory):
            arena.lease(1)

    def test_release_idempotent(self):
        arena = DeviceArena(DeviceSpec(memory_bytes=1024 * 16))
        lease = arena.lease(100)
        arena.release_lease(lease)
        arena.release_lease(lease)  # no-op, no raise
        assert arena.leased_amplitudes == 0

    def test_leases_independent_of_allocations(self):
        arena = DeviceArena(DeviceSpec(memory_bytes=1024 * 16))
        arena.lease(800)
        buf = arena.alloc(600)  # allocations don't consult the ledger
        assert arena.used == 600
        assert arena.leased_amplitudes == 800
        arena.free(buf)


class TestLeaseSizing:
    def test_lease_covers_one_group_buffer(self):
        cfg = small_base(chunk_qubits=6)
        amps = device_lease_amplitudes(10, cfg)
        # one buffer of chunk_size << t_max, and double-buffered planning
        # keeps it within half the device
        assert amps >= 1 << 6
        assert amps * 16 * 2 <= cfg.device.memory_bytes

    def test_two_tenants_always_admit(self):
        """double_buffer planning => lease <= capacity/2 => 2 fit."""
        cfg = small_base(chunk_qubits=6)
        arena = DeviceArena(cfg.device)
        amps = device_lease_amplitudes(10, cfg)
        arena.lease(amps)
        assert arena.can_lease(amps)


class TestManagerAdmission:
    def test_impossible_job_rejected(self):
        mgr = ServeManager(small_base(), Telemetry())
        try:
            with pytest.raises(JobRejected, match="fit"):
                # a 12-qubit chunk alone overflows the 2^11-amplitude
                # arena — rejected at admission, never queued
                mgr.submit({"workload": "qft", "qubits": 12,
                            "config": {"chunk_qubits": 12}})
        finally:
            mgr.shutdown()

    def test_bad_payloads_rejected(self):
        mgr = ServeManager(small_base(), Telemetry())
        try:
            with pytest.raises(JobRejected):
                mgr.submit({"workload": "nope", "qubits": 8})
            with pytest.raises(JobRejected):
                mgr.submit({"qasm": "not qasm at all"})
            with pytest.raises(JobRejected):
                mgr.submit({"workload": "qft", "qubits": 8,
                            "config": {"device_mb": 1}})  # not overridable
            with pytest.raises(JobRejected):
                mgr.submit({})
        finally:
            mgr.shutdown()

    def test_concurrent_jobs_never_exceed_capacity(self):
        """N concurrent jobs on a tiny arena: the mem gauge's high-water
        mark (and the arena's own peak) must stay within capacity."""
        tel = Telemetry()
        base = small_base(chunk_qubits=5)
        mgr = ServeManager(base, tel, max_jobs=4)
        try:
            jobs = [mgr.submit({"workload": "qft", "qubits": 9,
                                "tenant": f"t{i}"}) for i in range(4)]
            for job in jobs:
                _wait_terminal(mgr, job.id)
            assert all(mgr.get(j.id).state == "done" for j in jobs)
            capacity_bytes = mgr.arena.capacity * 16
            assert mgr.arena.peak_amplitudes * 16 <= capacity_bytes
            gauge = tel.metrics.gauge("mem.device_arena.bytes")
            assert gauge.max_value <= capacity_bytes
            assert gauge.max_value > 0  # something actually ran on it
        finally:
            mgr.shutdown()

    def test_leases_drain_to_zero(self):
        mgr = ServeManager(small_base(chunk_qubits=5), Telemetry())
        try:
            job = mgr.submit({"workload": "ghz", "qubits": 8})
            _wait_terminal(mgr, job.id)
            assert mgr.arena.leased_amplitudes == 0
            assert mgr.arena.used == 0
        finally:
            mgr.shutdown()


def _wait_terminal(mgr: ServeManager, job_id: str, timeout: float = 60.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = mgr.get(job_id)
        if job.finished:
            return job
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} still {mgr.get(job_id).state}")
