"""PlanCache: LRU behavior, counters, and MemQSim integration."""

from __future__ import annotations

import numpy as np

from repro.circuits import ghz, qft
from repro.core import MemQSim, MemQSimConfig
from repro.serve import PlanCache
from repro.telemetry import Telemetry


class TestPlanCacheUnit:
    def test_miss_then_hit(self):
        cache = PlanCache(capacity=4)
        assert cache.lookup("k") is None
        cache.store("k", "entry")
        assert cache.lookup("k") == "entry"
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.lookup("a")       # refresh a -> b is now LRU
        cache.store("c", 3)     # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats()["evictions"] == 1

    def test_telemetry_counters(self):
        tel = Telemetry()
        cache = PlanCache(capacity=4, telemetry=tel)
        cache.lookup("x")
        cache.store("x", 1)
        cache.lookup("x")
        assert tel.metrics.counter("serve.plan_cache.hit").value == 1
        assert tel.metrics.counter("serve.plan_cache.miss").value == 1


class TestMemQSimIntegration:
    def test_second_run_hits_and_matches(self):
        cache = PlanCache()
        cfg = MemQSimConfig(chunk_qubits=5)
        circuit = qft(8)
        r1 = MemQSim(cfg, plan_cache=cache).run(circuit)
        r2 = MemQSim(cfg, plan_cache=cache).run(circuit)
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert r1.state_digest() == r2.state_digest()
        np.testing.assert_array_equal(r1.statevector(), r2.statevector())

    def test_cached_run_matches_uncached(self):
        cache = PlanCache()
        cfg = MemQSimConfig(chunk_qubits=5)
        plain = MemQSim(cfg).run(qft(8))
        MemQSim(cfg, plan_cache=cache).run(qft(8))
        cached = MemQSim(cfg, plan_cache=cache).run(qft(8))
        assert cached.state_digest() == plain.state_digest()

    def test_different_circuit_misses(self):
        cache = PlanCache()
        cfg = MemQSimConfig(chunk_qubits=5)
        MemQSim(cfg, plan_cache=cache).run(qft(8))
        MemQSim(cfg, plan_cache=cache).run(ghz(8))
        assert cache.stats()["misses"] == 2
        assert cache.stats()["hits"] == 0

    def test_plan_knob_change_misses(self):
        cache = PlanCache()
        cfg = MemQSimConfig(chunk_qubits=5)
        MemQSim(cfg, plan_cache=cache).run(qft(8))
        MemQSim(cfg.with_updates(fuse_gates=True), plan_cache=cache).run(qft(8))
        assert cache.stats()["misses"] == 2

    def test_execution_knob_change_hits(self):
        """Codec choice executes the same plan — key must not fragment."""
        cache = PlanCache()
        cfg = MemQSimConfig(chunk_qubits=5)
        MemQSim(cfg, plan_cache=cache).run(qft(8))
        MemQSim(cfg.with_updates(compressor="zlib", compressor_options={}),
                plan_cache=cache).run(qft(8))
        assert cache.stats()["hits"] == 1

    def test_resolved_chunk_size_in_key(self):
        """A checkpoint-style layout override must not reuse a mismatched
        plan: the resolved chunk_qubits is part of the key."""
        cache = PlanCache()
        r1 = MemQSim(MemQSimConfig(chunk_qubits=5), plan_cache=cache).run(qft(8))
        MemQSim(MemQSimConfig(chunk_qubits=4), plan_cache=cache).run(qft(8))
        assert cache.stats()["misses"] == 2
        assert len(cache) == 2
        assert r1.num_qubits == 8


class TestCachedPlanDrivesHierarchy:
    def test_cached_plan_still_feeds_belady_schedule(self):
        """A plan served from the cache must still drive Belady eviction:
        the hot run's live miss count equals the offline bound computed
        from its own trace, and the state matches the uncached run."""
        from repro.analysis.memtrace import belady_misses
        from repro.device import DeviceSpec
        from repro.memory import ChunkAccessRecorder

        cache = PlanCache()
        cfg = MemQSimConfig(
            chunk_qubits=4, cache_chunks=6, cache_policy="belady",
            execution="serial",
            device=DeviceSpec(memory_bytes=int(0.002 * (1 << 20))))
        circuit = qft(8)
        plain = MemQSim(cfg).run(circuit)
        MemQSim(cfg, plan_cache=cache).run(circuit)  # warm the plan cache
        tel = Telemetry()
        rec = ChunkAccessRecorder()
        tel.access = rec
        hot = MemQSim(cfg, plan_cache=cache, telemetry=tel).run(circuit)
        assert cache.stats()["hits"] == 1
        misses = hot.store.cache_stats.misses  # before digest streams chunks
        assert misses == belady_misses(rec.trace(), 6)
        assert hot.state_digest() == plain.state_digest()
