"""Structural hashes and plan keys: stability, sensitivity, separation."""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro.circuits import Circuit, ghz, qft
from repro.core import MemQSimConfig


class TestStructuralHash:
    def test_deterministic_within_process(self):
        assert qft(8).structural_hash() == qft(8).structural_hash()

    def test_hex_sha256_shape(self):
        h = ghz(5).structural_hash()
        assert len(h) == 64
        int(h, 16)  # hex-parseable

    def test_gate_order_sensitive(self):
        a = Circuit(2).h(0).x(1)
        b = Circuit(2).x(1).h(0)
        assert a.structural_hash() != b.structural_hash()

    def test_qubit_assignment_sensitive(self):
        a = Circuit(3).cx(0, 1)
        b = Circuit(3).cx(0, 2)
        assert a.structural_hash() != b.structural_hash()

    def test_param_sensitive(self):
        a = Circuit(1).rz(0.5, 0)
        b = Circuit(1).rz(0.5000001, 0)
        assert a.structural_hash() != b.structural_hash()

    def test_width_sensitive(self):
        assert Circuit(3).h(0).structural_hash() \
            != Circuit(4).h(0).structural_hash()

    def test_name_is_provenance_not_structure(self):
        a = qft(6)
        b = qft(6)
        b.name = "renamed"
        assert a.structural_hash() == b.structural_hash()

    def test_distinct_workloads_distinct(self):
        hashes = {qft(8).structural_hash(), ghz(8).structural_hash(),
                  qft(9).structural_hash()}
        assert len(hashes) == 3

    def test_matrix_gate_sensitive(self, rng):
        u = np.linalg.qr(rng.normal(size=(2, 2))
                         + 1j * rng.normal(size=(2, 2)))[0]
        a = Circuit(1).unitary(u, 0)
        b = Circuit(1).unitary(u * np.exp(0.1j), 0)
        assert a.structural_hash() != b.structural_hash()

    def test_stable_across_processes(self):
        """The hash keys an on-disk-shareable cache: no PYTHONHASHSEED."""
        code = ("import sys; sys.path.insert(0, 'src'); "
                "from repro.circuits import qft; "
                "print(qft(7).structural_hash())")
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            check=True, cwd=".",
        ).stdout.strip()
        assert out == qft(7).structural_hash()


class TestPlanKey:
    def test_default_stable(self):
        assert MemQSimConfig().plan_key() == MemQSimConfig().plan_key()

    @pytest.mark.parametrize("field, value", [
        ("chunk_qubits", 7),
        ("min_chunks", 8),
        ("max_chunk_qubits", 10),
        ("enable_permutation_stages", False),
        ("fuse_gates", True),
        ("max_fuse_qubits", 4),
    ])
    def test_plan_knobs_change_key(self, field, value):
        base = MemQSimConfig()
        assert base.plan_key() != base.with_updates(**{field: value}).plan_key()

    @pytest.mark.parametrize("field, value", [
        ("compressor", "zlib"),
        ("transfer", "async"),
        ("workers", 4),
        ("execution", "parallel"),
        ("cache_chunks", 8),
        ("cpu_offload_fraction", 0.5),
        ("monitor_interval_ms", 10.0),
    ])
    def test_execution_knobs_do_not_change_key(self, field, value):
        base = MemQSimConfig()
        assert base.plan_key() == base.with_updates(**{field: value}).plan_key()

    def test_device_memory_changes_key(self):
        from repro.device import DeviceSpec

        base = MemQSimConfig()
        small = base.with_updates(
            device=DeviceSpec(memory_bytes=1 << 16))
        assert base.plan_key() != small.plan_key()

    def test_buffer_count_changes_key_only_at_double_buffer_boundary(self):
        base = MemQSimConfig(num_buffers=2)
        assert base.plan_key() == base.with_updates(num_buffers=3).plan_key()
        assert base.plan_key() != base.with_updates(num_buffers=1).plan_key()
