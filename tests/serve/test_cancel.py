"""Cancellation and graceful shutdown."""

from __future__ import annotations

import os
import time

import pytest

from repro.circuits import qft
from repro.core import MemQSim, MemQSimConfig
from repro.device import DeviceSpec
from repro.pipeline import CancelToken, JobCancelled, NULL_CANCEL
from repro.serve import ServeManager
from repro.telemetry import Telemetry


def small_base(**kw) -> MemQSimConfig:
    return MemQSimConfig(device=DeviceSpec(memory_bytes=(1 << 11) * 16),
                         chunk_qubits=5, **kw)


class TestCancelToken:
    def test_lifecycle(self):
        token = CancelToken()
        assert not token.cancelled
        token.raise_if_cancelled()  # no-op while live
        token.cancel("because")
        assert token.cancelled
        assert token.reason == "because"
        with pytest.raises(JobCancelled, match="because"):
            token.raise_if_cancelled()

    def test_null_token_never_fires(self):
        NULL_CANCEL.raise_if_cancelled()
        assert not NULL_CANCEL.cancelled

    def test_precancelled_run_raises_before_any_stage(self):
        token = CancelToken()
        token.cancel("early")
        sim = MemQSim(small_base(), cancel=token)
        with pytest.raises(JobCancelled):
            sim.run(qft(9))

    def test_mid_run_cancel_stops_at_pass_boundary(self):
        """A token firing at the Nth boundary checkpoint stops the run
        right there — deterministic stand-in for an async cancel."""

        class FireAtNthCheck(CancelToken):
            def __init__(self, n: int):
                super().__init__()
                self.checks = 0
                self.n = n

            def raise_if_cancelled(self) -> None:
                self.checks += 1
                if self.checks == self.n:
                    self.cancel("mid-run")
                super().raise_if_cancelled()

        token = FireAtNthCheck(3)
        sim = MemQSim(small_base(), cancel=token)
        with pytest.raises(JobCancelled, match="mid-run"):
            sim.run(qft(11))
        assert token.checks == 3  # nothing polled past the firing pass


class TestManagerCancel:
    def test_cancel_running_job(self):
        mgr = ServeManager(small_base(), Telemetry())
        try:
            job = mgr.submit({"workload": "qft", "qubits": 11})
            deadline = time.monotonic() + 30
            while job.state != "running" and time.monotonic() < deadline:
                time.sleep(0.005)
            mgr.cancel(job.id)
            deadline = time.monotonic() + 30
            while not job.finished and time.monotonic() < deadline:
                time.sleep(0.01)
            # either it stopped at a pass boundary, or it was already in
            # its last pass and completed — both are clean exits
            assert job.state in ("cancelled", "done")
            assert mgr.arena.leased_amplitudes == 0
            assert mgr.arena.used == 0
        finally:
            mgr.shutdown()


class TestGracefulShutdown:
    def test_queued_jobs_cancelled_and_events_flushed(self, tmp_path):
        events_dir = str(tmp_path / "events")
        mgr = ServeManager(small_base(), Telemetry(),
                           events_dir=events_dir)
        block = mgr.arena.lease(mgr.arena.capacity, name="block")
        queued = [mgr.submit({"workload": "qft", "qubits": 9,
                              "tenant": f"t{i}"}) for i in range(3)]
        mgr.arena.release_lease(block)  # not required, but realistic
        mgr.shutdown()
        assert all(j.state in ("cancelled", "done") for j in queued)
        # every tracked job flushed an events file (possibly empty for
        # jobs cancelled before they started)
        for job in queued:
            assert os.path.exists(
                os.path.join(events_dir, f"{job.id}.events.jsonl"))
        assert mgr.arena.leased_amplitudes == 0
        assert mgr.codec_pool is None

    def test_shutdown_is_idempotent_and_rejects_new_work(self):
        from repro.serve import JobRejected

        mgr = ServeManager(small_base(), Telemetry())
        job = mgr.submit({"workload": "ghz", "qubits": 8})
        deadline = time.monotonic() + 30
        while not job.finished and time.monotonic() < deadline:
            time.sleep(0.01)
        mgr.shutdown()
        mgr.shutdown()
        with pytest.raises(JobRejected, match="shutting down"):
            mgr.submit({"workload": "ghz", "qubits": 8})

    def test_shutdown_releases_shared_pool_workers(self):
        """A daemon with a shared worker pool leaves no orphans behind."""
        mgr = ServeManager(small_base(workers=2, execution="parallel"),
                           Telemetry())
        pool = mgr.codec_pool
        assert pool is not None and pool.workers == 2
        job = mgr.submit({"workload": "qft", "qubits": 9})
        deadline = time.monotonic() + 60
        while not job.finished and time.monotonic() < deadline:
            time.sleep(0.01)
        assert job.state == "done", job.error
        mgr.shutdown()
        assert mgr.codec_pool is None
        # the process pool is gone (late submits degrade to inline, the
        # pool's documented post-close behavior — but no orphan workers)
        assert pool._closed and pool._exec is None
