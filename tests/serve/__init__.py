"""Tests for the service plane (repro.serve)."""
