"""Fair arbitration and bit-identity of concurrent tenants."""

from __future__ import annotations

import time

from repro.circuits import get_workload
from repro.core import MemQSim, MemQSimConfig
from repro.device import DeviceSpec
from repro.serve import ServeManager
from repro.telemetry import Telemetry


def small_base(**kw) -> MemQSimConfig:
    return MemQSimConfig(device=DeviceSpec(memory_bytes=(1 << 11) * 16),
                         chunk_qubits=5, **kw)


def _wait_all(mgr: ServeManager, job_ids, timeout: float = 120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(mgr.get(j).finished for j in job_ids):
            return
        time.sleep(0.02)
    states = {j: mgr.get(j).state for j in job_ids}
    raise TimeoutError(f"jobs not terminal: {states}")


class TestBitIdentity:
    def test_concurrent_tenants_match_solo_run(self):
        """Four tenants race on one arena; every result is bit-identical
        to a dedicated solo simulator run of the same submission."""
        base = small_base()
        solo = MemQSim(base).run(get_workload("qft", 9))
        solo_digest = solo.state_digest()
        mgr = ServeManager(base, Telemetry(), max_jobs=4)
        try:
            jobs = [mgr.submit({"workload": "qft", "qubits": 9,
                                "tenant": f"t{i}"}) for i in range(4)]
            _wait_all(mgr, [j.id for j in jobs])
            for job in jobs:
                assert job.state == "done", job.error
                assert job.result.state_digest() == solo_digest
        finally:
            mgr.shutdown()

    def test_mixed_circuits_match_solo(self):
        base = small_base()
        solo_qft = MemQSim(base).run(get_workload("qft", 9)).state_digest()
        solo_ghz = MemQSim(base).run(get_workload("ghz", 9)).state_digest()
        mgr = ServeManager(base, Telemetry(), max_jobs=3)
        try:
            a = mgr.submit({"workload": "qft", "qubits": 9, "tenant": "a"})
            b = mgr.submit({"workload": "ghz", "qubits": 9, "tenant": "b"})
            c = mgr.submit({"workload": "qft", "qubits": 9, "tenant": "c"})
            _wait_all(mgr, [a.id, b.id, c.id])
            assert a.result.state_digest() == solo_qft
            assert b.result.state_digest() == solo_ghz
            assert c.result.state_digest() == solo_qft
            # the repeat submission reused the compiled plan
            assert mgr.plan_cache.stats()["hits"] >= 1
        finally:
            mgr.shutdown()


class TestRoundRobinFairness:
    def test_third_tenant_not_starved(self):
        """Tenants a and b each queue two jobs; tenant c queues one. With
        room for two concurrent leases, c must start before either
        tenant's *second* job — the round-robin pointer keeps c's turn
        while it waits, instead of letting a and b ping-pong the slots.

        The arena is blocked with a manual full-capacity lease while
        everything queues, so grant order is decided by the arbiter
        alone, not by submission/completion timing races.
        """
        mgr = ServeManager(small_base(), Telemetry(), max_jobs=2)
        try:
            block = mgr.arena.lease(mgr.arena.capacity, name="block")
            a1 = mgr.submit({"workload": "qft", "qubits": 9, "tenant": "a"})
            a2 = mgr.submit({"workload": "qft", "qubits": 9, "tenant": "a"})
            b1 = mgr.submit({"workload": "ghz", "qubits": 9, "tenant": "b"})
            b2 = mgr.submit({"workload": "ghz", "qubits": 9, "tenant": "b"})
            c1 = mgr.submit({"workload": "qft", "qubits": 8, "tenant": "c"})
            time.sleep(0.3)  # dispatcher spins; nothing can be granted
            assert all(j.state == "queued" for j in (a1, a2, b1, b2, c1))
            mgr.arena.release_lease(block)
            _wait_all(mgr, [j.id for j in (a1, a2, b1, b2, c1)])
            assert {j.state for j in (a1, a2, b1, b2, c1)} == {"done"}
            # c ran before each tenant's second job was even started
            assert c1.started_at < a2.started_at
            assert c1.started_at < b2.started_at
            # and the first round went to the head jobs, one per tenant
            assert a1.started_at < a2.started_at
            assert b1.started_at < b2.started_at
        finally:
            mgr.shutdown()

    def test_single_tenant_fifo(self):
        mgr = ServeManager(small_base(), Telemetry(), max_jobs=1)
        try:
            first = mgr.submit({"workload": "ghz", "qubits": 8})
            second = mgr.submit({"workload": "ghz", "qubits": 8})
            _wait_all(mgr, [first.id, second.id])
            assert first.started_at < second.started_at
        finally:
            mgr.shutdown()
