"""The table-driven Huffman decoder against the per-bit trie oracle.

The LUT decoder (``decode_lut``) must be element-identical to the original
trie walk (``decode_trie``) on every stream — the trie is the oracle these
property tests pit it against, across alphabet widths (including past the
2^12 symbols the old szlike cap allowed), stream lengths past 2^14,
skewed/degenerate frequencies, and hand-built maximum-length codes the
frequency constructor would never emit. A golden blob pins the serialized
format byte-for-byte: blobs written before the fast path existed must
decode unchanged.
"""

import numpy as np
import pytest

from repro.compression.huffman import (
    HuffmanCode,
    decode,
    decode_lut,
    decode_trie,
    encode,
    encode_with_code,
)

RNG = np.random.default_rng(20260806)


def both_decoders_agree(blob: bytes) -> np.ndarray:
    via_lut = decode_lut(blob)
    via_trie = decode_trie(blob)
    assert via_lut.dtype == via_trie.dtype == np.int64
    assert np.array_equal(via_lut, via_trie)
    # the public dispatcher must match whichever path it picked
    assert np.array_equal(decode(blob), via_lut)
    return via_lut


class TestLutVsTrieOracle:
    @pytest.mark.parametrize("n", [1, 17, 255, 256, 4096, (1 << 14) + 3])
    def test_random_streams_all_sizes(self, n):
        vals = RNG.integers(-50, 50, size=n).astype(np.int64)
        assert np.array_equal(both_decoders_agree(encode(vals)), vals)

    @pytest.mark.parametrize("alphabet_bits", [4, 8, 13, 14])
    def test_alphabets_past_the_old_cap(self, alphabet_bits):
        # alphabet_bits > 12 exceeds the old _HUFFMAN_MAX_ALPHABET = 2^12
        n = 1 << 15
        vals = RNG.integers(0, 1 << alphabet_bits, size=n).astype(np.int64)
        assert np.array_equal(both_decoders_agree(encode(vals)), vals)

    def test_skewed_frequencies(self):
        n = 1 << 15
        vals = np.where(
            RNG.random(n) < 0.995, 0,
            RNG.integers(1, 3000, size=n)).astype(np.int64)
        assert np.array_equal(both_decoders_agree(encode(vals)), vals)

    def test_degenerate_single_symbol(self):
        vals = np.full(1 << 14, -9, dtype=np.int64)
        assert np.array_equal(both_decoders_agree(encode(vals)), vals)

    def test_geometric_like_zigzag_deltas(self):
        # the regime szlike actually feeds the coder
        n = 1 << 16
        vals = RNG.geometric(0.03, size=n).astype(np.int64)
        assert np.array_equal(both_decoders_agree(encode(vals)), vals)

    def test_negative_and_huge_symbols(self):
        n = 1 << 14
        vals = RNG.integers(-(1 << 40), 1 << 40, size=n).astype(np.int64)
        assert np.array_equal(both_decoders_agree(encode(vals)), vals)

    def test_max_length_codes_via_explicit_code(self):
        # A maximally unbalanced code (lengths 1, 2, ..., k-1, k-1) pushes
        # codewords past the 16-bit LUT window, forcing the searchsorted
        # escape lane — from_frequencies would need astronomically skewed
        # counts to produce this, so build it by hand.
        k = 24
        lengths = np.array(
            list(range(1, k)) + [k - 1], dtype=np.uint8)  # unary-style, Kraft = 1
        symbols = np.arange(k, dtype=np.int64)
        code = HuffmanCode(symbols, lengths)
        # weight toward the deep (long-code) symbols so escapes dominate
        vals = RNG.integers(k // 2, k, size=1 << 14).astype(np.int64)
        blob = encode_with_code(vals, code)
        assert np.array_equal(both_decoders_agree(blob), vals)

    def test_encode_with_code_rejects_foreign_symbols(self):
        code = HuffmanCode.from_frequencies(
            np.array([1, 2, 3]), np.array([5, 3, 2]))
        with pytest.raises(ValueError):
            encode_with_code(np.array([1, 2, 99], dtype=np.int64), code)

    def test_vectorized_canonical_assignment_matches_reference(self):
        # canonical rule: code_i = (code_{i-1} + 1) << (len_i - len_{i-1})
        # in (length, symbol) order — check the cumsum construction on a
        # mixed-length code against the sequential definition.
        lengths = np.array([2, 2, 4, 4, 3, 2], dtype=np.uint8)  # Kraft = 1
        symbols = np.array([5, 0, 9, 1, -2, 7], dtype=np.int64)
        code = HuffmanCode(symbols, lengths)
        order = np.lexsort((symbols, lengths))
        expect, prev_len, c = {}, 0, 0
        for rank in order:
            ln = int(lengths[rank])
            c <<= ln - prev_len
            expect[rank] = c
            c += 1
            prev_len = ln
        for rank, want in expect.items():
            assert int(code.codes[rank]) == want


class TestGoldenBlob:
    # Emitted by encode() when the LUT decoder landed; pins the wire
    # format — n (u64) + k (u32) + int64 symbols + uint8 lengths +
    # total_bits (u64) + packed big-endian codewords.
    GOLDEN_VALUES = np.array([3, -1, 3, 3, 0, 7, 3, -1, 0, 3], dtype=np.int64)
    GOLDEN_HEX = (
        "0a0000000000000004000000ffffffffffffffff000000000000000003000000"
        "00000000070000000000000003020103120000000000000062ed00"
    )

    def test_encode_is_byte_stable(self):
        assert encode(self.GOLDEN_VALUES).hex() == self.GOLDEN_HEX

    def test_golden_blob_decodes_on_every_path(self):
        blob = bytes.fromhex(self.GOLDEN_HEX)
        assert np.array_equal(decode_lut(blob), self.GOLDEN_VALUES)
        assert np.array_equal(decode_trie(blob), self.GOLDEN_VALUES)
        assert np.array_equal(decode(blob), self.GOLDEN_VALUES)

    def test_alphabet_passthrough_is_byte_identical(self):
        vals = RNG.integers(-30, 30, size=5000).astype(np.int64)
        triple = np.unique(vals, return_inverse=True, return_counts=True)
        assert encode(vals) == encode(vals, alphabet=triple)


class TestLutStreamValidation:
    def _blob(self, n=1 << 14):
        vals = RNG.geometric(0.1, size=n).astype(np.int64)
        return encode(vals)

    def test_truncated_payload_raises(self):
        blob = self._blob()
        for cut in (1, 5, 50):
            with pytest.raises(ValueError):
                decode_lut(blob[:-cut])

    def test_trie_fallback_for_tiny_streams(self):
        # below _LUT_MIN_ELEMENTS the dispatcher walks the trie; both
        # answers must still agree
        vals = RNG.integers(0, 9, size=100).astype(np.int64)
        assert np.array_equal(both_decoders_agree(encode(vals)), vals)

    def test_lut_handles_tiny_streams_too(self):
        vals = np.array([1, 2, 1, 1, 3], dtype=np.int64)
        assert np.array_equal(decode_lut(encode(vals)), vals)
