"""Every registered compressor must survive pickling.

The codec worker pool ships the configured compressor to worker processes
via pickle at pool start-up; an unpicklable codec silently forces the pool
into its serial fallback. This audit keeps the whole registry shippable.
"""

import pickle

import numpy as np
import pytest

from repro.compression import available_compressors, get_compressor

LOSSY_OPTS = {
    "szlike": {"error_bound": 1e-6},
    "adaptive": {"error_bound": 1e-6},
}


def _chunk(n=128, seed=7):
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    return (v / np.linalg.norm(v)).astype(np.complex128)


@pytest.mark.parametrize("name", available_compressors())
def test_compressor_pickle_roundtrip(name):
    comp = get_compressor(name, **LOSSY_OPTS.get(name, {}))
    clone = pickle.loads(pickle.dumps(comp))
    data = _chunk()
    blob = comp.compress(data)
    # The clone must produce bit-identical blobs (pool determinism contract)
    assert clone.compress(data) == blob
    np.testing.assert_array_equal(clone.decompress(blob),
                                  comp.decompress(blob))


@pytest.mark.parametrize("name", available_compressors())
def test_pickle_survives_prior_use(name):
    """Pickling after compress/decompress calls (runtime state) still works."""
    comp = get_compressor(name, **LOSSY_OPTS.get(name, {}))
    data = _chunk(seed=11)
    comp.decompress(comp.compress(data))
    clone = pickle.loads(pickle.dumps(comp))
    assert clone.compress(data) == comp.compress(data)
