"""Unit tests for compression metrics and the fidelity floor."""

import math

import numpy as np
import pytest

from repro.compression import (
    ZlibCompressor,
    compression_ratio,
    evaluate_compressor,
    fidelity_floor,
    get_compressor,
    max_component_error,
    norm_error_bound,
    psnr,
)


class TestBasics:
    def test_compression_ratio(self):
        assert compression_ratio(100, 25) == 4.0

    def test_zero_compressed_rejected(self):
        with pytest.raises(ValueError):
            compression_ratio(100, 0)

    def test_max_component_error_zero(self):
        x = np.array([1 + 1j, 2 - 2j])
        assert max_component_error(x, x.copy()) == 0.0

    def test_max_component_error_picks_worst_component(self):
        a = np.array([1.0 + 1.0j])
        b = np.array([1.1 + 0.7j])
        assert max_component_error(a, b) == pytest.approx(0.3)

    def test_max_component_error_empty(self):
        e = np.empty(0, dtype=complex)
        assert max_component_error(e, e) == 0.0

    def test_psnr_infinite_for_identical(self):
        x = np.array([0.5 + 0.5j])
        assert math.isinf(psnr(x, x.copy()))

    def test_psnr_decreases_with_noise(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(1000) + 1j * rng.standard_normal(1000)
        small = psnr(x, x + 1e-6)
        big = psnr(x, x + 1e-2)
        assert small > big


class TestFidelityFloor:
    def test_norm_error_bound_formula(self):
        assert norm_error_bound(1e-3, 1024) == pytest.approx(
            math.sqrt(2 * 1024) * 1e-3
        )

    def test_floor_tends_to_one_for_tiny_eb(self):
        assert fidelity_floor(1e-12, 1 << 20) > 0.999999

    def test_floor_zero_when_vacuous(self):
        assert fidelity_floor(1.0, 1 << 20) == 0.0

    def test_floor_monotone_in_eb(self):
        f = [fidelity_floor(eb, 4096) for eb in (1e-8, 1e-6, 1e-4)]
        assert f[0] >= f[1] >= f[2]

    def test_floor_is_actually_a_lower_bound(self):
        # Perturb a random normalized state adversarially within the bound
        # and check realized fidelity >= floor.
        rng = np.random.default_rng(1)
        n = 1 << 10
        psi = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        psi /= np.linalg.norm(psi)
        eb = 1e-4
        delta = eb * (np.sign(rng.standard_normal(n)) + 1j * np.sign(rng.standard_normal(n)))
        phi = psi + delta
        f = abs(np.vdot(psi, phi / np.linalg.norm(phi))) ** 2
        assert f >= fidelity_floor(eb, n) - 1e-12


class TestEvaluate:
    def test_lossless_report(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(512) + 1j * rng.standard_normal(512)
        rep = evaluate_compressor(ZlibCompressor(), x)
        assert rep.max_error == 0.0
        assert rep.bound_respected is True
        assert rep.original_nbytes == x.nbytes
        assert rep.ratio == pytest.approx(x.nbytes / rep.compressed_nbytes)

    def test_lossy_report_bound_flag(self):
        rng = np.random.default_rng(3)
        x = (rng.standard_normal(512) + 1j * rng.standard_normal(512)) / 30
        rep = evaluate_compressor(get_compressor("szlike", error_bound=1e-4), x)
        assert rep.bound_respected is True
        assert rep.max_error <= 1e-4 * (1 + 1e-9)

    def test_rel_mode_bound_not_judged(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(256) + 1j * rng.standard_normal(256)
        rep = evaluate_compressor(
            get_compressor("szlike", error_bound=1e-3, mode="rel"), x
        )
        assert rep.bound_respected is None

    def test_row_renders(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        rep = evaluate_compressor(ZlibCompressor(), x)
        assert "zlib" in rep.row()
