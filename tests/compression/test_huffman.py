"""Unit tests for the canonical Huffman coder."""

import numpy as np
import pytest

from repro.compression.huffman import HuffmanCode, decode, encode


class TestHuffmanCode:
    def test_canonical_assignment_is_prefix_free(self):
        symbols = np.array([10, 20, 30, 40], dtype=np.int64)
        lengths = np.array([1, 2, 3, 3], dtype=np.uint8)
        code = HuffmanCode(symbols, lengths)
        words = [
            format(int(c), f"0{int(l)}b") for c, l in zip(code.codes, code.lengths)
        ]
        for i, a in enumerate(words):
            for j, b in enumerate(words):
                if i != j:
                    assert not b.startswith(a), (a, b)

    def test_kraft_violation_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCode(np.array([1, 2, 3]), np.array([1, 1, 1], dtype=np.uint8))

    def test_from_frequencies_optimality_order(self):
        # More frequent symbols never get longer codes.
        symbols = np.arange(5, dtype=np.int64)
        freqs = np.array([100, 50, 20, 5, 1], dtype=np.int64)
        code = HuffmanCode.from_frequencies(symbols, freqs)
        lens = code.lengths.astype(int)
        assert all(lens[i] <= lens[i + 1] for i in range(4))

    def test_single_symbol(self):
        code = HuffmanCode.from_frequencies(np.array([42]), np.array([7]))
        assert list(code.lengths) == [1]

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCode.from_frequencies(np.empty(0, dtype=np.int64), np.empty(0))

    def test_serialization_roundtrip(self):
        code = HuffmanCode.from_frequencies(
            np.array([-5, 0, 7, 123456789]), np.array([3, 9, 1, 2])
        )
        blob = code.to_bytes()
        back, offset = HuffmanCode.from_bytes(blob)
        assert offset == len(blob)
        assert np.array_equal(back.symbols, code.symbols)
        assert np.array_equal(back.lengths, code.lengths)
        assert np.array_equal(back.codes, code.codes)


class TestEncodeDecode:
    def test_empty(self):
        assert decode(encode(np.empty(0, dtype=np.int64))).shape == (0,)

    def test_single_value_stream(self):
        vals = np.full(100, 7, dtype=np.int64)
        assert np.array_equal(decode(encode(vals)), vals)

    def test_two_symbols(self):
        vals = np.array([0, 1, 0, 0, 1, 1, 0], dtype=np.int64)
        assert np.array_equal(decode(encode(vals)), vals)

    def test_negative_symbols(self):
        vals = np.array([-3, -1, -3, 5, 0, -1], dtype=np.int64)
        assert np.array_equal(decode(encode(vals)), vals)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_streams(self, seed):
        rng = np.random.default_rng(seed)
        vals = rng.integers(-50, 50, size=3000).astype(np.int64)
        assert np.array_equal(decode(encode(vals)), vals)

    def test_skewed_distribution_compresses(self):
        rng = np.random.default_rng(9)
        vals = rng.choice([0, 0, 0, 0, 0, 0, 1, 2], size=8000).astype(np.int64)
        blob = encode(vals)
        assert len(blob) < vals.nbytes / 4

    def test_large_symbol_values(self):
        vals = np.array([2**40, -(2**40), 0, 2**40], dtype=np.int64)
        assert np.array_equal(decode(encode(vals)), vals)

    def test_truncated_stream_detected(self):
        vals = np.arange(100, dtype=np.int64)
        blob = encode(vals)
        with pytest.raises(ValueError):
            decode(blob[:-5])
