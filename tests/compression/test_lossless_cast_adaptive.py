"""Unit tests for lossless backends, the cast compressor, and adaptive selection."""

import numpy as np
import pytest

from repro.compression import (
    AdaptiveCompressor,
    Bz2Compressor,
    CastCompressor,
    LzmaCompressor,
    NullCompressor,
    ZlibCompressor,
    available_compressors,
    get_compressor,
    register_compressor,
)
from repro.compression.metrics import max_component_error


def rand_complex(n, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(n) + 1j * rng.standard_normal(n)) * scale


ALL_LOSSLESS = [ZlibCompressor, LzmaCompressor, Bz2Compressor, NullCompressor]


class TestLossless:
    @pytest.mark.parametrize("cls", ALL_LOSSLESS)
    def test_exact_roundtrip(self, cls):
        x = rand_complex(1000, seed=1)
        c = cls()
        assert np.array_equal(c.decompress(c.compress(x)), x)

    @pytest.mark.parametrize("cls", ALL_LOSSLESS)
    def test_not_lossy(self, cls):
        c = cls()
        assert not c.is_lossy
        assert c.error_bound == 0.0

    def test_structured_data_compresses(self):
        x = np.full(4096, 0.5 + 0.5j)
        assert len(ZlibCompressor().compress(x)) < x.nbytes / 50

    def test_null_size_is_raw_plus_header(self):
        x = rand_complex(64, seed=2)
        blob = NullCompressor().compress(x)
        assert len(blob) == x.nbytes + 12

    def test_magic_checked(self):
        with pytest.raises(ValueError):
            ZlibCompressor().decompress(b"BOGUS" * 4)

    def test_empty_roundtrip(self):
        x = np.empty(0, dtype=np.complex128)
        assert ZlibCompressor().decompress(ZlibCompressor().compress(x)).shape == (0,)


class TestCast:
    def test_error_within_float32_eps(self):
        x = rand_complex(2048, seed=3)
        x /= np.max(np.abs(x))  # amplitudes bounded by 1
        c = CastCompressor()
        back = c.decompress(c.compress(x))
        assert max_component_error(x, back) <= c.error_bound * 1.01

    def test_halves_footprint_before_zlib(self):
        x = rand_complex(4096, seed=4)
        blob = CastCompressor(level=0).compress(x)
        # complex64 payload (+ zlib stored-block overhead) ~ half of complex128
        assert len(blob) < x.nbytes * 0.55

    def test_is_lossy(self):
        assert CastCompressor().is_lossy


class TestAdaptive:
    def test_sparse_chunk_goes_lossless(self):
        x = np.zeros(1024, dtype=np.complex128)
        x[0] = 1.0
        a = AdaptiveCompressor()
        back = a.decompress(a.compress(x))
        assert a.chunks_lossless == 1 and a.chunks_lossy == 0
        assert np.array_equal(back, x)  # exact

    def test_dense_chunk_goes_lossy(self):
        x = rand_complex(1024, seed=5)
        x /= np.linalg.norm(x)
        a = AdaptiveCompressor()
        back = a.decompress(a.compress(x))
        assert a.chunks_lossy == 1
        assert max_component_error(x, back) <= a.error_bound * (1 + 1e-9)

    def test_empty_chunk(self):
        a = AdaptiveCompressor()
        out = a.decompress(a.compress(np.empty(0, dtype=np.complex128)))
        assert out.shape == (0,)

    def test_magic_checked(self):
        with pytest.raises(ValueError):
            AdaptiveCompressor().decompress(b"1234567")

    def test_threshold_configurable(self):
        # With threshold 0 nothing is "sparse".
        x = np.zeros(256, dtype=np.complex128)
        x[3] = 1.0
        a = AdaptiveCompressor(sparsity_threshold=0.0)
        a.compress(x)
        assert a.chunks_lossy == 1


class TestRegistry:
    def test_known_names(self):
        names = available_compressors()
        for want in ("szlike", "zlib", "lzma", "bz2", "null", "cast", "adaptive"):
            assert want in names

    def test_factory_kwargs(self):
        c = get_compressor("zlib", level=9)
        assert c.level == 9

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_compressor("zstd")

    def test_custom_registration(self):
        class Dummy(NullCompressor):
            name = "dummy-test"

        register_compressor("dummy-test", lambda: Dummy())
        assert get_compressor("dummy-test").name == "dummy-test"
