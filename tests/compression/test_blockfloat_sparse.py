"""Unit + property tests for the block-float and sparse codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression import (
    BlockFloatCompressor,
    SparseCompressor,
    get_compressor,
    max_component_error,
)
from repro.compression.bitstream import pack_codes, unpack_fields


def rand_complex(n, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(n) + 1j * rng.standard_normal(n)) * scale


class TestUnpackFields:
    def test_inverse_of_pack(self):
        rng = np.random.default_rng(1)
        lengths = rng.integers(0, 30, size=500).astype(np.uint8)
        codes = np.array(
            [rng.integers(0, 1 << int(l)) if l else 0 for l in lengths],
            dtype=np.uint64,
        )
        packed, _ = pack_codes(codes[lengths > 0], lengths[lengths > 0])
        # unpack with the *full* lengths array (zero-width fields allowed)
        full_packed, _ = pack_codes(codes, lengths)
        back = unpack_fields(full_packed, lengths)
        assert np.array_equal(back, codes)

    def test_empty(self):
        assert unpack_fields(b"", np.empty(0, dtype=np.uint8)).shape == (0,)

    def test_all_zero_widths(self):
        out = unpack_fields(b"", np.zeros(5, dtype=np.uint8))
        assert np.array_equal(out, np.zeros(5, dtype=np.uint64))


class TestBlockFloatAccuracy:
    @pytest.mark.parametrize("tol", [1e-3, 1e-6, 1e-9])
    def test_bound_respected(self, tol):
        x = rand_complex(3000, seed=2)
        c = BlockFloatCompressor(tolerance=tol)
        back = c.decompress(c.compress(x))
        assert max_component_error(x, back) <= tol

    def test_bound_across_magnitudes(self):
        rng = np.random.default_rng(3)
        x = rand_complex(4096, seed=3) * np.exp(rng.uniform(-30, 5, 4096))
        c = BlockFloatCompressor(tolerance=1e-7)
        back = c.decompress(c.compress(x))
        assert max_component_error(x, back) <= 1e-7

    def test_zero_chunk(self):
        x = np.zeros(256, dtype=np.complex128)
        c = BlockFloatCompressor(tolerance=1e-6)
        blob = c.compress(x)
        assert np.array_equal(c.decompress(blob), x)
        assert len(blob) < 200

    def test_empty(self):
        c = BlockFloatCompressor()
        assert c.decompress(c.compress(np.empty(0, dtype=complex))).shape == (0,)

    def test_non_multiple_of_block(self):
        x = rand_complex(100, seed=4)  # 200 floats, not a multiple of 64
        c = BlockFloatCompressor(tolerance=1e-6)
        back = c.decompress(c.compress(x))
        assert back.shape == (100,)
        assert max_component_error(x, back) <= 1e-6

    def test_looser_tolerance_smaller_blob(self):
        x = rand_complex(4096, seed=5)
        tight = len(BlockFloatCompressor(tolerance=1e-10).compress(x))
        loose = len(BlockFloatCompressor(tolerance=1e-3).compress(x))
        assert loose < tight

    @given(
        data=hnp.arrays(
            np.float64, st.integers(min_value=0, max_value=300),
            elements=st.floats(min_value=-1e3, max_value=1e3,
                               allow_nan=False, width=64),
        ),
        tol_exp=st.integers(min_value=-9, max_value=-2),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_bound(self, data, tol_exp):
        tol = 10.0**tol_exp
        x = data.astype(np.complex128)
        c = BlockFloatCompressor(tolerance=tol)
        back = c.decompress(c.compress(x))
        assert back.shape == x.shape
        assert max_component_error(x, back) <= tol


class TestBlockFloatRate:
    def test_guaranteed_footprint(self):
        # Fixed-rate mode: incompressible data still lands near rate bits.
        x = rand_complex(1 << 12, seed=6)
        c = BlockFloatCompressor(rate=12)
        blob = c.compress(x)
        # 2n values * 12 bits / 8 + headers; allow 40% slack for headers.
        ceiling = (2 * x.shape[0] * 12 / 8) * 1.4 + 64
        assert len(blob) <= ceiling

    def test_rate_error_is_block_relative(self):
        x = rand_complex(2048, seed=7)
        c = BlockFloatCompressor(rate=16)
        back = c.decompress(c.compress(x))
        # 16-bit mantissas: relative error ~ 2^-14 of the block max.
        planes = np.concatenate([x.real, x.imag])
        worst = np.abs(planes).max() * 2.0**-12
        assert max_component_error(x, back) <= worst

    def test_higher_rate_lower_error(self):
        x = rand_complex(2048, seed=8)
        errs = []
        for rate in (8, 16, 32):
            c = BlockFloatCompressor(rate=rate)
            errs.append(max_component_error(x, c.decompress(c.compress(x))))
        assert errs[0] > errs[1] > errs[2]

    def test_mode_property(self):
        assert BlockFloatCompressor(rate=8).mode == "rate"
        assert BlockFloatCompressor().mode == "accuracy"

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockFloatCompressor(rate=-1)
        with pytest.raises(ValueError):
            BlockFloatCompressor(rate=60)
        with pytest.raises(ValueError):
            BlockFloatCompressor(tolerance=0.0)

    def test_registry_error_bound_alias(self):
        c = get_compressor("blockfloat", error_bound=1e-4)
        assert c.tolerance == 1e-4


class TestSparse:
    def test_sparse_roundtrip_exact(self):
        x = np.zeros(1024, dtype=np.complex128)
        x[[3, 77, 500]] = [1 + 2j, -0.5j, 0.25]
        c = SparseCompressor()
        assert np.array_equal(c.decompress(c.compress(x)), x)

    def test_dense_fallback_exact(self):
        x = rand_complex(512, seed=9)
        c = SparseCompressor()
        assert np.array_equal(c.decompress(c.compress(x)), x)

    def test_sparse_beats_zlib_on_one_hot(self):
        x = np.zeros(1 << 12, dtype=np.complex128)
        x[123] = 1.0
        sparse_size = len(SparseCompressor().compress(x))
        assert sparse_size < 100

    def test_threshold_controls_mode(self):
        x = np.zeros(100, dtype=np.complex128)
        x[:30] = 1.0  # 30% density
        blob_lo = SparseCompressor(density_threshold=0.1).compress(x)
        blob_hi = SparseCompressor(density_threshold=0.5).compress(x)
        assert blob_lo[4] == 1  # dense tag
        assert blob_hi[4] == 0  # sparse tag

    def test_empty(self):
        c = SparseCompressor()
        assert c.decompress(c.compress(np.empty(0, dtype=complex))).shape == (0,)

    def test_validation(self):
        with pytest.raises(ValueError):
            SparseCompressor(density_threshold=1.5)

    def test_lossless_flag(self):
        assert not SparseCompressor().is_lossy

    @given(data=hnp.arrays(
        np.complex128, st.integers(min_value=0, max_value=400),
        elements=st.complex_numbers(max_magnitude=1e6, allow_nan=False,
                                    allow_infinity=False),
    ))
    @settings(max_examples=40, deadline=None)
    def test_property_exact(self, data):
        c = SparseCompressor()
        assert np.array_equal(c.decompress(c.compress(data)), data)


class TestInSimulator:
    @pytest.mark.parametrize("codec,opts", [
        ("blockfloat", {"tolerance": 1e-9}),
        ("sparse", {}),
    ])
    def test_end_to_end(self, codec, opts, dense):
        from repro.circuits import random_circuit
        from repro.core import MemQSim, MemQSimConfig
        from repro.device import DeviceSpec

        circ = random_circuit(8, 40, seed=50)
        cfg = MemQSimConfig(chunk_qubits=4, compressor=codec,
                            compressor_options=opts,
                            device=DeviceSpec(memory_bytes=1 << 13))
        res = MemQSim(cfg).run(circ)
        ref = dense.run(circ).data
        assert res.fidelity_vs(ref) > 1 - 1e-9
