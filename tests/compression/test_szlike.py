"""Unit tests for the SZ-like error-bounded compressor."""

import numpy as np
import pytest

from repro.compression import SZLikeCompressor, get_compressor
from repro.compression.szlike import blob_entropy
from repro.compression.metrics import max_component_error


def smooth_signal(n, seed=0):
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 8 * np.pi, n)
    return (np.sin(t) + 0.1 * rng.standard_normal(n)) * np.exp(1j * t / 3) / np.sqrt(n)


class TestRoundTrip:
    @pytest.mark.parametrize("eb", [1e-2, 1e-4, 1e-6, 1e-10])
    def test_abs_bound_respected(self, eb):
        x = smooth_signal(4096)
        c = SZLikeCompressor(error_bound=eb)
        back = c.decompress(c.compress(x))
        assert max_component_error(x, back) <= eb * (1 + 1e-9)

    def test_rel_mode_bound(self):
        x = smooth_signal(2048, seed=1) * 1e-3
        c = SZLikeCompressor(error_bound=1e-3, mode="rel")
        back = c.decompress(c.compress(x))
        planes = np.concatenate([x.real, x.imag])
        realized = 1e-3 * np.max(np.abs(planes))
        assert max_component_error(x, back) <= realized * (1 + 1e-9)

    def test_length_preserved(self):
        x = smooth_signal(777)
        c = SZLikeCompressor()
        assert c.decompress(c.compress(x)).shape == (777,)

    def test_empty_array(self):
        c = SZLikeCompressor()
        out = c.decompress(c.compress(np.empty(0, dtype=np.complex128)))
        assert out.shape == (0,)

    def test_single_element(self):
        x = np.array([0.3 - 0.4j])
        c = SZLikeCompressor(error_bound=1e-6)
        back = c.decompress(c.compress(x))
        assert max_component_error(x, back) <= 1e-6

    def test_all_zero_chunk(self):
        x = np.zeros(1024, dtype=np.complex128)
        c = SZLikeCompressor(error_bound=1e-6)
        blob = c.compress(x)
        assert len(blob) < 200  # must compress extremely well
        assert np.allclose(c.decompress(blob), 0.0, atol=1e-6)


class TestCompression:
    def test_smooth_data_compresses_well(self):
        x = smooth_signal(1 << 14)
        c = SZLikeCompressor(error_bound=1e-4)
        blob = c.compress(x)
        assert x.nbytes / len(blob) > 8

    def test_looser_bound_better_ratio(self):
        x = smooth_signal(1 << 13, seed=3)
        tight = len(SZLikeCompressor(error_bound=1e-8).compress(x))
        loose = len(SZLikeCompressor(error_bound=1e-3).compress(x))
        assert loose < tight

    def test_raw_fallback_on_tight_bound_random_data(self):
        rng = np.random.default_rng(5)
        x = (rng.standard_normal(512) + 1j * rng.standard_normal(512)) * 1e150
        c = SZLikeCompressor(error_bound=1e-300)
        # Quantization would overflow; raw fallback must be *exact*.
        back = c.decompress(c.compress(x))
        assert np.array_equal(back, x)

    def test_blob_never_catastrophically_larger(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal(1024) + 1j * rng.standard_normal(1024)
        c = SZLikeCompressor(error_bound=1e-14)
        blob = c.compress(x)
        assert len(blob) <= x.nbytes * 1.1


class TestEntropyModes:
    @pytest.mark.parametrize("entropy", ["zlib", "huffman", "auto"])
    def test_all_modes_roundtrip(self, entropy):
        x = smooth_signal(2048, seed=7)
        c = SZLikeCompressor(error_bound=1e-5, entropy=entropy)
        back = c.decompress(c.compress(x))
        assert max_component_error(x, back) <= 1e-5 * (1 + 1e-9)

    def test_invalid_entropy_rejected(self):
        with pytest.raises(ValueError):
            SZLikeCompressor(entropy="arith")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SZLikeCompressor(mode="pointwise")

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(ValueError):
            SZLikeCompressor(error_bound=0.0)


class TestBlobFormat:
    def test_magic_checked(self):
        c = SZLikeCompressor()
        with pytest.raises(ValueError):
            c.decompress(b"XXXXgarbage")

    def test_registry_construction(self):
        c = get_compressor("szlike", error_bound=1e-3, mode="rel")
        assert c.error_bound == 1e-3
        assert c.mode == "rel"
        assert c.is_lossy

    def test_describe(self):
        assert "szlike" in SZLikeCompressor().describe()


class TestAutoEntropySelection:
    """The lifted-caps `auto` mode: Huffman at real chunk sizes, never worse."""

    def test_huffman_selected_at_chunk_scale(self):
        # 2^16 elements was beyond the old _HUFFMAN_MAX_ELEMENTS = 2^12 cap;
        # with the LUT decoder auto must now pick Huffman on smooth chunks
        x = smooth_signal(1 << 16)
        auto = SZLikeCompressor(error_bound=1e-5, entropy="auto")
        assert blob_entropy(auto.compress(x)) == "huffman"

    @pytest.mark.parametrize("seed,eb", [(0, 1e-6), (1, 1e-5), (2, 1e-4)])
    def test_auto_never_worse_than_zlib(self, seed, eb):
        # exact-size arbitration: whatever auto picks, the blob can only tie
        # or beat a forced-zlib compressor on the same chunk
        rng = np.random.default_rng(seed)
        for x in (smooth_signal(1 << 14, seed=seed),
                  (rng.standard_normal(1 << 14)
                   + 1j * rng.standard_normal(1 << 14)) / 128.0):
            auto = SZLikeCompressor(error_bound=eb, entropy="auto")
            zl = SZLikeCompressor(error_bound=eb, entropy="zlib")
            assert len(auto.compress(x)) <= len(zl.compress(x))

    def test_wide_alphabet_stays_with_zlib(self):
        # near-uniform noise under a tight bound explodes the delta alphabet
        # past the probe, so auto keeps the zlib (or raw-escape) path
        rng = np.random.default_rng(7)
        x = (rng.standard_normal(1 << 14) + 1j * rng.standard_normal(1 << 14))
        blob = SZLikeCompressor(error_bound=1e-9, entropy="auto").compress(x)
        assert blob_entropy(blob) in ("zlib", "raw")


class TestBlobEntropySniffer:
    def test_forced_modes_are_reported(self):
        x = smooth_signal(4096)
        assert blob_entropy(
            SZLikeCompressor(error_bound=1e-5, entropy="huffman").compress(x)
        ) == "huffman"
        assert blob_entropy(
            SZLikeCompressor(error_bound=1e-5, entropy="zlib").compress(x)
        ) == "zlib"

    def test_raw_escape_is_reported(self):
        rng = np.random.default_rng(11)
        x = rng.standard_normal(512) + 1j * rng.standard_normal(512)
        blob = SZLikeCompressor(error_bound=1e-14).compress(x)
        assert blob_entropy(blob) == "raw"

    def test_non_szl1_blob_is_none(self):
        assert blob_entropy(b"XXXXnot a blob") is None
        assert blob_entropy(b"") is None

    def test_adaptive_wrapper_looked_through(self):
        from repro.compression import get_compressor as _get
        adaptive = _get("adaptive")
        blob = adaptive.compress(smooth_signal(4096))
        # may route to szlike or a lossless inner codec; the sniffer must
        # either see through the wrapper or return None, never raise
        assert blob_entropy(blob) in ("huffman", "zlib", "raw", None)
