"""Robustness: corrupted / truncated / foreign blobs must raise cleanly.

A store that crashes the interpreter (or silently returns garbage) on a
damaged checkpoint is worse than one that errors; every codec must raise
``ValueError``-family exceptions on malformed input, never segfault or
return wrong-length data.
"""

import lzma
import struct
import zlib

import numpy as np
import pytest

from repro.compression import available_compressors, get_compressor

ACCEPTABLE = (ValueError, KeyError, IndexError, EOFError,
              zlib.error, lzma.LZMAError, struct.error, OSError)


@pytest.fixture(scope="module")
def sample():
    rng = np.random.default_rng(0)
    return (rng.standard_normal(256) + 1j * rng.standard_normal(256)) / 16


class TestCorruption:
    @pytest.mark.parametrize("name", available_compressors())
    def test_wrong_magic_rejected(self, name, sample):
        codec = get_compressor(name)
        blob = codec.compress(sample)
        bad = b"XXXX" + blob[4:]
        if bad == blob:  # degenerate codecs without magic are exempt
            pytest.skip("codec has no magic prefix")
        with pytest.raises(ACCEPTABLE):
            out = codec.decompress(bad)
            # If no exception, the data must at least not silently differ
            # in shape (defense against magic-free formats).
            assert out.shape == sample.shape

    @pytest.mark.parametrize("name", available_compressors())
    def test_truncation_raises_or_errors(self, name, sample):
        codec = get_compressor(name)
        blob = codec.compress(sample)
        for cut in (len(blob) // 2, len(blob) - 3):
            truncated = blob[:cut]
            with pytest.raises(ACCEPTABLE):
                out = codec.decompress(truncated)
                # Decoders that tolerate truncation must not fabricate a
                # full-length result silently.
                assert out.shape[0] == sample.shape[0]
                raise ValueError("truncated blob decoded to full length")

    @pytest.mark.parametrize("name", ["szlike", "zlib", "blockfloat", "sparse"])
    def test_payload_bitflip_detected_or_bounded(self, name, sample):
        codec = get_compressor(name)
        blob = bytearray(codec.compress(sample))
        # flip a byte well inside the payload
        pos = min(len(blob) - 1, 3 * len(blob) // 4)
        blob[pos] ^= 0xFF
        try:
            out = codec.decompress(bytes(blob))
        except ACCEPTABLE:
            return  # detected — good
        # Not detected: result must still be the declared length (no
        # buffer over/underrun) — corruption may change values.
        assert out.shape[0] == sample.shape[0]

    @pytest.mark.parametrize("name", available_compressors())
    def test_empty_blob_rejected(self, name):
        codec = get_compressor(name)
        with pytest.raises(ACCEPTABLE):
            codec.decompress(b"")

    @pytest.mark.parametrize("name", available_compressors())
    def test_garbage_rejected(self, name):
        codec = get_compressor(name)
        rng = np.random.default_rng(1)
        garbage = rng.integers(0, 256, size=200).astype(np.uint8).tobytes()
        with pytest.raises(ACCEPTABLE):
            out = codec.decompress(garbage)
            raise ValueError(f"garbage decoded to shape {out.shape}")
