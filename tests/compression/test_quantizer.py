"""Unit tests for the error-bounded quantizer."""

import numpy as np
import pytest

from repro.compression.quantizer import (
    MAX_SAFE_CODE,
    dequantize,
    quantize,
    resolve_error_bound,
    unzigzag,
    zigzag,
)


class TestQuantize:
    @pytest.mark.parametrize("eb", [1e-2, 1e-4, 1e-8])
    def test_bound_respected(self, eb, rng):
        x = rng.standard_normal(5000)
        q = quantize(x, eb)
        back = dequantize(q.codes, q.abs_bound)
        assert np.max(np.abs(x - back)) <= eb * (1 + 1e-12)

    def test_zero_input(self):
        q = quantize(np.zeros(10), 1e-3)
        assert np.all(q.codes == 0)

    def test_deterministic(self, rng):
        x = rng.standard_normal(100)
        a = quantize(x, 1e-3).codes
        b = quantize(x, 1e-3).codes
        assert np.array_equal(a, b)

    def test_overflow_guard(self):
        with pytest.raises(OverflowError):
            quantize(np.array([1e10]), 1e-10)

    def test_nonfinite_rejected(self):
        with pytest.raises(FloatingPointError):
            quantize(np.array([np.nan]), 1e-3)

    def test_empty(self):
        q = quantize(np.empty(0), 1e-3)
        assert q.codes.shape == (0,)

    def test_codes_are_int64(self, rng):
        q = quantize(rng.standard_normal(10), 1e-2)
        assert q.codes.dtype == np.int64


class TestResolveErrorBound:
    def test_abs_passthrough(self):
        assert resolve_error_bound(np.array([100.0]), 1e-3, "abs") == 1e-3

    def test_rel_scales_by_span(self):
        data = np.array([-2.0, 0.5])
        assert resolve_error_bound(data, 1e-2, "rel") == pytest.approx(0.02)

    def test_rel_all_zero(self):
        assert resolve_error_bound(np.zeros(5), 1e-2, "rel") == 1e-2

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(ValueError):
            resolve_error_bound(np.ones(1), 0.0, "abs")

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            resolve_error_bound(np.ones(1), 1e-3, "weird")


class TestZigzag:
    def test_known_values(self):
        vals = np.array([0, -1, 1, -2, 2], dtype=np.int64)
        assert list(zigzag(vals)) == [0, 1, 2, 3, 4]

    def test_roundtrip(self, rng):
        vals = rng.integers(-(2**40), 2**40, size=1000).astype(np.int64)
        assert np.array_equal(unzigzag(zigzag(vals)), vals)

    def test_large_magnitudes(self):
        vals = np.array([MAX_SAFE_CODE, -MAX_SAFE_CODE], dtype=np.int64)
        assert np.array_equal(unzigzag(zigzag(vals)), vals)
