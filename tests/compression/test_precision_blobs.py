"""Dtype-carrying blobs: every codec round-trips complex64 and complex128.

Golden-header pins: a complex128 blob is byte-identical to the historical
framing (no ``DTP1`` prefix), while a complex64 blob starts with
``b"DTP1\\x01"`` followed by the codec's untouched frame. The adaptive
wrapper stays dtype-agnostic: its ``ADP1`` header comes first and the
*inner* winning codec carries the tag.
"""

import numpy as np
import pytest

from repro.compression import available_compressors, get_compressor
from repro.compression.interface import (
    DTYPE_MAGIC,
    coerce_amplitudes,
    split_dtype,
    tag_dtype,
)
from repro.compression.metrics import max_component_error

ALL_CODECS = available_compressors()
#: codecs whose round-trip must be bit-exact in both dtypes
LOSSLESS = ["bz2", "lzma", "null", "sparse", "zlib"]
#: extra slack for the decoder's final float32 rounding of a c64 payload
C64_ULP = 2.0 ** -22


def rand_state(n=512, seed=11, dtype=np.complex128):
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    v /= np.max(np.abs(v))  # bounded by 1 so absolute error bounds apply
    return v.astype(dtype)


def make(name):
    kwargs = {"error_bound": 1e-6} if name in ("szlike", "adaptive") else {}
    return get_compressor(name, **kwargs)


class TestRoundTrip:
    @pytest.mark.parametrize("name", ALL_CODECS)
    @pytest.mark.parametrize("dtype", [np.complex128, np.complex64])
    def test_restores_dtype_and_length(self, name, dtype):
        comp = make(name)
        x = rand_state(dtype=dtype)
        back = comp.decompress(comp.compress(x))
        assert back.dtype == np.dtype(dtype)
        assert back.shape == x.shape

    @pytest.mark.parametrize("name", LOSSLESS)
    @pytest.mark.parametrize("dtype", [np.complex128, np.complex64])
    def test_lossless_bit_exact(self, name, dtype):
        comp = make(name)
        x = rand_state(dtype=dtype)
        assert np.array_equal(comp.decompress(comp.compress(x)), x)

    @pytest.mark.parametrize("name", sorted(set(ALL_CODECS) - set(LOSSLESS)))
    @pytest.mark.parametrize("dtype", [np.complex128, np.complex64])
    def test_lossy_within_bound(self, name, dtype):
        comp = make(name)
        x = rand_state(dtype=dtype)
        back = comp.decompress(comp.compress(x))
        # c64 storage adds at most one float32 rounding on top of the
        # codec's own bound (amplitudes here are bounded by 1).
        tol = comp.error_bound * 1.01 + (C64_ULP if dtype == np.complex64 else 0.0)
        assert max_component_error(x.astype(np.complex128),
                                   back.astype(np.complex128)) <= tol

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_empty_c64_roundtrip(self, name):
        comp = make(name)
        x = np.empty(0, dtype=np.complex64)
        back = comp.decompress(comp.compress(x))
        assert back.shape == (0,)
        assert back.dtype == np.complex64


class TestGoldenHeaders:
    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_c128_blob_is_untagged(self, name):
        blob = make(name).compress(rand_state())
        assert not blob.startswith(DTYPE_MAGIC)
        dt, inner = split_dtype(blob)
        assert dt == np.dtype(np.complex128)
        assert inner == blob  # legacy framing, byte-identical

    @pytest.mark.parametrize("name", sorted(set(ALL_CODECS) - {"adaptive"}))
    def test_c64_blob_has_dtp1_prefix(self, name):
        blob = make(name).compress(rand_state(dtype=np.complex64))
        assert blob[:5] == DTYPE_MAGIC + b"\x01"
        dt, inner = split_dtype(blob)
        assert dt == np.dtype(np.complex64)
        assert inner == blob[5:]

    def test_zlib_magics_pinned(self):
        comp = make("zlib")
        assert comp.compress(rand_state())[:4] == b"LSL1"
        assert comp.compress(rand_state(dtype=np.complex64))[5:9] == b"LSL1"

    def test_adaptive_inner_tagging(self):
        # ADP1 wrapper first; the winning inner codec carries the tag.
        comp = make("adaptive")
        dense64 = rand_state(dtype=np.complex64)
        blob = comp.compress(dense64)
        assert blob[:4] == b"ADP1"
        assert blob[5:10] == DTYPE_MAGIC + b"\x01"
        assert comp.decompress(blob).dtype == np.complex64

        sparse64 = np.zeros(1024, dtype=np.complex64)
        sparse64[3] = 1.0
        blob = comp.compress(sparse64)  # lossless branch this time
        assert blob[:4] == b"ADP1"
        assert blob[5:10] == DTYPE_MAGIC + b"\x01"
        assert np.array_equal(comp.decompress(blob), sparse64)


class TestHelpers:
    def test_tag_split_inverse(self):
        assert split_dtype(tag_dtype(b"payload", np.complex64)) == (
            np.dtype(np.complex64), b"payload")
        assert tag_dtype(b"payload", np.complex128) == b"payload"

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            split_dtype(DTYPE_MAGIC + b"\x7f" + b"x")
        with pytest.raises(ValueError):
            tag_dtype(b"x", np.float64)

    def test_coerce_amplitudes(self):
        assert coerce_amplitudes(np.ones(4, np.complex64)).dtype == np.complex64
        assert coerce_amplitudes(np.ones(4, np.float64)).dtype == np.complex128
        assert coerce_amplitudes(np.ones(4, np.complex128)).dtype == np.complex128
