"""Unit tests for bit-level I/O."""

import numpy as np
import pytest

from repro.compression.bitstream import BitReader, BitWriter, pack_codes, unpack_bits


class TestBitWriterReader:
    def test_roundtrip_fields(self):
        w = BitWriter()
        fields = [(5, 3), (0, 1), (1023, 10), (1, 1), (0xABCD, 16)]
        for v, n in fields:
            w.write(v, n)
        r = BitReader(w.getvalue())
        for v, n in fields:
            assert r.read(n) == v

    def test_bit_length(self):
        w = BitWriter()
        w.write(3, 2)
        w.write(1, 5)
        assert w.bit_length == 7

    def test_zero_width_write(self):
        w = BitWriter()
        w.write(0, 0)
        assert w.bit_length == 0

    def test_overflow_value_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(4, 2)

    def test_read_past_end(self):
        r = BitReader(b"\xff")
        r.read(8)
        with pytest.raises(ValueError):
            r.read(1)

    def test_padding_is_zero(self):
        w = BitWriter()
        w.write(1, 1)
        data = w.getvalue()
        assert data == b"\x80"

    def test_bits_remaining(self):
        r = BitReader(b"\x00\x00")
        assert r.bits_remaining == 16
        r.read(5)
        assert r.bits_remaining == 11

    def test_long_value(self):
        w = BitWriter()
        w.write((1 << 50) - 3, 50)
        r = BitReader(w.getvalue())
        assert r.read(50) == (1 << 50) - 3


class TestPackCodes:
    def test_empty(self):
        packed, bits = pack_codes(np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.uint8))
        assert packed == b"" and bits == 0

    def test_matches_bitwriter(self):
        rng = np.random.default_rng(1)
        lengths = rng.integers(1, 20, size=200).astype(np.uint8)
        codes = np.array(
            [rng.integers(0, 1 << int(l)) for l in lengths], dtype=np.uint64
        )
        packed, total = pack_codes(codes, lengths)
        w = BitWriter()
        for c, l in zip(codes, lengths):
            w.write(int(c), int(l))
        assert packed == w.getvalue()
        assert total == int(lengths.sum())

    def test_single_long_code(self):
        packed, total = pack_codes(
            np.array([0x0F0F0F0F0F], dtype=np.uint64), np.array([40], dtype=np.uint8)
        )
        assert total == 40
        r = BitReader(packed)
        assert r.read(40) == 0x0F0F0F0F0F

    def test_all_zero_lengths(self):
        # blockfloat emits zero-width fields for all-zero planes; the block
        # streamer must short-circuit instead of dividing by max_len == 0
        packed, bits = pack_codes(
            np.zeros(16, dtype=np.uint64), np.zeros(16, dtype=np.uint8))
        assert packed == b"" and bits == 0

    def test_stream_crossing_block_boundary_byte_identical(self):
        # 2^19 length-8 codes = 4 Mbit, several _PACK_BLOCK_BITS blocks; the
        # packed stream of byte-aligned fields is exactly the raw bytes
        from repro.compression.bitstream import _PACK_BLOCK_BITS

        n = (1 << 19) + 333
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 256, size=n).astype(np.uint64)
        lengths = np.full(n, 8, dtype=np.uint8)
        assert n * 8 > 2 * _PACK_BLOCK_BITS
        packed, total = pack_codes(codes, lengths)
        assert total == n * 8
        assert packed == codes.astype(np.uint8).tobytes()

    def test_mixed_lengths_crossing_block_boundary(self):
        # unaligned fields spanning a block edge must match the sequential
        # BitWriter reference bit for bit
        from repro.compression.bitstream import _PACK_BLOCK_BITS

        rng = np.random.default_rng(4)
        lengths = rng.integers(1, 56, size=90_000).astype(np.uint8)
        codes = (rng.integers(0, 1 << 62, size=90_000).astype(np.uint64)
                 & ((np.uint64(1) << lengths.astype(np.uint64)) - np.uint64(1)))
        assert int(lengths.sum()) > _PACK_BLOCK_BITS
        packed, total = pack_codes(codes, lengths)
        w = BitWriter()
        for c, l in zip(codes, lengths):
            w.write(int(c), int(l))
        assert packed == w.getvalue()
        assert total == int(lengths.astype(np.int64).sum())

    def test_unpack_bits_roundtrip(self):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, size=77).astype(np.uint8)
        packed = np.packbits(bits).tobytes()
        back = unpack_bits(packed, 77)
        assert np.array_equal(back, bits)
