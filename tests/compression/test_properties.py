"""Property-based tests (hypothesis) for the compression stack invariants.

These are the load-bearing guarantees of the whole system: if a codec
violates its error bound or loses length information, the simulator's
correctness story collapses. Hypothesis searches the input space for
violations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression import (
    SZLikeCompressor,
    ZlibCompressor,
    get_compressor,
    max_component_error,
)
from repro.compression.huffman import decode, encode
from repro.compression.quantizer import unzigzag, zigzag

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=64
)


@st.composite
def complex_arrays(draw, max_len=512):
    n = draw(st.integers(min_value=0, max_value=max_len))
    re = draw(
        hnp.arrays(np.float64, n, elements=finite_floats)
    )
    im = draw(
        hnp.arrays(np.float64, n, elements=finite_floats)
    )
    return re + 1j * im


class TestSZLikeProperties:
    @given(data=complex_arrays(), eb_exp=st.integers(min_value=-8, max_value=-1))
    @settings(max_examples=60, deadline=None)
    def test_error_bound_always_respected(self, data, eb_exp):
        eb = 10.0**eb_exp
        c = SZLikeCompressor(error_bound=eb)
        back = c.decompress(c.compress(data))
        assert back.shape == data.shape
        assert max_component_error(data, back) <= eb * (1 + 1e-9)

    @given(data=complex_arrays(max_len=256))
    @settings(max_examples=30, deadline=None)
    def test_rel_mode_never_crashes_and_bounds(self, data):
        c = SZLikeCompressor(error_bound=1e-4, mode="rel")
        back = c.decompress(c.compress(data))
        planes = np.concatenate([data.real, data.imag]) if data.size else np.zeros(1)
        realized = 1e-4 * max(np.max(np.abs(planes)), 0.0) if data.size else 0.0
        # raw fallback may make it exact; bound must hold either way
        assert max_component_error(data, back) <= max(realized, 1e-4) * (1 + 1e-9)

    @given(data=complex_arrays(max_len=256))
    @settings(max_examples=30, deadline=None)
    def test_compress_is_deterministic(self, data):
        c = SZLikeCompressor(error_bound=1e-5)
        assert c.compress(data) == c.compress(data)


class TestLosslessProperties:
    @given(data=complex_arrays(max_len=512))
    @settings(max_examples=40, deadline=None)
    def test_zlib_bit_exact(self, data):
        c = ZlibCompressor()
        back = c.decompress(c.compress(data))
        assert np.array_equal(back, data)

    @given(data=complex_arrays(max_len=256))
    @settings(max_examples=25, deadline=None)
    def test_adaptive_respects_bound(self, data):
        a = get_compressor("adaptive", error_bound=1e-5)
        back = a.decompress(a.compress(data))
        assert max_component_error(data, back) <= 1e-5 * (1 + 1e-9)


class TestHuffmanProperties:
    @given(
        vals=hnp.arrays(
            np.int64,
            st.integers(min_value=0, max_value=2000),
            elements=st.integers(min_value=-(2**40), max_value=2**40),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, vals):
        assert np.array_equal(decode(encode(vals)), vals)

    @given(
        vals=hnp.arrays(
            np.int64,
            st.integers(min_value=1, max_value=1000),
            elements=st.integers(min_value=-5, max_value=5),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_small_alphabet_roundtrip(self, vals):
        assert np.array_equal(decode(encode(vals)), vals)


class TestZigzagProperties:
    @given(
        vals=hnp.arrays(
            np.int64,
            st.integers(min_value=0, max_value=1000),
            elements=st.integers(min_value=-(2**52), max_value=2**52),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_bijection(self, vals):
        assert np.array_equal(unzigzag(zigzag(vals)), vals)

    @given(
        vals=hnp.arrays(
            np.int64, 64, elements=st.integers(min_value=-(2**52), max_value=2**52)
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_zigzag_nonnegative(self, vals):
        zz = zigzag(vals)
        assert zz.dtype == np.uint64
