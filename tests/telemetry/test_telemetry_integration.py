"""Telemetry threaded through the pipeline: spans, metrics, equivalence.

These are the tests for the observability *wiring*: a traced MEMQSim run
must produce one span per pipeline hop, metrics that agree with the
simulator's own statistics, and a timeline that is exactly the spans'
shadow. Plus the contract that disabled telemetry is effectively free.
"""

import json
import time

import pytest

from repro.circuits import ghz, qft
from repro.core import MemQSim, MemQSimConfig
from repro.device import DeviceSpec
from repro.device.timeline import Stage, Timeline
from repro.telemetry import NULL_TELEMETRY, Telemetry


def traced_run(circuit, tel=None, **cfg_kw):
    defaults = dict(
        chunk_qubits=4,
        compressor="zlib",
        # groups of 2 chunks, double-buffered: forces several group passes
        device=DeviceSpec(memory_bytes=(1 << 5) * 16 * 2),
    )
    defaults.update(cfg_kw)
    tel = tel if tel is not None else Telemetry()
    res = MemQSim(MemQSimConfig(**defaults), telemetry=tel).run(circuit)
    return res, tel


class TestTelemetryFacade:
    def test_enabled_bundles_real_instruments(self):
        tel = Telemetry()
        assert tel.enabled
        assert tel.tracer.enabled
        assert tel.metrics.enabled
        # declare_standard ran: acceptance counters pre-registered at 0
        assert tel.metrics.snapshot()["counters"]["transfer.h2d.bytes"] == 0

    def test_disabled_bundles_null_twins(self):
        tel = Telemetry.disabled()
        assert not tel.enabled
        with tel.span("x") as sp:
            assert sp is None
        assert tel.snapshot()["spans"] == 0
        assert NULL_TELEMETRY.enabled is False

    def test_stage_span_feeds_timeline_and_tracer(self):
        tel = Telemetry()
        tl = Timeline()
        with tel.stage_span(tl, Stage.H2D, chunk=2, nbytes=1024):
            time.sleep(0.001)
        assert tl.count(Stage.H2D) == 1
        ev = tl.events[0]
        assert ev.chunk == 2 and ev.nbytes == 1024
        [sp] = tel.tracer.find("h2d")
        assert sp.duration == ev.duration
        assert sp.args["chunk"] == 2

    def test_stage_span_feeds_timeline_even_when_disabled(self):
        tel = Telemetry.disabled()
        tl = Timeline()
        with tel.stage_span(tl, Stage.KERNEL, chunk=0, nbytes=64):
            pass
        assert tl.count(Stage.KERNEL) == 1
        assert len(tel.tracer) == 0

    def test_record_stage(self):
        tel = Telemetry()
        tl = Timeline()
        tel.record_stage(tl, Stage.D2H, 0.125, chunk=1, nbytes=512)
        assert tl.events[0].duration == 0.125
        [sp] = tel.tracer.find("d2h")
        assert sp.duration == 0.125


class TestPipelineTrace:
    def test_one_span_per_stage_per_group_pass(self):
        res, tel = traced_run(qft(8))
        tr = tel.tracer
        passes = res.scheduler_stats.group_passes
        assert passes > 1  # the tight device really forced streaming
        assert len(tr.find("group_pass")) == passes
        # Device-path passes: one h2d, one kernel batch, one d2h each.
        for name in ("h2d", "d2h", "kernel"):
            assert len(tr.find(name)) == passes
        # Codec hops: one per chunk per pass (2 chunks per group here).
        assert len(tr.find("decompress")) == res.timeline.count(Stage.DECOMPRESS)
        assert len(tr.find("compress")) == res.timeline.count(Stage.COMPRESS)
        # Phase framing spans are present.
        assert len(tr.find("offline")) == 1
        assert len(tr.find("online")) == 1
        assert len(tr.find("run")) == 1
        assert len(tr.find("stage")) == res.plan.num_stages

    def test_every_pipeline_stage_kind_appears(self):
        res, tel = traced_run(qft(8))
        names = {s.name for s in tel.tracer.spans}
        for stage in (Stage.DECOMPRESS, Stage.H2D, Stage.KERNEL, Stage.D2H,
                      Stage.COMPRESS):
            assert stage.value in names

    def test_span_nesting_group_pass_under_online(self):
        _, tel = traced_run(ghz(8))
        for sp in tel.tracer.find("group_pass"):
            assert sp.parent == "stage"
        for sp in tel.tracer.find("stage"):
            assert sp.parent == "online"

    def test_cpu_offload_path_traced(self):
        res, tel = traced_run(ghz(8), cpu_offload_fraction=1.0)
        assert res.scheduler_stats.cpu_group_passes > 0
        assert len(tel.tracer.find("cpu_update")) == \
            res.timeline.count(Stage.CPU_UPDATE)
        assert all(sp.args["path"] == "cpu"
                   for sp in tel.tracer.find("group_pass"))

    def test_chrome_trace_export_of_real_run(self, tmp_path):
        _, tel = traced_run(qft(8))
        path = tmp_path / "run.trace.json"
        tel.tracer.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(tel.tracer)
        for e in complete:
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0


class TestTimelineFromSpans:
    def test_equivalence_with_live_timeline(self):
        res, tel = traced_run(qft(8), cpu_offload_fraction=0.5)
        rebuilt = Timeline.from_spans(tel.tracer.spans)
        live = res.timeline.events
        assert len(rebuilt.events) == len(live)
        for a, b in zip(rebuilt.events, live):
            assert a.stage == b.stage
            assert a.chunk == b.chunk
            assert a.nbytes == b.nbytes
            assert a.duration == pytest.approx(b.duration, abs=1e-12)
        assert rebuilt.stage_breakdown() == pytest.approx(
            res.timeline.stage_breakdown())

    def test_non_stage_spans_ignored(self):
        _, tel = traced_run(ghz(8))
        rebuilt = Timeline.from_spans(tel.tracer.spans)
        names = {e.stage for e in rebuilt.events}
        assert names <= set(Stage)


class TestPipelineMetrics:
    def test_transfer_counters_match_timeline(self):
        res, tel = traced_run(qft(8))
        snap = tel.metrics.snapshot()
        h2d_bytes = sum(e.nbytes for e in res.timeline.events
                        if e.stage == Stage.H2D)
        assert snap["counters"]["transfer.h2d.bytes"] == h2d_bytes
        assert snap["counters"]["transfer.h2d.count"] == \
            res.timeline.count(Stage.H2D)
        assert snap["histograms"]["transfer.h2d.seconds"]["count"] == \
            res.timeline.count(Stage.H2D)

    def test_codec_metrics(self):
        res, tel = traced_run(qft(8))
        snap = tel.metrics.snapshot()
        st = res.store.stats
        assert snap["histograms"]["codec.compress.seconds"]["count"] == st.stores
        assert snap["histograms"]["codec.decompress.seconds"]["count"] >= 1
        assert snap["counters"]["codec.compress.bytes_out"] == \
            st.bytes_compressed

    def test_cache_counters(self):
        res, tel = traced_run(qft(8), cache_chunks=8)
        snap = tel.metrics.snapshot()
        stats = res.store.cache_stats
        assert snap["counters"]["cache.hit"] == stats.hits
        assert snap["counters"]["cache.miss"] == stats.misses
        assert stats.hits + stats.misses > 0

    def test_pool_and_memory_gauges(self):
        _, tel = traced_run(ghz(8))
        snap = tel.metrics.snapshot()
        assert snap["counters"]["pool.acquire.count"] > 0
        assert snap["histograms"]["pool.acquire.wait.seconds"]["count"] > 0
        assert snap["gauges"]["mem.chunk_store.bytes"]["max"] > 0
        assert snap["gauges"]["mem.host_buffers.bytes"]["max"] > 0

    def test_result_to_dict_includes_metrics(self):
        res, _ = traced_run(ghz(8))
        d = res.to_dict()
        assert "metrics" in d
        assert d["metrics"]["counters"]["transfer.h2d.bytes"] > 0
        json.dumps(d)  # strictly serializable

    def test_result_to_dict_without_telemetry(self):
        res = MemQSim(chunk_qubits=4, compressor="zlib").run(ghz(8))
        d = res.to_dict()
        assert "metrics" not in d
        assert d["stage_event_counts"]["kernel"] >= 1
        json.dumps(d)

    def test_report_has_telemetry_section(self):
        res, _ = traced_run(ghz(8))
        assert "telemetry:" in res.report()
        plain = MemQSim(chunk_qubits=4, compressor="zlib").run(ghz(8))
        assert "telemetry:" not in plain.report()


class TestDisabledOverhead:
    def test_null_span_is_cheap(self):
        """The disabled fast path must stay in no-op territory.

        Bound is deliberately loose (50x a typical interpreter dict lookup)
        so this only fails if someone accidentally makes the null path
        allocate or format.
        """
        tel = NULL_TELEMETRY
        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            with tel.span("hot"):
                pass
        per_op = (time.perf_counter() - t0) / n
        assert per_op < 20e-6

    def test_disabled_run_records_nothing(self):
        res, tel = traced_run(ghz(8), tel=Telemetry.disabled())
        assert len(tel.tracer) == 0
        assert tel.metrics.snapshot() == {"counters": {}, "gauges": {},
                                          "histograms": {}}
        # ...but the timeline (a core output) is still fully populated.
        assert res.timeline.count(Stage.KERNEL) > 0
        assert res.serial_seconds > 0
