"""ProgressTracker: exact plan-derived fractions, EWMA rate, ETA."""

from __future__ import annotations

import json

import pytest

from repro.circuits import qft
from repro.core import MemQSim
from repro.telemetry import (
    NULL_PROGRESS,
    NullProgressTracker,
    ProgressTracker,
    StageProgress,
    Telemetry,
)


class _GateStage:
    """Duck-typed CompiledGateStage: group_qubits + ops."""

    def __init__(self, group_qubits, n_ops):
        self.group_qubits = tuple(group_qubits)
        self.ops = [object()] * n_ops


class _PermStage:
    perm = (1, 0)


class _Layout:
    def __init__(self, num_chunks):
        self.num_chunks = num_chunks


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def test_from_plan_weights_are_exact():
    # 8 chunks; gate stage grouping 1 target qubit -> 4 groups of 2 chunks
    stages = [_GateStage([5], 3), _PermStage(), _GateStage([], 1)]
    tracker = ProgressTracker.from_plan(stages, _Layout(8))
    gate, perm, solo = tracker.stages
    assert (gate.kind, gate.groups, gate.unit_weight) == ("gate", 4, 2 * 4)
    assert (perm.kind, perm.groups, perm.unit_weight) == ("permutation", 1, 8)
    assert (solo.kind, solo.groups, solo.unit_weight) == ("gate", 8, 1 * 2)
    assert tracker.total_units == 4 * 8 + 8 + 8 * 2
    assert tracker.groups_total == 4 + 1 + 8


def test_fraction_is_exact_integer_ratio_and_finishes_at_one():
    stages = [_GateStage([5], 2), _GateStage([4, 3], 0)]
    tracker = ProgressTracker.from_plan(stages, _Layout(8), clock=FakeClock())
    tracker.start()
    assert tracker.fraction == 0.0
    total = tracker.total_units
    for _ in range(tracker.stages[0].groups):
        tracker.group_done(0)
    assert tracker.fraction == tracker.stages[0].total_units / total
    for _ in range(tracker.stages[1].groups):
        tracker.group_done(1)
    assert tracker.fraction == 1.0  # exactly, no float drift
    assert tracker.done_units == tracker.total_units


def test_over_credit_is_clamped():
    tracker = ProgressTracker.from_plan([_GateStage([5], 1)], _Layout(4),
                                        clock=FakeClock())
    tracker.start()
    tracker.group_done(0, count=99)  # plan only has 2 groups
    assert tracker.fraction == 1.0
    tracker.group_done(0)  # further credit: no-op, stays exactly 1.0
    assert tracker.fraction == 1.0
    assert tracker.groups_done == tracker.groups_total == 2
    # out-of-range stage indices are ignored, not crashes
    tracker.group_done(7)
    tracker.stage_started(7)
    assert tracker.fraction == 1.0


def test_eta_from_ewma_rate_with_fake_clock():
    clock = FakeClock()
    # one stage, 4 groups, weight 10 -> 40 units total
    tracker = ProgressTracker.from_plan([_GateStage([5], 4)], _Layout(8),
                                        clock=clock)
    tracker.start()
    assert tracker.eta_seconds() is None  # no rate measured yet
    clock.t = 1.0
    tracker.group_done(0)  # 10 units in 1 s -> rate 10 units/s
    assert tracker.rate_ewma == pytest.approx(10.0)
    assert tracker.eta_seconds() == pytest.approx(30 / 10.0)
    clock.t = 2.0
    tracker.group_done(0)  # same pace: EWMA stays 10
    assert tracker.rate_ewma == pytest.approx(10.0)
    assert tracker.eta_seconds() == pytest.approx(2.0)
    clock.t = 4.0
    tracker.group_done(0)  # slower pass (5 units/s) drags the EWMA down
    assert tracker.rate_ewma == pytest.approx(0.2 * 5.0 + 0.8 * 10.0)
    clock.t = 5.0
    tracker.group_done(0)
    assert tracker.eta_seconds() == 0.0  # nothing remaining
    assert tracker.stages[0].rate_ewma is not None  # per-stage EWMA too


def test_snapshot_payload_shape():
    clock = FakeClock()
    tracker = ProgressTracker.from_plan(
        [_GateStage([5], 1), _PermStage()], _Layout(4),
        run_id="abc123", clock=clock)
    tracker.start()
    tracker.stage_started(0)
    clock.t = 0.5
    tracker.group_done(0)
    snap = tracker.snapshot()
    assert snap["run_id"] == "abc123"
    assert 0 < snap["fraction"] < 1
    assert snap["done_units"] == tracker.stages[0].unit_weight
    assert snap["current_stage"]["index"] == 0
    assert snap["stages_done"] == 0 and snap["stages_total"] == 2
    assert not snap["finished"]
    json.dumps(snap)  # must be JSON-serializable as-is
    clock.t = 1.0
    tracker.group_done(0)
    tracker.group_done(1)
    tracker.finish()
    snap = tracker.snapshot()
    assert snap["fraction"] == 1.0 and snap["finished"]
    assert snap["eta_seconds"] == 0.0
    assert snap["elapsed_seconds"] == pytest.approx(1.0)


def test_empty_plan_reports_done_only_after_finish():
    tracker = ProgressTracker([], clock=FakeClock())
    tracker.start()
    assert tracker.fraction == 0.0
    tracker.finish()
    assert tracker.fraction == 1.0


def test_run_attaches_tracker_and_finishes_at_exactly_one(tight_config):
    tel = Telemetry()
    res = MemQSim(tight_config, telemetry=tel).run(qft(8))
    assert tel.progress.enabled
    assert tel.progress.fraction == 1.0
    assert tel.progress.finished
    assert tel.progress.groups_done == tel.progress.groups_total
    # the run id threads through tracker, result object and result dict
    assert res.run_id and tel.progress.run_id == res.run_id
    assert res.to_dict()["run_id"] == res.run_id


def test_disabled_run_keeps_null_progress(tight_config):
    from repro.telemetry import NULL_TELEMETRY

    res = MemQSim(tight_config, telemetry=NULL_TELEMETRY).run(qft(8))
    assert NULL_TELEMETRY.progress is NULL_PROGRESS
    assert res.run_id  # ids are assigned even without telemetry


def test_null_tracker_is_free():
    p = NullProgressTracker()
    assert p.start() is p
    p.stage_started(0)
    p.group_done(0, count=5)
    p.finish()
    assert p.fraction == 0.0 and not p.finished
    assert p.eta_seconds() is None
    assert p.snapshot() == {"enabled": False}
    assert not NULL_PROGRESS.enabled


def test_stage_progress_ledger():
    st = StageProgress(2, "gate", groups=3, unit_weight=7)
    assert st.total_units == 21 and st.done_units == 0
    st.groups_done = 2
    assert st.done_units == 14
    d = st.to_dict()
    assert d["index"] == 2 and d["kind"] == "gate" and d["groups"] == 3
