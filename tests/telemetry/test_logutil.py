"""Run/span log context: RunContextFilter, tracer integration, run_id."""

from __future__ import annotations

import io
import logging
import threading

from repro.circuits import qft
from repro.core import MemQSim
from repro.telemetry import Telemetry, current_run_id, set_run_id
from repro.telemetry.logutil import (
    RunContextFilter,
    configure_logging,
    current_span,
    get_logger,
    set_active_span,
)


def _record(msg="hello"):
    return logging.LogRecord("repro.test", logging.INFO, __file__, 1,
                             msg, None, None)


def teardown_function(_fn):
    set_run_id("")
    set_active_span(None)


def test_filter_stamps_defaults_when_no_context():
    rec = _record()
    assert RunContextFilter().filter(rec) is True
    assert rec.run_id == "-" and rec.span == "-"
    assert rec.run_ctx == "-/-"


def test_filter_stamps_run_id_and_span():
    set_run_id("abc123")
    set_active_span("group_pass")
    rec = _record()
    RunContextFilter().filter(rec)
    assert rec.run_id == "abc123"
    assert rec.span == "group_pass"
    assert rec.run_ctx == "abc123/group_pass"
    set_run_id("")
    rec = _record()
    RunContextFilter().filter(rec)
    assert rec.run_ctx == "-/group_pass"


def test_set_run_id_round_trip():
    assert current_run_id() == ""
    set_run_id("deadbeef")
    assert current_run_id() == "deadbeef"
    set_run_id("")
    assert current_run_id() == ""


def test_active_span_is_per_thread():
    set_active_span("main-span")
    seen = {}

    def other():
        seen["before"] = current_span()
        set_active_span("worker-span")
        seen["after"] = current_span()

    th = threading.Thread(target=other)
    th.start()
    th.join()
    assert seen["before"] is None  # thread-local: no leakage across threads
    assert seen["after"] == "worker-span"
    assert current_span() == "main-span"


def test_tracer_publishes_innermost_span():
    tel = Telemetry()
    assert current_span() is None
    with tel.span("outer"):
        assert current_span() == "outer"
        with tel.span("inner"):
            assert current_span() == "inner"
        assert current_span() == "outer"  # unwinds to the parent
    assert current_span() is None


def test_configured_handler_formats_run_context():
    buf = io.StringIO()
    logger = configure_logging("INFO", stream=buf)
    try:
        set_run_id("f00dcafe")
        with Telemetry().span("stage"):
            get_logger("repro.test").info("inside")
        out = buf.getvalue()
        assert "[f00dcafe/stage]" in out
        assert "inside" in out
    finally:
        # detach the buffer handler so later tests write to a live stream
        configure_logging("WARNING")
        logger.setLevel(logging.WARNING)


def test_run_sets_and_clears_run_id(tight_config):
    tel = Telemetry()
    res = MemQSim(tight_config, telemetry=tel).run(qft(8))
    assert res.run_id
    # the id is cleared once the run finishes
    assert current_run_id() == ""
