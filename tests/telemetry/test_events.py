"""EventBus: bounded ring semantics, fan-out cursors, clock anchoring."""

from __future__ import annotations

import json
import threading

import pytest

from repro.telemetry import (
    NULL_EVENT_BUS,
    DEFAULT_BUS_CAPACITY,
    EventBus,
    NullEventBus,
    Telemetry,
)


def test_publish_assigns_increasing_seq_and_clock_time():
    times = iter([0.5, 1.25, 2.0])
    bus = EventBus(capacity=8, clock=lambda: next(times))
    a = bus.publish("alpha", x=1)
    b = bus.publish("beta")
    c = bus.publish("gamma", t=99.0)  # explicit timestamp wins
    assert (a.seq, b.seq, c.seq) == (0, 1, 2)
    assert (a.t, b.t) == (0.5, 1.25)
    assert c.t == 99.0
    assert a.data == {"x": 1} and b.data == {}
    assert bus.published == 3 and bus.dropped == 0


def test_kind_is_positional_only_so_payloads_may_carry_kind():
    bus = EventBus(capacity=4)
    ev = bus.publish("stage.start", kind="gate", index=3)
    assert ev.kind == "stage.start"
    assert ev.data == {"kind": "gate", "index": 3}
    # the Telemetry facade forwards the same way
    tel = Telemetry()
    tel.emit("stage.end", kind="permutation")
    assert tel.bus.tail(1)[0].data["kind"] == "permutation"


def test_ring_overflow_drops_oldest_and_counts():
    bus = EventBus(capacity=4)
    for i in range(10):
        bus.publish("e", i=i)
    assert bus.published == 10
    assert len(bus) == 4
    assert bus.dropped == 6
    retained = [ev.data["i"] for ev in bus.snapshot()]
    assert retained == [6, 7, 8, 9]  # oldest first, newest retained


def test_events_since_reports_missed_when_reader_falls_behind():
    bus = EventBus(capacity=4)
    for i in range(3):
        bus.publish("e", i=i)
    events, cursor, missed = bus.events_since(0)
    assert [e.seq for e in events] == [0, 1, 2]
    assert cursor == 3 and missed == 0
    # fall a full ring behind: 0..2 read, 3..9 published, only 6..9 retained
    for i in range(3, 10):
        bus.publish("e", i=i)
    events, cursor, missed = bus.events_since(cursor)
    assert [e.seq for e in events] == [6, 7, 8, 9]
    assert cursor == 10 and missed == 3


def test_subscriptions_are_independent_cursors():
    bus = EventBus(capacity=16)
    sub_a = bus.subscribe()
    bus.publish("one")
    sub_b = bus.subscribe()  # subscribes *after* the first event
    bus.publish("two")
    assert [e.kind for e in sub_a.poll()] == ["one", "two"]
    assert [e.kind for e in sub_b.poll()] == ["two"]
    assert sub_a.poll() == [] and sub_b.poll() == []
    bus.publish("three")
    assert [e.kind for e in sub_a.poll()] == ["three"]
    assert [e.kind for e in sub_b.poll()] == ["three"]


def test_subscribe_tail_backfills_and_missed_accumulates():
    bus = EventBus(capacity=4)
    for i in range(6):
        bus.publish("e", i=i)
    sub = bus.subscribe(tail=2)
    assert [e.data["i"] for e in sub.poll()] == [4, 5]
    for i in range(6, 20):
        bus.publish("e", i=i)
    got = sub.poll()
    assert [e.data["i"] for e in got] == [16, 17, 18, 19]
    assert sub.missed == 10  # events 6..15 were overwritten before the poll


def test_publish_at_re_anchors_wall_clock_instants():
    bus = EventBus(capacity=8, clock=lambda: 0.0, epoch_wall=1000.0)
    ev = bus.publish_at(1000.75, "worker.compress", key=3)
    assert ev.t == pytest.approx(0.75)
    assert ev.data == {"key": 3}
    # instants before the epoch clamp to zero instead of going negative
    assert bus.publish_at(999.0, "worker.early").t == 0.0


def test_bus_shares_the_tracer_clock():
    tel = Telemetry()
    assert tel.bus.epoch_wall == tel.tracer.epoch_wall
    ev = tel.bus.publish("ping")
    # the bus timestamp sits on the tracer's axis: close to tracer.now
    assert abs(tel.tracer.now - ev.t) < 0.5


def test_jsonl_export_round_trips(tmp_path):
    bus = EventBus(capacity=8)
    bus.publish("h2d", chunk=1, nbytes=2048)
    bus.publish("kernel", chunk=1)
    docs = [json.loads(line) for line in bus.to_jsonl()]
    assert [d["kind"] for d in docs] == ["h2d", "kernel"]
    assert docs[0]["data"] == {"chunk": 1, "nbytes": 2048}
    out = tmp_path / "events.jsonl"
    assert bus.write_jsonl(str(out)) == 2
    lines = out.read_text().splitlines()
    assert [json.loads(l)["seq"] for l in lines] == [0, 1]


def test_concurrent_publish_keeps_seqs_unique():
    bus = EventBus(capacity=DEFAULT_BUS_CAPACITY)
    per_thread = 200

    def worker(tid):
        for i in range(per_thread):
            bus.publish("t", tid=tid, i=i)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    assert bus.published == 4 * per_thread
    seqs = [e.seq for e in bus.snapshot()]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        EventBus(capacity=0)


def test_null_bus_is_free(tmp_path):
    bus = NullEventBus()
    assert bus.publish("x", a=1) is None
    assert bus.publish_at(123.0, "y") is None
    assert bus.events_since(0) == ([], 0, 0)
    sub = bus.subscribe(tail=5)
    assert sub.poll() == [] and sub.missed == 0
    assert bus.tail(3) == [] and bus.snapshot() == []
    assert len(bus) == 0 and bus.published == 0 and bus.dropped == 0
    out = tmp_path / "empty.jsonl"
    assert bus.write_jsonl(str(out)) == 0
    assert out.read_text() == ""
    assert not NULL_EVENT_BUS.enabled


def test_disabled_telemetry_uses_null_bus():
    tel = Telemetry.disabled()
    assert tel.bus is NULL_EVENT_BUS
    tel.emit("anything", x=1)  # free no-op
    assert tel.bus.published == 0
