"""Exposition layer: Prometheus rendering, live state, the HTTP server."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.circuits import qft
from repro.core import MemQSim
from repro.telemetry import Telemetry
from repro.telemetry.live import (
    TelemetryServer,
    _prom_name,
    live_state,
    render_prometheus,
)


@pytest.fixture
def server():
    """A TelemetryServer on an ephemeral port, torn down after the test."""
    tel = Telemetry()
    srv = TelemetryServer(tel, port=0).start()
    yield srv
    srv.stop()


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.headers, resp.read().decode()


# -- Prometheus text rendering --------------------------------------------------

def test_prom_name_mangling():
    assert _prom_name("cache.hit") == "repro_cache_hit"
    assert _prom_name("transfer.h2d.bytes") == "repro_transfer_h2d_bytes"
    assert _prom_name("weird-name with spaces") == \
        "repro_weird_name_with_spaces"


def test_render_prometheus_counters_gauges_histograms():
    tel = Telemetry()
    tel.metrics.counter("cache.hit").inc(5)
    tel.metrics.gauge("mem.device_arena.bytes").set(1024)
    tel.metrics.histogram("kernel.seconds").observe(0.5)
    tel.metrics.histogram("kernel.seconds").observe(2.0)
    text = render_prometheus(tel)
    lines = text.splitlines()
    assert "repro_cache_hit_total 5" in lines
    assert "repro_mem_device_arena_bytes 1024" in lines
    # histograms render cumulative buckets plus +Inf, _sum and _count
    buckets = [l for l in lines if l.startswith("repro_kernel_seconds_bucket")]
    assert buckets and buckets[-1].startswith(
        'repro_kernel_seconds_bucket{le="+Inf"} 2')
    counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
    assert counts == sorted(counts)  # cumulative, monotonically increasing
    assert any(l.startswith("repro_kernel_seconds_count 2") for l in lines)
    assert any(l.startswith("repro_kernel_seconds_sum") for l in lines)
    # every sample line parses: "<name or name{labels}> <float>"
    for line in lines:
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        assert name
        float(value)


def test_render_prometheus_includes_bus_progress_and_rss():
    tel = Telemetry()
    tel.bus.publish("x")
    text = render_prometheus(tel)
    assert "repro_events_published_total 1" in text
    assert "repro_events_dropped_total 0" in text
    assert "repro_process_rss_bytes" in text
    # no tracker attached yet: no progress series, and nothing crashes
    assert "repro_progress_fraction" not in text


def test_render_prometheus_after_run_reports_finished_progress(tight_config):
    tel = Telemetry()
    MemQSim(tight_config, telemetry=tel).run(qft(8))
    text = render_prometheus(tel)
    assert "repro_progress_fraction 1" in text
    assert "repro_progress_eta_seconds 0" in text


def test_live_state_shape(tight_config):
    tel = Telemetry()
    MemQSim(tight_config, telemetry=tel).run(qft(8))
    state = live_state(tel)
    json.dumps(state, default=str)  # serializable, like /progress serves it
    assert state["progress"]["fraction"] == 1.0
    assert state["events"]["published"] > 0
    assert state["events"]["tail"]
    assert state["rss_bytes"] > 0
    assert set(state) >= {"time", "progress", "derived", "monitor", "events"}


# -- the HTTP server -------------------------------------------------------------

def test_server_binds_ephemeral_port_and_serves_index(server):
    assert server.port != 0
    status, _, body = _get(server.url + "/")
    assert status == 200
    doc = json.loads(body)
    assert set(doc["endpoints"]) == {"/metrics", "/progress", "/events"}


def test_metrics_endpoint_content_type(server):
    server.telemetry.metrics.counter("cache.hit").inc()
    status, headers, body = _get(server.url + "/metrics")
    assert status == 200
    assert "version=0.0.4" in headers["Content-Type"]
    assert "repro_cache_hit_total 1" in body


def test_progress_endpoint_serves_live_state(server):
    status, headers, body = _get(server.url + "/progress")
    assert status == 200
    assert headers["Content-Type"] == "application/json"
    doc = json.loads(body)
    assert doc["progress"] == {"enabled": False}  # no run attached yet


def test_unknown_path_is_404(server):
    with pytest.raises(urllib.error.HTTPError) as exc:
        _get(server.url + "/nope")
    assert exc.value.code == 404


def test_sse_stream_tails_the_bus(server):
    bus = server.telemetry.bus
    for i in range(5):
        bus.publish("warmup", i=i)
    status, headers, body = _get(
        server.url + "/events?tail=3&max_seconds=0.2")
    assert status == 200
    assert headers["Content-Type"] == "text/event-stream"
    frames = [json.loads(l[len("data: "):])
              for l in body.splitlines() if l.startswith("data: ")]
    assert [f["data"]["i"] for f in frames] == [2, 3, 4]  # tail=3 backfill


def test_server_against_a_real_run(tight_config):
    tel = Telemetry()
    srv = TelemetryServer(tel, port=0).start()
    try:
        MemQSim(tight_config, telemetry=tel).run(qft(8))
        # post-run pollers still see the finished tracker at exactly 1.0
        _, _, body = _get(srv.url + "/progress")
        doc = json.loads(body)
        assert doc["progress"]["fraction"] == 1.0
        assert doc["progress"]["finished"] is True
        assert doc["events"]["published"] > 0
        _, _, metrics = _get(srv.url + "/metrics")
        assert "repro_progress_fraction 1" in metrics
    finally:
        srv.stop()


def test_server_stop_is_idempotent_and_frees_the_port():
    srv = TelemetryServer(Telemetry(), port=0).start()
    url = srv.url
    srv.stop()
    srv.stop()  # second stop: no-op
    with pytest.raises((urllib.error.URLError, OSError)):
        _get(url + "/", timeout=0.5)


# -- cross-process clock merging -------------------------------------------------

def test_worker_events_re_anchor_onto_the_parent_axis():
    tel = Telemetry()
    wall0 = tel.tracer.epoch_wall
    # simulate codec workers reporting wall-clock completion instants
    tel.bus.publish_at(wall0 + 0.010, "worker.compress", key=0, pid=1111)
    tel.bus.publish_at(wall0 + 0.025, "worker.decompress", key=1, pid=2222)
    tel.bus.publish("kernel", chunk=0)  # parent-side event, own clock
    events = tel.bus.snapshot()
    assert [e.kind for e in events] == [
        "worker.compress", "worker.decompress", "kernel"]
    # wall-clock floats are large; anchor within a microsecond is exact
    # enough for interleaving
    assert events[0].t == pytest.approx(0.010, abs=1e-5)
    assert events[1].t == pytest.approx(0.025, abs=1e-5)
    # all three sit on one non-negative axis
    assert all(e.t >= 0.0 for e in events)


def test_parallel_run_merges_worker_events(tight_config):
    pool_cfg = tight_config.with_updates(workers=2, execution="parallel",
                                         compressor="szlike")
    tel = Telemetry()
    res = MemQSim(pool_cfg, telemetry=tel).run(qft(8))
    assert res.norm() == pytest.approx(1.0, abs=1e-3)
    events = tel.bus.snapshot()
    worker_events = [e for e in events if e.kind.startswith("worker.")]
    assert worker_events, "pool published no worker events"
    wall = tel.tracer.now
    for ev in worker_events:
        assert 0.0 <= ev.t <= wall + 1.0  # anchored inside the run window
        assert "pid" in ev.data and "key" in ev.data
    # merged stream stays seq-ordered even with two clock domains
    seqs = [e.seq for e in events]
    assert seqs == sorted(seqs)
