"""ResourceMonitor: lifecycle, sampling under a running sim, null path."""

from __future__ import annotations

import json
import time

import pytest

from repro.circuits import qft
from repro.core import MemQSim, MemQSimConfig
from repro.telemetry import (
    NULL_RESOURCE_MONITOR,
    NULL_TELEMETRY,
    NullResourceMonitor,
    ResourceMonitor,
    Telemetry,
)
from repro.telemetry.monitor import SAMPLE_FIELDS, read_rss_bytes


def test_read_rss_bytes_positive():
    assert read_rss_bytes() > 0


def test_start_stop_idempotent():
    mon = ResourceMonitor(Telemetry(), interval_ms=1.0)
    assert not mon.running
    mon.start()
    assert mon.start() is mon  # second start: no-op, same thread
    assert mon.running
    mon.stop()
    assert not mon.running
    n = len(mon.samples)
    assert n >= 1  # stop() takes the closing sample
    mon.stop()  # idempotent: no extra sample, no error
    assert len(mon.samples) == n
    # a stopped monitor cannot restart (one monitor per run)
    mon.start()
    assert not mon.running


def test_context_manager_samples():
    with ResourceMonitor(Telemetry(), interval_ms=1.0) as mon:
        time.sleep(0.02)
    assert not mon.running
    assert len(mon.samples) >= 2
    for s in mon.samples:
        assert set(s) == set(SAMPLE_FIELDS)
        assert s["rss_bytes"] > 0


def test_sample_reads_gauges_and_counters():
    tel = Telemetry()
    tel.metrics.gauge("mem.device_arena.bytes").set(4096)
    tel.metrics.counter("cache.hit").inc(3)
    tel.metrics.counter("cache.miss").inc(1)
    mon = ResourceMonitor(tel, interval_ms=1000.0)
    s = mon.sample_once()
    assert s["arena_bytes"] == 4096.0
    assert s["cache_hit_rate"] == pytest.approx(0.75)
    # ...and the sample landed in the tracer as counter events
    assert any(name == "mem.device_arena" for name, _, _ in tel.tracer.counters)


def test_timeline_shape_and_peaks():
    tel = Telemetry()
    mon = ResourceMonitor(tel, interval_ms=1000.0)
    tel.metrics.gauge("mem.device_arena.bytes").set(100)
    mon.sample_once()
    tel.metrics.gauge("mem.device_arena.bytes").set(700)
    mon.sample_once()
    tel.metrics.gauge("mem.device_arena.bytes").set(200)
    mon.stop()
    tl = mon.timeline()
    assert tl["num_samples"] == 3
    assert tl["fields"] == list(SAMPLE_FIELDS)
    assert len(tl["series"]["arena_bytes"]) == 3
    assert tl["peaks"]["arena_bytes"] == 700.0
    json.dumps(tl)  # the payload must be JSON-serializable as-is


def test_monitored_run_records_arena_rise_and_fall(tight_config):
    cfg = tight_config.with_updates(monitor_interval_ms=2.0)
    res = MemQSim(cfg, telemetry=Telemetry()).run(qft(8))
    tl = res.resource_timeline
    assert tl is not None and tl["num_samples"] >= 2
    arena = tl["series"]["arena_bytes"]
    # the scheduler's synchronous mid-pass sample catches the device
    # buffer live; the closing sample sees it freed again
    assert max(arena) > 0
    assert arena[-1] == 0.0
    assert "resource_timeline" in res.to_dict()


def test_trace_counter_events_exported(tight_config, tmp_path):
    tel = Telemetry()
    cfg = tight_config.with_updates(monitor_interval_ms=2.0)
    MemQSim(cfg, telemetry=tel).run(qft(8))
    out = tmp_path / "run.trace.json"
    tel.tracer.write_chrome_trace(str(out))
    events = json.loads(out.read_text())["traceEvents"]
    counters = [e for e in events if e["ph"] == "C"]
    assert {e["name"] for e in counters} >= {
        "mem.rss", "mem.device_arena", "mem.chunk_store",
        "cache.hit_rate", "codec.bytes"}
    ts = [e["ts"] for e in counters]
    assert ts == sorted(ts)  # counter events come out time-ordered


def test_disabled_path_is_null(tight_config):
    # default config: no monitor, no timeline, shared null singleton
    tel = Telemetry()
    res = MemQSim(tight_config, telemetry=tel).run(qft(8))
    assert res.resource_timeline is None
    assert "resource_timeline" not in res.to_dict()
    assert tel.monitor is NULL_RESOURCE_MONITOR
    # monitor_interval_ms set but telemetry disabled: still the null path
    cfg = tight_config.with_updates(monitor_interval_ms=5.0)
    res = MemQSim(cfg, telemetry=NULL_TELEMETRY).run(qft(8))
    assert res.resource_timeline is None


def test_poke_is_rate_limited_to_the_interval():
    mon = ResourceMonitor(Telemetry(), interval_ms=10_000.0)
    mon.poke()
    assert len(mon.samples) == 1
    for _ in range(50):
        mon.poke()  # all inside the interval: free no-ops
    assert len(mon.samples) == 1
    mon._last_poke = -float("inf")  # simulate the interval elapsing
    mon.poke()
    assert len(mon.samples) == 2


def test_stop_takes_final_sample_when_run_raises(tight_config, monkeypatch):
    """The memqsim finally-path must close the series on exceptions too."""
    from repro.pipeline.scheduler import StageScheduler

    captured = {}

    def boom(self, stage):
        captured["monitor"] = self.telemetry.monitor
        raise RuntimeError("injected mid-run failure")

    monkeypatch.setattr(StageScheduler, "run_stage", boom)
    tel = Telemetry()
    cfg = tight_config.with_updates(monitor_interval_ms=1000.0)
    with pytest.raises(RuntimeError, match="injected"):
        MemQSim(cfg, telemetry=tel).run(qft(8))
    mon = captured["monitor"]
    assert mon is not NULL_RESOURCE_MONITOR
    assert not mon.running
    assert len(mon.samples) >= 1  # the closing data point landed
    # and the telemetry no longer points at the dead monitor
    assert tel.monitor is NULL_RESOURCE_MONITOR


def test_sampler_thread_survives_bad_reads(monkeypatch):
    calls = {"n": 0}
    mon = ResourceMonitor(Telemetry(), interval_ms=1.0)
    orig = ResourceMonitor.sample_once

    def flaky(self):
        calls["n"] += 1
        if calls["n"] % 2:
            raise OSError("procfs hiccup")
        return orig(self)

    monkeypatch.setattr(ResourceMonitor, "sample_once", flaky)
    mon.start()
    time.sleep(0.05)
    mon.stop()
    assert calls["n"] >= 4  # kept sampling straight through the failures
    assert len(mon.samples) >= 1


def test_samples_publish_onto_the_bus():
    tel = Telemetry()
    mon = ResourceMonitor(tel, interval_ms=1000.0)
    mon.sample_once()
    events = [e for e in tel.bus.snapshot() if e.kind == "monitor.sample"]
    assert len(events) == 1
    assert events[0].data["rss_bytes"] > 0
    assert "t" not in events[0].data  # the timestamp rides on the event


def test_null_monitor_is_free():
    mon = NullResourceMonitor()
    assert mon.start() is mon
    assert mon.stop() is mon
    assert mon.sample_once() is None
    assert mon.poke() is None
    assert mon.timeline() is None
    assert not mon.enabled and not mon.running
    with NULL_RESOURCE_MONITOR as m:
        assert m is NULL_RESOURCE_MONITOR
    assert NULL_RESOURCE_MONITOR.samples == ()
