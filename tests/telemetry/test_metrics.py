"""Metrics registry unit tests: instruments, buckets, snapshots."""

import json
import time

import pytest

from repro.telemetry import (
    DEFAULT_BYTES_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)


class TestCounter:
    def test_inc(self):
        m = MetricsRegistry()
        c = m.counter("cache.hit")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert m.counter("cache.hit") is c  # get-or-create

    def test_negative_rejected(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_tracks_max(self):
        g = MetricsRegistry().gauge("mem.pool.bytes")
        g.set(100)
        g.set(300)
        g.set(50)
        assert g.value == 50
        assert g.max_value == 300
        assert g.snapshot() == {"value": 50, "max": 300}

    def test_add(self):
        g = MetricsRegistry().gauge("x")
        g.add(10)
        g.add(-4)
        assert g.value == 6
        assert g.max_value == 10


class TestHistogram:
    def test_bucket_edges_le_semantics(self):
        h = Histogram("t", edges=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 10.0, 11.0, 1000.0):
            h.observe(v)
        snap = h.snapshot()
        # bisect_left: v == edge lands in that edge's (<=) bucket
        assert snap["buckets"] == {"<=1": 2, "<=10": 2, "<=100": 1, "+Inf": 1}
        assert snap["count"] == 6
        assert snap["min"] == 0.5
        assert snap["max"] == 1000.0
        assert snap["sum"] == pytest.approx(1027.5)

    def test_empty_snapshot_has_null_min_max(self):
        snap = Histogram("t").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None
        assert snap["mean"] == 0.0

    def test_edges_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("bad", edges=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", edges=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", edges=())

    def test_default_edges(self):
        assert DEFAULT_SECONDS_BUCKETS[0] == 1e-6
        assert DEFAULT_SECONDS_BUCKETS[-1] == 10.0
        assert DEFAULT_BYTES_BUCKETS[0] == 16.0
        assert DEFAULT_BYTES_BUCKETS[-1] == float(16 << 32)  # 16 * 2^32

    def test_bucket_labels_align_with_counts(self):
        h = Histogram("t", edges=(1.0, 2.0))
        assert h.bucket_labels() == ["<=1", "<=2", "+Inf"]
        assert len(h.counts) == 3


class TestTimer:
    def test_timer_observes_elapsed(self):
        m = MetricsRegistry()
        with m.timer("codec.compress.seconds") as t:
            time.sleep(0.002)
        assert t.seconds >= 0.002
        h = m.histogram("codec.compress.seconds")
        assert h.count == 1
        assert h.total == pytest.approx(t.seconds)


class TestRegistry:
    def test_snapshot_shape(self):
        m = MetricsRegistry()
        m.counter("c").inc(2)
        m.gauge("g").set(1.5)
        m.histogram("h").observe(0.5)
        snap = m.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": {"value": 1.5, "max": 1.5}}
        assert snap["histograms"]["h"]["count"] == 1

    def test_declare_standard_preregisters(self):
        m = MetricsRegistry()
        m.declare_standard()
        snap = m.snapshot()
        for name in ("transfer.h2d.bytes", "transfer.d2h.bytes",
                     "cache.hit", "cache.miss", "codec.compress.bytes_out"):
            assert snap["counters"][name] == 0
        for name in ("codec.compress.seconds", "codec.decompress.seconds",
                     "pool.acquire.wait.seconds"):
            assert snap["histograms"][name]["count"] == 0

    def test_to_json_is_valid(self, tmp_path):
        m = MetricsRegistry()
        m.declare_standard()
        m.histogram("h").observe(0.1)
        doc = json.loads(m.to_json())
        assert "counters" in doc and "histograms" in doc
        path = tmp_path / "m.json"
        nb = m.write_json(str(path))
        assert nb == path.stat().st_size
        json.loads(path.read_text())

    def test_clear(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.clear()
        assert m.snapshot() == {"counters": {}, "gauges": {},
                                "histograms": {}}


class TestNullMetrics:
    def test_instruments_are_shared_noops(self):
        nm = NullMetrics()
        c = nm.counter("a")
        assert nm.counter("b") is c
        c.inc(100)
        assert c.snapshot() == 0
        nm.gauge("g").set(5)
        nm.histogram("h").observe(1.0)
        with nm.timer("t"):
            pass
        assert nm.snapshot() == {"counters": {}, "gauges": {},
                                 "histograms": {}}

    def test_enabled_flags(self):
        assert MetricsRegistry().enabled is True
        assert NullMetrics().enabled is False


class TestDerivedGauges:
    def test_decode_bytes_per_s(self):
        reg = MetricsRegistry()
        reg.counter("codec.decompress.bytes").inc(8_000_000)
        reg.histogram("codec.decompress.seconds").observe(2.0)
        derived = reg.derived_gauges()
        assert derived["codec.decode_bytes_per_s"] == pytest.approx(4_000_000)

    def test_decode_rate_absent_without_samples(self):
        reg = MetricsRegistry()
        reg.counter("codec.decompress.bytes").inc(100)
        assert reg.derived_gauges().get("codec.decode_bytes_per_s") is None

    def test_decode_rate_in_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("codec.decompress.bytes").inc(10)
        reg.histogram("codec.decompress.seconds").observe(0.5)
        assert "codec.decode_bytes_per_s" in reg.snapshot()["derived"]
