"""Tracer unit tests: nesting, attributes, export formats."""

import json
import threading
import time

import pytest

from repro.telemetry import NullTracer, Span, Tracer


class TestSpanRecording:
    def test_span_context_measures_duration(self):
        tr = Tracer()
        with tr.span("work") as sp:
            time.sleep(0.002)
        assert len(tr) == 1
        assert sp.duration >= 0.002
        assert tr.spans[0] is sp

    def test_span_attributes(self):
        tr = Tracer()
        with tr.span("h2d", chunk=3, nbytes=65536):
            pass
        sp = tr.spans[0]
        assert sp.args == {"chunk": 3, "nbytes": 65536}

    def test_nesting_depth_and_parent(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("mid"):
                with tr.span("inner"):
                    pass
        by_name = {s.name: s for s in tr.spans}
        assert by_name["outer"].depth == 0
        assert by_name["outer"].parent is None
        assert by_name["mid"].depth == 1
        assert by_name["mid"].parent == "outer"
        assert by_name["inner"].depth == 2
        assert by_name["inner"].parent == "mid"

    def test_close_order_is_innermost_first(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        assert [s.name for s in tr.spans] == ["inner", "outer"]

    def test_record_already_measured(self):
        tr = Tracer()
        sp = tr.record("kernel", 0.25, chunk=1)
        assert sp.duration == 0.25
        assert sp.start >= 0.0
        assert tr.spans == [sp]

    def test_record_inherits_open_span_as_parent(self):
        tr = Tracer()
        with tr.span("group_pass"):
            sp = tr.record("d2h", 0.001)
        assert sp.parent == "group_pass"
        assert sp.depth == 1

    def test_instant_has_zero_duration(self):
        tr = Tracer()
        sp = tr.instant("marker", why="test")
        assert sp.duration == 0.0

    def test_find_and_total_seconds(self):
        tr = Tracer()
        tr.record("a", 0.5)
        tr.record("b", 0.25)
        tr.record("a", 0.5)
        assert len(tr.find("a")) == 2
        assert tr.total_seconds("a") == pytest.approx(1.0)
        assert tr.total_seconds() == pytest.approx(1.25)

    def test_clear(self):
        tr = Tracer()
        tr.record("a", 0.1)
        tr.clear()
        assert len(tr) == 0

    def test_threads_get_distinct_tids(self):
        tr = Tracer()
        # Hold all workers alive at once: thread idents are reused after a
        # thread exits, which would collapse tids.
        barrier = threading.Barrier(3)

        def work():
            with tr.span("t"):
                barrier.wait(timeout=5)

        threads = [threading.Thread(target=work) for _ in range(3)]
        with tr.span("main"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        tids = {s.tid for s in tr.spans}
        assert len(tids) == 4  # main + 3 workers


class TestChromeTraceExport:
    def make_tracer(self):
        tr = Tracer(process_name="memqsim-test")
        with tr.span("outer", cat="pipeline"):
            tr.record("inner", 0.002, chunk=0)
        return tr

    def test_schema_fields(self):
        doc = self.make_tracer().to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        meta = events[0]
        assert meta["ph"] == "M"
        assert meta["args"]["name"] == "memqsim-test"
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        for e in complete:
            assert isinstance(e["ts"], float)
            assert isinstance(e["dur"], float)
            assert e["ts"] >= 0.0
            assert e["dur"] >= 0.0
            assert e["pid"] == 1
            assert "args" in e and "name" in e

    def test_events_sorted_by_start(self):
        doc = self.make_tracer().to_chrome_trace()
        starts = [e["ts"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert starts == sorted(starts)

    def test_timestamps_are_microseconds(self):
        tr = Tracer()
        tr.record("x", 0.5)  # 0.5 s = 5e5 us
        [e] = [e for e in tr.to_chrome_trace()["traceEvents"] if e["ph"] == "X"]
        assert e["dur"] == pytest.approx(5e5)

    def test_write_roundtrip(self, tmp_path):
        path = tmp_path / "t.json"
        nb = self.make_tracer().write_chrome_trace(str(path))
        assert nb == path.stat().st_size
        doc = json.loads(path.read_text())
        assert {e["name"] for e in doc["traceEvents"]} >= {"outer", "inner"}


class TestJsonlExport:
    def test_one_object_per_span(self, tmp_path):
        tr = Tracer()
        with tr.span("a", k=1):
            pass
        tr.record("b", 0.001)
        path = tmp_path / "spans.jsonl"
        n = tr.write_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert n == len(lines) == 2
        objs = [json.loads(line) for line in lines]
        assert {o["name"] for o in objs} == {"a", "b"}
        for o in objs:
            assert set(o) == {"name", "start", "duration", "tid", "depth",
                              "parent", "args"}


class TestSummary:
    def test_aggregates_per_name(self):
        tr = Tracer()
        tr.record("h2d", 0.010)
        tr.record("h2d", 0.020)
        tr.record("kernel", 0.005)
        text = tr.summary()
        assert "h2d" in text and "kernel" in text
        # h2d total (30ms) sorts above kernel (5ms)
        assert text.index("h2d") < text.index("kernel")


class TestNullTracer:
    def test_null_span_is_shared_and_inert(self):
        nt = NullTracer()
        ctx1 = nt.span("a", x=1)
        ctx2 = nt.span("b")
        assert ctx1 is ctx2
        with ctx1 as sp:
            assert sp is None
        assert len(nt) == 0
        assert nt.find("a") == []
        assert nt.total_seconds() == 0.0

    def test_null_exports_are_empty(self, tmp_path):
        nt = NullTracer()
        assert nt.to_chrome_trace()["traceEvents"] == []
        assert nt.to_jsonl() == []
        p = tmp_path / "empty.jsonl"
        assert nt.write_jsonl(str(p)) == 0
        assert p.read_text() == ""

    def test_enabled_flags(self):
        assert Tracer().enabled is True
        assert NullTracer().enabled is False
