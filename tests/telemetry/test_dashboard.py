"""Terminal dashboard: sparklines, frame rendering, local + remote loops."""

from __future__ import annotations

import io

from repro.circuits import qft
from repro.core import MemQSim
from repro.telemetry import Telemetry
from repro.telemetry.dashboard import (
    LiveDashboard,
    progress_bar,
    render_dashboard,
    sparkline,
    top,
)
from repro.telemetry.live import TelemetryServer, live_state


def test_sparkline_basic_shapes():
    assert sparkline([], width=8) == " " * 8
    assert len(sparkline([1.0, 2.0, 3.0], width=8)) == 8
    # monotone series renders monotone glyphs
    s = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
    assert list(s) == sorted(s, key=" ▁▂▃▄▅▆▇█".index)
    # constant nonzero series: mid-level bars; all-zero: blank
    assert set(sparkline([5.0, 5.0], width=2)) == {"▄"}
    assert sparkline([0.0, 0.0], width=2) == "  "


def test_sparkline_bucket_averages_long_series():
    series = [float(i) for i in range(1000)]
    s = sparkline(series, width=10)
    assert len(s) == 10
    assert s[0] == " " and s[-1] == "█"  # rises across the window


def test_progress_bar():
    assert progress_bar(0.0, width=4) == "░░░░"
    assert progress_bar(0.5, width=4) == "██░░"
    assert progress_bar(1.0, width=4) == "████"
    assert progress_bar(7.5, width=4) == "████"  # clamped


def test_render_dashboard_synthetic_state():
    state = {
        "progress": {
            "run_id": "cafe01", "fraction": 0.25, "eta_seconds": 90.0,
            "elapsed_seconds": 30.0, "stages_done": 1, "stages_total": 4,
            "groups_done": 2, "groups_total": 8,
            "current_stage": {"index": 1, "kind": "gate",
                              "groups": 4, "groups_done": 2},
            "finished": False,
        },
        "monitor": {"running": True, "samples": [
            {"rss_bytes": 1e6, "arena_bytes": 0.0, "cache_hit_rate": 0.0},
            {"rss_bytes": 2e6, "arena_bytes": 4096.0, "cache_hit_rate": 0.5},
        ]},
        "derived": {"cache.hit_rate": 0.5, "codec.compression_ratio": 3.0},
        "events": {"published": 12, "dropped": 2, "tail": [
            {"t": 0.001, "kind": "h2d", "data": {"chunk": 0}},
        ]},
    }
    frame = render_dashboard(state, width=78)
    assert "cafe01" in frame
    assert " 25.00%" in frame
    assert "eta 01:30" in frame
    assert "stage 1 (gate): 2/4 groups" in frame
    assert "rss" in frame and "arena" in frame and "cache" in frame
    assert "ratio 3.00x" in frame
    assert "events 12 (2 dropped)" in frame
    assert "h2d" in frame
    assert all(len(line) <= 78 for line in frame.splitlines())


def test_render_dashboard_handles_empty_state():
    frame = render_dashboard({}, width=60)
    assert frame.startswith("repro live")
    frame = render_dashboard({"progress": {"enabled": False}}, width=60)
    assert "no plan-aware progress" in frame


def test_live_dashboard_thread_draws_frames(tight_config):
    tel = Telemetry()
    out = io.StringIO()
    with LiveDashboard(tel, interval=0.05, stream=out, width=70):
        MemQSim(tight_config, telemetry=tel).run(qft(8))
    text = out.getvalue()
    assert "repro live" in text
    # the final frame (drawn by stop()) shows the finished run
    assert "100.00%" in text


def test_render_dashboard_matches_live_state_shape(tight_config):
    tel = Telemetry()
    MemQSim(tight_config, telemetry=tel).run(qft(8))
    frame = render_dashboard(live_state(tel), width=78)
    assert "100.00%" in frame
    assert "events" in frame


def test_top_once_against_server(tight_config):
    tel = Telemetry()
    srv = TelemetryServer(tel, port=0).start()
    try:
        MemQSim(tight_config, telemetry=tel).run(qft(8))
        out = io.StringIO()
        assert top(srv.url, once=True, stream=out) == 0
        assert "100.00%" in out.getvalue()
    finally:
        srv.stop()


def test_top_unreachable_endpoint_exits_nonzero():
    out = io.StringIO()
    assert top("http://127.0.0.1:1", once=True, stream=out) == 1
    assert "cannot reach" in out.getvalue()
