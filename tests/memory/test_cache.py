"""Unit tests for the decompressed-chunk cache."""

import numpy as np
import pytest

from repro.compression import get_compressor
from repro.memory import ChunkCache, ChunkLayout, CompressedChunkStore, MemoryTracker


def rig(n=6, c=3, capacity=4, policy="mru"):
    tracker = MemoryTracker()
    lay = ChunkLayout(n, c)
    store = CompressedChunkStore(lay, get_compressor("zlib"), tracker)
    store.init_zero_state()
    return ChunkCache(store, capacity, policy, tracker), store, tracker


class TestBasics:
    def test_validation(self):
        _, store, tracker = rig()
        with pytest.raises(ValueError):
            ChunkCache(store, 0)
        with pytest.raises(ValueError):
            ChunkCache(store, 4, policy="fifo")

    def test_load_hit_skips_inner(self):
        cache, store, _ = rig()
        cache.load(0)
        before = store.stats.loads
        cache.load(0)
        assert store.stats.loads == before
        assert cache.cache_stats.hits == 1

    def test_load_returns_copy(self):
        cache, _, _ = rig()
        a = cache.load(0)
        a[:] = 99.0
        b = cache.load(0)
        assert not np.any(b == 99.0)

    def test_load_into_out_buffer(self):
        cache, _, _ = rig()
        buf = np.empty(8, dtype=np.complex128)
        out = cache.load(1, out=buf)
        assert out is buf

    def test_delegation(self):
        cache, store, _ = rig()
        assert cache.layout is store.layout
        assert cache.compressor is store.compressor


class TestWriteBack:
    def test_store_is_deferred(self):
        cache, store, _ = rig()
        data = np.full(8, 0.25, dtype=np.complex128)
        before = store.stats.stores
        cache.store(0, data)
        assert store.stats.stores == before  # not yet compressed
        cache.flush()
        assert store.stats.stores == before + 1
        assert np.array_equal(store.load(0), data)

    def test_repeated_stores_one_writeback(self):
        cache, store, _ = rig()
        before = store.stats.stores
        for i in range(5):
            cache.store(0, np.full(8, float(i), dtype=np.complex128))
        cache.flush()
        assert store.stats.stores == before + 1

    def test_eviction_writes_back_dirty(self):
        cache, store, _ = rig(capacity=2)
        cache.store(0, np.full(8, 1.0, dtype=np.complex128))
        cache.store(1, np.full(8, 2.0, dtype=np.complex128))
        cache.store(2, np.full(8, 3.0, dtype=np.complex128))  # evicts one
        assert cache.cache_stats.evictions == 1
        assert cache.cache_stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache, store, _ = rig(capacity=2)
        cache.load(0)
        cache.load(1)
        cache.load(2)
        assert cache.cache_stats.evictions == 1
        assert cache.cache_stats.writebacks == 0

    def test_store_size_checked(self):
        cache, _, _ = rig()
        with pytest.raises(ValueError):
            cache.store(0, np.zeros(4, dtype=np.complex128))


class TestPolicies:
    def test_mru_keeps_prefix_under_sweep(self):
        cache, _, _ = rig(n=7, c=3, capacity=4, policy="mru")  # 16 chunks
        for _ in range(2):
            for k in range(16):
                cache.load(k)
        # second sweep should hit on the retained low chunks
        assert cache.cache_stats.hits >= 3

    def test_lru_thrashes_under_sweep(self):
        cache, _, _ = rig(n=7, c=3, capacity=4, policy="lru")
        for _ in range(2):
            for k in range(16):
                cache.load(k)
        assert cache.cache_stats.hits == 0

    def test_lru_wins_on_hot_spot(self):
        cache, _, _ = rig(n=7, c=3, capacity=2, policy="lru")
        for _ in range(10):
            cache.load(0)
            cache.load(1)
        assert cache.cache_stats.hit_rate > 0.8


class TestConsistency:
    def test_permute_flushes_first(self):
        cache, store, _ = rig()
        cache.store(0, np.full(8, 0.5, dtype=np.complex128))
        nc = store.layout.num_chunks
        perm = list(range(nc))
        perm[0], perm[1] = perm[1], perm[0]
        cache.permute(perm)
        assert np.array_equal(cache.load(1), np.full(8, 0.5, dtype=np.complex128))
        assert np.all(cache.load(0) == 0)

    def test_zero_chunk_invalidates(self):
        cache, _, _ = rig()
        cache.store(3, np.full(8, 0.5, dtype=np.complex128))
        cache.zero_chunk(3)
        assert np.all(cache.load(3) == 0)

    def test_to_statevector_sees_dirty_data(self):
        cache, _, _ = rig()
        cache.store(0, np.full(8, 1 / np.sqrt(64), dtype=np.complex128))
        sv = cache.to_statevector()
        assert sv[0] == pytest.approx(1 / np.sqrt(64))

    def test_tracker_accounting(self):
        cache, _, tracker = rig(capacity=2)
        cache.load(0)
        cache.load(1)
        assert tracker.current("chunk_cache") == 2 * 8 * 16
        cache.flush()
        assert tracker.current("chunk_cache") == 0

    def test_repr(self):
        cache, _, _ = rig()
        assert "ChunkCache" in repr(cache)


class TestEndToEnd:
    @pytest.mark.parametrize("policy", ["lru", "mru"])
    def test_cached_run_identical(self, policy, dense):
        from repro.circuits import random_circuit
        from repro.core import MemQSim, MemQSimConfig
        from repro.device import DeviceSpec

        circ = random_circuit(8, 50, seed=44)
        cfg = MemQSimConfig(chunk_qubits=4, compressor="zlib",
                            device=DeviceSpec(memory_bytes=1 << 13))
        ref = MemQSim(cfg).run(circ).statevector()
        got = MemQSim(cfg.with_updates(cache_chunks=6, cache_policy=policy)) \
            .run(circ).statevector()
        assert np.allclose(got, ref, atol=1e-12)

    def test_cached_lossy_run_respects_bounds(self):
        from repro.circuits import qft
        from repro.core import MemQSim, MemQSimConfig
        from repro.device import DeviceSpec
        from repro.statevector import DenseSimulator

        circ = qft(9)
        cfg = MemQSimConfig(
            chunk_qubits=4,
            compressor="szlike", compressor_options={"error_bound": 1e-8},
            device=DeviceSpec(memory_bytes=1 << 13),
            cache_chunks=8,
        )
        res = MemQSim(cfg).run(circ)
        ref = DenseSimulator().run(circ).data
        assert res.fidelity_vs(ref) > 1 - 1e-6

    def test_cache_reduces_codec_traffic(self):
        from repro.circuits import qft
        from repro.core import MemQSim, MemQSimConfig
        from repro.device import DeviceSpec

        circ = qft(9)
        cfg = MemQSimConfig(chunk_qubits=4, compressor="zlib",
                            device=DeviceSpec(memory_bytes=1 << 13))
        plain = MemQSim(cfg).run(circ)
        cached = MemQSim(cfg.with_updates(cache_chunks=32)).run(circ)
        assert cached.store.stats.stores < plain.store.stats.stores
