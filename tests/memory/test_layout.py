"""Unit tests for chunk layout index arithmetic (plus hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import ChunkLayout


class TestBasics:
    def test_sizes(self):
        lay = ChunkLayout(10, 4)
        assert lay.num_amplitudes == 1024
        assert lay.chunk_size == 16
        assert lay.num_chunks == 64
        assert lay.num_global_qubits == 6
        assert lay.chunk_nbytes == 256

    def test_chunk_equals_whole_vector(self):
        lay = ChunkLayout(5, 5)
        assert lay.num_chunks == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ChunkLayout(4, 0)
        with pytest.raises(ValueError):
            ChunkLayout(4, 5)

    def test_classification(self):
        lay = ChunkLayout(8, 3)
        assert lay.is_local(0) and lay.is_local(2)
        assert not lay.is_local(3) and not lay.is_local(7)
        assert lay.local_qubits([0, 2, 5]) == (0, 2)
        assert lay.global_qubits([0, 2, 5]) == (5,)

    def test_qubit_range_checked(self):
        with pytest.raises(ValueError):
            ChunkLayout(4, 2).is_local(4)


class TestSplitJoin:
    def test_exhaustive_bijection_small(self):
        lay = ChunkLayout(8, 3)
        seen = set()
        for i in range(lay.num_amplitudes):
            c, o = lay.split(i)
            assert lay.join(c, o) == i
            seen.add((c, o))
        assert len(seen) == lay.num_amplitudes

    def test_bounds_checked(self):
        lay = ChunkLayout(4, 2)
        with pytest.raises(ValueError):
            lay.split(16)
        with pytest.raises(ValueError):
            lay.join(4, 0)
        with pytest.raises(ValueError):
            lay.join(0, 4)

    def test_chunk_base_index(self):
        lay = ChunkLayout(6, 2)
        assert lay.chunk_base_index(3) == 12

    @given(
        n=st.integers(min_value=2, max_value=24),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_bijection(self, n, data):
        c = data.draw(st.integers(min_value=1, max_value=n))
        lay = ChunkLayout(n, c)
        i = data.draw(st.integers(min_value=0, max_value=lay.num_amplitudes - 1))
        chunk, off = lay.split(i)
        assert 0 <= chunk < lay.num_chunks
        assert 0 <= off < lay.chunk_size
        assert lay.join(chunk, off) == i


class TestChunkGroups:
    def test_no_global_qubits(self):
        lay = ChunkLayout(6, 3)
        pl = lay.chunk_groups([0, 1])
        assert pl.group_qubits == ()
        assert pl.groups == tuple((k,) for k in range(8))

    def test_single_global_qubit_pairs(self):
        lay = ChunkLayout(6, 3)
        pl = lay.chunk_groups([4])
        assert pl.group_qubits == (4,)
        assert pl.virtual_positions == (3,)
        # qubit 4 -> chunk bit 1: pairs differ by 2
        assert (0, 2) in pl.groups and (1, 3) in pl.groups

    def test_groups_partition_all_chunks(self):
        lay = ChunkLayout(9, 3)
        pl = lay.chunk_groups([3, 7, 8])
        seen = [k for g in pl.groups for k in g]
        assert sorted(seen) == list(range(lay.num_chunks))
        assert all(len(g) == 8 for g in pl.groups)

    def test_group_members_ordered_by_subindex(self):
        lay = ChunkLayout(6, 2)  # chunk bits for qubits 2..5
        pl = lay.chunk_groups([2, 4])  # bits 0 and 2 of chunk id
        g0 = pl.groups[0]
        # base 0: j=0 -> 0; j=1 (bit of qubit2) -> 1; j=2 (qubit4) -> 4; j=3 -> 5
        assert g0 == (0, 1, 4, 5)

    def test_virtual_positions_are_contiguous(self):
        lay = ChunkLayout(10, 4)
        pl = lay.chunk_groups([7, 5, 9])
        assert pl.group_qubits == (5, 7, 9)
        assert pl.virtual_positions == (4, 5, 6)

    def test_mixed_local_global_filtering(self):
        lay = ChunkLayout(6, 3)
        pl = lay.chunk_groups([1, 5])  # 1 local, 5 global
        assert pl.group_qubits == (5,)

    def test_gate_virtual_qubits(self):
        lay = ChunkLayout(6, 3)
        pl = lay.chunk_groups([4])
        assert lay.gate_virtual_qubits((1, 4), pl) == (1, 3)
        assert lay.gate_virtual_qubits((4, 2), pl) == (3, 2)

    @given(
        n=st.integers(min_value=3, max_value=14),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_groups_partition(self, n, data):
        c = data.draw(st.integers(min_value=1, max_value=n - 1))
        lay = ChunkLayout(n, c)
        num_g = data.draw(st.integers(min_value=0, max_value=min(3, n - c)))
        gq = data.draw(
            st.lists(
                st.integers(min_value=c, max_value=n - 1),
                min_size=num_g,
                max_size=num_g,
                unique=True,
            )
        )
        pl = lay.chunk_groups(gq)
        seen = sorted(k for g in pl.groups for k in g)
        assert seen == list(range(lay.num_chunks))
        # concatenated group buffer reconstructs every amplitude once
        t = len(pl.group_qubits)
        assert all(len(g) == 1 << t for g in pl.groups)
