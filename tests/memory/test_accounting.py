"""MemoryTracker edge cases and telemetry gauge mirroring."""

import math

import pytest

from repro.memory.accounting import MemoryTracker
from repro.telemetry import Telemetry


class TestBalances:
    def test_alloc_free_roundtrip(self):
        t = MemoryTracker()
        t.alloc("chunk_store", 100)
        t.free("chunk_store", 100)
        assert t.current("chunk_store") == 0
        assert t.peak("chunk_store") == 100

    def test_free_to_zero_keeps_peak(self):
        t = MemoryTracker()
        t.alloc("a", 64)
        t.alloc("a", 64)
        t.free("a", 128)
        assert t.current("a") == 0
        assert t.peak("a") == 128
        assert t.total_current() == 0
        assert t.total_peak() == 128

    def test_negative_free_raises(self):
        t = MemoryTracker()
        t.alloc("a", 10)
        with pytest.raises(ValueError):
            t.free("a", 11)
        with pytest.raises(ValueError):
            t.free("never_allocated", 1)
        # failed free must not corrupt the balance
        assert t.current("a") == 10

    def test_negative_alloc_raises(self):
        with pytest.raises(ValueError):
            MemoryTracker().alloc("a", -1)

    def test_unknown_category_reads_as_zero(self):
        t = MemoryTracker()
        assert t.current("ghost") == 0
        assert t.peak("ghost") == 0


class TestPeaks:
    def test_multi_category_peak_interleaving(self):
        # Per-category peaks happen at different instants than the total
        # peak: total peak is the high-water mark of the *sum*.
        t = MemoryTracker()
        t.alloc("host", 100)      # host=100, total=100
        t.alloc("device", 50)     # total=150 <- total peak so far
        t.free("host", 100)       # total=50
        t.alloc("device", 60)     # device=110 (its peak), total=110
        assert t.peak("host") == 100
        assert t.peak("device") == 110
        assert t.total_peak() == 150
        assert t.total_current() == 110

    def test_resize_does_not_double_count(self):
        t = MemoryTracker()
        t.alloc("buf", 100)
        t.resize("buf", 100, 120)
        # a naive alloc-then-free would have shown a 220 peak
        assert t.peak("buf") == 120
        assert t.current("buf") == 120

    def test_categories_sorted_union(self):
        t = MemoryTracker()
        t.alloc("b", 1)
        t.alloc("a", 1)
        t.free("b", 1)
        assert t.categories() == ("a", "b")


class TestSnapshots:
    def test_snapshot_labels_and_isolation(self):
        t = MemoryTracker()
        t.alloc("a", 10)
        s1 = t.snapshot("after-alloc")
        t.alloc("a", 5)
        s2 = t.snapshot("later")
        assert [s.label for s in t.snapshots] == ["after-alloc", "later"]
        # snapshots are point-in-time copies, not live views
        assert s1.current == {"a": 10} and s1.total == 10
        assert s2.current == {"a": 15} and s2.total == 15


class TestDerivedFigures:
    def test_dense_bytes(self):
        assert MemoryTracker.dense_bytes(10) == (1 << 10) * 16

    def test_effective_ratio(self):
        t = MemoryTracker()
        t.alloc("chunk_store", MemoryTracker.dense_bytes(10) // 4)
        t.free("chunk_store", t.current("chunk_store"))
        assert t.effective_ratio(10) == pytest.approx(4.0)

    def test_effective_ratio_empty_is_inf(self):
        assert MemoryTracker().effective_ratio(10) == math.inf

    def test_extra_qubits_from_ratio(self):
        assert MemoryTracker.extra_qubits_from_ratio(32.0) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            MemoryTracker.extra_qubits_from_ratio(0.0)

    def test_report_lists_all_categories(self):
        t = MemoryTracker()
        t.alloc("host", 1024)
        t.alloc("device", 2048)
        rep = t.report()
        assert "host" in rep and "device" in rep and "TOTAL" in rep
        assert "3,072" in rep


class TestGaugeMirroring:
    def test_alloc_free_drive_gauge(self):
        tel = Telemetry()
        t = MemoryTracker(telemetry=tel)
        t.alloc("chunk_store", 100)
        t.alloc("chunk_store", 50)
        t.free("chunk_store", 120)
        g = tel.metrics.snapshot()["gauges"]["mem.chunk_store.bytes"]
        assert g["value"] == 30
        assert g["max"] == 150  # gauge max mirrors the tracker peak
        assert t.peak("chunk_store") == 150

    def test_attach_telemetry_mirrors_existing_balances(self):
        t = MemoryTracker()
        t.alloc("host", 77)
        tel = Telemetry()
        t.attach_telemetry(tel)
        g = tel.metrics.snapshot()["gauges"]["mem.host.bytes"]
        assert g["value"] == 77

    def test_disabled_telemetry_records_nothing(self):
        tel = Telemetry.disabled()
        t = MemoryTracker(telemetry=tel)
        t.alloc("host", 10)
        t.attach_telemetry(tel)
        assert tel.metrics.snapshot() == {"counters": {}, "gauges": {},
                                          "histograms": {}}
        assert t.peak("host") == 10
