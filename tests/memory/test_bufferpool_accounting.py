"""Unit tests for the buffer pool and memory tracker."""

import math

import numpy as np
import pytest

from repro.memory import BufferPool, MemoryTracker


class TestBufferPool:
    def test_acquire_release_cycle(self):
        pool = BufferPool(2, 64)
        a = pool.acquire()
        b = pool.acquire()
        assert a.shape == (64,) and a.dtype == np.complex128
        assert pool.available == 0
        pool.release(a)
        pool.release(b)
        assert pool.available == 2

    def test_exhaustion_raises(self):
        pool = BufferPool(1, 8)
        pool.acquire()
        with pytest.raises(RuntimeError):
            pool.acquire()

    def test_foreign_buffer_rejected(self):
        pool = BufferPool(1, 8)
        with pytest.raises(ValueError):
            pool.release(np.empty(8, dtype=np.complex128))

    def test_double_release_rejected(self):
        pool = BufferPool(1, 8)
        buf = pool.acquire()
        pool.release(buf)
        with pytest.raises(ValueError):
            pool.release(buf)

    def test_peak_in_use(self):
        pool = BufferPool(3, 8)
        a = pool.acquire()
        b = pool.acquire()
        pool.release(a)
        pool.release(b)
        assert pool.peak_in_use == 2

    def test_accounting(self):
        tracker = MemoryTracker()
        pool = BufferPool(2, 32, tracker)
        assert tracker.current("host_buffers") == 2 * 32 * 16
        pool.close()
        assert tracker.current("host_buffers") == 0

    def test_close_with_outstanding_raises(self):
        pool = BufferPool(1, 8)
        pool.acquire()
        with pytest.raises(RuntimeError):
            pool.close()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BufferPool(0, 8)
        with pytest.raises(ValueError):
            BufferPool(1, 0)


class TestMemoryTracker:
    def test_alloc_free_balance(self):
        t = MemoryTracker()
        t.alloc("x", 100)
        t.alloc("x", 50)
        t.free("x", 120)
        assert t.current("x") == 30
        assert t.peak("x") == 150

    def test_negative_balance_rejected(self):
        t = MemoryTracker()
        t.alloc("x", 10)
        with pytest.raises(ValueError):
            t.free("x", 20)

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            MemoryTracker().alloc("x", -1)

    def test_total_peak_across_categories(self):
        t = MemoryTracker()
        t.alloc("a", 100)
        t.alloc("b", 50)
        t.free("a", 100)
        t.alloc("b", 10)
        assert t.total_peak() == 150
        assert t.total_current() == 60

    def test_resize_does_not_double_count(self):
        t = MemoryTracker()
        t.alloc("a", 100)
        t.resize("a", 100, 80)
        assert t.peak("a") == 100
        assert t.current("a") == 80

    def test_snapshot(self):
        t = MemoryTracker()
        t.alloc("a", 7)
        snap = t.snapshot("after-a")
        assert snap.total == 7
        assert t.snapshots[0].label == "after-a"

    def test_dense_bytes(self):
        assert MemoryTracker.dense_bytes(10) == 1024 * 16

    def test_effective_ratio(self):
        t = MemoryTracker()
        t.alloc("chunk_store", 1024)
        assert t.effective_ratio(10) == pytest.approx(16.0)

    def test_effective_ratio_empty_is_inf(self):
        assert math.isinf(MemoryTracker().effective_ratio(10))

    def test_extra_qubits_from_ratio(self):
        assert MemoryTracker.extra_qubits_from_ratio(32.0) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            MemoryTracker.extra_qubits_from_ratio(0.0)

    def test_report_renders(self):
        t = MemoryTracker()
        t.alloc("a", 5)
        rep = t.report()
        assert "a" in rep and "TOTAL" in rep
