"""Tests for the byte-exact traffic ledger and the access recorder."""

import threading

import numpy as np
import pytest

from repro.compression import get_compressor
from repro.memory import (
    NULL_ACCESS_RECORDER,
    NULL_TRAFFIC_LEDGER,
    ChunkAccessRecorder,
    ChunkCache,
    ChunkLayout,
    CompressedChunkStore,
    DiskChunkStore,
    MemoryTracker,
    TrafficLedger,
)
from repro.telemetry import MetricsRegistry, Telemetry


def rand_state(n, seed=0):
    g = np.random.default_rng(seed)
    v = g.standard_normal(1 << n) + 1j * g.standard_normal(1 << n)
    return v / np.linalg.norm(v)


class TestLedgerUnit:
    def test_record_totals_and_ops(self):
        led = TrafficLedger()
        led.record("disk", "write", 100)
        led.record("disk", "write", 50, ops=2)
        assert led.total_bytes("disk", "write") == 150
        assert led.totals()["disk.write"] == {"bytes": 150, "ops": 3}

    def test_total_bytes_filters(self):
        led = TrafficLedger()
        led.record("arena", "h2d", 10)
        led.record("arena", "d2h", 20)
        led.record("disk", "read", 5)
        assert led.total_bytes("arena") == 30
        assert led.total_bytes(direction="d2h") == 20
        assert led.total_bytes() == 35

    def test_stage_attribution(self):
        led = TrafficLedger()
        led.record("codec", "raw_in", 7)  # before any pass: out-of-stage
        led.set_pass(0, 3)
        led.record("codec", "raw_in", 100)
        led.set_pass(1, 0)
        led.record("codec", "raw_in", 40)
        led.set_pass()
        assert led.stage_bytes(0, "codec", "raw_in") == 100
        assert led.stage_bytes(1, "codec", "raw_in") == 40
        assert led.stage_bytes(-1, "codec", "raw_in") == 7
        assert led.by_group(0) == {3: {"codec.raw_in": 100}}

    def test_attributed_override_restores_context(self):
        led = TrafficLedger()
        led.set_pass(5, 1)
        with led.attributed(2, 0):
            led.record("codec", "compressed_out", 11)
        led.record("codec", "compressed_out", 3)
        assert led.stage_bytes(2, "codec", "compressed_out") == 11
        assert led.stage_bytes(5, "codec", "compressed_out") == 3

    def test_worker_attribution_partitions_totals(self):
        led = TrafficLedger()
        led.record("codec", "compressed_out", 10)            # inline
        led.record("codec", "compressed_out", 20, worker=41)
        led.record("codec", "compressed_out", 30, worker=42)
        per_worker = led.by_worker()
        assert per_worker[0]["codec.compressed_out"] == 10
        assert per_worker[41]["codec.compressed_out"] == 20
        total = sum(r.get("codec.compressed_out", 0)
                    for r in per_worker.values())
        assert total == led.total_bytes("codec", "compressed_out") == 60

    def test_metrics_mirror(self):
        reg = MetricsRegistry()
        led = TrafficLedger(reg)
        led.record("cache", "hit", 64)
        led.record("cache", "hit", 64)
        assert reg.counter("traffic.cache.hit.bytes").value == 128

    def test_thread_safety(self):
        led = TrafficLedger()

        def pump():
            for _ in range(1000):
                led.record("disk", "write", 1)

        threads = [threading.Thread(target=pump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert led.total_bytes("disk", "write") == 4000
        assert led.totals()["disk.write"]["ops"] == 4000

    def test_to_dict_is_json_shaped(self):
        import json

        led = TrafficLedger()
        led.set_pass(0, 0)
        led.record("arena", "h2d", 10, worker=3)
        doc = json.loads(json.dumps(led.to_dict()))
        assert doc["totals"]["arena.h2d"]["bytes"] == 10
        assert doc["by_stage"]["0"]["arena.h2d"] == 10
        assert doc["by_worker"]["3"]["arena.h2d"] == 10

    def test_null_twin_surface(self):
        assert not NULL_TRAFFIC_LEDGER.enabled
        NULL_TRAFFIC_LEDGER.record("disk", "write", 10)
        NULL_TRAFFIC_LEDGER.set_pass(1, 1)
        with NULL_TRAFFIC_LEDGER.attributed(0, 0):
            pass
        assert NULL_TRAFFIC_LEDGER.total_bytes() == 0
        assert NULL_TRAFFIC_LEDGER.to_dict()["totals"] == {}


class TestAccessRecorder:
    def test_records_in_order(self):
        rec = ChunkAccessRecorder()
        rec.record(3, 0, "r")
        rec.record(3, 0, "w")
        rec.barrier(1)
        rec.record(0, 2, "r")
        assert rec.trace() == [(0, 3, "r"), (0, 3, "w"), (1, -1, "b"),
                               (2, 0, "r")]
        assert len(rec) == 4

    def test_jsonl_roundtrip(self, tmp_path):
        rec = ChunkAccessRecorder()
        rec.record(1, 0, "r")
        rec.barrier(1)
        path = tmp_path / "trace.jsonl"
        assert rec.write_jsonl(path) == 2
        assert ChunkAccessRecorder.read_jsonl(path) == rec.trace()

    def test_null_twin(self):
        assert not NULL_ACCESS_RECORDER.enabled
        NULL_ACCESS_RECORDER.record(0, 0, "r")
        NULL_ACCESS_RECORDER.barrier(0)
        assert NULL_ACCESS_RECORDER.trace() == []
        assert len(NULL_ACCESS_RECORDER) == 0


class TestTelemetryWiring:
    def test_enabled_telemetry_gets_live_ledger(self):
        tel = Telemetry()
        assert tel.traffic.enabled
        tel.traffic.record("disk", "read", 9)
        assert tel.metrics.counter("traffic.disk.read.bytes").value == 9

    def test_disabled_telemetry_gets_null_twins(self):
        tel = Telemetry(enabled=False)
        assert not tel.traffic.enabled
        assert not tel.access.enabled


class TestStoreWiring:
    def test_memory_store_codec_edges(self):
        tel = Telemetry()
        lay = ChunkLayout(6, 3)
        store = CompressedChunkStore(lay, get_compressor("zlib"),
                                     MemoryTracker(), telemetry=tel)
        store.init_from_statevector(rand_state(6))
        raw_in = tel.traffic.total_bytes("codec", "raw_in")
        comp_out = tel.traffic.total_bytes("codec", "compressed_out")
        assert raw_in == lay.num_chunks * lay.chunk_nbytes
        assert 0 < comp_out
        # exact: compressed_out must equal the live blob bytes
        assert comp_out == sum(store.blob_sizes())
        for k in range(lay.num_chunks):
            store.load(k)
        assert tel.traffic.total_bytes("codec", "raw_out") == \
            lay.num_chunks * lay.chunk_nbytes
        assert tel.traffic.total_bytes("codec", "compressed_in") == comp_out

    def test_disk_store_byte_accounting(self, tmp_path):
        tel = Telemetry()
        lay = ChunkLayout(6, 3)
        store = DiskChunkStore(lay, get_compressor("zlib"),
                               tmp_path / "c.log", MemoryTracker(),
                               telemetry=tel)
        try:
            store.init_from_statevector(rand_state(6, seed=2))
            written = tel.traffic.total_bytes("disk", "write")
            # the log holds exactly what the ledger counted (plus record
            # headers, which the ledger deliberately excludes)
            assert 0 < written <= store.file_bytes
            for k in range(lay.num_chunks):
                store.load(k)
            read = tel.traffic.total_bytes("disk", "read")
            assert read == tel.traffic.total_bytes("codec", "compressed_in")
            assert tel.traffic.total_bytes("codec", "raw_out") == \
                lay.num_chunks * lay.chunk_nbytes
        finally:
            store.close()

    def test_disk_store_overwrite_appends(self, tmp_path):
        tel = Telemetry()
        lay = ChunkLayout(4, 2)
        store = DiskChunkStore(lay, get_compressor("zlib"),
                               tmp_path / "c.log", MemoryTracker(),
                               telemetry=tel)
        try:
            store.init_from_statevector(rand_state(4, seed=3))
            w0 = tel.traffic.total_bytes("disk", "write")
            store.store(0, rand_state(2, seed=4))
            assert tel.traffic.total_bytes("disk", "write") > w0
        finally:
            store.close()

    def test_cache_hit_miss_bytes(self):
        tel = Telemetry()
        lay = ChunkLayout(6, 3)
        inner = CompressedChunkStore(lay, get_compressor("zlib"),
                                     MemoryTracker(), telemetry=tel)
        cache = ChunkCache(inner, capacity_chunks=2, policy="lru",
                           tracker=inner.tracker, telemetry=tel)
        cache.init_from_statevector(rand_state(6, seed=5))
        cache.load(0)  # miss
        cache.load(0)  # hit
        assert tel.traffic.total_bytes("cache", "miss") == lay.chunk_nbytes
        assert tel.traffic.total_bytes("cache", "hit") == lay.chunk_nbytes


class TestMemGaugeEvents:
    def test_gauge_changes_reach_the_bus(self):
        tel = Telemetry()
        tracker = MemoryTracker(telemetry=tel)
        tracker.alloc("chunk_store", 1000)
        tracker.free("chunk_store", 1000)
        kinds = [ev.kind for ev in tel.bus.tail(50)]
        assert kinds.count("mem.gauge") >= 2
        last = [ev for ev in tel.bus.tail(50) if ev.kind == "mem.gauge"][-1]
        assert last.data["category"] == "chunk_store"
        assert last.data["bytes"] == 0

    def test_small_wiggles_are_rate_limited(self):
        tel = Telemetry()
        tracker = MemoryTracker(telemetry=tel)
        tracker.alloc("arena", 1 << 20)  # peak = 1 MiB, threshold ~16 KiB
        before = sum(1 for ev in tel.bus.tail(200)
                     if ev.kind == "mem.gauge")
        for _ in range(20):
            tracker.alloc("arena", 1)
            tracker.free("arena", 1)
        after = sum(1 for ev in tel.bus.tail(200) if ev.kind == "mem.gauge")
        assert after == before

    def test_cache_flush_event(self):
        tel = Telemetry()
        lay = ChunkLayout(6, 3)
        inner = CompressedChunkStore(lay, get_compressor("zlib"),
                                     MemoryTracker(), telemetry=tel)
        cache = ChunkCache(inner, capacity_chunks=2, policy="lru",
                           tracker=inner.tracker, telemetry=tel)
        cache.init_from_statevector(rand_state(6, seed=6))
        cache.load(0)
        cache.flush()
        kinds = [ev.kind for ev in tel.bus.tail(100)]
        assert "cache.flush" in kinds
