"""Unit tests for chunk-store persistence (checkpoint/restore)."""

import numpy as np
import pytest

from repro.compression import get_compressor
from repro.memory import (
    ChunkLayout,
    CompressedChunkStore,
    MemoryTracker,
    StoreFormatError,
    load_store,
    save_store,
)


def make_store(n=6, c=3, codec="zlib"):
    lay = ChunkLayout(n, c)
    return CompressedChunkStore(lay, get_compressor(codec), MemoryTracker())


class TestRoundTrip:
    def test_zero_state(self, tmp_path):
        store = make_store()
        store.init_zero_state()
        p = tmp_path / "s.mqs"
        save_store(store, p)
        back = load_store(p, get_compressor("zlib"))
        assert np.array_equal(back.to_statevector(), store.to_statevector())

    def test_random_state(self, tmp_path, random_state_fn):
        store = make_store()
        v = random_state_fn(6, seed=1)
        store.init_from_statevector(v)
        p = tmp_path / "s.mqs"
        nbytes = save_store(store, p)
        assert nbytes == p.stat().st_size
        back = load_store(p, get_compressor("zlib"))
        assert np.array_equal(back.to_statevector(), v)

    def test_zero_blob_sharing_preserved(self, tmp_path):
        store = make_store(8, 3)
        store.init_zero_state()
        p = tmp_path / "s.mqs"
        save_store(store, p)
        # shared blobs stored once: file much smaller than chunks * blob
        per_blob = len(store._zero_blob)
        assert p.stat().st_size < store.layout.num_chunks * per_blob

    def test_tracker_populated_on_load(self, tmp_path):
        store = make_store()
        store.init_zero_state()
        p = tmp_path / "s.mqs"
        save_store(store, p)
        tracker = MemoryTracker()
        back = load_store(p, get_compressor("zlib"), tracker)
        assert tracker.current("chunk_store") == back.compressed_nbytes()

    def test_uninitialized_chunks_survive(self, tmp_path):
        store = make_store()
        # only chunk 0 initialized
        store.store(0, np.zeros(8, dtype=np.complex128)) if False else None
        store._set_blob(0, store.compressor.compress(np.ones(8, dtype=np.complex128) / np.sqrt(8)))
        p = tmp_path / "s.mqs"
        save_store(store, p)
        back = load_store(p, get_compressor("zlib"))
        back.load(0)
        with pytest.raises(KeyError):
            back.load(1)

    def test_lossy_store_roundtrip(self, tmp_path, random_state_fn):
        lay = ChunkLayout(6, 3)
        comp = get_compressor("szlike", error_bound=1e-6)
        store = CompressedChunkStore(lay, comp, MemoryTracker())
        store.init_from_statevector(random_state_fn(6, seed=2))
        p = tmp_path / "s.mqs"
        save_store(store, p)
        back = load_store(p, get_compressor("szlike", error_bound=1e-6))
        # blobs are carried verbatim: decompressions agree exactly
        assert np.array_equal(back.to_statevector(), store.to_statevector())


class TestValidation:
    def test_magic_checked(self, tmp_path):
        p = tmp_path / "bad.mqs"
        p.write_bytes(b"NOPE" + b"\x00" * 64)
        with pytest.raises(StoreFormatError):
            load_store(p, get_compressor("zlib"))

    def test_compressor_name_checked(self, tmp_path):
        store = make_store(codec="zlib")
        store.init_zero_state()
        p = tmp_path / "s.mqs"
        save_store(store, p)
        with pytest.raises(StoreFormatError):
            load_store(p, get_compressor("lzma"))

    def test_truncation_detected(self, tmp_path, random_state_fn):
        store = make_store()
        store.init_from_statevector(random_state_fn(6, seed=3))
        p = tmp_path / "s.mqs"
        save_store(store, p)
        data = p.read_bytes()
        p.write_bytes(data[:-10])
        with pytest.raises(StoreFormatError):
            load_store(p, get_compressor("zlib"))


class TestSimulatorIntegration:
    def test_checkpoint_resume_equals_single_run(self, tmp_path, dense):
        from repro.circuits import random_circuit
        from repro.core import MemQSim, MemQSimConfig
        from repro.device import DeviceSpec

        cfg = MemQSimConfig(chunk_qubits=4, compressor="zlib",
                            device=DeviceSpec(memory_bytes=1 << 13))
        first = random_circuit(8, 30, seed=5)
        second = random_circuit(8, 30, seed=6)
        p = tmp_path / "mid.mqs"
        MemQSim(cfg).run(first).save_state(p)
        resumed = MemQSim(cfg).run(second, checkpoint=str(p))
        whole = MemQSim(cfg).run(first.compose(second))
        assert np.allclose(resumed.statevector(), whole.statevector(), atol=1e-12)

    def test_checkpoint_qubit_mismatch(self, tmp_path):
        from repro.circuits import ghz
        from repro.core import MemQSim, MemQSimConfig
        from repro.device import DeviceSpec

        cfg = MemQSimConfig(chunk_qubits=3, compressor="zlib",
                            device=DeviceSpec(memory_bytes=1 << 13))
        p = tmp_path / "s.mqs"
        MemQSim(cfg).run(ghz(6)).save_state(p)
        with pytest.raises(ValueError):
            MemQSim(cfg).run(ghz(7), checkpoint=str(p))

    def test_checkpoint_and_initial_state_exclusive(self, tmp_path):
        from repro.circuits import ghz
        from repro.core import MemQSim
        from repro.statevector import StateVector

        with pytest.raises(ValueError):
            MemQSim().run(ghz(4), initial_state=StateVector(4), checkpoint="x")
