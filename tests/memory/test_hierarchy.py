"""Unit tests for the plan-driven memory hierarchy.

Covers the :class:`AccessSchedule` cursor/next-use semantics, the
:class:`TieredChunkStore` RAM/disk split (spill, promote, budget,
permute, compaction), and the :class:`MemoryHierarchy` facade — plus the
end-to-end contract that the live Belady cache takes exactly the misses
the offline Belady bound computes.
"""

import numpy as np
import pytest

from repro.compression import get_compressor
from repro.memory import (
    AccessSchedule,
    ChunkCache,
    ChunkLayout,
    CompressedChunkStore,
    MemoryHierarchy,
    MemoryTracker,
    TieredChunkStore,
)


def rand_chunk(c, seed):
    g = np.random.default_rng(seed)
    v = g.standard_normal(1 << c) + 1j * g.standard_normal(1 << c)
    return (v / np.linalg.norm(v)).astype(np.complex128)


# ---------------------------------------------------------------------------
# AccessSchedule


def sched(passes):
    return AccessSchedule(passes)


class TestAccessSchedule:
    PASSES = [
        ("pass", 0, 0, (0, 1)),
        ("pass", 0, 1, (2, 3)),
        ("barrier", 1, -1, ()),
        ("pass", 2, 0, (0, 2)),
    ]

    def test_sequence_layout(self):
        s = sched(self.PASSES)
        # 2 passes x (2 reads + 2 writes) + 1 barrier + 1 pass x 4
        assert len(s) == 13

    def test_observe_matches_in_order(self):
        s = sched(self.PASSES)
        s.begin_pass(0, 0)
        nu = s.observe(0, "r")
        # chunk 0's next access is its own write at position 2
        assert nu == 2.0
        assert s.observe(1, "r") == 3.0
        # writes: chunk 0 not reused before the barrier -> inf
        assert s.observe(0, "w") == float("inf")
        assert s.matched == 3

    def test_observe_off_schedule_returns_none_keeps_cursor(self):
        s = sched(self.PASSES)
        s.begin_pass(0, 0)
        cur = s.cursor
        assert s.observe(7, "r") is None
        assert s.cursor == cur
        assert s.off_schedule == 1
        # replay continues unharmed
        assert s.observe(0, "r") == 2.0

    def test_barrier_bounds_next_use(self):
        s = sched(self.PASSES)
        s.begin_pass(0, 1)
        # the read's next use is this pass's own write...
        assert s.observe(2, "r") == 6.0
        assert s.observe(3, "r") == 7.0
        # ...but the write's reuse (stage 2) sits past the barrier: never
        assert s.observe(2, "w") == float("inf")

    def test_begin_pass_reseeks_cursor(self):
        s = sched(self.PASSES)
        s.begin_pass(2, 0)
        assert s.observe(0, "r") is not None

    def test_barrier_advances_past(self):
        s = sched(self.PASSES)
        s.barrier(1)
        assert s.observe(0, "r") is not None
        assert s.remaining() == 3

    def test_next_use_of_is_barrier_bounded(self):
        s = sched(self.PASSES)
        s.begin_pass(0, 0)
        assert s.next_use_of(0) == 0.0
        # chunk 3's first use is in pass (0,1), before the barrier
        assert s.next_use_of(3) == 5.0
        # past pass (0,1), chunk 3's only remaining use... there is none
        s.begin_pass(2, 0)
        assert s.next_use_of(3) == float("inf")
        # and chunk 2's stage-2 use is visible once the cursor crossed
        assert s.next_use_of(2) == 10.0

    def test_next_use_unknown_chunk(self):
        s = sched(self.PASSES)
        assert s.next_use_of(99) == float("inf")


# ---------------------------------------------------------------------------
# TieredChunkStore


@pytest.fixture
def tiered(tmp_path):
    lay = ChunkLayout(7, 3)  # 16 chunks of 8 amps
    s = TieredChunkStore(lay, get_compressor("zlib"), tmp_path / "tier.log",
                         host_budget_bytes=0, tracker=MemoryTracker())
    yield s
    s.close()


def fill(store, seeds=range(16)):
    for k, seed in zip(range(store.layout.num_chunks), seeds):
        store.store(k, rand_chunk(3, seed + 1))


class TestTieredStore:
    def test_unbounded_budget_never_spills(self, tiered):
        fill(tiered)
        assert tiered.tier_stats.spills == 0
        assert tiered.disk_blob_bytes() == 0

    def test_budget_forces_spill_and_bytes_survive(self, tiered):
        fill(tiered)
        sizes = [len(tiered.get_blob(k)) for k in range(16)]
        tiered.host_budget_bytes = sum(sizes) // 2
        tiered._enforce_budget()
        assert tiered.tier_stats.spills > 0
        assert tiered.host_blob_bytes() <= tiered.host_budget_bytes
        assert tiered.disk_blob_bytes() > 0
        # spill/promote round trip is byte-identical
        for k in range(16):
            assert len(tiered.get_blob(k)) == sizes[k]

    def test_spilled_blob_roundtrip_identity(self, tiered):
        data = rand_chunk(3, 42)
        tiered.store(5, data)
        blob_before = tiered.get_blob(5)
        tiered.host_budget_bytes = 1  # everything must spill
        tiered._enforce_budget()
        assert tiered.is_on_disk(5)
        assert tiered.get_blob(5) == blob_before
        np.testing.assert_array_equal(tiered.load(5), data)
        # promote it back: bytes still identical
        tiered.host_budget_bytes = 0
        tiered.will_need([5])
        assert not tiered.is_on_disk(5)
        assert tiered.get_blob(5) == blob_before
        assert tiered.tier_stats.promotions == 1

    def test_zero_blob_pinned_in_ram(self, tiered):
        tiered.init_zero_state()
        tiered.host_budget_bytes = 1
        tiered._enforce_budget()
        # chunk 0 (amplitude 1) holds the only unique blob and may spill;
        # the interned zero blob shared by chunks 1..15 never does
        assert tiered.tier_stats.spills <= 1
        for k in range(1, 16):
            assert not tiered.is_on_disk(k)
        sv = tiered.to_statevector()
        assert sv[0] == 1.0 and np.count_nonzero(sv) == 1

    def test_overwrite_drops_disk_record(self, tiered):
        tiered.store(3, rand_chunk(3, 1))
        tiered.host_budget_bytes = 1
        tiered._enforce_budget()
        assert tiered.is_on_disk(3)
        live_before = tiered.disk_blob_bytes()
        tiered.host_budget_bytes = 0
        tiered.store(3, rand_chunk(3, 2))
        assert not tiered.is_on_disk(3)
        assert tiered.disk_blob_bytes() < live_before

    def test_permute_relabels_both_tiers(self, tiered):
        fill(tiered)
        tiered.host_budget_bytes = tiered.host_blob_bytes() // 2
        tiered._enforce_budget()
        blobs = {k: tiered.get_blob(k) for k in range(16)}
        n = 16
        perm = [(k + 3) % n for k in range(n)]  # dst <- src=perm[dst]
        tiered.permute(perm)
        for dst in range(n):
            assert tiered.get_blob(dst) == blobs[perm[dst]]
        # statevector round-trips through the permuted mixed tiers
        sv = tiered.to_statevector()
        assert sv.shape[0] == 1 << 7

    def test_schedule_aware_spill_prefers_plan_coldest(self, tiered):
        fill(tiered, seeds=range(16))
        # schedule: chunks 0..3 are needed next, 12..15 never
        passes = [("pass", 0, 0, (0, 1, 2, 3))]
        s = AccessSchedule(passes)
        tiered.schedule = s
        tiered.host_budget_bytes = tiered.host_blob_bytes() - 1
        tiered._enforce_budget()
        assert tiered.tier_stats.spills >= 1
        # imminently-needed chunks stayed in RAM
        for k in (0, 1, 2, 3):
            assert not tiered.is_on_disk(k)

    def test_compaction_reclaims_garbage(self, tiered, tmp_path):
        fill(tiered)
        tiered.host_budget_bytes = 1
        tiered._enforce_budget()
        # promote everything back -> the log is 100% garbage
        tiered.host_budget_bytes = 0
        tiered.will_need(range(16))
        assert tiered.disk_blob_bytes() == 0
        tiered.compact()
        assert tiered.file_bytes == 0

    def test_compact_preserves_live_records(self, tiered):
        fill(tiered)
        tiered.host_budget_bytes = tiered.host_blob_bytes() // 3
        tiered._enforce_budget()
        blobs = {k: tiered.get_blob(k) for k in range(16)}
        # churn: rewrite half the RAM chunks to create log garbage
        for k in range(16):
            if not tiered.is_on_disk(k):
                tiered.store(k, rand_chunk(3, 100 + k))
                blobs[k] = tiered.get_blob(k)
        tiered.compact()
        for k in range(16):
            assert tiered.get_blob(k) == blobs[k], k

    def test_tracker_attribution(self, tmp_path):
        tracker = MemoryTracker()
        lay = ChunkLayout(7, 3)
        s = TieredChunkStore(lay, get_compressor("zlib"),
                             tmp_path / "t.log", 0, tracker=tracker)
        fill(s)
        assert tracker.current("chunk_store") == s.host_blob_bytes()
        s.host_budget_bytes = s.host_blob_bytes() // 2
        s._enforce_budget()
        assert tracker.current("chunk_store") == s.host_blob_bytes()
        assert tracker.current("disk_store") == s.file_bytes
        s.close()


# ---------------------------------------------------------------------------
# MemoryHierarchy facade


class TestMemoryHierarchy:
    def test_build_without_cache(self):
        lay = ChunkLayout(6, 3)
        store = CompressedChunkStore(lay, get_compressor("zlib"),
                                    MemoryTracker())
        h = MemoryHierarchy.build(store)
        assert h.store_like is store
        assert not h.needs_schedule()
        assert h.attach_plan([], lay) is None

    def test_build_with_belady_cache_needs_schedule(self):
        lay = ChunkLayout(6, 3)
        store = CompressedChunkStore(lay, get_compressor("zlib"),
                                    MemoryTracker())
        h = MemoryHierarchy.build(store, cache_chunks=2,
                                  cache_policy="belady")
        assert isinstance(h.store_like, ChunkCache)
        assert h.needs_schedule()

    def test_describe_lists_tiers(self, tmp_path):
        lay = ChunkLayout(6, 3)
        store = TieredChunkStore(lay, get_compressor("zlib"),
                                 tmp_path / "h.log", 1024,
                                 tracker=MemoryTracker())
        h = MemoryHierarchy.build(store, cache_chunks=2)
        d = h.describe()
        names = [t["tier"] for t in d["tiers"]]
        assert names == ["decompressed_cache", "host_blobs", "disk_blobs"]
        store.close()


# ---------------------------------------------------------------------------
# Live cache == offline replay (the PR's headline contract)


class TestLiveEqualsReplay:
    @pytest.fixture(scope="class")
    def streamed(self):
        from repro.circuits import vqe_ansatz
        from repro.core import MemQSim, MemQSimConfig
        from repro.device import DeviceSpec
        from repro.telemetry import ChunkAccessRecorder, Telemetry

        def run(policy, cap=8):
            tel = Telemetry()
            rec = ChunkAccessRecorder()
            tel.access = rec
            cfg = MemQSimConfig(
                chunk_qubits=4, cache_chunks=cap, cache_policy=policy,
                execution="serial",
                device=DeviceSpec(memory_bytes=int(0.002 * (1 << 20))),
            )
            res = MemQSim(cfg, telemetry=tel).run(vqe_ansatz(10, layers=2))
            return res.store.cache_stats.misses, rec.trace()

        return run

    def test_live_belady_hits_the_offline_bound_exactly(self, streamed):
        from repro.analysis.memtrace import belady_misses

        live, trace = streamed("belady")
        assert live == belady_misses(trace, 8)

    def test_live_mru_matches_simulated_mru(self, streamed):
        from repro.analysis.memtrace import simulate_cache

        live, trace = streamed("mru")
        assert live == simulate_cache(trace, 8, "mru")[1]

    def test_live_lru_matches_simulated_lru(self, streamed):
        from repro.analysis.memtrace import simulate_cache

        live, trace = streamed("lru")
        assert live == simulate_cache(trace, 8, "lru")[1]

    def test_belady_never_beaten(self, streamed):
        live_b, _ = streamed("belady")
        live_l, _ = streamed("lru")
        live_m, _ = streamed("mru")
        assert live_b <= live_l and live_b <= live_m
