"""Unit tests for the codec scratch pool (size-classed array recycling)."""

import numpy as np

from repro.memory.bufferpool import ScratchPool, scratch_pool


class TestBorrow:
    def test_shape_and_dtype(self):
        pool = ScratchPool()
        with pool.borrow(100, np.float64) as buf:
            assert buf.shape == (100,) and buf.dtype == np.float64
            buf[:] = 1.5  # must be writable

    def test_recycles_within_size_class(self):
        pool = ScratchPool()
        with pool.borrow(1000, np.int64) as a:
            first = a.ctypes.data
        with pool.borrow(1000, np.int64) as b:
            assert b.ctypes.data == first
        assert pool.misses == 1 and pool.hits == 1

    def test_cross_dtype_recycle(self):
        # one freelist covers all dtypes: an int64 jump table and a float64
        # plane buffer of the same byte size share the same backing buffer
        pool = ScratchPool()
        with pool.borrow(512, np.int64):
            pass
        with pool.borrow(512, np.float64):
            pass
        assert pool.hits == 1

    def test_nested_borrows_are_distinct(self):
        pool = ScratchPool()
        with pool.borrow(64, np.uint8) as a, pool.borrow(64, np.uint8) as b:
            assert a.ctypes.data != b.ctypes.data

    def test_capacity_is_power_of_two(self):
        for n in (1, 255, 256, 257, 100_000):
            cap = ScratchPool._capacity(n)
            assert cap >= max(n, 256)
            assert cap & (cap - 1) == 0

    def test_zero_length_borrow(self):
        pool = ScratchPool()
        with pool.borrow(0, np.float64) as buf:
            assert buf.shape == (0,)


class TestRetention:
    def test_cap_drops_instead_of_hoarding(self):
        pool = ScratchPool(max_bytes=1 << 12)
        with pool.borrow(1 << 12, np.uint8):
            pass
        assert pool.retained_bytes == 1 << 12
        with pool.borrow(1 << 12, np.uint8):  # hit: takes the retained one
            with pool.borrow(1 << 12, np.uint8):  # miss: second allocation
                pass  # returning this would exceed the cap
        assert pool.drops == 1
        assert pool.retained_bytes <= pool.max_bytes

    def test_clear_empties_freelists(self):
        pool = ScratchPool()
        with pool.borrow(4096, np.float64):
            pass
        assert pool.retained_bytes > 0
        pool.clear()
        assert pool.retained_bytes == 0
        with pool.borrow(4096, np.float64):
            pass
        assert pool.misses == 2

    def test_repr_mentions_stats(self):
        assert "hits=0" in repr(ScratchPool())


class TestProcessSingleton:
    def test_same_object_within_process(self):
        assert scratch_pool() is scratch_pool()

    def test_codec_paths_share_the_singleton(self):
        # szlike round-trips go through the pool; observable as hit traffic
        from repro.compression.szlike import SZLikeCompressor

        pool = scratch_pool()
        before = pool.hits + pool.misses
        c = SZLikeCompressor(error_bound=1e-6)
        data = np.exp(1j * np.linspace(0, 3, 256)).astype(np.complex128)
        c.decompress(c.compress(data))
        assert pool.hits + pool.misses > before
