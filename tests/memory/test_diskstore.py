"""Unit tests for the out-of-core disk-backed chunk store."""

import numpy as np
import pytest

from repro.compression import get_compressor
from repro.memory import ChunkLayout, DiskChunkStore, MemoryTracker


@pytest.fixture
def store(tmp_path):
    lay = ChunkLayout(8, 3)
    s = DiskChunkStore(lay, get_compressor("zlib"), tmp_path / "chunks.log",
                       MemoryTracker())
    yield s
    s.close()


def rand_state(n, seed=0):
    g = np.random.default_rng(seed)
    v = g.standard_normal(1 << n) + 1j * g.standard_normal(1 << n)
    return v / np.linalg.norm(v)


class TestBasics:
    def test_zero_state_roundtrip(self, store):
        store.init_zero_state()
        sv = store.to_statevector()
        assert sv[0] == 1.0 and np.count_nonzero(sv) == 1

    def test_random_state_roundtrip(self, store):
        v = rand_state(8, 1)
        store.init_from_statevector(v)
        assert np.array_equal(store.to_statevector(), v)

    def test_store_load_single_chunk(self, store):
        store.init_zero_state()
        data = rand_state(3, 2)
        store.store(5, data)
        assert np.array_equal(store.load(5), data)

    def test_uninitialized_load_raises(self, store):
        with pytest.raises(KeyError):
            store.load(0)

    def test_zero_blob_shared_on_disk(self, store):
        store.init_zero_state()
        # all-zero chunks share one record: live bytes ~ 2 blobs
        sizes = store.blob_sizes()
        assert store.compressed_nbytes() < sum(sizes)

    def test_tracker_uses_disk_category(self, store):
        store.init_zero_state()
        assert store.tracker.current("disk_store") == store.file_bytes
        assert store.tracker.current("chunk_store") == 0

    def test_validation(self, tmp_path):
        lay = ChunkLayout(4, 2)
        with pytest.raises(ValueError):
            DiskChunkStore(lay, get_compressor("zlib"), tmp_path / "x.log",
                           compact_threshold=0.0)


class TestCompaction:
    def test_updates_accumulate_garbage(self, store):
        store.init_from_statevector(rand_state(8, 3))
        before = store.file_bytes
        for k in range(8):
            store.store(k, store.load(k))
        assert store.file_bytes > before or store.compactions > 0

    def test_compaction_preserves_content(self, store):
        v = rand_state(8, 4)
        store.init_from_statevector(v)
        for _ in range(3):
            for k in range(store.layout.num_chunks):
                store.store(k, store.load(k))
        store.compact()
        assert np.array_equal(store.to_statevector(), v)
        assert store.garbage_fraction == pytest.approx(0.0)

    def test_auto_compaction_bounds_file_size(self, tmp_path):
        lay = ChunkLayout(10, 4)
        s = DiskChunkStore(lay, get_compressor("null"), tmp_path / "big.log",
                           MemoryTracker(), compact_threshold=0.3)
        try:
            v = rand_state(10, 5)
            s.init_from_statevector(v)
            base = s.compressed_nbytes()
            for _ in range(10):
                for k in range(lay.num_chunks):
                    s.store(k, s.load(k))
            # Without compaction the file would be ~11x the live bytes
            # (~190 KB); auto-compaction caps it near the 64 KiB floor the
            # store uses before it bothers compacting.
            assert s.file_bytes < (1 << 16) + 2 * base
            assert s.compactions > 0
            assert np.array_equal(s.to_statevector(), v)
        finally:
            s.close()

    def test_zero_record_survives_compaction(self, store):
        store.init_zero_state()
        store.compact()
        store.zero_chunk(3)
        assert np.all(store.load(3) == 0)


class TestIntegration:
    def test_permute(self, store):
        v = rand_state(8, 6)
        store.init_from_statevector(v)
        nc = store.layout.num_chunks
        perm = [k ^ 1 for k in range(nc)]
        store.permute(perm)
        got = store.to_statevector()
        want = v.reshape(nc, -1)[perm].reshape(-1)
        assert np.array_equal(got, want)

    def test_persistence_roundtrip(self, store, tmp_path):
        from repro.memory import load_store, save_store

        v = rand_state(8, 7)
        store.init_from_statevector(v)
        p = tmp_path / "ck.mqs"
        save_store(store, p)
        back = load_store(p, get_compressor("zlib"))
        assert np.array_equal(back.to_statevector(), v)

    def test_scheduler_runs_on_disk_store(self, tmp_path):
        from repro.circuits import random_circuit
        from repro.device import DeviceExecutor, DeviceSpec, Timeline
        from repro.memory import BufferPool
        from repro.pipeline import StageScheduler, plan_stages
        from repro.statevector import DenseSimulator

        lay = ChunkLayout(8, 3)
        tracker = MemoryTracker()
        s = DiskChunkStore(lay, get_compressor("zlib"),
                           tmp_path / "sim.log", tracker)
        try:
            s.init_zero_state()
            timeline = Timeline()
            ex = DeviceExecutor(DeviceSpec(memory_bytes=(1 << 5) * 16),
                                timeline=timeline, tracker=tracker)
            pool = BufferPool(2, 1 << 4, tracker)
            sched = StageScheduler(lay, s, ex, pool, timeline)
            circ = random_circuit(8, 50, seed=61)
            sched.run(plan_stages(circ, lay, 1))
            ref = DenseSimulator().run(circ).data
            assert np.allclose(s.to_statevector(), ref, atol=1e-12)
        finally:
            s.close()

    def test_context_manager_removes_file(self, tmp_path):
        lay = ChunkLayout(4, 2)
        p = tmp_path / "ctx.log"
        with DiskChunkStore(lay, get_compressor("zlib"), p) as s:
            s.init_zero_state()
            assert p.exists()
        assert not p.exists()


class TestDiskPlusCache:
    def test_cache_over_disk_store(self, tmp_path):
        from repro.memory import ChunkCache

        lay = ChunkLayout(8, 3)
        tracker = MemoryTracker()
        disk = DiskChunkStore(lay, get_compressor("zlib"),
                              tmp_path / "dc.log", tracker)
        try:
            v = rand_state(8, 11)
            disk.init_from_statevector(v)
            cache = ChunkCache(disk, capacity_chunks=4, policy="mru",
                               tracker=tracker)
            # writes are deferred, reads hit, flush lands on disk
            data = cache.load(0)
            data *= -1.0
            cache.store(0, data)
            assert cache.cache_stats.write_hits >= 1
            cache.flush()
            assert np.allclose(disk.load(0), -v[:8])
        finally:
            disk.close()

    def test_memqsim_disk_plus_cache(self, tmp_path):
        from repro.circuits import random_circuit
        from repro.core import MemQSim, MemQSimConfig
        from repro.device import DeviceSpec
        from repro.statevector import DenseSimulator

        circ = random_circuit(8, 40, seed=88)
        cfg = MemQSimConfig(chunk_qubits=4, compressor="zlib",
                            device=DeviceSpec(memory_bytes=1 << 13),
                            store="disk", disk_path=str(tmp_path / "mc.log"),
                            cache_chunks=6)
        res = MemQSim(cfg).run(circ)
        ref = DenseSimulator().run(circ).data
        assert np.allclose(res.statevector(), ref, atol=1e-12)
        res.store.inner.close()


class TestCompactPermuteFlushInterplay:
    """Satellite contract: compaction x permutation x dirty cache flush.

    Each pairwise interleaving must leave exactly one live record per
    distinct chunk value — no orphaned (leaked) log records, none
    duplicated — and the bytes must survive every ordering.
    """

    def _live_equals_index(self, store):
        # Every indexed record's bytes are readable, and live_bytes is
        # exactly the sum over unique records (the zero record once).
        sizes = store.blob_sizes()
        uniq = set()
        total = 0
        for k in range(store.layout.num_chunks):
            rec = store._index[k]
            assert rec is not None
            if id(rec) not in uniq:
                uniq.add(id(rec))
                total += rec[1]
        assert store.compressed_nbytes() == total
        return sizes

    def test_permute_then_compact(self, store):
        v = rand_state(8, 21)
        store.init_from_statevector(v)
        nc = store.layout.num_chunks
        perm = [(k + 5) % nc for k in range(nc)]
        store.permute(perm)
        store.compact()
        self._live_equals_index(store)
        want = v.reshape(nc, -1)[perm].reshape(-1)
        assert np.array_equal(store.to_statevector(), want)
        assert store.garbage_fraction == pytest.approx(0.0)

    def test_dirty_flush_then_compact(self, store):
        from repro.memory import ChunkCache

        v = rand_state(8, 22)
        store.init_from_statevector(v)
        cache = ChunkCache(store, capacity_chunks=4, policy="lru")
        for k in range(store.layout.num_chunks):
            cache.store(k, -cache.load(k))
        cache.flush()  # every store above rewrote a record -> garbage
        store.compact()
        self._live_equals_index(store)
        assert np.array_equal(store.to_statevector(), -v)

    def test_flush_after_permute_lands_on_relabeled_chunks(self, store):
        from repro.memory import ChunkCache

        v = rand_state(8, 23)
        store.init_from_statevector(v)
        cache = ChunkCache(store, capacity_chunks=4, policy="mru")
        cache.store(0, np.zeros(8, dtype=np.complex128))
        nc = store.layout.num_chunks
        perm = [k ^ 1 for k in range(nc)]
        # the cache's permute contract: flush dirty state, then relabel
        cache.permute(perm)
        store.compact()
        self._live_equals_index(store)
        got = store.to_statevector()
        want = v.copy()
        want[:8] = 0.0  # the dirty write hit pre-permute chunk 0...
        want = want.reshape(nc, -1)[perm].reshape(-1)
        assert np.array_equal(got, want)

    def test_repeated_cycles_never_leak_records(self, store):
        from repro.memory import ChunkCache

        v = rand_state(8, 24)
        store.init_from_statevector(v)
        cache = ChunkCache(store, capacity_chunks=4, policy="lru")
        nc = store.layout.num_chunks
        for cycle in range(4):
            for k in range(nc):
                cache.store(k, cache.load(k) * np.exp(0.25j * cycle))
            cache.permute([(k + 1) % nc for k in range(nc)])
            store.compact()
            self._live_equals_index(store)
        assert store.garbage_fraction == pytest.approx(0.0)
