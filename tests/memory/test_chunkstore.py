"""Unit tests for the compressed chunk store."""

import numpy as np
import pytest

from repro.compression import get_compressor
from repro.memory import ChunkLayout, CompressedChunkStore, MemoryTracker


def make_store(n=6, c=3, codec="zlib"):
    tracker = MemoryTracker()
    lay = ChunkLayout(n, c)
    return CompressedChunkStore(lay, get_compressor(codec), tracker), tracker


class TestInit:
    def test_zero_state(self):
        store, _ = make_store()
        store.init_zero_state()
        sv = store.to_statevector()
        assert sv[0] == 1.0
        assert np.count_nonzero(sv) == 1

    def test_from_statevector_roundtrip(self, random_state_fn):
        store, _ = make_store()
        v = random_state_fn(6, seed=1)
        store.init_from_statevector(v)
        assert np.array_equal(store.to_statevector(), v)

    def test_from_statevector_size_checked(self):
        store, _ = make_store()
        with pytest.raises(ValueError):
            store.init_from_statevector(np.zeros(4, dtype=complex))

    def test_uninitialized_load_raises(self):
        store, _ = make_store()
        with pytest.raises(KeyError):
            store.load(0)


class TestLoadStore:
    def test_load_into_buffer(self, random_state_fn):
        store, _ = make_store()
        v = random_state_fn(6, seed=2)
        store.init_from_statevector(v)
        buf = np.empty(8, dtype=np.complex128)
        out = store.load(3, out=buf)
        assert out is buf
        assert np.array_equal(buf, v[24:32])

    def test_store_replaces_chunk(self, random_state_fn):
        store, _ = make_store()
        store.init_zero_state()
        new = random_state_fn(3, seed=3)
        store.store(2, new)
        assert np.array_equal(store.load(2), new)
        # others untouched
        assert np.all(store.load(1) == 0)

    def test_store_size_checked(self):
        store, _ = make_store()
        store.init_zero_state()
        with pytest.raises(ValueError):
            store.store(0, np.zeros(4, dtype=complex))

    def test_stats_accumulate(self):
        store, _ = make_store()
        store.init_zero_state()
        before = store.stats.loads
        store.load(0)
        store.load(1)
        assert store.stats.loads == before + 2
        assert store.stats.decompress_seconds > 0
        assert store.stats.bytes_decompressed >= 2 * store.layout.chunk_nbytes


class TestAccounting:
    def test_tracker_matches_unique_bytes(self):
        store, tracker = make_store()
        store.init_zero_state()
        assert tracker.current("chunk_store") == store.compressed_nbytes()

    def test_tracker_after_stores(self, random_state_fn):
        store, tracker = make_store()
        store.init_zero_state()
        v = random_state_fn(3, seed=4)
        for k in range(store.layout.num_chunks):
            store.store(k, v)
        assert tracker.current("chunk_store") == store.compressed_nbytes()

    def test_zero_blob_interned(self):
        store, _ = make_store()
        store.init_zero_state()
        sizes = store.blob_sizes()
        # all-zero chunks share one blob: unique bytes well below sum
        assert store.compressed_nbytes() < sum(sizes)

    def test_compression_ratio_positive(self):
        store, _ = make_store()
        store.init_zero_state()
        assert store.compression_ratio() > 1.0

    def test_dense_nbytes(self):
        store, _ = make_store(6, 3)
        assert store.dense_nbytes() == 64 * 16


class TestPermute:
    def test_permute_swaps_chunks(self, random_state_fn):
        store, _ = make_store()
        v = random_state_fn(6, seed=5)
        store.init_from_statevector(v)
        nc = store.layout.num_chunks
        perm = list(range(nc))
        perm[0], perm[1] = perm[1], perm[0]
        store.permute(perm)
        got = store.to_statevector()
        want = v.copy()
        want[0:8], want[8:16] = v[8:16].copy(), v[0:8].copy()
        assert np.array_equal(got, want)

    def test_permute_validates_length(self):
        store, _ = make_store()
        store.init_zero_state()
        with pytest.raises(ValueError):
            store.permute([0, 1])

    def test_permute_validates_permutation(self):
        store, _ = make_store()
        store.init_zero_state()
        with pytest.raises(ValueError):
            store.permute([0] * store.layout.num_chunks)

    def test_x_gate_as_permutation_matches_dense(self, random_state_fn, dense):
        from repro.circuits import Circuit

        store, _ = make_store(6, 3)
        v = random_state_fn(6, seed=6)
        store.init_from_statevector(v)
        # X on qubit 4 (global, chunk bit 1)
        perm = [k ^ 2 for k in range(8)]
        store.permute(perm)
        ref = dense.run(Circuit(6).x(4), initial_state=None)
        from repro.statevector import StateVector, apply_gate
        from repro.circuits import gate_matrix

        want = v.copy()
        apply_gate(want, gate_matrix("x"), (4,))
        assert np.array_equal(store.to_statevector(), want)


class TestLossyStore:
    def test_szlike_store_bound(self, random_state_fn):
        tracker = MemoryTracker()
        lay = ChunkLayout(8, 4)
        store = CompressedChunkStore(
            lay, get_compressor("szlike", error_bound=1e-5), tracker
        )
        v = random_state_fn(8, seed=7)
        store.init_from_statevector(v)
        back = store.to_statevector()
        err = np.max(np.maximum(np.abs((v - back).real), np.abs((v - back).imag)))
        assert err <= 1e-5 * (1 + 1e-9)


class TestBlobAndBatchAPI:
    """Blob-level and batch entry points used by the parallel codec pool."""

    def test_load_batch_matches_individual_loads(self, random_state_fn):
        store, _ = make_store()
        store.init_from_statevector(random_state_fn(6, seed=1))
        chunks = [0, 3, 5]
        cs = store.layout.chunk_size
        batch = store.load_batch(chunks)
        for i, c in enumerate(chunks):
            np.testing.assert_array_equal(batch[i * cs:(i + 1) * cs],
                                          store.load(c))

    def test_store_batch_roundtrip(self, random_state_fn):
        store, _ = make_store()
        store.init_zero_state()
        v = random_state_fn(6, seed=2)
        cs = store.layout.chunk_size
        store.store_batch([0, 1, 2, 3], v[: 4 * cs].copy())
        for c in range(4):
            np.testing.assert_array_equal(store.load(c),
                                          v[c * cs:(c + 1) * cs])

    def test_store_batch_validates_chunk_size(self):
        store, _ = make_store()
        store.init_zero_state()
        with pytest.raises(ValueError):
            store.store_batch([0], np.zeros(3, dtype=np.complex128))

    def test_put_get_blob_roundtrip_and_accounting(self, random_state_fn):
        store, _ = make_store()
        v = random_state_fn(6, seed=3)
        store.init_from_statevector(v)
        blob = store.get_blob(2)
        assert blob == store.compressor.compress(store.load(2))
        before = store.stats.stores
        store.put_blob(2, blob, seconds=0.01, data_nbytes=128)
        assert store.stats.stores == before + 1
        np.testing.assert_array_equal(store.load(2), v[2 * 8:3 * 8])

    def test_note_decompressed_counts_loads(self):
        store, _ = make_store()
        store.init_zero_state()
        before = store.stats.loads
        store.note_decompressed(256, seconds=0.005)
        assert store.stats.loads == before + 1
        assert store.stats.bytes_decompressed >= 256


class TestEntropyChoiceCounters:
    def test_store_counts_entropy_choice(self, random_state_fn):
        from repro.telemetry import Telemetry

        tel = Telemetry()
        tracker = MemoryTracker()
        lay = ChunkLayout(14, 13)  # one 2^13-amplitude chunk per store
        store = CompressedChunkStore(
            lay, get_compressor("szlike", error_bound=1e-5), tracker,
            telemetry=tel)
        store.init_from_statevector(random_state_fn(14, seed=5))
        counts = {
            name.rsplit(".", 1)[-1]: v
            for name, v in tel.metrics.snapshot()["counters"].items()
            if name.startswith("codec.entropy_choice.")
        }
        assert sum(counts.values()) == lay.num_chunks
        assert set(counts) <= {"huffman", "zlib", "raw"}

    def test_put_blob_counts_parent_side(self):
        from repro.telemetry import Telemetry

        tel = Telemetry()
        lay = ChunkLayout(6, 3)
        comp = get_compressor("szlike", error_bound=1e-5)
        store = CompressedChunkStore(lay, comp, MemoryTracker(), telemetry=tel)
        store.init_zero_state()
        def total():
            return sum(
                v for name, v in tel.metrics.snapshot()["counters"].items()
                if name.startswith("codec.entropy_choice."))

        before = total()
        data = np.exp(1j * np.linspace(0, 2, 8)).astype(np.complex128)
        data /= np.linalg.norm(data)
        store.put_blob(1, comp.compress(data), seconds=0.0, data_nbytes=128)
        assert total() == before + 1

    def test_non_szl1_codec_contributes_nothing(self):
        from repro.telemetry import Telemetry

        tel = Telemetry()
        lay = ChunkLayout(6, 3)
        store = CompressedChunkStore(
            lay, get_compressor("zlib"), MemoryTracker(), telemetry=tel)
        store.init_zero_state()
        assert not any(
            name.startswith("codec.entropy_choice.")
            for name in tel.metrics.snapshot()["counters"])
