"""Unit tests for the offline stage planner."""

import numpy as np
import pytest

from repro.circuits import Circuit, make_diagonal_gate, qft, random_circuit
from repro.device import DeviceSpec
from repro.memory import ChunkLayout
from repro.pipeline import (
    GateStage,
    PermutationStage,
    describe_plan,
    max_group_qubits_for,
    plan_stages,
)


@pytest.fixture
def lay():
    return ChunkLayout(8, 3)


class TestMaxGroupQubits:
    def test_grows_with_device(self, lay):
        small = max_group_qubits_for(lay, DeviceSpec(memory_bytes=(1 << 4) * 16 * 2))
        big = max_group_qubits_for(lay, DeviceSpec(memory_bytes=(1 << 8) * 16 * 2))
        assert big > small

    def test_capped_by_num_qubits(self):
        lay = ChunkLayout(5, 3)
        t = max_group_qubits_for(lay, DeviceSpec(memory_bytes=1 << 30))
        assert t == 2  # cannot exceed the global-qubit count

    def test_chunk_must_fit(self, lay):
        with pytest.raises(ValueError):
            max_group_qubits_for(lay, DeviceSpec(memory_bytes=16))

    def test_double_buffer_halves(self, lay):
        d = DeviceSpec(memory_bytes=(1 << 6) * 16 * 2)
        single = max_group_qubits_for(lay, d, double_buffer=False)
        double = max_group_qubits_for(lay, d, double_buffer=True)
        assert single >= double


class TestLocalGates:
    def test_all_local_one_stage(self, lay):
        c = Circuit(8).h(0).cx(0, 1).t(2).cz(1, 2)
        stages = plan_stages(c, lay, 2)
        assert len(stages) == 1
        assert isinstance(stages[0], GateStage)
        assert stages[0].is_local

    def test_diagonal_global_stays_local(self, lay):
        c = Circuit(8).h(0).cz(0, 7).rz(0.3, 6).cp(0.1, 5, 6)
        stages = plan_stages(c, lay, 2)
        assert len(stages) == 1
        assert stages[0].group_qubits == ()

    def test_stored_diagonal_stays_local(self, lay):
        c = Circuit(8)
        d = np.ones(1 << 8, dtype=complex)
        d[-1] = -1
        c.diagonal(d, *range(8))
        stages = plan_stages(c, lay, 1)
        assert len(stages) == 1
        assert stages[0].group_qubits == ()


class TestGrouping:
    def test_global_gate_forces_group(self, lay):
        c = Circuit(8).h(7)
        stages = plan_stages(c, lay, 2)
        assert stages[0].group_qubits == (7,)

    def test_union_grows_until_cap(self, lay):
        c = Circuit(8).h(3).h(4).h(5)
        stages = plan_stages(c, lay, 3)
        assert len(stages) == 1
        assert stages[0].group_qubits == (3, 4, 5)

    def test_cap_splits_stages(self, lay):
        c = Circuit(8).h(3).h(4).h(5)
        stages = plan_stages(c, lay, 2)
        assert len(stages) == 2

    def test_oversized_gate_lowered_by_swaps(self, lay):
        from scipy.stats import unitary_group

        u = unitary_group.rvs(8, random_state=np.random.default_rng(0))
        c = Circuit(8).unitary(u, 3, 4, 5)
        stages = plan_stages(c, lay, 2)
        gates = [g for s in stages for g in s.gates]
        assert sum(1 for g in gates if g.name == "swap") == 2
        assert all(
            len(lay.global_qubits(g.qubits)) <= 2
            for s in stages if isinstance(s, GateStage) for g in s.gates
        )

    def test_global_gate_with_zero_cap_rejected(self, lay):
        c = Circuit(8).h(7)
        with pytest.raises(ValueError):
            plan_stages(c, lay, 0)

    def test_gate_order_preserved(self, lay):
        c = Circuit(8).h(0).h(7).t(1).h(6)
        stages = plan_stages(c, lay, 1)
        flattened = [g for s in stages for g in s.gates]
        assert [g.name for g in flattened] == ["h", "h", "t", "h"]
        # h(0) and h(7) share a stage (local gates ride along); h(6)
        # overflows the 1-qubit group cap and opens a new stage.
        assert [tuple(s.group_qubits) for s in stages] == [(7,), (6,)]


class TestPermutations:
    def test_global_x_becomes_permutation(self, lay):
        stages = plan_stages(Circuit(8).x(7), lay, 2)
        assert len(stages) == 1
        assert isinstance(stages[0], PermutationStage)
        bit = 1 << (7 - 3)
        assert stages[0].perm == tuple(k ^ bit for k in range(32))

    def test_local_x_is_not_permutation(self, lay):
        stages = plan_stages(Circuit(8).x(0), lay, 2)
        assert isinstance(stages[0], GateStage)

    def test_global_swap_becomes_permutation(self, lay):
        stages = plan_stages(Circuit(8).swap(6, 7), lay, 2)
        assert isinstance(stages[0], PermutationStage)

    def test_mixed_swap_not_permutation(self, lay):
        stages = plan_stages(Circuit(8).swap(0, 7), lay, 2)
        assert isinstance(stages[0], GateStage)

    def test_consecutive_permutations_merge(self, lay):
        stages = plan_stages(Circuit(8).x(7).x(6), lay, 2)
        assert len(stages) == 1
        bits = (1 << 4) | (1 << 3)
        assert stages[0].perm == tuple(k ^ bits for k in range(32))

    def test_permutation_can_be_disabled(self, lay):
        stages = plan_stages(Circuit(8).x(7), lay, 2, enable_permutation_stages=False)
        assert isinstance(stages[0], GateStage)

    def test_permutation_composition_order(self, lay):
        # x(7) then swap(6,7): composed permutation must equal applying
        # the two blob permutations in order.
        stages = plan_stages(Circuit(8).x(7).swap(6, 7), lay, 2)
        assert len(stages) == 1
        p1 = [k ^ (1 << 4) for k in range(32)]

        def swap_bits(k):
            a, b = (k >> 3) & 1, (k >> 4) & 1
            return (k & ~(1 << 3) & ~(1 << 4)) | (b << 3) | (a << 4)

        p2 = [swap_bits(k) for k in range(32)]
        composed = tuple(p1[p2[d]] for d in range(32))
        assert stages[0].perm == composed


class TestDescribePlan:
    def test_report_counts(self, lay):
        c = Circuit(8).h(0).x(7).h(6).cz(0, 5)
        stages = plan_stages(c, lay, 2)
        rep = describe_plan(stages, lay)
        assert rep.num_permutation_stages == 1
        assert rep.gates_total == 4
        assert rep.num_stages == len(stages)
        assert rep.group_passes > 0

    def test_group_passes_scale_with_group_size(self, lay):
        c1 = plan_stages(Circuit(8).h(7), lay, 2)
        rep1 = describe_plan(c1, lay)
        assert rep1.group_passes == lay.num_chunks // 2

    def test_realistic_qft_plan(self):
        lay = ChunkLayout(10, 5)
        c = qft(10)
        stages = plan_stages(c, lay, 2)
        rep = describe_plan(stages, lay)
        assert rep.gates_total == len(c)
        # QFT's controlled phases are diagonal: most gates land in
        # stages without huge groups.
        assert rep.max_group_size <= 2
