"""Unit tests for the online scheduler: gate remapping and stage execution."""

import numpy as np
import pytest

from repro.circuits import Circuit, gate_matrix, make_diagonal_gate, make_gate
from repro.compression import get_compressor
from repro.device import DeviceExecutor, DeviceSpec, Stage, Timeline
from repro.memory import BufferPool, ChunkLayout, CompressedChunkStore, MemoryTracker
from repro.pipeline import (
    GateStage,
    PermutationStage,
    StageScheduler,
    plan_stages,
    remap_gate_for_group,
    restrict_diagonal,
)
from repro.statevector import DenseSimulator, apply_gate


class TestRestrictDiagonal:
    def test_no_fixed_passthrough(self):
        d = np.exp(1j * np.arange(4))
        rd, rq = restrict_diagonal(d, (0, 1), {})
        assert np.array_equal(rd, d)
        assert rq == (0, 1)

    def test_fix_one_qubit(self):
        d = np.array([1, 2, 3, 4], dtype=complex)  # index = q0 + 2*q1
        rd, rq = restrict_diagonal(d, (0, 1), {1: 1})
        assert rq == (0,)
        assert np.array_equal(rd, [3, 4])
        rd, rq = restrict_diagonal(d, (0, 1), {1: 0})
        assert np.array_equal(rd, [1, 2])

    def test_fix_all(self):
        d = np.array([1, 2, 3, 4], dtype=complex)
        rd, rq = restrict_diagonal(d, (0, 1), {0: 1, 1: 1})
        assert rq == ()
        assert rd[0] == 4

    def test_fix_middle_of_three(self):
        d = np.arange(8, dtype=complex)  # index = q0 + 2*q1 + 4*q2
        rd, rq = restrict_diagonal(d, (0, 1, 2), {1: 1})
        assert rq == (0, 2)
        # remaining index u = bit(q0) + 2*bit(q2) -> original = q0 + 2 + 4*q2
        assert np.array_equal(rd, [2, 3, 6, 7])


class TestRemapGate:
    def setup_method(self):
        self.lay = ChunkLayout(6, 3)

    def test_local_gate_unchanged(self):
        pl = self.lay.chunk_groups([4])
        g = make_gate("cx", (0, 2))
        assert remap_gate_for_group(g, self.lay, pl, 0) is g

    def test_global_gate_remapped_to_virtual(self):
        pl = self.lay.chunk_groups([4])
        g = make_gate("h", (4,))
        rg = remap_gate_for_group(g, self.lay, pl, 0)
        assert rg.qubits == (3,)
        assert rg.name == "h"

    def test_mixed_gate_remapped(self):
        pl = self.lay.chunk_groups([4, 5])
        g = make_gate("cx", (5, 1))
        rg = remap_gate_for_group(g, self.lay, pl, 0)
        assert rg.qubits == (4, 1)  # qubit 5 is the second group qubit -> pos 3+1

    def test_diagonal_out_of_group_restricted(self):
        pl = self.lay.chunk_groups([])  # all-local stage
        g = make_gate("cz", (0, 5))  # diagonal, qubit 5 fixed by chunk id
        # chunk with bit for qubit 5 = 0: identity -> None
        rg0 = remap_gate_for_group(g, self.lay, pl, 0)
        assert rg0 is None
        # chunk with qubit5 bit = 1: Z on qubit 0
        base = 1 << (5 - 3)
        rg1 = remap_gate_for_group(g, self.lay, pl, base)
        assert rg1 is not None
        assert rg1.qubits == (0,)
        assert np.allclose(rg1.diag, [1, -1])

    def test_fully_fixed_diagonal_phase(self):
        pl = self.lay.chunk_groups([])
        d = np.array([1, 1, 1, 1j], dtype=complex)
        g = make_diagonal_gate((4, 5), d)
        base = (1 << 1) | (1 << 2)  # both bits set
        rg = remap_gate_for_group(g, self.lay, pl, base)
        assert rg is not None and rg.qubits == (0,)
        assert np.allclose(rg.diag, [1j, 1j])

    def test_fully_fixed_identity_skipped(self):
        pl = self.lay.chunk_groups([])
        d = np.array([1, 1, 1, -1], dtype=complex)
        g = make_diagonal_gate((4, 5), d)
        assert remap_gate_for_group(g, self.lay, pl, 0) is None


def build_rig(n=8, c=3, codec="zlib", dev_amps=None, offload=0.0):
    lay = ChunkLayout(n, c)
    tracker = MemoryTracker()
    store = CompressedChunkStore(lay, get_compressor(codec), tracker)
    store.init_zero_state()
    if dev_amps is None:
        dev_amps = (1 << c) * 8
    timeline = Timeline()
    ex = DeviceExecutor(DeviceSpec(memory_bytes=dev_amps * 16),
                        timeline=timeline, tracker=tracker)
    pool = BufferPool(2, dev_amps // 2, tracker)
    sched = StageScheduler(lay, store, ex, pool, timeline,
                           cpu_offload_fraction=offload)
    return lay, store, sched


class TestStageExecution:
    def test_local_stage_matches_dense(self):
        lay, store, sched = build_rig()
        c = Circuit(8).h(0).cx(0, 1).t(2)
        stages = plan_stages(c, lay, 2)
        sched.run(stages)
        ref = DenseSimulator().run(c).data
        assert np.allclose(store.to_statevector(), ref, atol=1e-12)

    def test_group_stage_matches_dense(self):
        lay, store, sched = build_rig()
        c = Circuit(8).h(7).cx(7, 0).h(5)
        stages = plan_stages(c, lay, 2)
        sched.run(stages)
        ref = DenseSimulator().run(c).data
        assert np.allclose(store.to_statevector(), ref, atol=1e-12)

    def test_permutation_stage_matches_dense(self):
        lay, store, sched = build_rig()
        c = Circuit(8).h(0).x(7).swap(6, 7)
        stages = plan_stages(c, lay, 2)
        sched.run(stages)
        ref = DenseSimulator().run(c).data
        assert np.allclose(store.to_statevector(), ref, atol=1e-12)
        assert sched.stats.permutation_stages >= 1

    def test_diagonal_restriction_matches_dense(self):
        lay, store, sched = build_rig()
        c = Circuit(8).h(0).h(5).cz(0, 7).cp(0.7, 6, 1).rzz(0.3, 5, 6)
        stages = plan_stages(c, lay, 2)
        sched.run(stages)
        ref = DenseSimulator().run(c).data
        assert np.allclose(store.to_statevector(), ref, atol=1e-12)

    def test_cpu_offload_matches_dense(self):
        lay, store, sched = build_rig(offload=0.5)
        c = Circuit(8).h(7).cx(7, 2).h(6).cx(6, 0)
        stages = plan_stages(c, lay, 1)
        sched.run(stages)
        ref = DenseSimulator().run(c).data
        assert np.allclose(store.to_statevector(), ref, atol=1e-12)
        assert sched.stats.cpu_group_passes > 0

    def test_timeline_has_full_pipeline(self):
        lay, store, sched = build_rig()
        c = Circuit(8).h(7)
        sched.run(plan_stages(c, lay, 1))
        kinds = {e.stage for e in sched.timeline.events}
        assert {Stage.DECOMPRESS, Stage.H2D, Stage.KERNEL,
                Stage.D2H, Stage.COMPRESS} <= kinds

    def test_invalid_offload_fraction(self):
        lay, store, _ = build_rig()
        with pytest.raises(ValueError):
            StageScheduler(lay, store, None, None, cpu_offload_fraction=1.5)

    def test_unknown_stage_type_rejected(self):
        _, _, sched = build_rig()
        with pytest.raises(TypeError):
            sched.run_stage("not-a-stage")

    def test_identity_diagonals_skipped(self):
        lay, store, sched = build_rig()
        # cz(0,7) restricted on chunks with qubit7=0 is the identity
        c = Circuit(8).h(0).cz(0, 7)
        sched.run(plan_stages(c, lay, 1))
        assert sched.stats.gates_skipped_identity > 0


class TestTinyAngleRegression:
    """Regression: near-identity diagonals must never be dropped.

    An earlier version used np.allclose's default rtol=1e-5 to skip
    "identity" restricted diagonals, silently deleting rotations with
    angles below ~1e-5 (found by hypothesis). The skip must be
    essentially exact.
    """

    @pytest.mark.parametrize("angle", [1e-5, 1e-6, 1e-9])
    def test_tiny_phase_survives_chunking(self, angle):
        lay, store, sched = build_rig()
        c = Circuit(8).h(0).cp(angle, 0, 7)
        sched.run(plan_stages(c, lay, 1))
        ref = DenseSimulator().run(c).data
        assert np.allclose(store.to_statevector(), ref, atol=1e-15)

    def test_tiny_rz_on_global_qubit(self):
        lay, store, sched = build_rig()
        c = Circuit(8).h(7).rz(5e-6, 7)
        sched.run(plan_stages(c, lay, 1))
        ref = DenseSimulator().run(c).data
        assert np.allclose(store.to_statevector(), ref, atol=1e-15)
