"""Tests for the chunk-granularity auto-tuner."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit, qft, random_circuit
from repro.core import MemQSim, MemQSimConfig
from repro.device import DeviceSpec
from repro.pipeline import autotune_chunk_qubits


def cfg(dev_amps=1 << 11):
    return MemQSimConfig(compressor="zlib",
                         device=DeviceSpec(memory_bytes=dev_amps * 16))


class TestAutotune:
    def test_returns_feasible_candidate(self):
        rep = autotune_chunk_qubits(qft(10), cfg())
        assert 2 <= rep.best_chunk_qubits <= 9
        assert all(c <= 10 for c, _ in rep.scores)

    def test_prefers_coarse_chunks_for_qft(self):
        # A1's trend: per-pass overhead dominates at fine granularity.
        rep = autotune_chunk_qubits(qft(11), cfg())
        assert rep.best_chunk_qubits >= 5

    def test_respects_device_capacity(self):
        # Tiny device: coarse chunks infeasible, candidates capped.
        rep = autotune_chunk_qubits(qft(10), cfg(dev_amps=1 << 6))
        assert max(c for c, _ in rep.scores) <= 4

    def test_explicit_candidates(self):
        rep = autotune_chunk_qubits(random_circuit(9, 40, seed=1), cfg(),
                                    candidates=[3, 5])
        assert {c for c, _ in rep.scores} == {3, 5}
        assert rep.best_chunk_qubits in (3, 5)

    def test_infeasible_candidates_scored_inf(self):
        rep = autotune_chunk_qubits(qft(10), cfg(dev_amps=1 << 6),
                                    candidates=[3, 9])
        scores = dict(rep.scores)
        assert math.isinf(scores[9])
        assert rep.best_chunk_qubits == 3

    def test_no_feasible_sizes_raises(self):
        with pytest.raises(ValueError):
            autotune_chunk_qubits(qft(10), cfg(), candidates=[])

    def test_probe_extends_to_reach_global_qubits(self):
        # Circuit whose first gates are all on qubit 0: the probe must
        # extend so candidates differ at all.
        c = Circuit(10)
        for _ in range(30):
            c.t(0)
        c.h(9)
        rep = autotune_chunk_qubits(c, cfg(), probe_gates=8)
        assert rep.probe_gates > 8

    def test_tuned_config_runs(self):
        circ = random_circuit(10, 50, seed=2)
        base = cfg()
        rep = autotune_chunk_qubits(circ, base)
        tuned = base.with_updates(chunk_qubits=rep.best_chunk_qubits)
        res = MemQSim(tuned).run(circ)
        assert res.norm() == pytest.approx(1.0, abs=1e-9)

    def test_table_renders(self):
        rep = autotune_chunk_qubits(qft(9), cfg(), candidates=[3, 4])
        assert "best" in rep.table()
