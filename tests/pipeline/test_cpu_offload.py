"""Unit tests for the CPU offload policy."""

import pytest

from repro.device import Stage, Timeline
from repro.pipeline import advise_from_timeline, balanced_offload_fraction


class TestBalancedFraction:
    def test_no_idle_cores_means_zero(self):
        assert balanced_offload_fraction(1.0, 1.0, 0) == 0.0

    def test_zero_cpu_cost_means_zero(self):
        assert balanced_offload_fraction(1.0, 0.0, 4) == 0.0

    def test_zero_gpu_cost_means_all_cpu(self):
        assert balanced_offload_fraction(0.0, 1.0, 4) == 1.0

    def test_equal_costs_one_core(self):
        # r = 1, 1 core: f = 1/2 — each path takes half the groups.
        assert balanced_offload_fraction(1.0, 1.0, 1) == pytest.approx(0.5)

    def test_more_cores_more_offload(self):
        f1 = balanced_offload_fraction(1.0, 2.0, 1)
        f4 = balanced_offload_fraction(1.0, 2.0, 4)
        assert f4 > f1

    def test_slow_cpu_little_offload(self):
        f = balanced_offload_fraction(1.0, 100.0, 1)
        assert f < 0.02

    def test_clamped_to_unit_interval(self):
        assert 0.0 <= balanced_offload_fraction(1e9, 1e-9, 100) <= 1.0

    def test_balance_property(self):
        # With f = f*, GPU time on (1-f) groups == CPU time on f/cores groups.
        gpu, cpu, cores = 0.7, 2.1, 3
        f = balanced_offload_fraction(gpu, cpu, cores)
        lhs = (1 - f) * gpu
        rhs = f * cpu / cores
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestAdvise:
    def test_advise_from_events(self):
        t = Timeline()
        for chunk in range(4):
            t.record(Stage.DECOMPRESS, 0.02, chunk)
            t.record(Stage.H2D, 0.01, chunk)
            t.record(Stage.KERNEL, 0.03, chunk)
            t.record(Stage.D2H, 0.01, chunk)
            t.record(Stage.COMPRESS, 0.02, chunk)
        advice = advise_from_timeline(t, idle_cores=3)
        assert advice.gpu_path_seconds_per_group == pytest.approx(0.05)
        assert advice.cpu_path_seconds_per_group == pytest.approx(0.07)
        assert 0.0 < advice.fraction < 1.0
        assert advice.idle_cores == 3

    def test_advise_empty_timeline(self):
        advice = advise_from_timeline(Timeline(), idle_cores=2)
        assert advice.fraction == 0.0
