"""Unit tests for repro.bench.decide: corpus lookup, host-fingerprint
gating, probe fallback, and whole-config auto resolution."""

import numpy as np
import pytest

from repro.bench import (
    Decision,
    decide_backend,
    decide_precision,
    decide_workers,
    find_record,
    load_corpus,
    make_result,
    metric,
    resolve_auto_config,
    result_path,
    write_result,
)
from repro.bench.decide import BYTES_RATIO_GATE, WALL_RATIO_GATE
from repro.bench.schema import host_fingerprint
from repro.core.config import MemQSimConfig


def write_pr1(corpus_dir, *, bytes_ratio=0.50, wall_ratio=0.85,
              numpy_s=0.002, einsum_s=0.008, host=None):
    """Drop a synthetic BENCH_PR1 record into ``corpus_dir``."""
    doc = make_result(
        "PR1", title="synthetic precision record",
        metrics={
            "c64_bytes_ratio": metric([bytes_ratio], unit="ratio"),
            "c64_wall_ratio": metric([wall_ratio], unit="ratio"),
            "backend_numpy_seconds": metric([numpy_s], unit="s"),
            "backend_einsum_seconds": metric([einsum_s], unit="s"),
        })
    if host is not None:
        doc["host"] = host
    return write_result(doc, result_path(str(corpus_dir), "PR1"))


def foreign_host():
    h = dict(host_fingerprint())
    h["cpu_count"] = (h.get("cpu_count") or 1) + 64
    h["platform"] = "ENIAC-1945"
    return h


class TestCorpusAccess:
    def test_load_corpus_empty_and_missing(self, tmp_path):
        assert load_corpus(tmp_path) == []
        assert load_corpus(tmp_path / "nonexistent") == []

    def test_load_corpus_skips_garbage(self, tmp_path):
        (tmp_path / "BENCH_BAD.json").write_text("{not json")
        write_pr1(tmp_path)
        recs = load_corpus(tmp_path)
        assert [r["experiment"] for r in recs] == ["PR1"]

    def test_find_record_exact_host_hit(self, tmp_path):
        write_pr1(tmp_path)  # make_result stamps this host's fingerprint
        rec = find_record("PR1", tmp_path)
        assert rec is not None
        assert rec["experiment"] == "PR1"

    def test_find_record_rejects_foreign_host(self, tmp_path):
        write_pr1(tmp_path, host=foreign_host())
        assert find_record("PR1", tmp_path) is None

    def test_find_record_unknown_experiment(self, tmp_path):
        write_pr1(tmp_path)
        assert find_record("ZZ9", tmp_path) is None


class TestDecidePrecision:
    def test_corpus_adopts_c64(self, tmp_path):
        write_pr1(tmp_path, bytes_ratio=0.50, wall_ratio=0.85)
        d = decide_precision(tmp_path, allow_probe=False)
        assert (d.knob, d.value, d.source) == ("precision", "c64", "corpus")
        assert "BENCH_PR1" in d.rationale
        assert d.audit_line().startswith("auto-resolve precision=c64 [corpus]")

    def test_corpus_keeps_c128_when_gates_miss(self, tmp_path):
        # bytes fine but c64 measured slower than c128: stay safe
        write_pr1(tmp_path, bytes_ratio=0.50, wall_ratio=1.20)
        d = decide_precision(tmp_path, allow_probe=False)
        assert (d.value, d.source) == ("c128", "corpus")

        write_pr1(tmp_path, bytes_ratio=BYTES_RATIO_GATE + 0.10,
                  wall_ratio=WALL_RATIO_GATE - 0.5)
        d = decide_precision(tmp_path, allow_probe=False)
        assert (d.value, d.source) == ("c128", "corpus")

    def test_foreign_host_falls_back_to_default(self, tmp_path):
        write_pr1(tmp_path, host=foreign_host())
        d = decide_precision(tmp_path, allow_probe=False)
        assert (d.value, d.source) == ("c128", "default")

    def test_empty_corpus_probes(self, tmp_path):
        d = decide_precision(tmp_path, allow_probe=True)
        assert d.knob == "precision"
        assert d.source == "probe"
        assert d.value in ("c64", "c128")
        assert "micro-probe" in d.rationale


class TestDecideBackend:
    def test_corpus_picks_faster_backend(self, tmp_path):
        write_pr1(tmp_path, numpy_s=0.002, einsum_s=0.008)
        d = decide_backend(tmp_path, allow_probe=False)
        assert (d.value, d.source) == ("numpy", "corpus")

        write_pr1(tmp_path, numpy_s=0.009, einsum_s=0.001)
        d = decide_backend(tmp_path, allow_probe=False)
        assert (d.value, d.source) == ("einsum", "corpus")

    def test_no_corpus_no_probe_defaults_numpy(self, tmp_path):
        d = decide_backend(tmp_path, allow_probe=False)
        assert (d.value, d.source) == ("numpy", "default")

    def test_probe_returns_registered_backend(self, tmp_path):
        d = decide_backend(tmp_path, allow_probe=True)
        assert d.source == "probe"
        assert d.value in ("numpy", "einsum")


class TestDecideWorkers:
    def test_returns_positive_worker_count(self):
        d = decide_workers(MemQSimConfig(compressor="zlib"))
        assert d.knob == "workers"
        assert d.source == "probe"
        assert isinstance(d.value, int) and d.value >= 1


class TestResolveAutoConfig:
    def test_concrete_config_untouched(self, tmp_path):
        cfg = MemQSimConfig(chunk_qubits=4)
        resolved, decisions = resolve_auto_config(cfg, corpus_dir=tmp_path)
        assert resolved is cfg
        assert decisions == []

    def test_all_knobs_closed(self, tmp_path):
        write_pr1(tmp_path)
        cfg = MemQSimConfig(chunk_qubits=4, precision="auto",
                            backend="auto", workers=0)
        assert cfg.needs_auto_resolution()
        resolved, decisions = resolve_auto_config(
            cfg, num_qubits=8, corpus_dir=tmp_path)
        assert not resolved.needs_auto_resolution()
        assert resolved.precision in ("c64", "c128")
        assert resolved.backend in ("numpy", "einsum")
        assert resolved.workers >= 1
        assert [d.knob for d in decisions] == ["precision", "backend",
                                               "workers"]
        resolved.plan_key()  # well-defined after resolution

    def test_decision_round_trips_to_dict(self):
        d = Decision("precision", "c64", "corpus", "because measured")
        assert d.to_dict() == {"knob": "precision", "value": "c64",
                               "source": "corpus",
                               "rationale": "because measured"}
