"""repro.bench.schema: record assembly, validation, round-trip."""

from __future__ import annotations

import pytest

from repro.analysis import Table
from repro.bench import (
    SCHEMA_VERSION,
    host_fingerprint,
    load_result,
    make_result,
    median,
    metric,
    result_path,
    validate,
    write_result,
)


def test_host_fingerprint_keys():
    host = host_fingerprint()
    assert host["cpu_count"] >= 1
    for key in ("platform", "machine", "python", "implementation"):
        assert isinstance(host[key], str) and host[key]


def test_median():
    assert median([3.0]) == 3.0
    assert median([4.0, 1.0, 3.0]) == 3.0
    assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
    with pytest.raises(ValueError):
        median([])


def test_metric_entry():
    m = metric([1.0, 2.0], unit="s", tolerance=0.1)
    assert m == {"values": [1.0, 2.0], "unit": "s", "direction": "lower",
                 "tolerance": 0.1}
    assert metric(5)["values"] == [5.0]  # bare number wraps
    with pytest.raises(ValueError):
        metric([1.0], direction="sideways")
    with pytest.raises(ValueError):
        metric([])
    with pytest.raises(ValueError):
        metric(1.0, tolerance=-0.5)


def test_make_result_valid_and_normalizing():
    t = Table(["a", "b"], title="demo")
    t.add("x", "1")
    doc = make_result(
        "T1", title="transfer", params={"n": 14},
        metrics={"wall_seconds": 0.5,            # bare number
                 "repeats": [1.0, 2.0, 3.0],     # bare repeats
                 "ratio": metric(11.9, direction="higher")},
        tables=[t])
    assert validate(doc) == []
    assert doc["schema"] == SCHEMA_VERSION
    assert doc["metrics"]["wall_seconds"]["values"] == [0.5]
    assert doc["metrics"]["repeats"]["values"] == [1.0, 2.0, 3.0]
    assert doc["metrics"]["ratio"]["direction"] == "higher"
    assert doc["tables"][0]["columns"] == ["a", "b"]
    assert doc["tables"][0]["rows"] == [["x", "1"]]


def test_make_result_rejects_bad_experiment_id():
    with pytest.raises(ValueError):
        make_result("../evil")
    with pytest.raises(ValueError):
        make_result("")


def test_validate_catches_each_error():
    assert validate([]) != []
    doc = make_result("X1", metrics={"m": 1.0})
    assert validate(doc) == []
    for mutate, fragment in [
        (lambda d: d.update(schema="v0"), "schema"),
        (lambda d: d.pop("experiment"), "experiment"),
        (lambda d: d["host"].pop("cpu_count"), "host.cpu_count"),
        (lambda d: d["metrics"]["m"].update(values=[]), "values"),
        (lambda d: d["metrics"]["m"].update(direction="up"), "direction"),
        (lambda d: d["metrics"]["m"].update(tolerance=-1), "tolerance"),
        (lambda d: d.update(tables=[{"rows": []}]), "tables[0]"),
    ]:
        bad = make_result("X1", metrics={"m": 1.0})
        mutate(bad)
        assert any(fragment in e for e in validate(bad)), fragment


def test_write_result_round_trip(tmp_path):
    doc = make_result("A2", metrics={"wall_seconds": metric(0.1, unit="s")})
    path = write_result(doc, result_path(str(tmp_path), "A2"))
    assert path.endswith("BENCH_A2.json")
    assert load_result(path)["metrics"]["wall_seconds"]["unit"] == "s"


def test_write_result_refuses_invalid(tmp_path):
    doc = make_result("A2")
    doc["metrics"] = {"m": {"values": []}}
    with pytest.raises(ValueError):
        write_result(doc, result_path(str(tmp_path), "A2"))
