"""``python -m repro.bench check --json``: the machine-readable report."""

from __future__ import annotations

import json

import pytest

from repro.bench import make_result, metric, result_path, write_result
from repro.bench.__main__ import main
from repro.bench.schema import SCHEMA_VERSION


def record(experiment="E1", wall=1.0):
    return make_result(experiment, metrics={
        "wall_seconds": metric(wall, unit="s")})


@pytest.fixture
def dirs(tmp_path):
    results = tmp_path / "results"
    baselines = tmp_path / "baselines"
    results.mkdir()
    baselines.mkdir()
    return str(results), str(baselines)


def _write(doc, directory):
    write_result(doc, result_path(directory, doc["experiment"]))


def _run_check(results, baselines, *extra):
    return main(["check", "--results", results, "--baselines", baselines,
                 *extra])


def test_json_stdout_replaces_the_table(dirs, capsys):
    results, baselines = dirs
    _write(record(wall=1.0), baselines)
    _write(record(wall=1.02), results)
    code = _run_check(results, baselines, "--json", "-")
    out = capsys.readouterr().out
    doc = json.loads(out)  # pure JSON on stdout: no table mixed in
    assert code == 0
    assert doc["schema"] == f"{SCHEMA_VERSION}/check"
    assert doc["exit_code"] == 0
    assert doc["counts"] == {
        "checked": 1, "ok": 1, "regressions": 0,
        "advisory_regressions": 0, "no_baseline": 0, "schema_errors": 0}
    (exp,) = doc["experiments"]
    assert exp["experiment"] == "E1" and exp["status"] == "ok"
    assert exp["gating"] is False
    (m,) = exp["metrics"]
    assert m["name"] == "wall_seconds"
    assert m["status"] == "ok"
    assert m["baseline"] == 1.0 and m["current"] == 1.02
    assert m["rel_change"] == pytest.approx(0.02)


def test_json_reports_gating_regression(dirs, capsys):
    results, baselines = dirs
    _write(record(wall=1.0), baselines)
    _write(record(wall=3.0), results)
    code = _run_check(results, baselines, "--json", "-")
    doc = json.loads(capsys.readouterr().out)
    assert code == 1 and doc["exit_code"] == 1
    assert doc["counts"]["regressions"] == 1
    (exp,) = doc["experiments"]
    assert exp["status"] == "regression" and exp["gating"] is True
    assert exp["metrics"][0]["status"] == "regression"


def test_warn_only_demotes_exit_code_but_keeps_verdicts(dirs, capsys):
    results, baselines = dirs
    _write(record(wall=1.0), baselines)
    _write(record(wall=3.0), results)
    code = _run_check(results, baselines, "--warn-only", "--json", "-")
    doc = json.loads(capsys.readouterr().out)
    assert code == 0 and doc["exit_code"] == 0
    assert doc["warn_only"] is True
    assert doc["counts"]["regressions"] == 1  # the verdict itself survives


def test_json_to_file_keeps_the_table_output(dirs, tmp_path, capsys):
    results, baselines = dirs
    _write(record(wall=1.0), baselines)
    _write(record(wall=1.0), results)
    out_file = tmp_path / "check.json"
    code = _run_check(results, baselines, "--json", str(out_file))
    printed = capsys.readouterr().out
    assert code == 0
    assert "benchmark comparison" in printed  # table still renders
    doc = json.loads(out_file.read_text())
    assert doc["counts"]["checked"] == 1


def test_no_baseline_is_counted(dirs, capsys):
    results, baselines = dirs
    _write(record(wall=1.0), results)  # nothing committed
    code = _run_check(results, baselines, "--json", "-")
    doc = json.loads(capsys.readouterr().out)
    assert code == 0
    assert doc["counts"]["no_baseline"] == 1
    assert doc["experiments"][0]["status"] == "no-baseline"


def test_empty_results_dir_yields_payload_and_exit_one(dirs, capsys):
    results, baselines = dirs
    code = _run_check(results, baselines, "--json", "-")
    doc = json.loads(capsys.readouterr().out)
    assert code == 1
    assert doc["exit_code"] == 1 and doc["counts"]["checked"] == 0
