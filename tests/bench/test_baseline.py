"""repro.bench.baseline: the noise-aware comparator and baseline store."""

from __future__ import annotations

import pytest

from repro.bench import (
    compare_directories,
    compare_records,
    discover_results,
    make_result,
    metric,
    result_path,
    update_baselines,
    write_result,
)
from repro.bench.baseline import MIN_ABS_SECONDS


def record(experiment="E1", wall=1.0, **metrics):
    all_metrics = {"wall_seconds": metric(wall, unit="s")}
    all_metrics.update(metrics)
    return make_result(experiment, metrics=all_metrics)


def test_ok_within_tolerance():
    rep = compare_records(record(wall=1.0), record(wall=1.1))
    assert rep.status == "ok"
    assert rep.metrics[0].status == "ok"
    assert not rep.host_mismatch


def test_regression_beyond_tolerance():
    rep = compare_records(record(wall=1.0), record(wall=1.5))
    assert rep.status == "regression"
    (m,) = rep.regressions
    assert m.name == "wall_seconds"
    assert m.rel_change == pytest.approx(0.5)
    assert "wall_seconds" in m.describe()


def test_improvement_direction_aware():
    # lower-is-better improving
    rep = compare_records(record(wall=1.0), record(wall=0.5))
    assert rep.status == "ok" and rep.improvements
    # higher-is-better: dropping ratio is the regression
    base = record(ratio=metric(10.0, direction="higher"))
    cur = record(ratio=metric(5.0, direction="higher"))
    rep = compare_records(base, cur)
    assert [m.name for m in rep.regressions] == ["ratio"]
    # ...and rising ratio is the improvement
    rep = compare_records(cur, base)
    assert [m.name for m in rep.improvements] == ["ratio"]


def test_median_of_repeats_resists_one_outlier():
    base = make_result("E1", metrics={
        "wall_seconds": metric([1.0, 1.0, 1.0], unit="s")})
    cur = make_result("E1", metrics={
        "wall_seconds": metric([1.05, 9.0, 0.95], unit="s")})  # median 1.05
    assert compare_records(base, cur).status == "ok"


def test_sub_noise_absolute_delta_never_regresses():
    # +300% relative, but the absolute swing is under the noise floor
    assert MIN_ABS_SECONDS > 2e-3
    rep = compare_records(record(wall=1e-3), record(wall=3e-3))
    assert rep.status == "ok"
    # same relative change above the floor does gate
    rep = compare_records(record(wall=1.0), record(wall=3.0))
    assert rep.status == "regression"


def test_missing_baseline():
    rep = compare_records(None, record())
    assert rep.status == "no-baseline"
    assert "update" in rep.notes[0]


def test_schema_error_current_and_baseline():
    bad = record()
    bad["metrics"] = {"m": {"values": []}}
    assert compare_records(record(), bad).status == "schema-error"
    rep = compare_records(bad, record())
    assert rep.status == "schema-error"
    assert all(n.startswith("baseline:") for n in rep.notes)


def test_host_mismatch_demotes_to_advisory():
    base, cur = record(wall=1.0), record(wall=2.0)
    base["host"]["cpu_count"] = 128
    rep = compare_records(base, cur)
    assert rep.status == "regression"  # still reported...
    assert rep.host_mismatch           # ...but flagged advisory
    assert any("advisory" in n for n in rep.notes)
    assert "host-mismatch" in rep.summary_line()


def test_new_and_missing_metrics():
    base = record()
    cur = record()
    del cur["metrics"]["wall_seconds"]
    cur["metrics"]["fresh"] = metric(1.0)
    statuses = {m.name: m.status
                for m in compare_records(base, cur).metrics}
    assert statuses == {"wall_seconds": "missing", "fresh": "new"}


def test_directory_round_trip(tmp_path):
    results = tmp_path / "results"
    baselines = results / "baselines"
    write_result(record("E1", wall=1.0), result_path(str(results), "E1"))
    write_result(record("E2", wall=2.0), result_path(str(results), "E2"))
    assert [e for e, _ in discover_results(str(results))] == ["E1", "E2"]

    # before update: every comparison is no-baseline
    reports = compare_directories(str(results), str(baselines))
    assert {r.status for r in reports} == {"no-baseline"}

    written = update_baselines(str(results), str(baselines))
    assert len(written) == 2
    reports = compare_directories(str(results), str(baselines))
    assert {r.status for r in reports} == {"ok"}

    # tighten one committed baseline: the gate names the offender
    tight = record("E2", wall=0.5)
    write_result(tight, result_path(str(baselines), "E2"))
    reports = compare_directories(str(results), str(baselines))
    by_exp = {r.experiment: r for r in reports}
    assert by_exp["E1"].status == "ok"
    assert [m.name for m in by_exp["E2"].regressions] == ["wall_seconds"]

    # --only style filtering
    only = compare_directories(str(results), str(baselines), only=["E1"])
    assert [r.experiment for r in only] == ["E1"]


def test_update_refuses_invalid_record(tmp_path):
    results = tmp_path / "results"
    path = result_path(str(results), "E1")
    write_result(record("E1"), path)
    # corrupt it on disk after the schema-checked write
    import json

    doc = json.loads(open(path).read())
    doc["metrics"]["wall_seconds"]["values"] = []
    with open(path, "w") as fh:
        json.dump(doc, fh)
    with pytest.raises(ValueError):
        update_baselines(str(results), str(tmp_path / "baselines"))


def test_bench_cli_check_and_update(tmp_path, capsys):
    from repro.bench.__main__ import main

    results, baselines = str(tmp_path / "results"), str(tmp_path / "b")
    write_result(record("E1", wall=1.0), result_path(results, "E1"))
    args = ["--results", results, "--baselines", baselines]

    assert main(["check"] + args) == 0  # no baseline yet: advisory only
    assert main(["update"] + args) == 0
    assert main(["check"] + args) == 0

    # artificially tightened baseline -> exit 1 naming the metric
    write_result(record("E1", wall=0.4), result_path(baselines, "E1"))
    capsys.readouterr()
    assert main(["check"] + args) == 1
    out = capsys.readouterr().out
    assert "REGRESSION [E1] wall_seconds" in out
    assert main(["check", "--warn-only"] + args) == 0
    assert main(["check", "--tolerance", "2.0"] + args) == 0

    # schema errors fail hard even in warn-only mode
    import json

    bad = record("E2")
    path = result_path(results, "E2")
    write_result(bad, path)
    doc = json.loads(open(path).read())
    doc["metrics"] = {"m": {"values": []}}
    with open(path, "w") as fh:
        json.dump(doc, fh)
    assert main(["check", "--warn-only"] + args) == 2
