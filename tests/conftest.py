"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit, ghz, qft, random_circuit
from repro.core import MemQSimConfig
from repro.device import DeviceSpec, HostSpec
from repro.statevector import DenseSimulator


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def dense() -> DenseSimulator:
    return DenseSimulator()


@pytest.fixture
def small_device() -> DeviceSpec:
    """A device that forces chunk streaming for >= 8-qubit circuits."""
    return DeviceSpec(memory_bytes=(1 << 6) * 16 * 4)  # 4 buffers of 64 amps


@pytest.fixture
def tight_config(small_device) -> MemQSimConfig:
    return MemQSimConfig(
        chunk_qubits=4,
        compressor="zlib",
        device=small_device,
        host=HostSpec(memory_bytes=1 << 26, cores=4),
    )


def random_state(n: int, seed: int = 0) -> np.ndarray:
    g = np.random.default_rng(seed)
    v = g.standard_normal(1 << n) + 1j * g.standard_normal(1 << n)
    return v / np.linalg.norm(v)


@pytest.fixture
def random_state_fn():
    return random_state
