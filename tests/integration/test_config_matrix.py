"""Config-interaction matrix: every feature combination must stay exact.

Cache, serpentine ordering, CPU offload, fusion, permutation stages,
multi-device round-robin and the disk store each reroute the same chunk
traffic through different code paths; this matrix asserts that *any*
combination still reproduces the dense baseline bit-for-bit (lossless
codec), plus a lossy + everything-on smoke check against the fidelity
floor.
"""

import itertools

import numpy as np
import pytest

from repro.circuits import get_workload, random_circuit
from repro.core import MemQSim, MemQSimConfig
from repro.device import DeviceSpec, HostSpec
from repro.statevector import DenseSimulator

N = 9
CIRCUIT = random_circuit(N, 60, seed=99)
REF = DenseSimulator().run(CIRCUIT).data


def base_config(**kw) -> MemQSimConfig:
    defaults = dict(
        chunk_qubits=4,
        compressor="zlib",
        device=DeviceSpec(memory_bytes=(1 << 6) * 16 * 2),
        host=HostSpec(memory_bytes=1 << 26, cores=4),
    )
    defaults.update(kw)
    return MemQSimConfig(**defaults)


# Each axis toggles one feature; the matrix covers all pairs (and a few
# triples through the cartesian product of the binary axes).
AXES = {
    "cache_chunks": [0, 8],
    "cpu_offload_fraction": [0.0, 0.5],
    "fuse_gates": [False, True],
    "num_devices": [1, 2],
}


def matrix():
    keys = list(AXES)
    for combo in itertools.product(*(AXES[k] for k in keys)):
        yield dict(zip(keys, combo))


class TestConfigMatrix:
    @pytest.mark.parametrize(
        "overrides", list(matrix()),
        ids=lambda o: ",".join(f"{k}={v}" for k, v in o.items()),
    )
    def test_all_combinations_match_dense(self, overrides):
        cfg = base_config(**overrides)
        got = MemQSim(cfg).run(CIRCUIT).statevector()
        assert np.allclose(got, REF, atol=1e-12), overrides

    def test_disk_store_with_cache_and_offload(self, tmp_path):
        cfg = base_config(
            store="disk", disk_path=str(tmp_path / "m.log"),
            cache_chunks=8, cpu_offload_fraction=0.5, fuse_gates=True,
        )
        res = MemQSim(cfg).run(CIRCUIT)
        assert np.allclose(res.statevector(), REF, atol=1e-12)
        res.store.close()

    def test_permutations_off_with_everything_on(self):
        cfg = base_config(
            enable_permutation_stages=False, cache_chunks=8,
            cpu_offload_fraction=0.25, fuse_gates=True, num_devices=3,
            transfer="buffer",
        )
        got = MemQSim(cfg).run(CIRCUIT).statevector()
        assert np.allclose(got, REF, atol=1e-12)

    def test_serpentine_off(self):
        cfg = base_config(serpentine_groups=False, cache_chunks=8)
        got = MemQSim(cfg).run(CIRCUIT).statevector()
        assert np.allclose(got, REF, atol=1e-12)

    def test_lossy_with_everything_on(self):
        from repro.compression import fidelity_floor

        cfg = base_config(
            compressor="szlike",
            compressor_options={"error_bound": 1e-8},
            cache_chunks=8, cpu_offload_fraction=0.5, fuse_gates=True,
            num_devices=2, transfer="buffer",
        )
        res = MemQSim(cfg).run(CIRCUIT)
        f = res.fidelity_vs(REF)
        budget = 1e-8 * (res.plan.num_stages + 1)
        assert f >= fidelity_floor(budget, 1 << N) - 1e-9

    @pytest.mark.parametrize("workload", ["qft", "grover", "supremacy"])
    def test_everything_on_across_workloads(self, workload):
        circ = get_workload(workload, 8)
        ref = DenseSimulator().run(circ).data
        cfg = base_config(
            cache_chunks=6, cpu_offload_fraction=0.3, fuse_gates=True,
            num_devices=2,
        )
        got = MemQSim(cfg).run(circ).statevector()
        assert np.allclose(got, ref, atol=1e-12), workload
