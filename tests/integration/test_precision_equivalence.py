"""Integration: the precision axis end to end.

Three claims ride here: (1) reduced precision is deterministic — a c64 run
is bit-identical between the serial and the parallel engine; (2) c64
accuracy is measurably excellent at small n (streamed QFT overlap vs the
dense c128 oracle stays within 1e-6 of unity); (3) mixed mode is at least
as accurate as plain c64, since it only rounds at stage boundaries.
"""

import numpy as np
import pytest

from repro.circuits import get_workload
from repro.core import MemQSim, MemQSimConfig
from repro.device import DeviceSpec, HostSpec
from repro.statevector import DenseSimulator


def tight(chunk_qubits, **kw):
    itemsize = 8 if kw.get("precision") in ("c64", "mixed") else 16
    return MemQSimConfig(
        chunk_qubits=chunk_qubits,
        compressor="zlib",
        device=DeviceSpec(
            memory_bytes=(1 << (chunk_qubits + 1)) * itemsize * 2),
        host=HostSpec(memory_bytes=1 << 26, cores=4),
        **kw,
    )


class TestSerialParallelBitIdentity:
    @pytest.mark.parametrize("workload", ["qft", "random"])
    def test_c64_digest_matches(self, workload):
        circ = get_workload(workload, 8)
        serial = MemQSim(
            tight(4, precision="c64", execution="serial")).run(circ)
        parallel = MemQSim(
            tight(4, precision="c64", execution="parallel",
                  workers=2)).run(circ)
        assert serial.state_digest() == parallel.state_digest()
        assert serial.statevector().dtype == np.complex64

    def test_mixed_digest_matches(self):
        circ = get_workload("qft", 8)
        serial = MemQSim(
            tight(4, precision="mixed", execution="serial")).run(circ)
        parallel = MemQSim(
            tight(4, precision="mixed", execution="parallel",
                  workers=2)).run(circ)
        assert serial.state_digest() == parallel.state_digest()


class TestFidelityBounds:
    @pytest.mark.parametrize("n", [10, 14])
    def test_c64_qft_overlap(self, n):
        circ = get_workload("qft", n)
        res = MemQSim(tight(5, precision="c64")).run(circ)
        fid = res.precision_fidelity()
        assert fid["method"] == "oracle"
        assert fid["overlap"] >= 1.0 - 1e-6
        assert abs(fid["norm_drift"]) <= 1e-5
        # the loose analytic bound must never beat the measurement
        assert fid["overlap"] >= fid["analytic_overlap_bound"]

    def test_mixed_at_least_as_accurate_as_c64(self):
        circ = get_workload("qft", 10)
        ref = DenseSimulator().run(circ).data
        f64 = MemQSim(tight(5, precision="c64")).run(circ).fidelity_vs(ref)
        fmx = MemQSim(tight(5, precision="mixed")).run(circ).fidelity_vs(ref)
        assert fmx >= f64 - 1e-12
        assert fmx >= 1.0 - 1e-6

    def test_c128_fidelity_exact(self):
        res = MemQSim(tight(4)).run(get_workload("qft", 8))
        fid = res.precision_fidelity()
        assert fid["method"] == "exact"
        assert fid["overlap"] == 1.0
        assert fid["analytic_overlap_bound"] == 1.0

    def test_fidelity_in_to_dict(self):
        res = MemQSim(tight(4, precision="c64")).run(get_workload("ghz", 8))
        doc = res.to_dict()
        fid = doc["precision_fidelity"]
        assert fid["precision"] == "c64"
        assert fid["overlap"] is not None
        assert doc["config_echo"]["precision"] == "c64"
