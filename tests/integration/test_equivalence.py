"""Integration: MEMQSim (lossless) must be bit-identical to the dense
baseline across the full workload suite and a grid of configurations.

This is the system's master correctness matrix: every combination exercises
the planner, the chunk-group executor, diagonal restriction, permutation
stages, buffer staging, and the codec round-trip together.
"""

import numpy as np
import pytest

from repro.circuits import WORKLOADS, get_workload
from repro.core import MemQSim, MemQSimConfig
from repro.device import DeviceSpec, HostSpec
from repro.statevector import DenseSimulator

N = 8


@pytest.fixture(scope="module")
def references():
    dense = DenseSimulator()
    return {name: dense.run(get_workload(name, N)).data for name in WORKLOADS}


def tight(chunk_qubits, **kw):
    return MemQSimConfig(
        chunk_qubits=chunk_qubits,
        compressor="zlib",
        device=DeviceSpec(memory_bytes=(1 << (chunk_qubits + 1)) * 16 * 2),
        host=HostSpec(memory_bytes=1 << 26, cores=4),
        **kw,
    )


class TestLosslessEquivalence:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("chunk_qubits", [3, 5])
    def test_workload_grid(self, references, workload, chunk_qubits):
        circ = get_workload(workload, N)
        got = MemQSim(tight(chunk_qubits)).run(circ).statevector()
        assert np.allclose(got, references[workload], atol=1e-12), workload

    @pytest.mark.parametrize("transfer", ["sync", "buffer"])
    def test_transfer_strategies(self, references, transfer):
        circ = get_workload("random", N)
        got = MemQSim(tight(4, transfer=transfer)).run(circ).statevector()
        assert np.allclose(got, references["random"], atol=1e-12)

    @pytest.mark.parametrize("offload", [0.25, 1.0])
    def test_cpu_offload(self, references, offload):
        circ = get_workload("qft", N)
        got = MemQSim(tight(4, cpu_offload_fraction=offload)).run(circ).statevector()
        assert np.allclose(got, references["qft"], atol=1e-12)

    def test_permutations_disabled_same_result(self, references):
        circ = get_workload("grover", N)
        got = MemQSim(tight(4, enable_permutation_stages=False)).run(circ).statevector()
        assert np.allclose(got, references["grover"], atol=1e-12)

    def test_einsum_backend(self, references):
        circ = get_workload("supremacy", N)
        got = MemQSim(tight(4, backend="einsum")).run(circ).statevector()
        assert np.allclose(got, references["supremacy"], atol=1e-10)

    @pytest.mark.parametrize("codec", ["lzma", "bz2", "null"])
    def test_other_lossless_codecs(self, references, codec):
        circ = get_workload("vqe", N)
        cfg = tight(4).with_updates(compressor=codec)
        got = MemQSim(cfg).run(circ).statevector()
        assert np.allclose(got, references["vqe"], atol=1e-12)

    def test_single_buffer(self, references):
        circ = get_workload("ghz", N)
        got = MemQSim(tight(4, num_buffers=1)).run(circ).statevector()
        assert np.allclose(got, references["ghz"], atol=1e-12)

    def test_chunk_equals_vector(self, references):
        # Degenerate single-chunk case: everything is local.
        cfg = MemQSimConfig(chunk_qubits=N, compressor="zlib",
                            device=DeviceSpec(memory_bytes=(1 << N) * 16 * 4))
        got = MemQSim(cfg).run(get_workload("qft", N)).statevector()
        assert np.allclose(got, references["qft"], atol=1e-12)


class TestLossyEquivalence:
    @pytest.mark.parametrize("workload", ["ghz", "qft", "grover", "supremacy"])
    def test_high_fidelity_at_tight_bound(self, references, workload):
        circ = get_workload(workload, N)
        cfg = tight(4).with_updates(
            compressor="szlike", compressor_options={"error_bound": 1e-9}
        )
        res = MemQSim(cfg).run(circ)
        f = res.fidelity_vs(references[workload])
        assert f > 1 - 1e-6, workload

    def test_adaptive_codec(self, references):
        circ = get_workload("ghz", N)
        cfg = tight(4).with_updates(
            compressor="adaptive", compressor_options={"error_bound": 1e-8}
        )
        res = MemQSim(cfg).run(circ)
        assert res.fidelity_vs(references["ghz"]) > 1 - 1e-6

    def test_cast_codec(self, references):
        circ = get_workload("qft", N)
        cfg = tight(4).with_updates(compressor="cast")
        res = MemQSim(cfg).run(circ)
        assert res.fidelity_vs(references["qft"]) > 1 - 1e-6
