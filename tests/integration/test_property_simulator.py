"""Property-based system tests: hypothesis drives whole random circuits
through MEMQSim and checks the global invariants against the dense oracle."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.core import MemQSim, MemQSimConfig
from repro.device import DeviceSpec
from repro.statevector import DenseSimulator

N = 7  # qubits for generated circuits

_1Q = ["h", "x", "y", "z", "s", "t", "sx", "sdg", "tdg"]
_1QP = ["rx", "ry", "rz", "p"]
_2Q = ["cx", "cz", "swap", "iswap", "ch"]
_2QP = ["cp", "rzz", "crx"]


@st.composite
def circuits(draw, n=N, max_gates=25):
    num = draw(st.integers(min_value=0, max_value=max_gates))
    c = Circuit(n)
    for _ in range(num):
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            c.add(draw(st.sampled_from(_1Q)), draw(st.integers(0, n - 1)))
        elif kind == 1:
            c.add(draw(st.sampled_from(_1QP)), draw(st.integers(0, n - 1)),
                  params=(draw(st.floats(-math.pi, math.pi,
                                         allow_nan=False)),))
        else:
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 2))
            if b >= a:
                b += 1
            if kind == 2:
                c.add(draw(st.sampled_from(_2Q)), a, b)
            else:
                c.add(draw(st.sampled_from(_2QP)), a, b,
                      params=(draw(st.floats(-math.pi, math.pi,
                                             allow_nan=False)),))
    return c


CFG = MemQSimConfig(chunk_qubits=3, compressor="zlib",
                    device=DeviceSpec(memory_bytes=1 << 12))


class TestSystemProperties:
    @given(circ=circuits())
    @settings(max_examples=25, deadline=None)
    def test_lossless_equals_dense(self, circ):
        ref = DenseSimulator().run(circ).data
        got = MemQSim(CFG).run(circ).statevector()
        assert np.allclose(got, ref, atol=1e-12)

    @given(circ=circuits(max_gates=15))
    @settings(max_examples=15, deadline=None)
    def test_norm_preserved(self, circ):
        res = MemQSim(CFG).run(circ)
        assert res.norm() == pytest.approx(1.0, abs=1e-10)

    @given(circ=circuits(max_gates=15), q=st.integers(0, N - 1))
    @settings(max_examples=15, deadline=None)
    def test_expectation_z_consistent(self, circ, q):
        res = MemQSim(CFG).run(circ)
        ref = DenseSimulator().run(circ)
        assert res.expectation_z(q) == pytest.approx(
            ref.expectation_pauli("Z", [q]), abs=1e-10
        )

    @given(circ=circuits(max_gates=12))
    @settings(max_examples=10, deadline=None)
    def test_lossy_respects_fidelity_floor(self, circ):
        from repro.compression import fidelity_floor

        eb = 1e-7
        cfg = CFG.with_updates(compressor="szlike",
                               compressor_options={"error_bound": eb})
        res = MemQSim(cfg).run(circ)
        ref = DenseSimulator().run(circ).data
        budget = eb * (res.plan.num_stages + 1)
        assert res.fidelity_vs(ref) >= fidelity_floor(budget, 1 << N) - 1e-9

    @given(circ=circuits(max_gates=12))
    @settings(max_examples=10, deadline=None)
    def test_cache_transparent(self, circ):
        plain = MemQSim(CFG).run(circ).statevector()
        cached = MemQSim(CFG.with_updates(cache_chunks=5)).run(circ).statevector()
        assert np.allclose(plain, cached, atol=1e-12)
