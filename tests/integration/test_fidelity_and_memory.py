"""Integration: lossy fidelity scaling and memory-footprint claims."""

import numpy as np
import pytest

from repro.analysis import compare_states, error_growth_profile, sweep
from repro.circuits import get_workload, qft
from repro.compression import fidelity_floor
from repro.core import MemQSim, MemQSimConfig
from repro.device import DeviceSpec, HostSpec
from repro.statevector import DenseSimulator


def cfg(eb=1e-7, chunk=4):
    return MemQSimConfig(
        chunk_qubits=chunk,
        compressor="szlike",
        compressor_options={"error_bound": eb},
        device=DeviceSpec(memory_bytes=(1 << (chunk + 1)) * 16 * 2),
        host=HostSpec(memory_bytes=1 << 26, cores=4),
    )


class TestFidelityScaling:
    def test_fidelity_improves_with_tighter_bound(self):
        circ = get_workload("supremacy", 8)
        ref = DenseSimulator().run(circ).data
        fids = []
        for eb in (1e-3, 1e-5, 1e-7):
            res = MemQSim(cfg(eb)).run(circ)
            fids.append(compare_states(ref, res.statevector()).fidelity)
        assert fids[0] <= fids[1] + 1e-12 <= fids[2] + 1e-11
        assert fids[2] > 1 - 1e-8

    def test_error_growth_profile_monotone_gates(self):
        circ = qft(8)
        points = error_growth_profile(circ, cfg(1e-6), checkpoints=[5, 20, len(circ)])
        assert [p.gates_executed for p in points] == [5, 20, len(circ)]
        for p in points:
            assert p.comparison.fidelity > 0.999

    def test_fidelity_floor_holds_end_to_end(self):
        circ = get_workload("qaoa", 8)
        ref = DenseSimulator().run(circ).data
        eb = 1e-6
        res = MemQSim(cfg(eb)).run(circ)
        f = compare_states(ref, res.statevector()).fidelity
        # One recompression per stage pass; floor with that budget must hold.
        budget = eb * (res.plan.num_stages + 1)
        assert f >= fidelity_floor(budget, 1 << 8) - 1e-9


class TestMemoryClaims:
    def test_structured_states_use_less_than_dense(self):
        res = MemQSim(cfg(1e-6, chunk=4)).run(get_workload("ghz", 10))
        assert res.tracker.peak("chunk_store") < res.dense_bytes

    def test_device_peak_bounded_by_spec(self):
        c = cfg(1e-6, chunk=4)
        res = MemQSim(c).run(get_workload("qft", 10))
        assert res.peak_device_bytes <= c.device.memory_bytes

    def test_host_buffers_bounded_by_pool(self):
        c = cfg(1e-6, chunk=4)
        res = MemQSim(c).run(get_workload("random", 9))
        max_group = res.plan.max_group_size
        pool_bytes = c.num_buffers * ((1 << 4) << max_group) * 16
        assert res.tracker.peak("host_buffers") <= pool_bytes

    def test_compression_ratio_workload_ordering(self):
        # GHZ (2 nonzeros) must compress far better than supremacy (random).
        r_ghz = MemQSim(cfg()).run(get_workload("ghz", 9)).compression_ratio
        r_sup = MemQSim(cfg()).run(get_workload("supremacy", 9)).compression_ratio
        assert r_ghz > 5 * r_sup


class TestSweepDriver:
    def test_sweep_grid_produces_all_cells(self):
        recs = sweep(
            [("ghz", get_workload("ghz", 8)), ("qft", get_workload("qft", 8))],
            cfg(),
            {"compressor": ["zlib", "szlike"]},
        )
        assert len(recs) == 4
        assert all(r.fidelity is not None for r in recs)
        assert {r.workload for r in recs} == {"ghz", "qft"}

    def test_sweep_skips_fidelity_when_disabled(self):
        recs = sweep([("ghz", get_workload("ghz", 8))], cfg(), compute_fidelity=False)
        assert recs[0].fidelity is None

    def test_sweep_record_derived_fields(self):
        recs = sweep([("ghz", get_workload("ghz", 8))], cfg())
        r = recs[0]
        assert r.qubit_headroom == pytest.approx(np.log2(r.compression_ratio))
        assert r.memory_saving > 0
