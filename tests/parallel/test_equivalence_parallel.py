"""Parallel-vs-serial equivalence: the subsystem's determinism contract.

With a lossless codec the final statevector and every per-chunk blob must
be bit-identical between ``workers=1`` and ``workers>1``; with a lossy
codec the blobs must still match blob-for-blob, because the codec is a
pure function of chunk bytes and parameters. Covers permutation stages,
CPU offload, multi-executor round-robin, the chunk cache, the disk store,
and a forced worker crash mid-run.
"""

import os

import numpy as np
import pytest

from repro.circuits import get_workload
from repro.compression.lossless import ZlibCompressor
from repro.core import MemQSim, MemQSimConfig
from repro.parallel import run_equivalence
from repro.telemetry import Telemetry

WORKERS = 2


def _opts(codec):
    return {"error_bound": 1e-6} if codec in ("szlike", "adaptive") else {}


class TestCodecEquivalence:
    @pytest.mark.parametrize("codec", ["zlib", "szlike", "adaptive"])
    @pytest.mark.parametrize("workload", ["qft", "grover"])
    def test_lossless_and_lossy_codecs(self, codec, workload):
        rep = run_equivalence(
            get_workload(workload, 8), workers=WORKERS,
            chunk_qubits=4, compressor=codec, compressor_options=_opts(codec),
        )
        assert rep.ok, rep.summary()
        assert rep.state_max_abs_diff == 0.0

    def test_shared_memory_payload_path(self):
        rep = run_equivalence(
            get_workload("qft", 8), workers=WORKERS,
            chunk_qubits=4, compressor="zlib", shm_threshold_bytes=1,
        )
        assert rep.ok, rep.summary()


class TestSchedulerFeatureEquivalence:
    def test_permutation_stages(self):
        # qaoa at small chunks exercises global X/SWAP relabeling stages.
        circ = get_workload("qaoa", 8)
        rep = run_equivalence(circ, workers=WORKERS, chunk_qubits=3,
                              compressor="zlib",
                              enable_permutation_stages=True)
        assert rep.ok, rep.summary()

    def test_cpu_offload_fraction(self):
        rep = run_equivalence(get_workload("qft", 8), workers=WORKERS,
                              chunk_qubits=4, compressor="zlib",
                              cpu_offload_fraction=0.5)
        assert rep.ok, rep.summary()

    def test_multi_executor_round_robin(self):
        rep = run_equivalence(get_workload("qft", 8), workers=WORKERS,
                              chunk_qubits=4, compressor="zlib",
                              num_devices=2)
        assert rep.ok, rep.summary()

    def test_chunk_cache_layer(self):
        rep = run_equivalence(get_workload("qft", 8), workers=WORKERS,
                              chunk_qubits=4, compressor="zlib",
                              cache_chunks=3)
        assert rep.ok, rep.summary()

    def test_serpentine_off(self):
        rep = run_equivalence(get_workload("grover", 8), workers=WORKERS,
                              chunk_qubits=4, compressor="zlib",
                              serpentine_groups=False)
        assert rep.ok, rep.summary()

    def test_disk_store(self, tmp_path):
        rep = run_equivalence(get_workload("qft", 6), workers=WORKERS,
                              chunk_qubits=3, compressor="zlib",
                              store="disk",
                              disk_path=str(tmp_path / "eq.log"))
        assert rep.ok, rep.summary()

    def test_tiered_store_lossy_codec(self):
        """Tiered store under a byte budget with a lossy codec, streamed
        device: spill placement must never change bytes, so serial and
        parallel stay blob-for-blob identical. (No decompressed cache —
        a cache hit with a lossy codec legitimately skips requantization,
        which is a different data trajectory, not a determinism bug; the
        cache-present contract is covered losslessly below.) disk_path
        stays None so each run gets its own temp log."""
        from repro.device import DeviceSpec

        rep = run_equivalence(
            get_workload("vqe", 9), workers=WORKERS,
            chunk_qubits=4, compressor="szlike",
            compressor_options={"error_bound": 1e-6},
            device=DeviceSpec(memory_bytes=int(0.002 * (1 << 20))),
            host_store_mb=0.001,
        )
        assert rep.ok, rep.summary()
        assert rep.state_bit_identical

    def test_full_hierarchy_belady_cache(self):
        """The whole stack at once — Belady cache over a budget-bound
        tiered store, streamed device, schedule-exact prefetch on the
        parallel side — bit-identical to serial execution."""
        from repro.device import DeviceSpec

        rep = run_equivalence(
            get_workload("vqe", 9), workers=WORKERS,
            chunk_qubits=4, compressor="zlib",
            device=DeviceSpec(memory_bytes=int(0.002 * (1 << 20))),
            cache_chunks=6, cache_policy="belady",
            host_store_mb=0.001,
        )
        assert rep.ok, rep.summary()
        assert rep.state_bit_identical


class TestForcedExecutionModes:
    def test_parallel_engine_with_one_worker_matches_serial(self):
        """execution="parallel" at workers=1: engine path, inline codec."""
        rep = run_equivalence(get_workload("qft", 8), workers=1,
                              chunk_qubits=4, compressor="zlib")
        assert rep.ok, rep.summary()

    def test_workers1_auto_takes_serial_path(self):
        cfg = MemQSimConfig(chunk_qubits=4, compressor="zlib",
                            workers=1, execution="auto")
        res = MemQSim(cfg).run(get_workload("qft", 8))
        assert res.config_echo["execution"] == "serial"
        assert res.config_echo["workers"] == 1

    def test_unknown_execution_rejected(self):
        cfg = MemQSimConfig(execution="warp")
        with pytest.raises(ValueError, match="execution"):
            MemQSim(cfg).run(get_workload("ghz", 4))


class CrashOnNthCompress(ZlibCompressor):
    """Kills the hosting *worker* process on its n-th compress call."""

    name = "crash_on_nth"

    def __init__(self, parent_pid: int, nth: int = 2):
        super().__init__()
        self.parent_pid = parent_pid
        self.nth = nth
        self.calls = 0

    def compress(self, data):
        self.calls += 1
        if os.getpid() != self.parent_pid and self.calls >= self.nth:
            os._exit(13)
        return super().compress(data)


class TestWorkerCrashMidRun:
    def test_run_survives_worker_crash(self, caplog):
        """A worker dying mid-run degrades to serial: no hang, no corruption."""
        from repro.compression.interface import register_compressor

        parent = os.getpid()
        register_compressor(
            "crash_on_nth", lambda **kw: CrashOnNthCompress(parent, **kw))
        circ = get_workload("qft", 8)
        tel = Telemetry()
        cfg = MemQSimConfig(chunk_qubits=4, compressor="crash_on_nth",
                            workers=2, execution="parallel")
        with caplog.at_level("WARNING", logger="repro.parallel.pool"):
            res = MemQSim(cfg, telemetry=tel).run(circ)
        assert any("degraded" in r.message for r in caplog.records)
        assert tel.metrics.snapshot()["counters"]["parallel.fallback"] >= 1
        # The store is not corrupted: state matches the pure-serial run.
        ref = MemQSim(MemQSimConfig(chunk_qubits=4, compressor="zlib",
                                    workers=1, execution="serial")).run(circ)
        np.testing.assert_array_equal(res.statevector(), ref.statevector())
