"""Ledger correctness under the parallel codec pool.

The traffic ledger must stay byte-exact when codec work is farmed out to
worker processes: worker-attributed rows have to partition the totals, and
the codec edge totals must match a serial run of the same circuit exactly
(the codec is a pure function of chunk bytes, so parallelism cannot change
how many bytes move — only who moves them).
"""

import numpy as np
import pytest

from repro.circuits import get_workload
from repro.core import MemQSim, MemQSimConfig
from repro.telemetry import Telemetry

WORKERS = 2
CODEC_EDGES = ("codec.raw_in", "codec.compressed_out",
               "codec.compressed_in", "codec.raw_out")


def run_with_ledger(execution, **kw):
    tel = Telemetry()
    cfg = MemQSimConfig(chunk_qubits=4, compressor="zlib",
                        execution=execution,
                        workers=WORKERS if execution == "parallel" else 1,
                        **kw)
    res = MemQSim(cfg, telemetry=tel).run(get_workload("qft", 8))
    return res, tel.traffic


class TestParallelLedgerParity:
    def test_codec_totals_match_serial(self):
        res_s, led_s = run_with_ledger("serial")
        res_p, led_p = run_with_ledger("parallel")
        for edge in CODEC_EDGES:
            e, d = edge.split(".")
            assert led_p.total_bytes(e, d) == led_s.total_bytes(e, d), edge
        # and the runs really were equivalent, not merely equal in traffic
        np.testing.assert_array_equal(res_s.statevector(),
                                      res_p.statevector())

    def test_worker_rows_partition_totals(self):
        _res, led = run_with_ledger("parallel")
        per_worker = led.by_worker()
        workers = [w for w in per_worker if w != 0]
        assert workers, "parallel run should attribute bytes to workers"
        for edge in CODEC_EDGES:
            total = sum(row.get(edge, 0) for row in per_worker.values())
            e, d = edge.split(".")
            assert total == led.total_bytes(e, d), edge

    def test_stage_attribution_sums_to_totals(self):
        _res, led = run_with_ledger("parallel")
        by_stage = led.by_stage()
        for edge in CODEC_EDGES:
            e, d = edge.split(".")
            total = sum(row.get(edge, 0) for row in by_stage.values())
            assert total == led.total_bytes(e, d), edge

    def test_offload_split_keeps_totals_exact(self):
        # with CPU offload, some groups skip the arena but every chunk
        # still round-trips the codec exactly once per pass
        _res_s, led_s = run_with_ledger("serial", cpu_offload_fraction=0.5)
        _res_p, led_p = run_with_ledger("parallel",
                                        cpu_offload_fraction=0.5)
        for edge in CODEC_EDGES:
            e, d = edge.split(".")
            assert led_p.total_bytes(e, d) == led_s.total_bytes(e, d), edge
        assert led_p.total_bytes("arena", "h2d") == \
            led_s.total_bytes("arena", "h2d")
