"""CLI wiring for the parallel subsystem: --workers/--execution/--serpentine."""

import json

import pytest

from repro.cli import build_parser, main


class TestParserDefaults:
    def test_run_parallel_defaults(self):
        args = build_parser().parse_args(["run", "qft"])
        assert args.workers == 0  # 0 = auto
        assert args.execution == "auto"
        assert args.serpentine is True

    def test_trace_has_parallel_flags(self):
        args = build_parser().parse_args(
            ["trace", "qft", "--workers", "2", "--no-serpentine"])
        assert args.workers == 2
        assert args.serpentine is False

    def test_execution_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "qft", "--execution", "warp"])


class TestRunCommand:
    def test_run_with_workers(self, capsys):
        rc = main(["run", "ghz", "-n", "8", "--chunk-qubits", "4",
                   "--compressor", "zlib", "--workers", "2",
                   "--execution", "parallel"])
        assert rc == 0
        assert "MEMQSim result" in capsys.readouterr().out

    def test_json_echoes_resolved_config(self, capsys):
        rc = main(["run", "ghz", "-n", "8", "--chunk-qubits", "4",
                   "--compressor", "zlib", "--workers", "2",
                   "--execution", "parallel", "--no-serpentine", "--json"])
        assert rc == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        echo = payload["config_echo"]
        assert echo["workers"] == 2
        assert echo["execution"] == "parallel"
        assert echo["serpentine"] is False
        assert echo["compressor"] == "zlib"

    def test_json_serial_echo(self, capsys):
        rc = main(["run", "ghz", "-n", "8", "--chunk-qubits", "4",
                   "--compressor", "zlib", "--workers", "1", "--json"])
        assert rc == 0
        out = capsys.readouterr().out
        echo = json.loads(out[out.index("{"):])["config_echo"]
        assert echo["workers"] == 1
        assert echo["execution"] == "serial"
        assert echo["serpentine"] is True

    def test_trace_with_workers(self, tmp_path, capsys):
        out = tmp_path / "t.trace.json"
        rc = main(["trace", "ghz", "-n", "8", "--chunk-qubits", "4",
                   "--compressor", "zlib", "--workers", "2",
                   "--execution", "parallel", "--trace-out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
