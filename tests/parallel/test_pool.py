"""CodecWorkerPool: serial fallback, process workers, shm, crash recovery."""

import os
import pickle

import numpy as np
import pytest

from repro.compression import get_compressor
from repro.compression.lossless import ZlibCompressor
from repro.parallel import CodecWorkerPool, auto_workers
from repro.telemetry import Telemetry


def _payload(n=256, seed=0, chunks=4):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(chunks):
        v = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        out.append(v / np.linalg.norm(v))
    return out


class CrashyCompressor(ZlibCompressor):
    """Crashes the hosting process on compress — in workers only."""

    name = "crashy"

    def __init__(self, parent_pid: int):
        super().__init__()
        self.parent_pid = parent_pid

    def compress(self, data):
        if os.getpid() != self.parent_pid:
            os._exit(13)
        return super().compress(data)


class TestSerialPool:
    def test_workers1_runs_inline(self):
        comp = get_compressor("zlib")
        pool = CodecWorkerPool(comp, workers=1)
        assert not pool.is_parallel
        data = _payload()
        blobs = pool.compress_batch(data)
        assert blobs == [comp.compress(d) for d in data]
        arrs = pool.decompress_batch(blobs)
        for a, d in zip(arrs, data):
            np.testing.assert_array_equal(a, d)
        assert pool.stats.jobs == 0  # batch short-circuits to the codec
        pool.close()

    def test_submit_collect_inline(self):
        pool = CodecWorkerPool(get_compressor("zlib"), workers=1)
        data = _payload(chunks=3)
        jobs = [pool.submit_compress(i, d) for i, d in enumerate(data)]
        assert all(j.done() for j in jobs)
        for i, j in enumerate(jobs):
            res = pool.collect(j)
            assert res.key == i
            assert res.worker_pid == 0
        assert pool.stats.inline_jobs == 3
        pool.close()

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            CodecWorkerPool(get_compressor("zlib"), workers=0)


class TestProcessPool:
    def test_blobs_identical_to_serial(self):
        comp = get_compressor("szlike", error_bound=1e-6)
        data = _payload(chunks=6)
        with CodecWorkerPool(comp, workers=2) as pool:
            if not pool.is_parallel:
                pytest.skip("process pool unavailable on this platform")
            blobs = pool.compress_batch(data)
            assert blobs == [comp.compress(d) for d in data]
            arrs = pool.decompress_batch(blobs)
        for a, d in zip(arrs, data):
            np.testing.assert_array_equal(a, comp.decompress(comp.compress(d)))

    def test_shared_memory_payloads(self):
        comp = get_compressor("zlib")
        data = _payload(n=512, chunks=4)
        with CodecWorkerPool(comp, workers=2, shm_threshold=1) as pool:
            if not pool.is_parallel:
                pytest.skip("process pool unavailable on this platform")
            jobs = [pool.submit_compress(i, d) for i, d in enumerate(data)]
            blobs = [pool.collect(j).blob for j in jobs]
            assert pool.stats.shm_jobs >= 4
            djobs = [pool.submit_decompress(i, b, count=512)
                     for i, b in enumerate(blobs)]
            for d, j in zip(data, djobs):
                np.testing.assert_array_equal(pool.collect(j).array, d)

    def test_out_of_order_collection(self):
        comp = get_compressor("zlib")
        data = _payload(chunks=5)
        with CodecWorkerPool(comp, workers=2) as pool:
            jobs = [pool.submit_compress(i, d) for i, d in enumerate(data)]
            for j in reversed(jobs):
                res = pool.collect(j)
                assert res.blob == comp.compress(data[res.key])

    def test_unpicklable_codec_degrades_to_serial(self, caplog):
        comp = get_compressor("zlib")
        comp.oops = lambda: None  # lambdas don't pickle
        with pytest.raises(Exception):
            pickle.dumps(comp)
        with caplog.at_level("WARNING", logger="repro.parallel.pool"):
            pool = CodecWorkerPool(comp, workers=2)
        assert not pool.is_parallel
        assert pool.stats.fallbacks == 1
        assert any("degraded" in r.message for r in caplog.records)
        data = _payload(chunks=2)
        assert pool.compress_batch(data) == [comp.compress(d) for d in data]
        pool.close()


class TestCrashRecovery:
    def test_worker_crash_falls_back_inline(self, caplog):
        comp = CrashyCompressor(os.getpid())
        pool = CodecWorkerPool(comp, workers=2)
        if not pool.is_parallel:
            pytest.skip("process pool unavailable on this platform")
        data = _payload(chunks=4)
        with caplog.at_level("WARNING", logger="repro.parallel.pool"):
            jobs = [pool.submit_compress(i, d) for i, d in enumerate(data)]
            blobs = [pool.collect(j).blob for j in jobs]
        # No hang, no data loss: every blob is the correct serial blob.
        ref = ZlibCompressor()
        assert blobs == [ref.compress(d) for d in data]
        assert not pool.is_parallel
        assert pool.stats.fallbacks >= 1
        assert any("degraded" in r.message for r in caplog.records)
        pool.close()

    def test_crash_with_shm_payloads_recovers(self):
        comp = CrashyCompressor(os.getpid())
        pool = CodecWorkerPool(comp, workers=2, shm_threshold=1)
        if not pool.is_parallel:
            pytest.skip("process pool unavailable on this platform")
        data = _payload(chunks=3)
        jobs = [pool.submit_compress(i, d) for i, d in enumerate(data)]
        blobs = [pool.collect(j).blob for j in jobs]
        assert blobs == [ZlibCompressor().compress(d) for d in data]
        pool.close()


class TestTelemetry:
    def test_worker_spans_merge_into_parent_trace(self):
        tel = Telemetry()
        comp = get_compressor("zlib")
        data = _payload(chunks=4)
        with CodecWorkerPool(comp, workers=2, telemetry=tel) as pool:
            if not pool.is_parallel:
                pytest.skip("process pool unavailable on this platform")
            blobs = pool.compress_batch(data)
            pool.decompress_batch(blobs)
        spans = [s for s in tel.tracer.spans if s.name.startswith("worker.")]
        assert len(spans) == 8
        # Worker lanes are distinct from main-thread lanes (tid >= 100).
        assert all(s.tid >= 100 for s in spans)
        snap = tel.metrics.snapshot()
        assert snap["counters"]["parallel.jobs"] == 8
        util = snap["gauges"]["parallel.worker.utilization"]["value"]
        assert 0.0 <= util <= 1.0

    def test_chrome_trace_is_coherent(self, tmp_path):
        import json

        tel = Telemetry()
        with CodecWorkerPool(get_compressor("zlib"), workers=2,
                             telemetry=tel) as pool:
            pool.compress_batch(_payload(chunks=3))
        path = tmp_path / "t.json"
        tel.tracer.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        assert all(e["ts"] >= 0 for e in doc["traceEvents"]
                   if e.get("ph") == "X")


class TestAutoWorkers:
    def test_returns_sane_count(self):
        w = auto_workers(get_compressor("szlike", error_bound=1e-6), 1 << 12)
        cores = os.cpu_count() or 1
        assert 1 <= w <= max(1, min(cores, 8))

    def test_single_core_stays_serial(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert auto_workers(get_compressor("zlib"), 1 << 12) == 1

    def test_cheap_codec_stays_serial(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        # null codec: a memcpy — IPC would dominate, probe must say 1
        assert auto_workers(get_compressor("null"), 256) == 1
