"""Unit tests for the three transfer strategies (Table 1's subjects)."""

import numpy as np
import pytest

from repro.device import (
    AsyncPerElementCopy,
    BufferedCopy,
    SyncCopy,
    TransferLog,
    make_strategy,
)


def rand(n, seed=0):
    g = np.random.default_rng(seed)
    return g.standard_normal(n) + 1j * g.standard_normal(n)


ALL = [
    lambda: SyncCopy(),
    lambda: AsyncPerElementCopy(),
    lambda: BufferedCopy(max_elements=4096),
]


class TestCorrectness:
    @pytest.mark.parametrize("mk", ALL)
    def test_h2d_byte_exact(self, mk):
        strat = mk()
        host = rand(512, 1)
        dev = np.zeros(512, dtype=np.complex128)
        strat.h2d(host, dev)
        assert np.array_equal(dev, host)

    @pytest.mark.parametrize("mk", ALL)
    def test_d2h_byte_exact(self, mk):
        strat = mk()
        dev = rand(256, 2)
        host = np.zeros(256, dtype=np.complex128)
        strat.d2h(dev, host)
        assert np.array_equal(host, dev)

    @pytest.mark.parametrize("mk", ALL)
    def test_shape_mismatch_rejected(self, mk):
        with pytest.raises(ValueError):
            mk().h2d(np.zeros(4, dtype=complex), np.zeros(8, dtype=complex))

    def test_buffered_capacity_enforced(self):
        strat = BufferedCopy(max_elements=16)
        with pytest.raises(ValueError):
            strat.h2d(np.zeros(32, dtype=complex), np.zeros(32, dtype=complex))

    def test_buffered_staging_size(self):
        assert BufferedCopy(max_elements=128).staging_nbytes == 128 * 16

    def test_buffered_invalid_capacity(self):
        with pytest.raises(ValueError):
            BufferedCopy(max_elements=0)


class TestLogging:
    def test_records_accumulate(self):
        strat = SyncCopy()
        host = rand(64, 3)
        dev = np.zeros(64, dtype=complex)
        strat.h2d(host, dev)
        strat.d2h(dev, host)
        assert len(strat.log.records) == 2
        assert strat.log.records[0].direction == "h2d"
        assert strat.log.records[1].direction == "d2h"
        assert strat.log.total_bytes("h2d") == 64 * 16

    def test_shared_log(self):
        log = TransferLog()
        a = SyncCopy(log)
        b = AsyncPerElementCopy(log)
        buf = np.zeros(8, dtype=complex)
        a.h2d(buf, buf.copy())
        b.h2d(buf, buf.copy())
        assert len(log.records) == 2
        assert {r.strategy for r in log.records} == {"sync", "async"}

    def test_bandwidth(self):
        log = TransferLog()
        strat = SyncCopy(log)
        host = rand(1 << 16, 4)
        dev = np.empty_like(host)
        strat.h2d(host, dev)
        assert log.bandwidth_gbps("h2d") > 0

    def test_clear(self):
        strat = SyncCopy()
        strat.h2d(np.zeros(4, dtype=complex), np.zeros(4, dtype=complex))
        strat.log.clear()
        assert strat.log.total_seconds() == 0.0


class TestRelativeSpeed:
    def test_async_is_much_slower_than_sync(self):
        """The Table 1 effect: per-element initiation dominates."""
        n = 1 << 14
        host = rand(n, 5)
        dev = np.empty_like(host)
        sync, asyn = SyncCopy(), AsyncPerElementCopy()
        t_sync = min(sync.h2d(host, dev) for _ in range(3))
        t_async = asyn.h2d(host, dev)
        assert t_async > 20 * t_sync  # paper reports ~870x at 2^20+

    def test_buffer_is_close_to_sync(self):
        n = 1 << 16
        host = rand(n, 6)
        dev = np.empty_like(host)
        sync = SyncCopy()
        buff = BufferedCopy(max_elements=n)
        t_sync = min(sync.h2d(host, dev) for _ in range(5))
        t_buff = min(buff.h2d(host, dev) for _ in range(5))
        assert t_buff < 10 * t_sync  # same order of magnitude


class TestFactory:
    def test_names(self):
        assert make_strategy("sync").name == "sync"
        assert make_strategy("async").name == "async"
        assert make_strategy("buffer", max_elements=8).name == "buffer"

    def test_buffer_requires_capacity(self):
        with pytest.raises(ValueError):
            make_strategy("buffer")

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_strategy("teleport")
