"""Unit tests for the timeline and the pipelined-makespan model."""

import pytest

from repro.device import PipelineModel, Stage, StageEvent, Timeline


def ev(stage, dur, chunk, step):
    return StageEvent(stage, dur, chunk, 0, step)


class TestTimeline:
    def test_record_and_sums(self):
        t = Timeline()
        t.record(Stage.DECOMPRESS, 0.5, 0)
        t.record(Stage.KERNEL, 0.25, 0)
        t.record(Stage.DECOMPRESS, 0.5, 1)
        assert t.serial_seconds() == pytest.approx(1.25)
        assert t.serial_seconds(Stage.DECOMPRESS) == pytest.approx(1.0)
        assert t.count() == 3
        assert t.count(Stage.KERNEL) == 1

    def test_breakdown(self):
        t = Timeline()
        t.record(Stage.H2D, 0.1, 0)
        t.record(Stage.H2D, 0.2, 1)
        assert t.stage_breakdown() == {"h2d": pytest.approx(0.3)}

    def test_negative_durations_clamped(self):
        t = Timeline()
        e = t.record(Stage.KERNEL, -1.0, 0)
        assert e.duration == 0.0

    def test_steps_monotonic(self):
        t = Timeline()
        a = t.record(Stage.H2D, 0.1, 0)
        b = t.record(Stage.D2H, 0.1, 0)
        assert b.step == a.step + 1

    def test_clear(self):
        t = Timeline()
        t.record(Stage.H2D, 0.1, 0)
        t.clear()
        assert t.count() == 0


class TestPipelineModel:
    def test_single_chain_is_serial(self):
        events = [
            ev(Stage.DECOMPRESS, 1.0, 0, 0),
            ev(Stage.H2D, 1.0, 0, 1),
            ev(Stage.KERNEL, 1.0, 0, 2),
        ]
        _, makespan = PipelineModel().schedule(events)
        assert makespan == pytest.approx(3.0)

    def test_two_chunks_overlap(self):
        # Chunk 1's decompress can run while chunk 0 is on the bus/GPU.
        events = []
        step = 0
        for chunk in (0, 1):
            for stage in (Stage.DECOMPRESS, Stage.H2D, Stage.KERNEL):
                events.append(ev(stage, 1.0, chunk, step))
                step += 1
        _, makespan = PipelineModel().schedule(events)
        assert makespan == pytest.approx(4.0)  # perfect pipeline: 3 + 1

    def test_codec_resource_contention(self):
        # Two decompressions with one codec lane cannot overlap.
        events = [ev(Stage.DECOMPRESS, 1.0, 0, 0), ev(Stage.DECOMPRESS, 1.0, 1, 1)]
        _, m1 = PipelineModel(cpu_codec_lanes=1).schedule(events)
        _, m2 = PipelineModel(cpu_codec_lanes=2).schedule(events)
        assert m1 == pytest.approx(2.0)
        assert m2 == pytest.approx(1.0)

    def test_barrier_event_serializes(self):
        events = [
            ev(Stage.KERNEL, 1.0, 0, 0),
            ev(Stage.CPU_UPDATE, 1.0, -1, 1),  # barrier
            ev(Stage.KERNEL, 1.0, 1, 2),
        ]
        _, makespan = PipelineModel().schedule(events)
        assert makespan == pytest.approx(3.0)

    def test_independent_resources_overlap(self):
        events = [ev(Stage.H2D, 1.0, 0, 0), ev(Stage.D2H, 1.0, 1, 1)]
        _, makespan = PipelineModel().schedule(events)
        assert makespan == pytest.approx(1.0)

    def test_makespan_of_timeline(self):
        t = Timeline()
        t.record(Stage.DECOMPRESS, 1.0, 0)
        t.record(Stage.KERNEL, 1.0, 0)
        assert PipelineModel().makespan(t) == pytest.approx(2.0)

    def test_makespan_never_exceeds_serial(self):
        import numpy as np

        rng = np.random.default_rng(0)
        t = Timeline()
        stages = list(Stage)
        for i in range(60):
            t.record(stages[int(rng.integers(len(stages)))],
                     float(rng.uniform(0.01, 1)), int(rng.integers(6)))
        model = PipelineModel(cpu_codec_lanes=3, cpu_idle_lanes=2)
        assert model.makespan(t) <= t.serial_seconds() + 1e-9

    def test_makespan_at_least_bottleneck_resource(self):
        t = Timeline()
        for i in range(5):
            t.record(Stage.KERNEL, 1.0, i)
        assert PipelineModel().makespan(t) >= 5.0 - 1e-9

    def test_gantt_renders(self):
        t = Timeline()
        t.record(Stage.DECOMPRESS, 1.0, 0)
        t.record(Stage.KERNEL, 1.0, 0)
        sched, _ = PipelineModel().schedule(t.events)
        g = PipelineModel.gantt(sched)
        assert "cpu_codec" in g and "gpu" in g

    def test_gantt_empty(self):
        assert "empty" in PipelineModel.gantt([])
