"""Unit tests for the device memory arena."""

import numpy as np
import pytest

from repro.device import DeviceArena, DeviceOutOfMemory, DeviceSpec
from repro.memory import MemoryTracker


def arena(amps=64):
    return DeviceArena(DeviceSpec(memory_bytes=amps * 16))


class TestAlloc:
    def test_alloc_returns_view(self):
        a = arena()
        buf = a.alloc(16)
        assert buf.view.shape == (16,)
        buf.view[:] = 1.0
        assert a.used == 16

    def test_views_are_disjoint(self):
        a = arena()
        b1 = a.alloc(8)
        b2 = a.alloc(8)
        b1.view[:] = 1.0
        b2.view[:] = 2.0
        assert np.all(b1.view == 1.0)
        assert b1.offset != b2.offset

    def test_oom(self):
        a = arena(16)
        a.alloc(16)
        with pytest.raises(DeviceOutOfMemory):
            a.alloc(1)

    def test_oom_message_has_sizes(self):
        a = arena(16)
        with pytest.raises(DeviceOutOfMemory, match="bytes"):
            a.alloc(32)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            arena().alloc(0)

    def test_capacity_too_small(self):
        with pytest.raises(ValueError):
            DeviceArena(DeviceSpec(memory_bytes=8))

    def test_peak_tracking(self):
        a = arena(64)
        b1 = a.alloc(32)
        b2 = a.alloc(16)
        a.free(b1)
        assert a.peak_amplitudes == 48


class TestFree:
    def test_free_returns_capacity(self):
        a = arena(32)
        buf = a.alloc(32)
        a.free(buf)
        a.alloc(32)  # must succeed again

    def test_double_free_rejected(self):
        a = arena()
        buf = a.alloc(8)
        a.free(buf)
        with pytest.raises(ValueError):
            a.free(buf)

    def test_foreign_buffer_rejected(self):
        a = arena()
        b = arena()
        buf = b.alloc(8)
        with pytest.raises(ValueError):
            a.free(buf)

    def test_coalescing_allows_big_realloc(self):
        a = arena(64)
        bufs = [a.alloc(16) for _ in range(4)]
        # free middle two, then the edges: must coalesce back to 64
        a.free(bufs[1])
        a.free(bufs[2])
        a.free(bufs[0])
        a.free(bufs[3])
        assert a.largest_free_block == 64
        a.alloc(64)

    def test_fragmentation_visible(self):
        a = arena(64)
        bufs = [a.alloc(16) for _ in range(4)]
        a.free(bufs[0])
        a.free(bufs[2])
        assert a.free_amplitudes == 32
        assert a.largest_free_block == 16
        with pytest.raises(DeviceOutOfMemory):
            a.alloc(32)


class TestReset:
    def test_reset_clears_everything(self):
        tracker = MemoryTracker()
        a = DeviceArena(DeviceSpec(memory_bytes=64 * 16), tracker)
        a.alloc(16)
        a.alloc(16)
        a.reset()
        assert a.used == 0
        assert tracker.current("device_arena") == 0
        a.alloc(64)

    def test_tracker_integration(self):
        tracker = MemoryTracker()
        a = DeviceArena(DeviceSpec(memory_bytes=64 * 16), tracker)
        buf = a.alloc(32)
        assert tracker.current("device_arena") == 32 * 16
        a.free(buf)
        assert tracker.current("device_arena") == 0
        assert tracker.peak("device_arena") == 32 * 16


class TestSpec:
    def test_fits(self):
        spec = DeviceSpec(memory_bytes=1024)
        assert spec.fits(1024) and not spec.fits(1025)

    def test_max_qubits_resident(self):
        spec = DeviceSpec(memory_bytes=(1 << 10) * 16)
        assert spec.max_qubits_resident() == 10

    def test_host_idle_cores(self):
        from repro.device import HostSpec

        assert HostSpec(cores=4).idle_cores == 3
        assert HostSpec(cores=1).idle_cores == 0

    def test_host_max_dense(self):
        from repro.device import HostSpec

        assert HostSpec(memory_bytes=(1 << 20) * 16).max_qubits_dense() == 20
