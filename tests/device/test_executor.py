"""Unit tests for the device executor."""

import numpy as np
import pytest

from repro.circuits import gate_matrix, make_gate
from repro.device import (
    DeviceExecutor,
    DeviceOutOfMemory,
    DeviceSpec,
    Stage,
    make_strategy,
)
from repro.statevector import apply_gate


def rand(n, seed=0):
    g = np.random.default_rng(seed)
    v = g.standard_normal(n) + 1j * g.standard_normal(n)
    return v / np.linalg.norm(v)


@pytest.fixture
def ex():
    return DeviceExecutor(DeviceSpec(memory_bytes=256 * 16))


class TestRoundTrip:
    def test_upload_compute_download(self, ex):
        host = rand(16, 1)
        buf = ex.alloc(16)
        ex.upload(host, buf, 0)
        g = make_gate("h", (2,))
        ex.run_gates(buf, [g], 0)
        out = np.empty(16, dtype=np.complex128)
        ex.download(buf, out, 0)
        want = host.copy()
        apply_gate(want, gate_matrix("h"), (2,))
        assert np.allclose(out, want, atol=1e-12)
        ex.free(buf)

    def test_multiple_gates_batched(self, ex):
        host = rand(8, 2)
        buf = ex.alloc(8)
        ex.upload(host, buf)
        gates = [make_gate("h", (0,)), make_gate("cx", (0, 1)), make_gate("t", (2,))]
        ex.run_gates(buf, gates)
        out = np.empty(8, dtype=np.complex128)
        ex.download(buf, out)
        want = host.copy()
        for g in gates:
            apply_gate(want, g.matrix, g.qubits)
        assert np.allclose(out, want, atol=1e-12)

    def test_async_issue_then_sync(self, ex):
        host = rand(8, 3)
        buf = ex.alloc(8)
        ex.upload(host, buf)
        ex.launch(buf, [make_gate("x", (0,))])
        ex.launch(buf, [make_gate("x", (0,))])
        secs = ex.synchronize()
        assert secs >= 0
        out = np.empty(8, dtype=np.complex128)
        ex.download(buf, out)
        assert np.allclose(out, host)  # x twice = identity
        assert ex.kernels_launched == 2


class TestTelemetry:
    def test_timeline_events(self, ex):
        host = rand(8, 4)
        buf = ex.alloc(8)
        ex.upload(host, buf, chunk=7)
        ex.run_gates(buf, [make_gate("h", (0,))], chunk=7)
        ex.download(buf, host, chunk=7)
        kinds = [e.stage for e in ex.timeline.events]
        assert kinds == [Stage.H2D, Stage.KERNEL, Stage.D2H]
        assert all(e.chunk == 7 for e in ex.timeline.events)

    def test_transfer_strategy_pluggable(self):
        ex = DeviceExecutor(
            DeviceSpec(memory_bytes=64 * 16), transfer=make_strategy("buffer", 64)
        )
        host = rand(32, 5)
        buf = ex.alloc(32)
        ex.upload(host, buf)
        assert np.array_equal(buf.view[:32], host)

    def test_backend_pluggable(self):
        calls = []

        class SpyBackend:
            def apply(self, view, gates):
                calls.append(len(gates))

        ex = DeviceExecutor(DeviceSpec(memory_bytes=64 * 16), backend=SpyBackend())
        buf = ex.alloc(8)
        ex.run_gates(buf, [make_gate("x", (0,))])
        assert calls == [1]


class TestCapacity:
    def test_oom_propagates(self, ex):
        with pytest.raises(DeviceOutOfMemory):
            ex.alloc(1 << 20)

    def test_can_fit(self, ex):
        assert ex.can_fit(256)
        assert not ex.can_fit(257)
        buf = ex.alloc(200)
        assert not ex.can_fit(100)
        ex.free(buf)
        assert ex.can_fit(256)

    def test_reset(self, ex):
        ex.alloc(128)
        ex.launch(ex.alloc(16), [make_gate("x", (0,))])
        ex.reset()
        assert ex.arena.used == 0
        assert ex.synchronize() == 0.0
