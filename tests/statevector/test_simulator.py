"""Unit tests for the dense baseline simulator."""

import numpy as np
import pytest

from repro.circuits import Circuit, ghz, grover, qft, random_circuit
from repro.statevector import DenseSimulator, StateVector


class TestRun:
    def test_matches_unitary(self):
        c = random_circuit(4, 30, seed=1)
        sim = DenseSimulator()
        sv = sim.run(c)
        u = c.to_unitary()
        assert np.allclose(sv.data, u[:, 0], atol=1e-10)

    def test_initial_state(self):
        c = Circuit(2).cx(0, 1)
        init = StateVector.basis_state(2, 1)  # q0 = 1
        sv = DenseSimulator().run(c, initial_state=init)
        assert sv.probability_of(3) == pytest.approx(1.0)

    def test_initial_state_not_mutated(self):
        c = Circuit(1).x(0)
        init = StateVector(1)
        DenseSimulator().run(c, initial_state=init)
        assert init.data[0] == 1.0

    def test_initial_state_size_checked(self):
        with pytest.raises(ValueError):
            DenseSimulator().run(Circuit(2).h(0), initial_state=StateVector(3))

    def test_diag_gates_supported(self):
        c = Circuit(2).h(0).h(1)
        c.diagonal(np.array([1, -1, 1, -1], dtype=complex), 0, 1)
        sv = DenseSimulator().run(c)
        # Z on qubit 0 applied to |++> -> |-+>
        assert sv.data[0] == pytest.approx(0.5)
        assert sv.data[1] == pytest.approx(-0.5)


class TestFusion:
    @pytest.mark.parametrize("seed", range(3))
    def test_fused_equals_unfused(self, seed):
        c = random_circuit(5, 60, seed=seed)
        plain = DenseSimulator(fuse_single_qubit_gates=False).run(c)
        fused = DenseSimulator(fuse_single_qubit_gates=True).run(c)
        assert np.allclose(plain.data, fused.data, atol=1e-10)

    def test_fusion_reduces_group_count(self):
        c = Circuit(1).h(0).t(0).s(0).h(0)
        sim = DenseSimulator(fuse_single_qubit_gates=True)
        sim.run(c)
        assert sim.last_stats.num_fused_groups == 1

    def test_fusion_respects_diag_barrier(self):
        c = Circuit(1).h(0)
        c.diagonal(np.array([1, -1], dtype=complex), 0)
        c.h(0)
        sim = DenseSimulator(fuse_single_qubit_gates=True)
        sv = sim.run(c)
        # H Z H = X -> |1>
        assert sv.probability_of(1) == pytest.approx(1.0, abs=1e-12)


class TestStats:
    def test_stats_populated(self):
        sim = DenseSimulator()
        sim.run(ghz(5))
        st = sim.last_stats
        assert st.num_qubits == 5
        assert st.num_gates == 5
        assert st.wall_time_s > 0
        assert st.peak_bytes == (1 << 5) * 16
        assert "h" in st.per_gate_seconds
        assert "cx" in st.per_gate_seconds


class TestConvenience:
    def test_sample(self):
        counts = DenseSimulator().sample(ghz(3), shots=200, seed=3)
        assert set(counts) <= {"000", "111"}
        assert sum(counts.values()) == 200

    def test_expectation(self):
        val = DenseSimulator().expectation(ghz(2), "ZZ", [0, 1])
        assert val == pytest.approx(1.0, abs=1e-12)
