"""Unit tests for entanglement measures."""

import numpy as np
import pytest

from repro.circuits import Circuit, ghz, supremacy_brickwork
from repro.statevector import (
    DenseSimulator,
    StateVector,
    entanglement_entropy,
    entropy_profile,
    max_entropy,
    reduced_density_matrix,
    von_neumann_entropy,
)


@pytest.fixture(scope="module")
def sim():
    return DenseSimulator()


class TestEntanglementEntropy:
    def test_product_state_zero(self, sim):
        sv = sim.run(Circuit(6).h(0).h(2).x(4))
        for cut in range(1, 6):
            assert entanglement_entropy(sv, cut) == pytest.approx(0.0, abs=1e-10)

    def test_bell_pair_one_bit(self, sim):
        sv = sim.run(Circuit(2).h(0).cx(0, 1))
        assert entanglement_entropy(sv, 1) == pytest.approx(1.0, abs=1e-10)

    def test_ghz_one_bit_any_cut(self, sim):
        sv = sim.run(ghz(8))
        for cut in (1, 4, 7):
            assert entanglement_entropy(sv, cut) == pytest.approx(1.0, abs=1e-10)

    def test_random_state_near_page(self):
        sv = StateVector.random_state(10, seed=1)
        s = entanglement_entropy(sv, 5)
        # Page value for half-cut of 10 qubits ~ 5 - 2^5/(2*2^5*ln2) ~ 4.3+
        assert 3.9 < s <= 5.0

    def test_entropy_bounded_by_max(self, sim):
        sv = sim.run(supremacy_brickwork(8, depth=6))
        for cut in range(1, 8):
            assert entanglement_entropy(sv, cut) <= max_entropy(cut, 8) + 1e-9

    def test_cut_validation(self):
        sv = StateVector(3)
        with pytest.raises(ValueError):
            entanglement_entropy(sv, 0)
        with pytest.raises(ValueError):
            entanglement_entropy(sv, 3)

    def test_accepts_raw_arrays(self):
        v = np.zeros(4, dtype=complex)
        v[0] = v[3] = 1 / np.sqrt(2)
        assert entanglement_entropy(v, 1) == pytest.approx(1.0, abs=1e-10)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            entanglement_entropy(np.zeros(6, dtype=complex), 1)


class TestReducedDensityMatrix:
    def test_trace_one(self, sim):
        sv = sim.run(supremacy_brickwork(6, depth=4))
        rho = reduced_density_matrix(sv, [1, 4])
        assert np.trace(rho).real == pytest.approx(1.0, abs=1e-10)
        assert np.allclose(rho, rho.conj().T, atol=1e-12)

    def test_basis_state_pure(self):
        sv = StateVector.basis_state(4, 0b1010)
        rho = reduced_density_matrix(sv, [1, 3])
        # qubits 1 and 3 are both |1>: rho = |11><11| (index 3)
        want = np.zeros((4, 4), dtype=complex)
        want[3, 3] = 1.0
        assert np.allclose(rho, want, atol=1e-12)

    def test_bell_half_is_maximally_mixed(self, sim):
        sv = sim.run(Circuit(2).h(0).cx(0, 1))
        rho = reduced_density_matrix(sv, [0])
        assert np.allclose(rho, np.eye(2) / 2, atol=1e-12)

    def test_qubit_order_convention(self, sim):
        # |q1 q0> = |01>: qubit0=1, qubit1=0.
        sv = StateVector.basis_state(2, 0b01)
        rho = reduced_density_matrix(sv, [0, 1])
        assert rho[1, 1].real == pytest.approx(1.0)
        rho_swapped = reduced_density_matrix(sv, [1, 0])
        assert rho_swapped[2, 2].real == pytest.approx(1.0)

    def test_entropy_matches_svd_route(self, sim):
        sv = sim.run(supremacy_brickwork(8, depth=5))
        rho = reduced_density_matrix(sv, [0, 1, 2])
        assert von_neumann_entropy(rho) == pytest.approx(
            entanglement_entropy(sv, 3), abs=1e-8
        )

    def test_validation(self):
        sv = StateVector(3)
        with pytest.raises(ValueError):
            reduced_density_matrix(sv, [0, 0])
        with pytest.raises(ValueError):
            reduced_density_matrix(sv, [5])


class TestEntropyProfile:
    def test_profile_length(self, sim):
        sv = sim.run(ghz(6))
        assert len(entropy_profile(sv)) == 5

    def test_ghz_flat_profile(self, sim):
        sv = sim.run(ghz(6))
        assert np.allclose(entropy_profile(sv), 1.0, atol=1e-10)

    def test_compressibility_correlation(self, sim):
        """The A8 claim at unit-test scale: entropy anticorrelates with ratio."""
        from repro.compression import get_compressor

        codec = get_compressor("szlike", error_bound=1e-6)
        low = sim.run(ghz(10)).data
        high = sim.run(supremacy_brickwork(10, depth=8)).data
        s_low = entanglement_entropy(low, 5)
        s_high = entanglement_entropy(high, 5)
        r_low = low.nbytes / len(codec.compress(low))
        r_high = high.nbytes / len(codec.compress(high))
        assert s_low < s_high
        assert r_low > r_high
