"""Unit tests for measurement: sampling, collapse, expectations."""

import numpy as np
import pytest

from repro.circuits import Circuit, ghz
from repro.statevector import (
    DenseSimulator,
    StateVector,
    expectation_z,
    measure_qubit,
    sample_counts,
    sample_outcomes,
)


class TestSampleOutcomes:
    def test_deterministic_state(self):
        sv = StateVector.basis_state(3, 5)
        outs = sample_outcomes(sv, 100, np.random.default_rng(0))
        assert np.all(outs == 5)

    def test_shot_count(self):
        sv = StateVector.random_state(4, seed=1)
        assert sample_outcomes(sv, 57, np.random.default_rng(1)).shape == (57,)

    def test_zero_shots(self):
        sv = StateVector(2)
        assert sample_outcomes(sv, 0).shape == (0,)

    def test_negative_shots_rejected(self):
        with pytest.raises(ValueError):
            sample_outcomes(StateVector(2), -1)

    def test_distribution_matches_probabilities(self):
        sv = StateVector(2, np.sqrt(np.array([0.5, 0.3, 0.15, 0.05], dtype=complex)))
        outs = sample_outcomes(sv, 40000, np.random.default_rng(2))
        freq = np.bincount(outs, minlength=4) / 40000
        assert np.allclose(freq, [0.5, 0.3, 0.15, 0.05], atol=0.02)

    def test_unnormalized_state_renormalized(self):
        sv = StateVector(1, np.array([2.0, 0.0], dtype=complex))
        outs = sample_outcomes(sv, 10, np.random.default_rng(3))
        assert np.all(outs == 0)


class TestSampleCounts:
    def test_ghz_counts_only_extremes(self, dense):
        sv = dense.run(ghz(4))
        counts = sample_counts(sv, 1000, rng=np.random.default_rng(4))
        assert set(counts) <= {"0000", "1111"}
        assert sum(counts.values()) == 1000

    def test_qubit_subset(self, dense):
        sv = dense.run(ghz(3))
        counts = sample_counts(sv, 500, qubits=[0, 2], rng=np.random.default_rng(5))
        assert set(counts) <= {"00", "11"}

    def test_subset_ordering(self, dense):
        c = Circuit(2).x(0)  # q0=1, q1=0
        sv = dense.run(c)
        counts = sample_counts(sv, 10, qubits=[0], rng=np.random.default_rng(6))
        assert counts == {"1": 10}
        counts = sample_counts(sv, 10, qubits=[1], rng=np.random.default_rng(7))
        assert counts == {"0": 10}


class TestMeasureQubit:
    def test_deterministic_collapse(self):
        sv = StateVector.basis_state(2, 2)  # q1=1
        assert measure_qubit(sv, 1, np.random.default_rng(8)) == 1
        assert measure_qubit(sv, 0, np.random.default_rng(8)) == 0

    def test_collapse_renormalizes(self, dense):
        sv = dense.run(ghz(3))
        bit = measure_qubit(sv, 0, np.random.default_rng(9))
        assert sv.norm() == pytest.approx(1.0, abs=1e-12)
        # GHZ collapse: all qubits agree afterwards
        expect = (1 << 3) - 1 if bit else 0
        assert sv.probability_of(expect) == pytest.approx(1.0, abs=1e-12)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            measure_qubit(StateVector(2), 5)

    def test_statistics(self, dense):
        ones = 0
        for seed in range(200):
            sv = dense.run(Circuit(1).h(0))
            ones += measure_qubit(sv, 0, np.random.default_rng(seed))
        assert 60 <= ones <= 140  # ~Binomial(200, .5)


class TestExpectationZ:
    def test_basis_states(self):
        assert expectation_z(StateVector.basis_state(2, 0), 0) == pytest.approx(1.0)
        assert expectation_z(StateVector.basis_state(2, 1), 0) == pytest.approx(-1.0)

    def test_matches_pauli_expectation(self):
        sv = StateVector.random_state(4, seed=10)
        for q in range(4):
            assert expectation_z(sv, q) == pytest.approx(
                sv.expectation_pauli("Z", [q]), abs=1e-12
            )
