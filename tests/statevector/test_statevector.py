"""Unit tests for the StateVector wrapper."""

import math

import numpy as np
import pytest

from repro.circuits import ghz, qft, random_circuit
from repro.statevector import DenseSimulator, StateVector


class TestConstruction:
    def test_zero_state(self):
        sv = StateVector(3)
        assert sv.data[0] == 1.0
        assert np.count_nonzero(sv.data) == 1
        assert sv.dim == 8

    def test_basis_state(self):
        sv = StateVector.basis_state(3, 5)
        assert sv.data[5] == 1.0
        assert sv.norm() == pytest.approx(1.0)

    def test_from_bitstring(self):
        sv = StateVector.from_bitstring("10")  # q1=1, q0=0 -> index 2
        assert sv.data[2] == 1.0
        assert sv.num_qubits == 2

    def test_random_state_normalized(self):
        sv = StateVector.random_state(6, seed=1)
        assert sv.norm() == pytest.approx(1.0, abs=1e-12)

    def test_random_state_seeded(self):
        a = StateVector.random_state(4, seed=2)
        b = StateVector.random_state(4, seed=2)
        assert np.allclose(a.data, b.data)

    def test_data_shape_checked(self):
        with pytest.raises(ValueError):
            StateVector(2, np.zeros(3, dtype=complex))

    def test_invalid_qubits(self):
        with pytest.raises(ValueError):
            StateVector(0)

    def test_copy_is_deep(self):
        a = StateVector(2)
        b = a.copy()
        b.data[0] = 0.5
        assert a.data[0] == 1.0

    def test_nbytes(self):
        assert StateVector(4).nbytes == 16 * 16


class TestNorms:
    def test_normalize(self):
        sv = StateVector(2, np.array([2, 0, 0, 0], dtype=complex))
        sv.normalize()
        assert sv.norm() == pytest.approx(1.0)

    def test_normalize_zero_raises(self):
        sv = StateVector(1, np.zeros(2, dtype=complex))
        with pytest.raises(ValueError):
            sv.normalize()

    def test_probabilities_sum(self):
        sv = StateVector.random_state(5, seed=3)
        assert sv.probabilities().sum() == pytest.approx(1.0, abs=1e-12)

    def test_probability_of(self):
        sv = StateVector(2, np.array([0.6, 0.8, 0, 0], dtype=complex))
        assert sv.probability_of(0) == pytest.approx(0.36)
        assert sv.probability_of(1) == pytest.approx(0.64)


class TestMarginals:
    def test_single_qubit_marginal(self, dense):
        sv = dense.run(ghz(3))
        m = sv.marginal_probabilities([0])
        assert np.allclose(m, [0.5, 0.5])

    def test_pair_marginal_ghz(self, dense):
        sv = dense.run(ghz(3))
        m = sv.marginal_probabilities([0, 2])
        # GHZ: qubits perfectly correlated -> only 00 and 11.
        assert m[0] == pytest.approx(0.5)
        assert m[3] == pytest.approx(0.5)
        assert m[1] == pytest.approx(0.0, abs=1e-12)

    def test_marginal_order_matters(self, dense):
        c = random_circuit(4, 25, seed=5)
        sv = dense.run(c)
        m01 = sv.marginal_probabilities([0, 1])
        m10 = sv.marginal_probabilities([1, 0])
        # outcome (a on q0, b on q1): index a + 2b in m01, b + 2a in m10
        assert m01[1] == pytest.approx(m10[2], abs=1e-12)
        assert m01[2] == pytest.approx(m10[1], abs=1e-12)

    def test_full_marginal_equals_probabilities(self, dense):
        sv = dense.run(random_circuit(3, 15, seed=6))
        m = sv.marginal_probabilities([0, 1, 2])
        assert np.allclose(m, sv.probabilities(), atol=1e-12)


class TestFidelity:
    def test_self_fidelity(self):
        sv = StateVector.random_state(4, seed=4)
        assert sv.fidelity(sv) == pytest.approx(1.0, abs=1e-12)

    def test_orthogonal_states(self):
        a = StateVector.basis_state(2, 0)
        b = StateVector.basis_state(2, 3)
        assert a.fidelity(b) == pytest.approx(0.0, abs=1e-15)

    def test_fidelity_symmetry(self):
        a = StateVector.random_state(4, seed=5)
        b = StateVector.random_state(4, seed=6)
        assert a.fidelity(b) == pytest.approx(b.fidelity(a), abs=1e-12)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            StateVector(2).fidelity(StateVector(3))

    def test_inner(self):
        a = StateVector.basis_state(1, 0)
        b = StateVector(1, np.array([1, 1], dtype=complex) / math.sqrt(2))
        assert a.inner(b) == pytest.approx(1 / math.sqrt(2))

    def test_trace_distance_bound(self):
        a = StateVector.basis_state(2, 0)
        assert a.trace_distance_bound(a) == pytest.approx(0.0, abs=1e-7)


class TestPauliExpectation:
    def pauli_matrix(self, ch):
        return {
            "I": np.eye(2),
            "X": np.array([[0, 1], [1, 0]]),
            "Y": np.array([[0, -1j], [1j, 0]]),
            "Z": np.diag([1, -1]),
        }[ch].astype(complex)

    def reference(self, sv, pauli, qubits):
        n = sv.num_qubits
        op = np.eye(1, dtype=complex)
        # build full operator: kron over qubits n-1..0
        mats = {q: self.pauli_matrix(ch) for ch, q in zip(pauli, qubits)}
        for q in reversed(range(n)):
            op = np.kron(op, mats.get(q, np.eye(2, dtype=complex)))
        return float(np.real(np.vdot(sv.data, op @ sv.data)))

    @pytest.mark.parametrize("pauli,qubits", [
        ("Z", [0]), ("Z", [2]), ("X", [1]), ("Y", [0]),
        ("ZZ", [0, 1]), ("XX", [0, 2]), ("YY", [1, 2]),
        ("XY", [0, 1]), ("ZX", [2, 0]), ("XYZ", [0, 1, 2]),
        ("IZ", [0, 1]), ("YZX", [2, 0, 1]),
    ])
    def test_matches_dense_operator(self, pauli, qubits):
        sv = StateVector.random_state(3, seed=7)
        got = sv.expectation_pauli(pauli, qubits)
        want = self.reference(sv, pauli, qubits)
        assert got == pytest.approx(want, abs=1e-10)

    def test_z_on_plus_state_is_zero(self, dense):
        from repro.circuits import Circuit

        sv = dense.run(Circuit(1).h(0))
        assert sv.expectation_pauli("Z", [0]) == pytest.approx(0.0, abs=1e-12)
        assert sv.expectation_pauli("X", [0]) == pytest.approx(1.0, abs=1e-12)

    def test_defaults_to_low_qubits(self):
        sv = StateVector.random_state(3, seed=8)
        assert sv.expectation_pauli("ZZ") == pytest.approx(
            sv.expectation_pauli("ZZ", [0, 1]), abs=1e-12
        )

    def test_invalid_letter(self):
        with pytest.raises(ValueError):
            StateVector(2).expectation_pauli("Q", [0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            StateVector(2).expectation_pauli("XX", [0])

    def test_qubit_out_of_range(self):
        with pytest.raises(ValueError):
            StateVector(2).expectation_pauli("X", [5])


class TestFormatting:
    def test_to_dict(self, dense):
        sv = dense.run(ghz(2))
        d = sv.to_dict()
        assert set(d) == {"00", "11"}

    def test_str_contains_kets(self, dense):
        s = str(dense.run(ghz(2)))
        assert "|00>" in s and "|11>" in s

    def test_repr(self):
        assert "n=3" in repr(StateVector(3))
