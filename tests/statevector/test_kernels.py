"""Unit tests for the amplitude-update kernels.

Every kernel path is validated against the brute-force reference: expand the
gate to a full 2^n x 2^n unitary with explicit kron/permutation and matmul.
"""

import numpy as np
import pytest
from scipy.stats import unitary_group

from repro.circuits import GATE_SET, gate_matrix, make_diagonal_gate, make_gate
from repro.statevector.kernels import (
    apply_1q,
    apply_circuit_gate,
    apply_diagonal,
    apply_gate,
    apply_gate_list,
    apply_matrix_generic,
    apply_stored_diagonal,
    fuse_1q_matrices,
    num_qubits_of,
)


def full_unitary(matrix: np.ndarray, qubits, n: int) -> np.ndarray:
    """Reference expansion of a k-qubit gate to n qubits (little-endian)."""
    k = len(qubits)
    dim = 1 << n
    u = np.zeros((dim, dim), dtype=complex)
    rest = [q for q in range(n) if q not in qubits]
    for col in range(dim):
        tin = 0
        for j, q in enumerate(qubits):
            tin |= ((col >> q) & 1) << j
        base = 0
        for q in rest:
            base |= ((col >> q) & 1) << q
        for tout in range(1 << k):
            row = base
            for j, q in enumerate(qubits):
                row |= ((tout >> j) & 1) << q
            u[row, col] = matrix[tout, tin]
    return u


def rand_state(n, seed=0):
    g = np.random.default_rng(seed)
    v = g.standard_normal(1 << n) + 1j * g.standard_normal(1 << n)
    return v / np.linalg.norm(v)


class TestNumQubitsOf:
    def test_power_of_two(self):
        assert num_qubits_of(np.zeros(8, dtype=complex)) == 3

    def test_non_power_rejected(self):
        with pytest.raises(ValueError):
            num_qubits_of(np.zeros(6, dtype=complex))


class TestApply1q:
    @pytest.mark.parametrize("name", ["x", "y", "z", "h", "s", "t", "sx"])
    @pytest.mark.parametrize("qubit", [0, 1, 3])
    def test_named_gates_match_reference(self, name, qubit):
        n = 4
        m = gate_matrix(name)
        v = rand_state(n, seed=qubit)
        want = full_unitary(m, (qubit,), n) @ v
        got = v.copy()
        apply_1q(got, m, qubit)
        assert np.allclose(got, want, atol=1e-12)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_unitaries(self, seed):
        n = 5
        u = unitary_group.rvs(2, random_state=np.random.default_rng(seed))
        q = seed % n
        v = rand_state(n, seed=seed)
        want = full_unitary(u, (q,), n) @ v
        got = v.copy()
        apply_1q(got, u, q)
        assert np.allclose(got, want, atol=1e-12)

    def test_diagonal_fast_path(self):
        n = 3
        m = gate_matrix("rz", (0.7,))
        v = rand_state(n, 1)
        want = full_unitary(m, (1,), n) @ v
        got = v.copy()
        apply_1q(got, m, 1)
        assert np.allclose(got, want, atol=1e-12)

    def test_x_fast_path_swaps(self):
        v = np.array([1, 2, 3, 4], dtype=complex)
        apply_1q(v, gate_matrix("x"), 0)
        assert np.allclose(v, [2, 1, 4, 3])


class TestApplyDiagonal:
    def test_cz_diagonal(self):
        n = 3
        d = np.diag(gate_matrix("cz"))
        v = rand_state(n, 2)
        want = full_unitary(gate_matrix("cz"), (0, 2), n) @ v
        got = v.copy()
        apply_diagonal(got, d, (0, 2))
        assert np.allclose(got, want, atol=1e-12)

    def test_stored_diagonal_wide(self):
        n = 5
        rng = np.random.default_rng(3)
        d = np.exp(1j * rng.uniform(0, 2 * np.pi, 1 << n))
        v = rand_state(n, 3)
        want = v * d  # full-register diagonal, qubits in order
        got = v.copy()
        apply_stored_diagonal(got, d, tuple(range(n)))
        assert np.allclose(got, want, atol=1e-12)

    def test_stored_diagonal_subset_scrambled_order(self):
        n = 4
        rng = np.random.default_rng(4)
        d = np.exp(1j * rng.uniform(0, 2 * np.pi, 16))
        qubits = (3, 0, 2, 1)  # scrambled full set exercises the gather
        v = rand_state(n, 4)
        want = full_unitary(np.diag(d), qubits, n) @ v
        got = v.copy()
        apply_stored_diagonal(got, d, qubits)
        assert np.allclose(got, want, atol=1e-12)

    def test_stored_diagonal_partial_qubits(self):
        n = 5
        rng = np.random.default_rng(5)
        d = np.exp(1j * rng.uniform(0, 2 * np.pi, 16))
        qubits = (4, 1, 3, 0)
        v = rand_state(n, 5)
        want = full_unitary(np.diag(d), qubits, n) @ v
        got = v.copy()
        apply_stored_diagonal(got, d, qubits)
        assert np.allclose(got, want, atol=1e-12)


class TestGenericPath:
    @pytest.mark.parametrize("qubits", [(0, 1), (1, 0), (0, 3), (3, 1), (2, 0)])
    def test_random_2q(self, qubits):
        n = 4
        u = unitary_group.rvs(4, random_state=np.random.default_rng(sum(qubits)))
        v = rand_state(n, seed=7)
        want = full_unitary(u, qubits, n) @ v
        got = v.copy()
        apply_matrix_generic(got, u, qubits)
        assert np.allclose(got, want, atol=1e-12)

    @pytest.mark.parametrize("qubits", [(0, 1, 2), (2, 0, 3), (3, 1, 0)])
    def test_random_3q(self, qubits):
        n = 4
        u = unitary_group.rvs(8, random_state=np.random.default_rng(11))
        v = rand_state(n, seed=8)
        want = full_unitary(u, qubits, n) @ v
        got = v.copy()
        apply_matrix_generic(got, u, qubits)
        assert np.allclose(got, want, atol=1e-12)

    @pytest.mark.parametrize("name", ["cx", "cz", "swap", "iswap", "ccx", "cswap"])
    def test_named_multiqubit_gates(self, name):
        spec = GATE_SET[name]
        n = 5
        qubits = tuple(range(spec.num_qubits, 0, -1))  # e.g. (2,1) or (3,2,1)
        m = gate_matrix(name)
        v = rand_state(n, seed=9)
        want = full_unitary(m, qubits, n) @ v
        got = v.copy()
        apply_gate(got, m, qubits)
        assert np.allclose(got, want, atol=1e-12)


class TestDispatch:
    def test_apply_gate_size_check(self):
        with pytest.raises(ValueError):
            apply_gate(np.zeros(8, dtype=complex), gate_matrix("h"), (0,), num_qubits=4)

    def test_apply_gate_list(self):
        v = rand_state(3, 10)
        gates = [(gate_matrix("h"), (0,)), (gate_matrix("cx"), (0, 1))]
        want = v.copy()
        for m, q in gates:
            apply_gate(want, m, q)
        got = v.copy()
        apply_gate_list(got, gates)
        assert np.allclose(got, want)

    def test_apply_circuit_gate_dispatches_diag(self):
        g = make_diagonal_gate((0, 1), np.array([1, -1, 1, -1], dtype=complex))
        v = rand_state(2, 11)
        want = full_unitary(g.matrix, (0, 1), 2) @ v
        got = v.copy()
        apply_circuit_gate(got, g)
        assert np.allclose(got, want, atol=1e-12)

    def test_apply_circuit_gate_dense(self):
        g = make_gate("h", (1,))
        v = rand_state(2, 12)
        want = full_unitary(g.matrix, (1,), 2) @ v
        got = v.copy()
        apply_circuit_gate(got, g)
        assert np.allclose(got, want, atol=1e-12)

    def test_norm_preserved_over_many_gates(self):
        v = rand_state(6, 13)
        rng = np.random.default_rng(14)
        for _ in range(50):
            q = tuple(rng.choice(6, size=2, replace=False))
            u = unitary_group.rvs(4, random_state=rng)
            apply_gate(v, u, (int(q[0]), int(q[1])))
        assert np.linalg.norm(v) == pytest.approx(1.0, abs=1e-10)


class TestFusion:
    def test_fuse_1q_matrices_order(self):
        h, s = gate_matrix("h"), gate_matrix("s")
        fused = fuse_1q_matrices([h, s])  # h first, then s
        assert np.allclose(fused, s @ h)

    def test_fuse_empty_is_identity(self):
        assert np.allclose(fuse_1q_matrices([]), np.eye(2))
