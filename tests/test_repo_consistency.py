"""Repo-level consistency checks: docs, benchmarks and registries agree.

These tests keep the reproduction package honest as it grows: every bench
module must be wired into the one-command runner and referenced from
DESIGN.md's experiment index, every example must at least import, and the
public package surface must be importable with a sane ``__all__``.
"""

import ast
import importlib
import pathlib
import re
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))


class TestBenchmarkWiring:
    def bench_modules(self):
        return sorted(
            p.stem for p in BENCH_DIR.glob("bench_*.py")
        )

    def test_every_bench_in_run_all(self):
        import run_all

        registered = {mod for mod, _ in run_all.EXPERIMENTS.values()}
        missing = set(self.bench_modules()) - registered
        assert not missing, f"bench modules not in run_all: {missing}"

    def test_run_all_entries_exist(self):
        import run_all

        files = set(self.bench_modules())
        ghosts = {m for m, _ in run_all.EXPERIMENTS.values()} - files
        assert not ghosts, f"run_all references missing modules: {ghosts}"

    def test_every_bench_referenced_in_design(self):
        design = (REPO / "DESIGN.md").read_text()
        for mod in self.bench_modules():
            assert mod in design, f"{mod} missing from DESIGN.md"

    def test_every_bench_has_pytest_targets(self):
        for mod in self.bench_modules():
            src = (BENCH_DIR / f"{mod}.py").read_text()
            tree = ast.parse(src)
            names = [n.name for n in ast.walk(tree)
                     if isinstance(n, ast.FunctionDef)]
            assert any(n.startswith("test_") for n in names), mod

    def test_every_bench_has_main(self):
        for mod in self.bench_modules():
            src = (BENCH_DIR / f"{mod}.py").read_text()
            assert '__main__' in src, f"{mod} lacks a __main__ runner"


class TestExamples:
    def test_examples_listed_in_readme(self):
        readme = (REPO / "README.md").read_text()
        for p in (REPO / "examples").glob("*.py"):
            assert p.name in readme, f"{p.name} missing from README examples"

    def test_examples_compile(self):
        for p in (REPO / "examples").glob("*.py"):
            compile(p.read_text(), str(p), "exec")


class TestPublicSurface:
    PACKAGES = [
        "repro",
        "repro.circuits",
        "repro.statevector",
        "repro.compression",
        "repro.memory",
        "repro.device",
        "repro.pipeline",
        "repro.parallel",
        "repro.core",
        "repro.observables",
        "repro.analysis",
        "repro.bench",
        "repro.telemetry",
        "repro.variational",
        "repro.interop",
        "repro.cli",
    ]

    @pytest.mark.parametrize("name", PACKAGES)
    def test_imports(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize("name", [p for p in PACKAGES if "." in p])
    def test_all_entries_resolve(self, name):
        mod = importlib.import_module(name)
        for entry in getattr(mod, "__all__", []):
            assert hasattr(mod, entry), f"{name}.__all__ lists missing {entry}"

    def test_experiment_ids_documented(self):
        import run_all

        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for exp_id in run_all.EXPERIMENTS:
            assert re.search(rf"\b{exp_id}\b", experiments), (
                f"experiment {exp_id} missing from EXPERIMENTS.md"
            )
