"""Parallel-vs-serial equivalence harness.

The contract the parallel subsystem must keep: running the same circuit
with the same configuration must produce the *same compressed store*,
whether codec work ran inline on one thread or fanned out across worker
processes — bit-identical final statevector and identical per-chunk blobs
(lossy codecs included: the codec is a pure function of chunk bytes and
parameters, so determinism is exact, not approximate).

:func:`run_equivalence` executes a circuit twice (serial, then parallel
with ``workers`` processes) and compares blob-for-blob and
amplitude-for-amplitude. Tests and CI assert on the returned report;
``python -m repro.parallel.equivalence`` runs a quick self-check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..circuits.circuit import Circuit
from ..core.config import MemQSimConfig
from ..telemetry import get_logger

__all__ = ["EquivalenceReport", "run_equivalence", "compare_stores"]

log = get_logger(__name__)


@dataclass
class EquivalenceReport:
    """Outcome of one serial-vs-parallel A/B."""

    num_qubits: int
    workers: int
    compressor: str
    blobs_identical: bool
    mismatched_chunks: List[int] = field(default_factory=list)
    state_bit_identical: bool = False
    state_max_abs_diff: float = 0.0
    serial_wall_seconds: float = 0.0
    parallel_wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """The determinism guarantee: identical blobs *and* amplitudes."""
        return self.blobs_identical and self.state_bit_identical

    def summary(self) -> str:
        verdict = "EQUIVALENT" if self.ok else "MISMATCH"
        return (
            f"{verdict}: n={self.num_qubits} codec={self.compressor} "
            f"workers={self.workers} blobs_identical={self.blobs_identical} "
            f"({len(self.mismatched_chunks)} mismatched) "
            f"state_bit_identical={self.state_bit_identical} "
            f"max|diff|={self.state_max_abs_diff:.3e} "
            f"wall serial={self.serial_wall_seconds:.3f}s "
            f"parallel={self.parallel_wall_seconds:.3f}s"
        )


def compare_stores(serial_store, parallel_store) -> tuple:
    """Blob-for-blob comparison; returns (identical, mismatched chunk ids)."""
    mismatched = []
    n = serial_store.layout.num_chunks
    for k in range(n):
        if serial_store.get_blob(k) != parallel_store.get_blob(k):
            mismatched.append(k)
    return not mismatched, mismatched


def run_equivalence(
    circuit: Circuit,
    config: Optional[MemQSimConfig] = None,
    workers: int = 2,
    **overrides,
) -> EquivalenceReport:
    """Run ``circuit`` serially and with ``workers`` codec processes.

    ``config``/``overrides`` parameterize everything else (codec, chunking,
    offload fraction, devices, cache, ...); the harness only forces the
    ``execution``/``workers`` knobs apart between the two runs.
    """
    from ..core.memqsim import MemQSim

    base = config if config is not None else MemQSimConfig()
    if overrides:
        base = base.with_updates(**overrides)
    rs = MemQSim(base.with_updates(workers=1, execution="serial")).run(circuit)
    rp = MemQSim(base.with_updates(workers=workers,
                                   execution="parallel")).run(circuit)
    # Densify first: flushes any cache layer so blob comparison sees the
    # final store contents on both sides.
    sv_s = rs.statevector()
    sv_p = rp.statevector()
    identical, mismatched = compare_stores(rs.store, rp.store)
    rep = EquivalenceReport(
        num_qubits=circuit.num_qubits,
        workers=workers,
        compressor=base.compressor,
        blobs_identical=identical,
        mismatched_chunks=mismatched,
        state_bit_identical=bool(np.array_equal(sv_s, sv_p)),
        state_max_abs_diff=float(np.max(np.abs(sv_s - sv_p)))
        if sv_s.size else 0.0,
        serial_wall_seconds=rs.wall_seconds,
        parallel_wall_seconds=rp.wall_seconds,
    )
    if not rep.ok:
        log.warning("equivalence violation: %s", rep.summary())
    return rep


def _main() -> int:
    from ..circuits import get_workload

    for codec in ("zlib", "szlike"):
        rep = run_equivalence(
            get_workload("qft", 8), chunk_qubits=4, compressor=codec,
            compressor_options={"error_bound": 1e-6}
            if codec == "szlike" else {},
        )
        print(rep.summary())
        if not rep.ok:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
