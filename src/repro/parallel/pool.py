"""Process-pool codec workers (the paper's multi-core (de)compression lanes).

The SZ-like codec is CPU-bound pure numpy, and chunks within a stage pass
are independent — so chunk compress/decompress jobs fan out to a
:class:`concurrent.futures.ProcessPoolExecutor` whose workers each hold a
pickled copy of the codec. Design points:

* **payload shipping** — job inputs/outputs travel as plain bytes below
  :data:`DEFAULT_SHM_THRESHOLD` and through
  :mod:`multiprocessing.shared_memory` segments above it (one copy instead
  of a pickle round-trip for big staging buffers);
* **serial fallback** — ``workers=1`` never spawns anything (jobs run
  inline through the same API), and any pool failure (spawn refused, a
  worker crashing mid-job) *degrades* the pool to inline execution with a
  logged warning instead of hanging or corrupting results. Every pending
  job retains its input parent-side, so a crash loses no data — the job is
  simply redone inline;
* **determinism** — workers run the exact same codec on the exact same
  bytes, so blobs are identical to serial execution; the scheduler merges
  results back in submission order;
* **telemetry** — worker-measured job timings merge into the parent's
  Chrome trace on per-worker lanes (``tid`` 100+), plus ``parallel.*``
  metrics (jobs, queue depth, utilization, fallbacks).
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..compression.interface import Compressor, coerce_amplitudes
from ..telemetry import NULL_TELEMETRY, get_logger

__all__ = [
    "CodecWorkerPool",
    "CodecJob",
    "CodecResult",
    "PoolStats",
    "auto_workers",
    "DEFAULT_SHM_THRESHOLD",
]

log = get_logger(__name__)

#: payloads at or above this many bytes ride a shared-memory segment
DEFAULT_SHM_THRESHOLD = 1 << 20

#: trace-lane (tid) base for worker spans — keeps them off the main lanes
WORKER_TID_BASE = 100


# -- worker-process side ------------------------------------------------------

_WORKER_COMPRESSOR: Optional[Compressor] = None


def _worker_init(payload: bytes) -> None:
    global _WORKER_COMPRESSOR
    _WORKER_COMPRESSOR = pickle.loads(payload)
    # Instantiate this worker's scratch pool up front (it is pid-keyed, so a
    # forked child would otherwise discard the parent's copied singleton on
    # first codec call; warming it here keeps that off the first job's clock).
    from ..memory.bufferpool import scratch_pool
    scratch_pool()


def _open_shm(name: str):
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def _worker_compress(data: Optional[bytes], shm_name: Optional[str],
                     count: int, dtype: str = "complex128"):
    t_wall = time.time()
    t0 = time.perf_counter()
    dt = np.dtype(dtype)
    if shm_name is not None:
        shm = _open_shm(shm_name)
        try:
            arr = np.ndarray((count,), dtype=dt, buffer=shm.buf).copy()
        finally:
            shm.close()
    else:
        arr = np.frombuffer(data, dtype=dt)
    blob = _WORKER_COMPRESSOR.compress(arr)
    return blob, t_wall, time.perf_counter() - t0, os.getpid()


def _worker_decompress(blob: bytes, shm_name: Optional[str]):
    t_wall = time.time()
    t0 = time.perf_counter()
    # The blob's dtype tag decides the output dtype; the parent learns it
    # from the returned dtype name.
    arr = np.ascontiguousarray(_WORKER_COMPRESSOR.decompress(blob))
    if shm_name is not None:
        shm = _open_shm(shm_name)
        try:
            np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)[:] = arr
        finally:
            shm.close()
        payload = None
    else:
        payload = arr.tobytes()
    return (payload, arr.shape[0], arr.dtype.name, t_wall,
            time.perf_counter() - t0, os.getpid())


# -- parent side --------------------------------------------------------------


@dataclass
class CodecResult:
    """One finished codec job."""

    key: int
    blob: Optional[bytes] = None        # compress jobs
    array: Optional[np.ndarray] = None  # decompress jobs
    seconds: float = 0.0                # codec time (worker- or inline-measured)
    wall_start: float = 0.0             # time.time() at job start
    worker_pid: int = 0                 # 0 = ran inline in the parent


class CodecJob:
    """Handle for one in-flight (or already-finished) codec job.

    The input (``payload`` bytes or the ``shm`` segment) is retained until
    the job is collected, so a crashed worker can always be recovered by
    redoing the job inline.
    """

    __slots__ = ("kind", "key", "count", "dtype", "future", "payload", "shm",
                 "result")

    def __init__(self, kind: str, key: int, count: int = 0,
                 dtype=np.complex128):
        self.kind = kind          # "compress" | "decompress"
        self.key = key
        self.count = count        # amplitudes (compress input / decompress output)
        self.dtype = np.dtype(dtype)
        self.future = None
        self.payload: Optional[bytes] = None
        self.shm = None
        self.result: Optional[CodecResult] = None

    def done(self) -> bool:
        return self.result is not None or (
            self.future is not None and self.future.done())


@dataclass
class PoolStats:
    """Cumulative pool counters."""

    jobs: int = 0
    compress_jobs: int = 0
    decompress_jobs: int = 0
    inline_jobs: int = 0
    shm_jobs: int = 0
    fallbacks: int = 0
    busy_seconds: float = 0.0
    max_inflight: int = 0
    worker_pids: List[int] = field(default_factory=list)


class CodecWorkerPool:
    """Fans chunk codec jobs out to worker processes (or runs them inline).

    ``workers=1`` is the same-process serial path — no processes, no
    pickling, deterministic ordering by construction. ``workers>1`` spawns
    a :class:`~concurrent.futures.ProcessPoolExecutor` (``fork`` start
    method where available, the platform default otherwise) with the codec
    shipped once to each worker at init.
    """

    def __init__(
        self,
        compressor: Compressor,
        workers: int = 1,
        shm_threshold: int = DEFAULT_SHM_THRESHOLD,
        telemetry=None,
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.compressor = compressor
        self.workers = int(workers)
        self.shm_threshold = int(shm_threshold) if shm_threshold > 0 \
            else (1 << 62)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.stats = PoolStats()
        self._exec = None
        self._inflight = 0
        self._tid_by_pid: Dict[int, int] = {}
        self._opened = time.perf_counter()
        self._closed = False
        if self.workers > 1:
            self._start(start_method)

    # -- lifecycle -----------------------------------------------------------

    def _start(self, start_method: Optional[str]) -> None:
        try:
            import multiprocessing as mp
            from concurrent.futures import ProcessPoolExecutor

            payload = pickle.dumps(self.compressor)
            methods = mp.get_all_start_methods()
            method = start_method or ("fork" if "fork" in methods
                                      else methods[0])
            self._exec = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=mp.get_context(method),
                initializer=_worker_init,
                initargs=(payload,),
            )
        except Exception as exc:  # unpicklable codec, sandboxed spawn, ...
            self._degrade(f"worker pool startup failed: {exc!r}")

    @property
    def is_parallel(self) -> bool:
        """Whether jobs currently go to worker processes."""
        return self._exec is not None

    def _degrade(self, reason: str) -> None:
        """Fall back to inline execution permanently (crash recovery)."""
        ex, self._exec = self._exec, None
        if ex is not None:
            try:
                ex.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
        self.stats.fallbacks += 1
        log.warning("codec worker pool degraded to serial execution: %s",
                    reason)
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("parallel.fallback").inc()

    def close(self) -> None:
        """Shut the pool down and publish utilization metrics."""
        if self._closed:
            return
        self._closed = True
        ex, self._exec = self._exec, None
        if ex is not None:
            ex.shutdown(wait=True)
        if self.telemetry.enabled:
            elapsed = max(1e-9, time.perf_counter() - self._opened)
            util = self.stats.busy_seconds / (self.workers * elapsed)
            self.telemetry.metrics.gauge("parallel.worker.utilization").set(
                min(1.0, util))

    def __enter__(self) -> "CodecWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- job submission ------------------------------------------------------

    def submit_compress(self, key: int, data: np.ndarray) -> CodecJob:
        """Queue a compress job; ``data`` is copied, caller may reuse it."""
        data = coerce_amplitudes(data)
        job = CodecJob("compress", key, count=data.shape[0],
                       dtype=data.dtype)
        if self._exec is None:
            self._run_inline(job, data=data)
            return job
        try:
            if data.nbytes >= self.shm_threshold:
                job.shm = self._make_shm(data.nbytes)
                np.ndarray(data.shape, dtype=data.dtype,
                           buffer=job.shm.buf)[:] = data
                self.stats.shm_jobs += 1
                args = (None, job.shm.name, data.shape[0], data.dtype.name)
            else:
                job.payload = data.tobytes()
                args = (job.payload, None, data.shape[0], data.dtype.name)
            job.future = self._exec.submit(_worker_compress, *args)
        except Exception as exc:
            self._degrade(f"submit failed: {exc!r}")
            self._cleanup_shm(job)
            self._run_inline(job, data=data)
            return job
        self._note_submit()
        return job

    def submit_decompress(self, key: int, blob: bytes,
                          count: Optional[int] = None,
                          dtype=np.complex128) -> CodecJob:
        """Queue a decompress job.

        ``count`` and ``dtype`` (if known) size the shm lane — the output
        dtype itself always comes from the blob's dtype tag.
        """
        job = CodecJob("decompress", key, count=count or 0, dtype=dtype)
        job.payload = blob
        if self._exec is None:
            self._run_inline(job)
            return job
        try:
            shm_name = None
            itemsize = job.dtype.itemsize
            if count and count * itemsize >= self.shm_threshold:
                job.shm = self._make_shm(count * itemsize)
                shm_name = job.shm.name
                self.stats.shm_jobs += 1
            job.future = self._exec.submit(_worker_decompress, blob, shm_name)
        except Exception as exc:
            self._degrade(f"submit failed: {exc!r}")
            self._cleanup_shm(job)
            self._run_inline(job)
            return job
        self._note_submit()
        return job

    # -- job collection ------------------------------------------------------

    def collect(self, job: CodecJob) -> CodecResult:
        """Block until ``job`` finishes and return its result.

        A worker crash (BrokenProcessPool / cancelled future / any error
        escaping the worker) degrades the pool and redoes the job inline —
        callers never hang and never observe a half-finished result.
        """
        if job.result is not None:
            return job.result
        try:
            raw = job.future.result()
        except Exception as exc:
            if self._exec is not None:
                self._degrade(
                    f"worker job failed ({type(exc).__name__}: {exc})")
            self._inflight = max(0, self._inflight - 1)
            self._note_depth()
            data = None
            if job.kind == "compress":
                data = self._retained_input(job)
            self._cleanup_shm(job)
            self._run_inline(job, data=data)
            return job.result
        self._inflight = max(0, self._inflight - 1)
        self._note_depth()
        if job.kind == "compress":
            blob, t_wall, dt, pid = raw
            res = CodecResult(job.key, blob=blob, seconds=dt,
                              wall_start=t_wall, worker_pid=pid)
        else:
            payload, n, dtype_name, t_wall, dt, pid = raw
            out_dt = np.dtype(dtype_name)
            if job.shm is not None:
                arr = np.ndarray((n,), dtype=out_dt,
                                 buffer=job.shm.buf).copy()
            else:
                arr = np.frombuffer(payload, dtype=out_dt)
            res = CodecResult(job.key, array=arr, seconds=dt,
                              wall_start=t_wall, worker_pid=pid)
        self._cleanup_shm(job)
        job.payload = None
        job.result = res
        self._account(job, res, inline=False)
        return res

    def drain(self, jobs: Sequence[CodecJob]) -> List[CodecResult]:
        return [self.collect(j) for j in jobs]

    # -- synchronous batch API (serial path == codec batch interface) --------

    def compress_batch(self, arrays: Sequence[np.ndarray]) -> List[bytes]:
        if self._exec is None:
            return self.compressor.compress_batch(arrays)
        jobs = [self.submit_compress(i, a) for i, a in enumerate(arrays)]
        return [self.collect(j).blob for j in jobs]

    def decompress_batch(self, blobs: Sequence[bytes]) -> List[np.ndarray]:
        if self._exec is None:
            return self.compressor.decompress_batch(blobs)
        jobs = [self.submit_decompress(i, b) for i, b in enumerate(blobs)]
        return [self.collect(j).array for j in jobs]

    # -- internals -----------------------------------------------------------

    def _run_inline(self, job: CodecJob,
                    data: Optional[np.ndarray] = None) -> None:
        t_wall = time.time()
        t0 = time.perf_counter()
        if job.kind == "compress":
            res = CodecResult(job.key,
                              blob=self.compressor.compress(data))
        else:
            res = CodecResult(job.key,
                              array=self.compressor.decompress(job.payload))
        res.seconds = time.perf_counter() - t0
        res.wall_start = t_wall
        job.result = res
        job.payload = None
        self._account(job, res, inline=True)

    def _retained_input(self, job: CodecJob) -> np.ndarray:
        """Recover a compress job's input from its retained payload/shm."""
        if job.shm is not None:
            return np.ndarray((job.count,), dtype=job.dtype,
                              buffer=job.shm.buf).copy()
        return np.frombuffer(job.payload, dtype=job.dtype)

    def _make_shm(self, nbytes: int):
        from multiprocessing import shared_memory

        return shared_memory.SharedMemory(create=True, size=nbytes)

    def _cleanup_shm(self, job: CodecJob) -> None:
        shm, job.shm = job.shm, None
        if shm is not None:
            try:
                shm.close()
                shm.unlink()
            except Exception:
                pass

    def _note_submit(self) -> None:
        self._inflight += 1
        self.stats.max_inflight = max(self.stats.max_inflight, self._inflight)
        self._note_depth()

    def _note_depth(self) -> None:
        if self.telemetry.enabled:
            self.telemetry.metrics.gauge("parallel.queue_depth").set(
                self._inflight)

    def _account(self, job: CodecJob, res: CodecResult, inline: bool) -> None:
        st = self.stats
        st.jobs += 1
        st.busy_seconds += res.seconds
        if job.kind == "compress":
            st.compress_jobs += 1
        else:
            st.decompress_jobs += 1
        if inline:
            st.inline_jobs += 1
        elif res.worker_pid and res.worker_pid not in st.worker_pids:
            st.worker_pids.append(res.worker_pid)
        tel = self.telemetry
        if not tel.enabled:
            return
        tel.metrics.counter("parallel.jobs").inc()
        if inline:
            tel.metrics.counter("parallel.jobs.inline").inc()
        if tel.tracer.enabled and res.worker_pid:
            tid = self._tid_by_pid.setdefault(
                res.worker_pid, WORKER_TID_BASE + len(self._tid_by_pid))
            tel.tracer.record_at(
                f"worker.{job.kind}", res.seconds,
                wall_start=res.wall_start, tid=tid,
                key=job.key, pid=res.worker_pid, cat="parallel")
            # Forward the worker-measured job onto the live bus, re-anchored
            # from the child's wall clock onto the parent's event axis.
            bus = getattr(tel, "bus", None)
            if bus is not None and bus.enabled:
                bus.publish_at(res.wall_start, f"worker.{job.kind}",
                               key=job.key, pid=res.worker_pid,
                               seconds=res.seconds)


def auto_workers(compressor: Compressor, chunk_size: int,
                 max_workers: int = 8) -> int:
    """Pick a worker count empirically (backend-selection style).

    Rule: fan out only when the machine has spare cores *and* a probe shows
    per-chunk codec time large enough that IPC overhead (~0.1–0.5 ms/job)
    amortizes. Otherwise parallel dispatch would only add latency, so the
    serial path wins — returns 1.
    """
    cores = os.cpu_count() or 1
    if cores <= 1:
        return 1
    probe_size = min(max(256, int(chunk_size)), 1 << 14)
    rng = np.random.default_rng(0)
    v = rng.standard_normal(probe_size) + 1j * rng.standard_normal(probe_size)
    v /= np.linalg.norm(v)
    t0 = time.perf_counter()
    blob = compressor.compress(v)
    compressor.decompress(blob)
    dt = time.perf_counter() - t0
    est = dt * (max(1, chunk_size) / probe_size)
    if est < 5e-4:
        return 1
    return max(2, min(cores, max_workers))
