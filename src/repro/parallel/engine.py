"""The overlapped stage engine: double-buffered, schedule-exact prefetch.

:class:`ParallelStageScheduler` executes the same planned stages as the
serial :class:`~repro.pipeline.scheduler.StageScheduler`, but turns the
paper's Fig. 1 overlap into *actual* concurrency instead of an analytic
afterthought:

* decompression is **prefetched** in true future-access order: the engine
  derives the run's complete pass sequence from the compiled plan
  (:func:`repro.analysis.audit.predict_pass_schedule` — the same predictor
  the audit plane verifies against), so while one group is in its kernel
  phase the codec workers are already decompressing the *next* group the
  plan will touch — including the first group of the **next stage** when
  no permutation barrier intervenes (one extra staging buffer — classic
  double buffering, now across stage boundaries);
* recompression/store is **asynchronous**: compress jobs are submitted
  right after the kernel (the staged data is copied at submit), the
  staging buffer is released immediately, and blobs are installed into
  the store as jobs complete.

Correctness invariants:

* groups within a stage partition the chunk set, so a prefetched read can
  never race a pending write *within* the stage;
* a cross-stage prefetch may read chunks this stage wrote — the engine
  first **selectively drains** exactly those chunks' pending compress
  jobs, so the per-chunk read-modify-write order is still exactly the
  serial order;
* every pending compress job is drained before the stage returns, so the
  next stage (or a permutation relabeling, or result queries) always sees
  fully-written blobs;
* workers run the identical codec on identical bytes, and blobs are
  installed keyed by chunk id — results are bit-identical to serial
  execution (blob-for-blob, for lossy codecs too, given the same codec
  parameters). The equivalence harness in :mod:`repro.parallel.equivalence`
  enforces this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..compile import CompiledGateStage
from ..device.timeline import Stage
from ..pipeline.scheduler import StageScheduler
from ..telemetry import get_logger
from .pool import CodecJob, CodecWorkerPool

__all__ = ["ParallelStageScheduler"]

log = get_logger(__name__)


class ParallelStageScheduler(StageScheduler):
    """Stage scheduler with concurrent codec lanes and overlapped passes.

    Construction matches :class:`StageScheduler` plus ``codec_pool``. The
    store must expose the blob-level surface (``get_blob``/``put_blob`` —
    both :class:`~repro.memory.chunkstore.CompressedChunkStore` and
    :class:`~repro.memory.cache.ChunkCache` do); otherwise gate stages fall
    back to the serial base implementation.
    """

    def __init__(self, *args, codec_pool: Optional[CodecWorkerPool] = None,
                 **kwargs):
        super().__init__(*args, **kwargs)
        if codec_pool is None:
            codec_pool = CodecWorkerPool(self.store.compressor, workers=1,
                                         telemetry=self.telemetry)
        self.codec_pool = codec_pool
        self._blob_io = (hasattr(self.store, "get_blob")
                         and hasattr(self.store, "put_blob"))
        if not self._blob_io:
            log.warning("store %r lacks blob-level access; parallel engine "
                        "falls back to serial group passes",
                        type(self.store).__name__)
        # Schedule-exact prefetch state, valid for the duration of run():
        # per-stage sweep orders and, per gate stage, the next planned
        # pass across the stage boundary (None when a barrier intervenes).
        self._planned_orders: Optional[Dict[int, list]] = None
        self._next_pass: Optional[Dict[int, tuple]] = None
        self._cross = None  # (stage, group, buffer, jobs) prefetched ahead

    # -- run-level prefetch planning -----------------------------------------

    def run(self, stages) -> None:
        stages = list(stages)
        # Plan only from a pristine sweep state — the predictor assumes
        # serpentine parity 0, so a scheduler resumed mid-sequence falls
        # back to plain double buffering rather than risk order drift.
        if self._blob_io and self._stage_parity == 0:
            self._plan_prefetch(stages)
        try:
            super().run(stages)
        finally:
            self._release_cross()
            self._planned_orders = None
            self._next_pass = None

    def _plan_prefetch(self, stages) -> None:
        """Derive the run's exact pass sequence from the plan.

        Produces the per-stage sweep orders (so execution and prediction
        cannot drift) and, for each gate stage, the first pass of the
        following gate stage when no permutation barrier sits between
        them — the cross-boundary prefetch target. Keyed by the absolute
        stage indices this scheduler will assign.
        """
        from ..analysis.audit import predict_pass_schedule

        passes = predict_pass_schedule(stages, self.layout, self.serpentine)
        base = self._stage_index  # stages execute at consecutive indices
        orders: Dict[int, list] = {}
        flat: List[tuple] = []
        for kind, si, gi, members in passes:
            flat.append((kind, base + si, gi, members))
            if kind == "pass":
                orders.setdefault(base + si, []).append((gi, members))
        next_pass: Dict[int, tuple] = {}
        for i, (kind, si, gi, members) in enumerate(flat):
            if kind != "pass" or i + 1 >= len(flat):
                continue
            nkind, nsi, ngi, nmembers = flat[i + 1]
            if nkind == "pass" and nsi != si:
                next_pass[si] = (nsi, ngi, nmembers)
        self._planned_orders = orders
        self._next_pass = next_pass

    def _take_cross(self, si: int, gi) -> Optional[tuple]:
        """Claim the cross-stage prefetch if it targets pass (si, gi)."""
        cross = self._cross
        if cross is None:
            return None
        self._cross = None
        csi, cgi, buf, jobs = cross
        if csi == si and cgi == gi:
            return (buf, jobs)
        # Mispredicted (out-of-plan run_stage use): discard safely.
        self.codec_pool.drain(jobs)
        self.pool.release(buf)
        return None

    def _release_cross(self) -> None:
        if self._cross is not None:
            _csi, _cgi, buf, jobs = self._cross
            self._cross = None
            self.codec_pool.drain(jobs)
            self.pool.release(buf)

    # -- gate stages ---------------------------------------------------------

    def _run_gate_stage(self, stage: CompiledGateStage, si: int = -1) -> None:
        if not self._blob_io:
            super()._run_gate_stage(stage, si)
            return
        placement = self.layout.chunk_groups(stage.group_qubits)
        group_size = self.layout.chunk_size << len(placement.group_qubits)
        cpu_every = self._cpu_every()
        planned = self._planned_orders.get(si) \
            if self._planned_orders is not None else None
        order = planned if planned is not None else \
            self._group_order(placement)
        pending: List[Tuple[int, int, CodecJob]] = []
        # (buffer, decompress jobs) for the next group; seeded by the
        # previous stage's cross-boundary prefetch when it targeted us.
        prefetch = self._take_cross(si, order[0][0]) if order else None
        try:
            for idx, (gi, members) in enumerate(order):
                # Group-pass cancellation checkpoint, mirroring the serial
                # engine; the finally block below drains any prefetched
                # loads and pending stores so the store stays consistent.
                self.cancel.raise_if_cancelled()
                self.telemetry.traffic.set_pass(si, gi)
                if self.schedule is not None:
                    self.schedule.begin_pass(si, gi)
                cpu_path = cpu_every > 0 and (gi % cpu_every == 0)
                ops = self._ops_for_group(stage, placement, members[0])
                if prefetch is None:
                    buf = self.pool.acquire()
                    jobs = self._submit_loads(members)
                else:
                    buf, jobs = prefetch
                    prefetch = None
                view = buf[:group_size]
                self._collect_loads(gi, members, jobs, view)
                # Prefetch the next group *before* this group's kernel so
                # its decompression runs on the workers during the kernel.
                if idx + 1 < len(order) and self.pool.available > 0:
                    nbuf = self.pool.acquire()
                    # Blob reads for the *next* group (a disk store pays
                    # them at submit) attribute to that group, not this one.
                    with self.telemetry.traffic.attributed(
                            si, order[idx + 1][0]):
                        prefetch = (nbuf,
                                    self._submit_loads(order[idx + 1][1]))
                with self.telemetry.span(
                    "group_pass", stage=si, group=gi,
                    path="cpu" if cpu_path else "device",
                    chunks=len(members),
                    nbytes=group_size * self.layout.itemsize,
                    parallel=True,
                ):
                    if cpu_path:
                        self._cpu_update(gi, ops, view)
                    else:
                        self._device_update(gi, ops, view)
                self._submit_stores(gi, members, view, pending)
                self.pool.release(buf)
                self._drain_stores(pending, block=False)
                self.stats.group_passes += 1
                self.telemetry.progress.group_done(si)
                self.telemetry.emit("group", stage=si, group=gi,
                                    chunks=len(members),
                                    path="cpu" if cpu_path else "device",
                                    parallel=True)
            # Schedule-exact cross-boundary prefetch: the plan says which
            # pass runs next (no barrier between); issue its decompress
            # jobs now so they overlap this stage's final compress drain.
            nxt = self._next_pass.get(si) \
                if self._next_pass is not None else None
            if nxt is not None and self.pool.available > 0:
                nsi, ngi, nmembers = nxt
                # RMW guard: this stage may have written chunks the next
                # pass reads — install exactly those blobs first.
                self._drain_stores(pending, block=True, only=set(nmembers))
                nbuf = self.pool.acquire()
                with self.telemetry.traffic.attributed(nsi, ngi):
                    self._cross = (nsi, ngi, nbuf,
                                   self._submit_loads(nmembers))
        finally:
            if prefetch is not None:
                nbuf, jobs = prefetch
                self.codec_pool.drain(jobs)
                self.pool.release(nbuf)
            # Stage barrier: every blob installed before anything downstream
            # (next stage, permutation, result query) reads the store.
            self._drain_stores(pending, block=True)

    # -- codec-lane plumbing -------------------------------------------------

    def _submit_loads(self, members: Tuple[int, ...]) -> List[CodecJob]:
        cs = self.layout.chunk_size
        dtype = getattr(self.store, "dtype", np.complex128)
        jobs = []
        for chunk in members:
            blob = self.store.get_blob(chunk)
            if blob is None:
                raise KeyError(f"chunk {chunk} not initialized")
            jobs.append(self.codec_pool.submit_decompress(chunk, blob,
                                                          count=cs,
                                                          dtype=dtype))
        return jobs

    def _collect_loads(self, gi: int, members: Tuple[int, ...],
                       jobs: List[CodecJob], view: np.ndarray) -> None:
        cs = self.layout.chunk_size
        for slot, job in enumerate(jobs):
            # The pool drops the retained input payload at collect time;
            # grab the compressed size first for the ledger.
            blob_nbytes = len(job.payload) if job.payload is not None else 0
            res = self.codec_pool.collect(job)
            arr = res.array
            if arr.shape[0] != cs:
                raise ValueError(
                    f"chunk {job.key} decompressed to {arr.shape[0]} "
                    f"amplitudes, expected {cs}"
                )
            view[slot * cs:(slot + 1) * cs] = arr
            # Collect order == serial load order, so the access trace is
            # identical to serial execution regardless of prefetch timing.
            self.telemetry.access.record(job.key, self._audit_si, "r")
            self.telemetry.record_stage(
                self.timeline, Stage.DECOMPRESS, res.seconds,
                chunk=gi, nbytes=self.layout.chunk_nbytes, chunk_id=job.key,
                worker=res.worker_pid)
            self.store.note_decompressed(
                arr.nbytes, res.seconds, blob_nbytes=blob_nbytes,
                worker=res.worker_pid)

    def _submit_stores(self, gi: int, members: Tuple[int, ...],
                       view: np.ndarray,
                       pending: List[Tuple[int, int, CodecJob]]) -> None:
        cs = self.layout.chunk_size
        for slot, chunk in enumerate(members):
            # Submit order == serial store order (the trace's write point;
            # the blob lands whenever the drain collects it).
            self.telemetry.access.record(chunk, self._audit_si, "w")
            job = self.codec_pool.submit_compress(
                chunk, view[slot * cs:(slot + 1) * cs])
            pending.append((gi, chunk, job))

    def _drain_stores(self, pending: List[Tuple[int, int, CodecJob]],
                      block: bool, only=None) -> None:
        """Install completed compress blobs; ``only`` restricts a blocking
        drain to that chunk set (the cross-stage prefetch's RMW guard)."""
        remaining: List[Tuple[int, int, CodecJob]] = []
        for gi, chunk, job in pending:
            if only is not None and chunk not in only:
                remaining.append((gi, chunk, job))
                continue
            if not block and not job.done():
                remaining.append((gi, chunk, job))
                continue
            res = self.codec_pool.collect(job)
            # Drains run while a *later* group's pass is the ambient
            # context; the blob belongs to the group that submitted it.
            with self.telemetry.traffic.attributed(self._audit_si, gi):
                self.store.put_blob(chunk, res.blob, seconds=res.seconds,
                                    data_nbytes=self.layout.chunk_nbytes,
                                    worker=res.worker_pid)
            self.telemetry.record_stage(
                self.timeline, Stage.COMPRESS, res.seconds,
                chunk=gi, nbytes=self.layout.chunk_nbytes, chunk_id=chunk,
                worker=res.worker_pid)
        pending[:] = remaining
