"""repro.parallel — real concurrent chunk execution.

The paper's online stage is *pipelined*: decompression, transfer, kernel,
and recompression of independent chunk groups overlap. The base scheduler
models that overlap analytically; this subsystem makes it real:

* :class:`CodecWorkerPool` — chunk compress/decompress jobs on a
  ``multiprocessing`` process pool (bytes or shared-memory payloads,
  same-process fallback for ``workers=1`` and for platforms where spawning
  fails);
* :class:`ParallelStageScheduler` — double-buffered group passes: group
  *k*'s recompression/store overlaps group *k+1*'s fetch/decompress while
  preserving per-chunk read-modify-write order;
* :func:`run_equivalence` — the parallel-vs-serial harness enforcing
  bit-identical results (identical per-chunk blobs, lossy codecs included).

Enable via ``MemQSimConfig(workers=N)`` / ``python -m repro run --workers N``
(``0`` = empirical auto-selection, see :func:`auto_workers`).
"""

from .engine import ParallelStageScheduler
from .equivalence import EquivalenceReport, compare_stores, run_equivalence
from .pool import (
    DEFAULT_SHM_THRESHOLD,
    CodecJob,
    CodecResult,
    CodecWorkerPool,
    PoolStats,
    auto_workers,
)

__all__ = [
    "CodecWorkerPool",
    "CodecJob",
    "CodecResult",
    "PoolStats",
    "auto_workers",
    "DEFAULT_SHM_THRESHOLD",
    "ParallelStageScheduler",
    "EquivalenceReport",
    "run_equivalence",
    "compare_stores",
]
