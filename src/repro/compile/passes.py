"""Lowering passes: 1q folding, diagonal-run merging, window fusion.

Each pass maps a list of ops to a shorter list of ops with the identical
product unitary (up to floating-point reassociation), trading Python-level
kernel dispatch for a handful of tiny matmuls at compile time:

1. :func:`fold_1q_runs` — consecutive single-qubit gates on the same qubit
   (no intervening gate touching it) become one 2x2 matmul; an all-diagonal
   run stays a stored diagonal, so restrictable global-qubit phases keep
   their compact form.
2. :func:`merge_diagonal_runs` — consecutive diagonal ops merge into one
   stored diagonal over the union of their qubits (diagonals commute, and
   a stored diagonal costs ``O(2^k)`` not ``O(4^k)``); capped at
   ``max_diag_qubits`` so register-wide oracles don't blow up.
3. :func:`fuse_windows` — contiguous ops whose union of qubits stays within
   ``max_fuse_qubits`` collapse into one dense k-qubit unitary, executed by
   the generic ``apply_matrix_generic`` kernel path.

Safety for the chunked pipeline: a ``can_densify(qubits)`` predicate guards
every transformation that turns a diagonal into a dense matrix or grows a
dense op's qubit set. The scheduler's per-group machinery can only execute
dense ops whose global qubits are *in the stage's group*; diagonals on
out-of-group global qubits must stay diagonal so the per-chunk restriction
(:func:`repro.pipeline.scheduler.restrict_diagonal`) still applies. Passes
never reorder non-commuting gates: 1q folding only moves gates across
disjoint-qubit ops, diagonal merging only merges (mutually commuting)
diagonals, window fusion preserves contiguity.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.gates import gate_is_diagonal
from ..statevector.kernels import apply_gate, apply_stored_diagonal
from .ir import FusedOp

__all__ = ["fold_1q_runs", "merge_diagonal_runs", "fuse_windows"]

#: qubit-set predicate: True when a dense op over these qubits is executable
CanDensify = Callable[[Tuple[int, ...]], bool]


def _always(_qubits: Tuple[int, ...]) -> bool:
    return True


def _diag_of(op) -> Optional[np.ndarray]:
    """The op's stored diagonal, extracting one from diagonal unitaries."""
    d = op.diag
    if d is not None:
        return d
    g = op.to_gate()
    if gate_is_diagonal(g):
        return np.diag(g.matrix)
    return None


def _sources(ops: Sequence[object]) -> Tuple[str, ...]:
    out: List[str] = []
    for op in ops:
        src = getattr(op, "sources", None)
        out.extend(src if src else (op.name,))
    return tuple(out)


# ---------------------------------------------------------------------------
# Pass 1: single-qubit run folding
# ---------------------------------------------------------------------------

def fold_1q_runs(ops: Sequence[object], can_densify: CanDensify = _always,
                 stats: Optional[Dict[str, int]] = None) -> List[object]:
    """Fold per-qubit runs of 1q ops into one 2x2 matmul (or 2-entry diag).

    A run ends when any other gate touches the qubit; emitting a pending
    run after later disjoint-qubit gates is safe because gates on disjoint
    qubits commute. Dense folding is gated by ``can_densify`` — a run that
    is entirely diagonal folds to a stored diagonal instead, which is
    always safe (it stays restrictable per chunk group).
    """
    out: List[object] = []
    pending: Dict[int, List[object]] = {}

    def flush(q: int) -> None:
        run = pending.pop(q, None)
        if not run:
            return
        if len(run) == 1:
            out.append(run[0])
            return
        diags = [_diag_of(o) for o in run]
        if all(d is not None for d in diags):
            merged = diags[0].astype(np.complex128, copy=True)
            for d in diags[1:]:
                merged = merged * d
            out.append(FusedOp((q,), diag=merged, sources=_sources(run)))
        elif can_densify((q,)):
            m = np.eye(2, dtype=np.complex128)
            for o in run:
                m = o.to_gate().matrix @ m
            out.append(FusedOp((q,), matrix=m, sources=_sources(run)))
        else:
            out.extend(run)
            return
        if stats is not None:
            stats["fused_1q"] = stats.get("fused_1q", 0) + 1

    for op in ops:
        if op.num_qubits == 1:
            pending.setdefault(op.qubits[0], []).append(op)
        else:
            for q in op.qubits:
                flush(q)
            out.append(op)
    for q in sorted(pending):
        flush(q)
    return out


# ---------------------------------------------------------------------------
# Pass 2: diagonal-run merging
# ---------------------------------------------------------------------------

def _merge_diag_run(run: List[Tuple[object, np.ndarray]]) -> FusedOp:
    qubits = tuple(sorted({q for op, _ in run for q in op.qubits}))
    k = len(qubits)
    pos = {q: i for i, q in enumerate(qubits)}
    u = np.arange(1 << k, dtype=np.int64)
    total = np.ones(1 << k, dtype=np.complex128)
    for op, d in run:
        idx = np.zeros(1 << k, dtype=np.int64)
        for j, q in enumerate(op.qubits):
            idx |= ((u >> pos[q]) & 1) << j
        total *= d[idx]
    return FusedOp(qubits, diag=total, sources=_sources([op for op, _ in run]))


def merge_diagonal_runs(ops: Sequence[object], max_diag_qubits: int = 8,
                        stats: Optional[Dict[str, int]] = None) -> List[object]:
    """Merge consecutive diagonal ops into one stored diagonal.

    Diagonals all commute, so any contiguous run collapses to a single
    stored diagonal over the (sorted) union of their qubits. The union is
    capped at ``max_diag_qubits`` to bound the ``2^k`` vector; a single op
    wider than the cap passes through unchanged.
    """
    out: List[object] = []
    run: List[Tuple[object, np.ndarray]] = []
    union: set = set()

    def flush() -> None:
        nonlocal union
        if len(run) == 1:
            out.append(run[0][0])
        elif run:
            out.append(_merge_diag_run(run))
            if stats is not None:
                stats["merged_diagonals"] = stats.get("merged_diagonals", 0) + 1
        run.clear()
        union = set()

    for op in ops:
        d = _diag_of(op)
        if d is None:
            flush()
            out.append(op)
            continue
        if len(op.qubits) > max_diag_qubits:
            flush()
            out.append(op)
            continue
        if run and len(union | set(op.qubits)) > max_diag_qubits:
            flush()
        run.append((op, d))
        union |= set(op.qubits)
    flush()
    return out


# ---------------------------------------------------------------------------
# Pass 3: contiguous window fusion
# ---------------------------------------------------------------------------

def _compose_window(window: List[object], qubits: Tuple[int, ...]) -> np.ndarray:
    """Dense unitary of the window over ``qubits`` (little-endian union)."""
    k = len(qubits)
    dim = 1 << k
    pos = {q: i for i, q in enumerate(qubits)}
    u = np.eye(dim, dtype=np.complex128)
    col = np.empty(dim, dtype=np.complex128)
    for j in range(dim):
        col[:] = u[:, j]
        for op in window:
            g = op.to_gate()
            vq = tuple(pos[q] for q in g.qubits)
            if g.diag is not None:
                apply_stored_diagonal(col, g.diag, vq)
            else:
                apply_gate(col, g.matrix, vq, k)
        u[:, j] = col
    return u


def fuse_windows(ops: Sequence[object], max_fuse_qubits: int = 3,
                 can_densify: CanDensify = _always,
                 stats: Optional[Dict[str, int]] = None) -> List[object]:
    """Fuse contiguous ops whose qubit union fits in ``max_fuse_qubits``.

    Greedy: extend the current window while the union stays within the cap
    and is densifiable; otherwise flush. Windows of one op — or windows
    that are entirely diagonal (densifying those would trade an ``O(2^k)``
    diagonal for an ``O(4^k)`` matmul) — emit their ops unchanged.
    """
    if max_fuse_qubits < 1:
        raise ValueError("max_fuse_qubits must be >= 1")
    out: List[object] = []
    window: List[object] = []
    union: set = set()

    def flush() -> None:
        nonlocal union
        if not window:
            return
        if len(window) == 1 or all(_diag_of(o) is not None for o in window):
            out.extend(window)
        else:
            qubits = tuple(sorted(union))
            out.append(FusedOp(qubits, matrix=_compose_window(window, qubits),
                               sources=_sources(window)))
            if stats is not None:
                stats["fused_windows"] = stats.get("fused_windows", 0) + 1
        window.clear()
        union = set()

    for op in ops:
        q = set(op.qubits)
        if window and len(union | q) <= max_fuse_qubits \
                and can_densify(tuple(sorted(union | q))):
            window.append(op)
            union |= q
            continue
        flush()
        if len(q) <= max_fuse_qubits and can_densify(tuple(sorted(q))):
            window.append(op)
            union = set(q)
        else:
            out.append(op)
    flush()
    return out
