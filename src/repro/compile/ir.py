"""The lowered gate IR: what every amplitude-touching consumer executes.

A compiled op is either a :class:`GateOp` (a thin pass-through wrapper over
a circuit :class:`~repro.circuits.gates.Gate`) or a :class:`FusedOp` (the
product of several source gates, stored either as one dense ``2^k x 2^k``
unitary or as one stored diagonal). Both expose the same tiny surface —
``qubits``, ``name``, ``diag`` and ``to_gate()`` — so backends and the
scheduler's per-group remapping treat them uniformly, and a backend that
only understands :class:`~repro.circuits.gates.Gate` (the einsum
cross-validator) still works via ``to_gate()``.

Stage containers mirror the planner's: a :class:`CompiledGateStage` is a
:class:`~repro.pipeline.stages.GateStage` whose gate batch has been lowered
to ops; permutation stages pass through compilation untouched. The full
lowered program is a :class:`CompiledPlan` with a :class:`CompileReport`
accounting for what each pass did.

This module deliberately imports only :mod:`repro.circuits.gates` and numpy
so every layer (core, device, pipeline, statevector) can import it without
cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.gates import Gate, make_diagonal_gate, make_gate

__all__ = [
    "GateOp",
    "FusedOp",
    "CompiledGateStage",
    "CompiledPlan",
    "CompileReport",
    "as_ops",
]


@dataclass(frozen=True)
class GateOp:
    """One source gate, lowered 1:1 (the no-fusion case)."""

    gate: Gate

    @property
    def qubits(self) -> Tuple[int, ...]:
        return self.gate.qubits

    @property
    def num_qubits(self) -> int:
        return len(self.gate.qubits)

    @property
    def name(self) -> str:
        return self.gate.name

    @property
    def diag(self) -> Optional[np.ndarray]:
        return self.gate.diag

    def to_gate(self) -> Gate:
        return self.gate

    def __repr__(self) -> str:
        return f"GateOp({self.gate})"


@dataclass
class FusedOp:
    """Several source gates folded into one kernel launch.

    Exactly one of ``matrix`` (dense ``2^k x 2^k`` unitary) or ``diag``
    (stored diagonal of length ``2^k``) is set. ``qubits`` are sorted
    ascending; the first qubit is the least-significant axis, matching the
    :class:`~repro.circuits.gates.Gate` convention. ``sources`` records the
    names of the gates that were folded (provenance for reports/tests).
    """

    qubits: Tuple[int, ...]
    matrix: Optional[np.ndarray] = None
    diag: Optional[np.ndarray] = None
    sources: Tuple[str, ...] = ()
    _gate: Optional[Gate] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if (self.matrix is None) == (self.diag is None):
            raise ValueError("FusedOp needs exactly one of matrix / diag")

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def name(self) -> str:
        return "fused" if self.matrix is not None else "fused_diag"

    def to_gate(self) -> Gate:
        """Lower to a plain Gate (validated once, then cached)."""
        if self._gate is None:
            if self.diag is not None:
                self._gate = make_diagonal_gate(self.qubits, self.diag,
                                                name="fused_diag")
            else:
                self._gate = make_gate("fused", self.qubits,
                                       matrix=self.matrix)
        return self._gate

    def __repr__(self) -> str:
        kind = "diag" if self.diag is not None else "mat"
        return (f"FusedOp({kind}, q={list(self.qubits)}, "
                f"sources={'+'.join(self.sources) or '?'})")


def as_ops(items: Sequence[Any]) -> List[Any]:
    """Normalize a mixed Gate / op sequence to a list of ops."""
    return [it if hasattr(it, "to_gate") else GateOp(it) for it in items]


@dataclass(frozen=True)
class CompiledGateStage:
    """A planner :class:`~repro.pipeline.stages.GateStage`, lowered to ops."""

    group_qubits: Tuple[int, ...]
    ops: Tuple[Any, ...]
    #: how many source gates this stage's ops came from
    source_gates: int = 0

    @property
    def num_group_qubits(self) -> int:
        return len(self.group_qubits)

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The ops lowered back to gates (debug / cross-validation)."""
        return tuple(op.to_gate() for op in self.ops)

    def __repr__(self) -> str:
        return (f"CompiledGateStage(group={list(self.group_qubits)}, "
                f"ops={len(self.ops)}, gates={self.source_gates})")


@dataclass
class CompileReport:
    """What the lowering passes did, summed over all gate stages."""

    gates_in: int = 0
    ops_out: int = 0
    fused_1q: int = 0
    merged_diagonals: int = 0
    fused_windows: int = 0
    num_gate_stages: int = 0
    seconds: float = 0.0
    fusion_enabled: bool = False
    max_fuse_qubits: int = 0

    @property
    def fusion_ratio(self) -> float:
        """Source gates per emitted op (1.0 = nothing fused)."""
        if self.ops_out <= 0:
            return 1.0
        return self.gates_in / self.ops_out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fusion": self.fusion_enabled,
            "max_fuse_qubits": self.max_fuse_qubits,
            "gates_in": self.gates_in,
            "ops_out": self.ops_out,
            "fusion_ratio": self.fusion_ratio,
            "fused_1q": self.fused_1q,
            "merged_diagonals": self.merged_diagonals,
            "fused_windows": self.fused_windows,
            "num_gate_stages": self.num_gate_stages,
            "seconds": self.seconds,
        }


@dataclass
class CompiledPlan:
    """The lowered program: stages ready for the scheduler + accounting."""

    stages: List[Any]
    report: CompileReport

    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self):
        return iter(self.stages)
