"""Compile a circuit's gate batches into the lowered op IR.

:func:`compile_gates` lowers one flat gate list (the dense simulator's
whole circuit); :func:`compile_stages` lowers a planner stage list into a
:class:`~repro.compile.ir.CompiledPlan` (the chunked pipeline's program).
Both run the same pass pipeline — 1q folding, diagonal merging, window
fusion — controlled by one frozen :class:`CompileOptions`.

With fusion disabled the compiler still runs: every gate lowers 1:1 to a
:class:`~repro.compile.ir.GateOp`, so consumers always execute the same IR
regardless of whether fusion is on. Stage boundaries are preserved by
construction — each stage's batch compiles independently and permutation
stages pass through untouched.

For staged compilation the densify predicate is derived from the layout:
a qubit set is densifiable when every qubit is either chunk-local or in
the stage's group (those are exactly the qubits with a position in the
group buffer). This module duck-types stages (``perm`` => permutation,
``group_qubits`` + ``gates`` => gate stage) instead of importing
:mod:`repro.pipeline`, keeping the compile layer import-cycle-free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .ir import CompiledGateStage, CompiledPlan, CompileReport, as_ops
from .passes import fold_1q_runs, fuse_windows, merge_diagonal_runs

__all__ = ["CompileOptions", "compile_gates", "compile_stage", "compile_stages"]


@dataclass(frozen=True)
class CompileOptions:
    """Knobs for the lowering passes.

    Attributes:
        fusion: master switch; off = 1:1 lowering (no gate is touched).
        max_fuse_qubits: widest dense unitary window fusion may build.
        max_diag_qubits: widest stored diagonal the merge pass may build
            (``2^k`` vector per merged diagonal; must be >= max_fuse_qubits
            so a cap-split diagonal run can never be densified past the
            window cap).
        fold_1q / merge_diagonals / fuse_window_runs: per-pass switches,
            mainly for tests and ablations.
    """

    fusion: bool = False
    max_fuse_qubits: int = 3
    max_diag_qubits: int = 8
    fold_1q: bool = True
    merge_diagonals: bool = True
    fuse_window_runs: bool = True

    def __post_init__(self) -> None:
        if self.max_fuse_qubits < 1:
            raise ValueError("max_fuse_qubits must be >= 1")
        if self.max_diag_qubits < self.max_fuse_qubits:
            raise ValueError(
                "max_diag_qubits must be >= max_fuse_qubits "
                f"({self.max_diag_qubits} < {self.max_fuse_qubits})")


DEFAULT_OPTIONS = CompileOptions()


def compile_gates(gates: Sequence[Any],
                  options: Optional[CompileOptions] = None,
                  can_densify=None) -> Tuple[List[Any], Dict[str, int]]:
    """Lower one gate batch to ops; returns ``(ops, pass stats)``."""
    opts = options if options is not None else DEFAULT_OPTIONS
    ops = as_ops(gates)
    stats: Dict[str, int] = {
        "gates_in": len(ops),
        "fused_1q": 0,
        "merged_diagonals": 0,
        "fused_windows": 0,
    }
    if opts.fusion:
        cd = can_densify if can_densify is not None else (lambda qs: True)
        if opts.fold_1q:
            ops = fold_1q_runs(ops, cd, stats)
        if opts.merge_diagonals:
            ops = merge_diagonal_runs(ops, opts.max_diag_qubits, stats)
        if opts.fuse_window_runs:
            ops = fuse_windows(ops, opts.max_fuse_qubits, cd, stats)
    stats["ops_out"] = len(ops)
    return ops, stats


def _is_permutation_stage(stage: Any) -> bool:
    return hasattr(stage, "perm")


def _is_gate_stage(stage: Any) -> bool:
    return hasattr(stage, "group_qubits") and hasattr(stage, "gates")


def compile_stage(stage: Any, layout: Any = None,
                  options: Optional[CompileOptions] = None,
                  ) -> Tuple[CompiledGateStage, Dict[str, int]]:
    """Lower one gate stage. ``layout`` derives the densify predicate."""
    if isinstance(stage, CompiledGateStage):
        return stage, {"gates_in": stage.source_gates,
                       "ops_out": len(stage.ops),
                       "fused_1q": 0, "merged_diagonals": 0,
                       "fused_windows": 0}
    cd = None
    if layout is not None:
        group = frozenset(stage.group_qubits)
        cd = lambda qs, _g=group, _lay=layout: all(
            _lay.is_local(q) or q in _g for q in qs)
    ops, stats = compile_gates(stage.gates, options, cd)
    return (CompiledGateStage(tuple(stage.group_qubits), tuple(ops),
                              source_gates=len(stage.gates)), stats)


def compile_stages(stages: Sequence[Any], layout: Any = None,
                   options: Optional[CompileOptions] = None,
                   telemetry: Any = None) -> CompiledPlan:
    """Lower a planner stage list into a :class:`CompiledPlan`.

    Gate stages compile independently (stage boundaries are execution
    barriers — fusion never crosses them); permutation stages and already-
    compiled stages pass through. When ``telemetry`` is enabled, records
    ``compile.gates_in`` / ``compile.ops_out`` counters, the
    ``compile.fusion_ratio`` gauge and one ``compile`` tracer span.
    """
    opts = options if options is not None else DEFAULT_OPTIONS
    t0 = time.perf_counter()
    report = CompileReport(fusion_enabled=opts.fusion,
                           max_fuse_qubits=opts.max_fuse_qubits)
    out: List[Any] = []
    for stage in stages:
        if _is_permutation_stage(stage) or not _is_gate_stage(stage):
            out.append(stage)
            continue
        cstage, stats = compile_stage(stage, layout, opts)
        out.append(cstage)
        report.num_gate_stages += 1
        report.gates_in += stats["gates_in"]
        report.ops_out += stats["ops_out"]
        report.fused_1q += stats["fused_1q"]
        report.merged_diagonals += stats["merged_diagonals"]
        report.fused_windows += stats["fused_windows"]
    report.seconds = time.perf_counter() - t0
    if telemetry is not None and getattr(telemetry, "enabled", False):
        m = telemetry.metrics
        m.counter("compile.gates_in").inc(report.gates_in)
        m.counter("compile.ops_out").inc(report.ops_out)
        m.gauge("compile.fusion_ratio").set(report.fusion_ratio)
        telemetry.tracer.record("compile", report.seconds,
                                gates_in=report.gates_in,
                                ops_out=report.ops_out,
                                fusion=opts.fusion,
                                stages=report.num_gate_stages)
    return CompiledPlan(out, report)
