"""The compile layer: lower staged gate batches into a fused op IR.

One lowered :class:`~repro.compile.ir.CompiledPlan` is consumed by every
amplitude-touching path — the device executor, the scheduler's CPU-offload
path, and (via :func:`~repro.compile.compiler.compile_gates`) the dense
baseline simulator — so gate fusion happens once, in one place, and every
backend executes the same ops.
"""

from .compiler import CompileOptions, compile_gates, compile_stage, compile_stages
from .ir import (
    CompiledGateStage,
    CompiledPlan,
    CompileReport,
    FusedOp,
    GateOp,
    as_ops,
)

__all__ = [
    "CompileOptions",
    "compile_gates",
    "compile_stage",
    "compile_stages",
    "GateOp",
    "FusedOp",
    "CompiledGateStage",
    "CompiledPlan",
    "CompileReport",
    "as_ops",
]
