"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — simulate a named workload (or an OpenQASM file) with MEMQSim
  and print the result report; optionally sample, save a checkpoint, or
  compare against the dense baseline.
* ``workloads`` — list the registered workload generators.
* ``compressors`` — list registered codecs, optionally evaluating them on
  a workload's state vector.
* ``plan`` — show the offline stage plan for a workload at a given layout.
* ``trace`` — run a workload with full telemetry and export the pipeline
  spans as a Chrome-trace / Perfetto JSON file plus a metrics snapshot.
* ``report`` — run a workload with telemetry + resource monitoring forced
  on and render a self-contained HTML run report (stage timeline, memory
  curve, compression table — no external assets, opens from ``file://``).
* ``memtrace`` — record a run's exact chunk access sequence and analyze
  its reuse: distance histogram, the exact LRU hit-rate-vs-capacity
  curve, and the Belady-optimal miss bound vs the live LRU cache.
* ``audit`` — plan-vs-actual verification: the access schedule predicted
  from the compiled plan must match the recorded one exactly, and the
  measured bytes must fall inside the predicted traffic envelope.
* ``top`` — live terminal dashboard for a running simulation: polls the
  ``/progress`` endpoint of a run started with ``--serve-metrics``.
* ``serve`` — persistent multi-tenant job daemon: accepts circuit
  submissions over HTTP/JSON, shares one device arena (admission control)
  and one compiled-plan cache across concurrent jobs.
* ``submit`` / ``jobs`` / ``result`` / ``cancel`` — client commands
  against a running daemon.

Examples::

    python -m repro run qft -n 14 --compressor szlike --error-bound 1e-6
    python -m repro run qft -n 16 --workers 4 --execution parallel
    python -m repro run qft -n 10 --trace-out qft.trace.json --json
    python -m repro run --qasm circuit.qasm --shots 1000
    python -m repro compressors --evaluate qft -n 12
    python -m repro plan grover -n 12 --chunk-qubits 6
    python -m repro trace qft -n 12 --trace-out qft.trace.json
    python -m repro report qft -n 12 -o qft.report.html
    python -m repro run qft -n 12 --mem-trace-out qft.access.jsonl
    python -m repro memtrace vqe -n 12 --device-mb 0.002 --cache-chunks 16
    python -m repro audit qft -n 12 --device-mb 0.002
    python -m repro run qft -n 15 --monitor --serve-metrics 9644 --live
    python -m repro top --port 9644
    python -m repro serve --port 9645 --device-mb 64 --max-jobs 4
    python -m repro submit qft -n 12 --port 9645 --tenant alice --wait
    python -m repro jobs --port 9645
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .analysis import Table, format_bytes, format_seconds
from .circuits import WORKLOADS, from_qasm, get_workload
from .compression import available_compressors, evaluate_compressor, get_compressor
from .core import MemQSim, MemQSimConfig
from .device import DeviceSpec
from .telemetry import NULL_TELEMETRY, Telemetry, configure_logging

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="MEMQSim: memory-efficient quantum state-vector simulation",
    )
    sub = p.add_subparsers(dest="command", required=True)

    runp = sub.add_parser("run", help="simulate a workload or QASM file")
    runp.add_argument("workload", nargs="?", help=f"one of {sorted(WORKLOADS)}")
    runp.add_argument("--qasm", help="OpenQASM 2.0 file to simulate instead")
    runp.add_argument("-n", "--qubits", type=int, default=12)
    runp.add_argument("--compressor", default="szlike",
                      help="codec name (see `compressors`)")
    runp.add_argument("--error-bound", type=float, default=1e-6)
    runp.add_argument("--chunk-qubits", type=int, default=0, help="0 = auto")
    runp.add_argument("--autotune", action="store_true",
                      help="probe chunk sizes on a circuit prefix first")
    runp.add_argument("--transfer", default="sync",
                      choices=["sync", "async", "buffer"])
    runp.add_argument("--device-mb", type=float, default=256.0,
                      help="simulated device memory (MiB)")
    runp.add_argument("--offload", type=float, default=0.0,
                      help="CPU offload fraction [0,1]")
    runp.add_argument("--fuse", action="store_true",
                      help="deprecated alias for --fusion")
    _add_fusion_args(runp)
    _add_precision_arg(runp)
    runp.add_argument("--cache-chunks", type=int, default=0,
                      help="decompressed-chunk cache capacity (0 = off)")
    runp.add_argument("--cache-policy", default="mru",
                      choices=["lru", "mru", "belady"],
                      help="eviction policy; belady evicts by the compiled "
                           "plan's farthest next use")
    runp.add_argument("--store", default="memory",
                      choices=["memory", "disk", "tiered"],
                      help="compressed-blob tier: all-RAM, all-disk, or "
                           "RAM-under-budget with plan-coldest spill")
    runp.add_argument("--disk-path", metavar="FILE",
                      help="append-log path for disk/tiered stores "
                           "(default: a temp file)")
    runp.add_argument("--host-store-mb", type=float, default=0.0,
                      help="RAM budget (MiB) for compressed blobs; > 0 "
                           "upgrades the memory store to tiered")
    runp.add_argument("--devices", type=int, default=1,
                      help="simulated device count")
    _add_parallel_args(runp)
    runp.add_argument("--shots", type=int, default=0, help="sample this many shots")
    runp.add_argument("--seed", type=int, default=None)
    runp.add_argument("--save-state", help="write a compressed checkpoint here")
    runp.add_argument("--checkpoint", help="resume from this checkpoint")
    runp.add_argument("--compare-dense", action="store_true",
                      help="also run the dense baseline and report fidelity")
    runp.add_argument("--state-digest", action="store_true",
                      help="print a sha256 over the final state's chunk "
                           "stream (bit-identity fingerprint; also lands "
                           "in --json output)")
    _add_telemetry_args(runp)
    runp.add_argument("--mem-trace-out", metavar="FILE",
                      help="record the exact per-chunk access sequence and "
                           "write it as JSONL (analyze with `repro "
                           "memtrace`)")
    runp.add_argument("--json", nargs="?", const="-", default=None,
                      metavar="FILE",
                      help="emit the full result as JSON (to FILE, or to "
                           "stdout instead of the report when no FILE given)")

    sub.add_parser("workloads", help="list workload generators")

    comp = sub.add_parser("compressors", help="list / evaluate codecs")
    comp.add_argument("--evaluate", metavar="WORKLOAD",
                      help="evaluate all codecs on this workload's state")
    comp.add_argument("-n", "--qubits", type=int, default=12)

    planp = sub.add_parser("plan", help="show the offline stage plan")
    planp.add_argument("workload")
    planp.add_argument("-n", "--qubits", type=int, default=12)
    planp.add_argument("--chunk-qubits", type=int, default=6)
    planp.add_argument("--max-group", type=int, default=2)

    tracep = sub.add_parser(
        "trace", help="run a workload with full telemetry and export a trace")
    tracep.add_argument("workload", help=f"one of {sorted(WORKLOADS)}")
    tracep.add_argument("-n", "--qubits", type=int, default=12)
    tracep.add_argument("--compressor", default="szlike")
    tracep.add_argument("--error-bound", type=float, default=1e-6)
    tracep.add_argument("--chunk-qubits", type=int, default=0, help="0 = auto")
    tracep.add_argument("--transfer", default="sync",
                        choices=["sync", "async", "buffer"])
    tracep.add_argument("--cache-chunks", type=int, default=0)
    tracep.add_argument("--offload", type=float, default=0.0)
    tracep.add_argument("--device-mb", type=float, default=256.0)
    _add_fusion_args(tracep)
    _add_precision_arg(tracep)
    _add_parallel_args(tracep)
    _add_telemetry_args(tracep)
    tracep.add_argument("--top", type=int, default=10,
                        help="rows in the printed span summary")

    repp = sub.add_parser(
        "report",
        help="run a workload and render a self-contained HTML run report")
    repp.add_argument("workload", help=f"one of {sorted(WORKLOADS)}")
    repp.add_argument("-n", "--qubits", type=int, default=12)
    repp.add_argument("--compressor", default="szlike")
    repp.add_argument("--error-bound", type=float, default=1e-6)
    repp.add_argument("--chunk-qubits", type=int, default=0, help="0 = auto")
    repp.add_argument("--transfer", default="sync",
                      choices=["sync", "async", "buffer"])
    repp.add_argument("--cache-chunks", type=int, default=0)
    repp.add_argument("--offload", type=float, default=0.0)
    repp.add_argument("--device-mb", type=float, default=256.0)
    _add_precision_arg(repp)
    _add_parallel_args(repp)
    repp.add_argument("--monitor-interval", type=float, default=5.0,
                      metavar="MS",
                      help="resource sampling period (default 5; the "
                           "monitor is always on for reports)")
    repp.add_argument("-o", "--out", metavar="FILE",
                      help="output path (default <workload>.report.html)")
    repp.add_argument("--title", help="report title")

    mtp = sub.add_parser(
        "memtrace",
        help="record a run's chunk access trace and analyze its reuse: "
             "distance histogram, hit-rate-vs-capacity curve, and the "
             "Belady-optimal miss bound vs the live LRU cache")
    mtp.add_argument("workload", help=f"one of {sorted(WORKLOADS)}")
    mtp.add_argument("-n", "--qubits", type=int, default=12)
    mtp.add_argument("--compressor", default="szlike")
    mtp.add_argument("--error-bound", type=float, default=1e-6)
    mtp.add_argument("--chunk-qubits", type=int, default=0, help="0 = auto")
    mtp.add_argument("--cache-chunks", type=int, default=4, metavar="C",
                     help="chunk-cache capacity to run with (the "
                          "analysis then sweeps every capacity)")
    mtp.add_argument("--device-mb", type=float, default=256.0,
                     help="device arena size; small values force "
                          "multi-stage streaming (more chunk reuse)")
    mtp.add_argument("--serpentine", action=argparse.BooleanOptionalAction,
                     default=True)
    mtp.add_argument("--policy", default="lru",
                     choices=["lru", "mru", "belady"],
                     help="eviction policy to run live and replay offline "
                          "(the live cache must match miss-for-miss)")
    mtp.add_argument("--trace-in", metavar="FILE",
                     help="analyze a trace recorded earlier with "
                          "`run --mem-trace-out` instead of running")
    mtp.add_argument("--json", action="store_true",
                     help="print the analysis as JSON")

    audp = sub.add_parser(
        "audit",
        help="verify a run against its compiled plan: predicted access "
             "schedule must match the recorded one exactly, and measured "
             "bytes must fall inside the predicted traffic envelope")
    audp.add_argument("workload", help=f"one of {sorted(WORKLOADS)}")
    audp.add_argument("-n", "--qubits", type=int, default=12)
    audp.add_argument("--compressor", default="szlike")
    audp.add_argument("--error-bound", type=float, default=1e-6)
    audp.add_argument("--chunk-qubits", type=int, default=0, help="0 = auto")
    _add_precision_arg(audp)
    audp.add_argument("--device-mb", type=float, default=256.0,
                      help="device arena size; small values force "
                           "multi-stage streaming")
    audp.add_argument("--host-store-mb", type=float, default=0.0,
                      help="audit against the tiered store with this RAM "
                           "blob budget (0 = plain memory store)")
    audp.add_argument("--serpentine", action=argparse.BooleanOptionalAction,
                      default=True)
    audp.add_argument("--ratio-slack", type=float, default=1.25,
                      help="compressed-bytes envelope: compressed <= "
                           "slack * raw (default 1.25)")
    audp.add_argument("--json", action="store_true",
                      help="print the audit report as JSON")
    audp.add_argument("--perturb", action="store_true",
                      help=argparse.SUPPRESS)  # CI: corrupt the measured
    # trace before comparing, to prove the audit actually fails on drift

    topp = sub.add_parser(
        "top",
        help="live dashboard for a running simulation (polls /progress of "
             "a run started with --serve-metrics)")
    topp.add_argument("--url", default=None, metavar="URL",
                      help="telemetry server base URL "
                           "(default http://127.0.0.1:9644)")
    topp.add_argument("--port", type=int, default=None,
                      help="shorthand for --url http://127.0.0.1:PORT")
    topp.add_argument("--interval", type=float, default=1.0, metavar="S",
                      help="poll period in seconds (default 1)")
    topp.add_argument("--once", action="store_true",
                      help="render one frame and exit (scripting/tests)")

    servep = sub.add_parser(
        "serve",
        help="run the persistent multi-tenant job daemon (HTTP/JSON API)")
    servep.add_argument("--port", type=int, default=None,
                        help="listen port (default 9645; 0 = ephemeral, "
                             "printed at startup)")
    servep.add_argument("--host", default="127.0.0.1")
    servep.add_argument("--device-mb", type=float, default=256.0,
                        help="shared device arena capacity (MiB)")
    servep.add_argument("--compressor", default="szlike",
                        help="base codec for submissions (overridable "
                             "per job)")
    servep.add_argument("--error-bound", type=float, default=1e-6)
    servep.add_argument("--chunk-qubits", type=int, default=0,
                        help="base chunk size (0 = auto; overridable "
                             "per job)")
    servep.add_argument("--workers", type=int, default=1, metavar="N",
                        help="daemon codec workers; >1 builds one shared "
                             "worker pool reused by matching jobs")
    servep.add_argument("--execution", default="auto",
                        choices=["serial", "parallel", "auto"])
    servep.add_argument("--max-jobs", type=int, default=4,
                        help="cap on simultaneously running jobs")
    servep.add_argument("--plan-cache", type=int, default=64, metavar="N",
                        help="compiled plans kept resident")
    servep.add_argument("--events-dir", metavar="DIR",
                        help="flush each finished job's event tail to "
                             "DIR/<job_id>.events.jsonl")
    servep.add_argument("--log-level", default=None,
                        choices=["debug", "info", "warning", "error",
                                 "critical"],
                        type=str.lower, metavar="LEVEL")

    subp = sub.add_parser("submit", help="submit a job to a daemon")
    subp.add_argument("workload", nargs="?",
                      help=f"one of {sorted(WORKLOADS)}")
    subp.add_argument("--qasm", help="OpenQASM 2.0 file to submit instead")
    subp.add_argument("-n", "--qubits", type=int, default=12)
    subp.add_argument("--tenant", default="default",
                      help="fairness domain for arbitration")
    subp.add_argument("--shots", type=int, default=0)
    subp.add_argument("--seed", type=int, default=None)
    subp.add_argument("--compressor", default=None)
    subp.add_argument("--error-bound", type=float, default=None)
    subp.add_argument("--chunk-qubits", type=int, default=None)
    subp.add_argument("--execution", default=None,
                      choices=["serial", "parallel", "auto"])
    subp.add_argument("--workers", type=int, default=None)
    subp.add_argument("--fusion", action="store_true", default=False)
    subp.add_argument("--wait", action="store_true",
                      help="block until the job finishes and print the "
                           "result document")
    subp.add_argument("--timeout", type=float, default=300.0,
                      help="--wait deadline in seconds")
    _add_serve_url_args(subp)

    jobsp = sub.add_parser("jobs", help="list a daemon's jobs")
    _add_serve_url_args(jobsp)

    resp = sub.add_parser("result", help="fetch a finished job's result")
    resp.add_argument("job_id")
    _add_serve_url_args(resp)

    canp = sub.add_parser("cancel", help="cancel a queued or running job")
    canp.add_argument("job_id")
    _add_serve_url_args(canp)
    return p


def _add_serve_url_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--url", default=None, metavar="URL",
                   help="daemon base URL (default http://127.0.0.1:9645)")
    p.add_argument("--port", type=int, default=None,
                   help="shorthand for --url http://127.0.0.1:PORT")


def _serve_url(args) -> str:
    from .serve import DEFAULT_PORT

    if args.url and args.port is not None:
        raise SystemExit("pass --url or --port, not both")
    return args.url or f"http://127.0.0.1:{args.port or DEFAULT_PORT}"


def _add_precision_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--precision", default="c128",
                   choices=["c128", "c64", "mixed", "auto"],
                   help="amplitude precision: complex128 (default), "
                        "complex64 (half the bytes on every tier edge), "
                        "mixed (c64 at rest, c128 kernel accumulation), or "
                        "auto (resolve empirically from the bench corpus / "
                        "a micro-probe)")


def _add_fusion_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--fusion", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="run the gate-fusion compile passes (1q folding, "
                        "diagonal merging, window fusion) when lowering "
                        "the plan")
    p.add_argument("--max-fuse-qubits", type=int, default=3, metavar="K",
                   help="widest dense unitary window fusion may build "
                        "(default 3)")


def _fusion_enabled(args) -> bool:
    return bool(getattr(args, "fusion", False) or getattr(args, "fuse", False))


def _add_parallel_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="codec worker processes (1 = serial, 0 = auto: "
                        "fan out only when cores and codec cost justify it)")
    p.add_argument("--execution", default="auto",
                   choices=["serial", "parallel", "auto"],
                   help="stage engine (auto = parallel iff workers > 1)")
    p.add_argument("--serpentine", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="alternate group sweep direction per stage "
                        "(boustrophedon chunk locality)")


def _add_telemetry_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--monitor", action="store_true",
                   help="sample RSS / device-arena / cache / codec gauges "
                        "on a background thread; the time-series lands in "
                        "the trace (counter tracks) and the result JSON "
                        "(resource_timeline)")
    p.add_argument("--monitor-interval", type=float, default=20.0,
                   metavar="MS", help="monitor sampling period (default 20)")
    p.add_argument("--trace-out", metavar="FILE",
                   help="write the run's spans as Chrome-trace JSON "
                        "(open at ui.perfetto.dev)")
    p.add_argument("--jsonl-out", metavar="FILE",
                   help="write the run's spans as JSONL (one span per line)")
    p.add_argument("--metrics-out", metavar="FILE",
                   help="write the metrics snapshot as JSON")
    p.add_argument("--log-level", default=None,
                   choices=["debug", "info", "warning", "error", "critical"],
                   type=str.lower, metavar="LEVEL",
                   help="enable repro.* logging at this level "
                        "(debug/info/warning/error/critical)")
    p.add_argument("--serve-metrics", type=int, default=None, metavar="PORT",
                   help="serve /metrics (Prometheus), /progress (JSON) and "
                        "/events (SSE) on this port for the run's duration "
                        "(0 = ephemeral port, printed at startup)")
    p.add_argument("--live", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="render a live ANSI dashboard (progress bar, ETA, "
                        "resource sparklines, event tail) during the run")
    p.add_argument("--events-out", metavar="FILE",
                   help="write the run's retained bus events as JSONL")


def _load_circuit(args):
    if args.qasm:
        with open(args.qasm) as fh:
            return from_qasm(fh.read())
    if not args.workload:
        raise SystemExit("run: provide a workload name or --qasm FILE")
    return get_workload(args.workload, args.qubits)


def _telemetry_from_args(args, force: bool = False) -> Telemetry:
    """Build the run's telemetry: enabled iff any export was requested."""
    # Fail on unwritable output locations *before* the simulation runs,
    # not after minutes of work.
    for path in (args.trace_out, args.jsonl_out, args.metrics_out,
                 getattr(args, "events_out", None),
                 getattr(args, "mem_trace_out", None),
                 getattr(args, "json", None)):
        if path and path != "-":
            parent = os.path.dirname(os.path.abspath(path))
            if not os.path.isdir(parent):
                raise SystemExit(
                    f"error: output directory does not exist: {parent}")
    if args.log_level:
        configure_logging(args.log_level)
    want = force or bool(args.trace_out or args.jsonl_out or args.metrics_out
                         or getattr(args, "monitor", False)
                         or getattr(args, "serve_metrics", None) is not None
                         or getattr(args, "live", False)
                         or getattr(args, "events_out", None)
                         or getattr(args, "mem_trace_out", None))
    return Telemetry() if want else NULL_TELEMETRY


def _monitor_ms(args) -> float:
    """The config's ``monitor_interval_ms`` for these CLI args (0 = off)."""
    if not getattr(args, "monitor", False):
        return 0.0
    if args.monitor_interval <= 0:
        raise SystemExit("error: --monitor-interval must be > 0")
    return args.monitor_interval


def _export_telemetry(tel: Telemetry, args) -> None:
    if args.trace_out:
        nb = tel.tracer.write_chrome_trace(args.trace_out)
        print(f"trace written: {args.trace_out} "
              f"({len(tel.tracer)} spans, {format_bytes(nb)})")
    if args.jsonl_out:
        n = tel.tracer.write_jsonl(args.jsonl_out)
        print(f"span JSONL written: {args.jsonl_out} ({n} lines)")
    if args.metrics_out:
        nb = tel.metrics.write_json(args.metrics_out)
        print(f"metrics written: {args.metrics_out} ({format_bytes(nb)})")
    if getattr(args, "events_out", None):
        n = tel.bus.write_jsonl(args.events_out)
        dropped = tel.bus.dropped
        note = f", {dropped} older dropped by the ring" if dropped else ""
        print(f"event JSONL written: {args.events_out} ({n} events{note})")
    if getattr(args, "mem_trace_out", None) and tel.access.enabled:
        n = tel.access.write_jsonl(args.mem_trace_out)
        print(f"access trace written: {args.mem_trace_out} ({n} accesses)")


def _validate_cache_chunks(value: int, minimum: int = 0) -> int:
    """The one cache-capacity validator every command shares.

    ``minimum`` is 0 where the cache is optional (``run``/``trace``) and
    1 where the command is meaningless without one (``memtrace``); the
    error text is identical either way — no silent clamping.
    """
    if value < minimum:
        raise SystemExit(
            f"--cache-chunks must be >= {minimum}, got {value}")
    return value


def _cmd_run(args) -> int:
    circuit = _load_circuit(args)
    tel = _telemetry_from_args(args)
    if args.mem_trace_out:
        from .telemetry import ChunkAccessRecorder

        tel.access = ChunkAccessRecorder()
    opts = {}
    if args.compressor in ("szlike", "adaptive"):
        opts["error_bound"] = args.error_bound
    cfg = MemQSimConfig(
        chunk_qubits=args.chunk_qubits,
        compressor=args.compressor,
        compressor_options=opts,
        transfer=args.transfer,
        device=DeviceSpec(memory_bytes=int(args.device_mb * (1 << 20))),
        cpu_offload_fraction=args.offload,
        fuse_gates=_fusion_enabled(args),
        max_fuse_qubits=args.max_fuse_qubits,
        precision=args.precision,
        cache_chunks=_validate_cache_chunks(args.cache_chunks),
        cache_policy=args.cache_policy,
        store=args.store,
        disk_path=args.disk_path,
        host_store_mb=args.host_store_mb,
        num_devices=args.devices,
        workers=args.workers,
        execution=args.execution,
        serpentine_groups=args.serpentine,
        monitor_interval_ms=_monitor_ms(args),
    )
    if args.autotune:
        from .pipeline import autotune_chunk_qubits

        rep = autotune_chunk_qubits(circuit, cfg)
        print("autotune probe:")
        print(rep.table())
        cfg = cfg.with_updates(chunk_qubits=rep.best_chunk_qubits)
    json_stdout = args.json == "-"
    server = dashboard = None
    if args.serve_metrics is not None:
        from .telemetry.live import TelemetryServer

        server = TelemetryServer(tel, port=args.serve_metrics).start()
        if not json_stdout:
            print(f"telemetry server: {server.url} "
                  "(/metrics /progress /events)")
    if args.live:
        from .telemetry.dashboard import LiveDashboard

        dashboard = LiveDashboard(tel).start()
    try:
        res = MemQSim(cfg, telemetry=tel).run(circuit,
                                              checkpoint=args.checkpoint)
        if dashboard is not None:
            dashboard.stop()  # final frame shows exactly 100%
            dashboard = None
        payload = res.to_dict() if args.json else None

        counts = fidelity = None
        digest = res.state_digest() if args.state_digest else None
        if args.shots:
            counts = res.sample(args.shots, seed=args.seed)
        if args.compare_dense and circuit.num_qubits <= 20:
            from .statevector import DenseSimulator

            ref = DenseSimulator().run(circuit)
            fidelity = res.fidelity_vs(ref.data)
        if payload is not None:
            if counts is not None:
                payload["counts"] = counts
            if fidelity is not None:
                payload["fidelity_vs_dense"] = fidelity
            if digest is not None:
                payload["state_digest"] = digest

        if not json_stdout:
            print(res.report())
            if digest is not None:
                print(f"\nstate digest: {digest}")
            if counts is not None:
                top = sorted(counts.items(), key=lambda kv: -kv[1])[:8]
                print("\ntop outcomes:")
                for bits, cnt in top:
                    print(f"  |{bits}>  {cnt}")
            if args.compare_dense:
                if fidelity is None:
                    print("\n(dense comparison skipped: too many qubits)")
                else:
                    print(f"\nfidelity vs dense: {fidelity:.12f}")
            if args.json:
                with open(args.json, "w") as fh:
                    json.dump(payload, fh, indent=2)
                print(f"result JSON written: {args.json}")
            _export_telemetry(tel, args)
        if args.save_state:
            nb = res.save_state(args.save_state)
            if not json_stdout:
                print(f"\ncheckpoint written: {args.save_state} "
                      f"({format_bytes(nb)})")
        if json_stdout:
            # Exports still happen, but only the JSON document reaches
            # stdout.
            import contextlib
            import io

            with contextlib.redirect_stdout(io.StringIO()):
                _export_telemetry(tel, args)
            print(json.dumps(payload, indent=2))
        return 0
    finally:
        # The server outlives the simulation through reporting, so late
        # pollers observe the finished (fraction == 1.0) progress state.
        if dashboard is not None:
            dashboard.stop()
        if server is not None:
            server.stop()


def _cmd_workloads(_args) -> int:
    t = Table(["name", "example (n=8)"], title="registered workloads")
    for name in sorted(WORKLOADS):
        c = get_workload(name, 8)
        t.add(name, f"{len(c)} gates, depth {c.depth()}")
    print(t.render())
    return 0


def _cmd_compressors(args) -> int:
    if not args.evaluate:
        t = Table(["name", "kind"], title="registered compressors")
        for name in available_compressors():
            comp = get_compressor(name)
            t.add(name, "lossy" if comp.is_lossy else "lossless")
        print(t.render())
        return 0
    from .statevector import DenseSimulator

    sv = DenseSimulator().run(get_workload(args.evaluate, args.qubits)).data
    t = Table(["codec", "ratio", "max err", "compress", "decompress"],
              title=f"codecs on {args.evaluate} (n={args.qubits})")
    for name in available_compressors():
        rep = evaluate_compressor(get_compressor(name), sv)
        t.add(rep.compressor, f"{rep.ratio:.1f}x", f"{rep.max_error:.1e}",
              format_seconds(rep.compress_seconds),
              format_seconds(rep.decompress_seconds))
    print(t.render())
    return 0


def _cmd_plan(args) -> int:
    from .memory import ChunkLayout
    from .pipeline import describe_plan, plan_stages

    circuit = get_workload(args.workload, args.qubits)
    layout = ChunkLayout(args.qubits, args.chunk_qubits)
    stages = plan_stages(circuit, layout, args.max_group)
    rep = describe_plan(stages, layout)
    print(f"{args.workload} n={args.qubits}: {rep.gates_total} gates -> "
          f"{rep.num_stages} stages ({rep.num_local_stages} local, "
          f"{rep.num_permutation_stages} permutation), "
          f"{rep.group_passes} group passes")
    for i, s in enumerate(stages[:30]):
        print(f"  {i:>3}: {s!r}")
    if len(stages) > 30:
        print(f"  ... {len(stages) - 30} more stages")
    return 0


def _cmd_trace(args) -> int:
    """Run a workload with telemetry forced on and export the trace."""
    if not args.trace_out and not args.jsonl_out:
        args.trace_out = f"{args.workload}.trace.json"
    tel = _telemetry_from_args(args, force=True)
    opts = {}
    if args.compressor in ("szlike", "adaptive"):
        opts["error_bound"] = args.error_bound
    cfg = MemQSimConfig(
        chunk_qubits=args.chunk_qubits,
        compressor=args.compressor,
        compressor_options=opts,
        transfer=args.transfer,
        device=DeviceSpec(memory_bytes=int(args.device_mb * (1 << 20))),
        cpu_offload_fraction=args.offload,
        fuse_gates=_fusion_enabled(args),
        max_fuse_qubits=args.max_fuse_qubits,
        precision=args.precision,
        cache_chunks=_validate_cache_chunks(args.cache_chunks),
        workers=args.workers,
        execution=args.execution,
        serpentine_groups=args.serpentine,
        monitor_interval_ms=_monitor_ms(args),
    )
    circuit = get_workload(args.workload, args.qubits)
    res = MemQSim(cfg, telemetry=tel).run(circuit)
    print(res.report())
    print("\nwhere the time went (per span name):")
    print(tel.tracer.summary(top=args.top))
    print()
    _export_telemetry(tel, args)
    if args.trace_out:
        print("open it at https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_report(args) -> int:
    """Run a workload (monitor forced on) and write the HTML run report."""
    from .analysis.htmlreport import write_html

    if args.monitor_interval <= 0:
        raise SystemExit("error: --monitor-interval must be > 0")
    out = args.out or f"{args.workload}.report.html"
    parent = os.path.dirname(os.path.abspath(out))
    if not os.path.isdir(parent):
        raise SystemExit(f"error: output directory does not exist: {parent}")
    opts = {}
    if args.compressor in ("szlike", "adaptive"):
        opts["error_bound"] = args.error_bound
    cfg = MemQSimConfig(
        chunk_qubits=args.chunk_qubits,
        compressor=args.compressor,
        compressor_options=opts,
        transfer=args.transfer,
        device=DeviceSpec(memory_bytes=int(args.device_mb * (1 << 20))),
        cpu_offload_fraction=args.offload,
        precision=args.precision,
        cache_chunks=_validate_cache_chunks(args.cache_chunks),
        workers=args.workers,
        execution=args.execution,
        serpentine_groups=args.serpentine,
        monitor_interval_ms=args.monitor_interval,
    )
    circuit = get_workload(args.workload, args.qubits)
    from .telemetry import ChunkAccessRecorder

    tel = Telemetry()
    tel.access = ChunkAccessRecorder()  # feeds the cache what-if section
    res = MemQSim(cfg, telemetry=tel).run(circuit)
    title = args.title or (f"MEMQSim: {args.workload} n={args.qubits} "
                           f"({args.compressor})")
    nb = write_html(res, out, title=title)
    print(res.report())
    print(f"\nHTML report written: {out} ({format_bytes(nb)})")
    return 0


def _cmd_memtrace(args) -> int:
    """Record (or load) an access trace and analyze its reuse behaviour."""
    from .analysis.memtrace import analyze_trace
    from .telemetry import ChunkAccessRecorder

    measured = None
    capacity = _validate_cache_chunks(args.cache_chunks, minimum=1)
    if args.trace_in:
        trace = ChunkAccessRecorder.read_jsonl(args.trace_in)
        if not trace:
            raise SystemExit(f"memtrace: {args.trace_in} holds no accesses")
    else:
        tel = Telemetry()
        rec = ChunkAccessRecorder()
        tel.access = rec
        opts = {}
        if args.compressor in ("szlike", "adaptive"):
            opts["error_bound"] = args.error_bound
        cfg = MemQSimConfig(
            chunk_qubits=args.chunk_qubits,
            compressor=args.compressor,
            compressor_options=opts,
            device=DeviceSpec(memory_bytes=int(args.device_mb * (1 << 20))),
            cache_chunks=capacity,
            cache_policy=args.policy,  # the policy the analysis replays
            execution="serial",
            serpentine_groups=args.serpentine,
        )
        res = MemQSim(cfg, telemetry=tel).run(
            get_workload(args.workload, args.qubits))
        trace = rec.trace()
        stats = getattr(res.store, "cache_stats", None)
        if stats is not None:
            measured = stats.misses
    report = analyze_trace(trace, capacity, policy=args.policy,
                           measured_misses=measured)
    if measured is not None and measured != report.policy_misses:
        # The offline replay IS the live cache's contract; a divergence
        # means one of them drifted — fail loudly, never fudge.
        raise SystemExit(
            f"memtrace: live {args.policy} cache took {measured} misses "
            f"but the trace replay computed {report.policy_misses}")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0


def _cmd_audit(args) -> int:
    """Run under the audit contract and verify plan-vs-actual behaviour."""
    from .analysis.audit import audit_run
    from .telemetry import ChunkAccessRecorder

    tel = Telemetry()
    rec = ChunkAccessRecorder()
    tel.access = rec

    class _CapturePlanCache:
        """Plan-cache shim that exposes the compiled plan to the audit."""

        plan = None

        def lookup(self, key):
            return None

        def store(self, key, value):
            self.plan = value

    cap = _CapturePlanCache()
    opts = {}
    if args.compressor in ("szlike", "adaptive"):
        opts["error_bound"] = args.error_bound
    # The audit contract: serial engine, no chunk cache, no CPU offload —
    # the deterministic edges are only exact when every group takes the
    # device path and every load reaches the codec.
    cfg = MemQSimConfig(
        chunk_qubits=args.chunk_qubits,
        compressor=args.compressor,
        compressor_options=opts,
        device=DeviceSpec(memory_bytes=int(args.device_mb * (1 << 20))),
        precision=args.precision,
        cache_chunks=0,
        cpu_offload_fraction=0.0,
        execution="serial",
        serpentine_groups=args.serpentine,
        host_store_mb=args.host_store_mb,
    )
    res = MemQSim(cfg, telemetry=tel, plan_cache=cap).run(
        get_workload(args.workload, args.qubits))
    if cap.plan is None:
        raise SystemExit("audit: compiled plan was not captured")
    _plan, cplan = cap.plan
    trace = rec.trace()
    if args.perturb and len(trace) >= 2:
        trace[0], trace[-1] = trace[-1], trace[0]
    report = audit_run(cplan.stages, res.store.layout, trace, tel.traffic,
                       serpentine=args.serpentine,
                       ratio_slack=args.ratio_slack)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_top(args) -> int:
    """Attach the remote dashboard to a --serve-metrics run."""
    from .telemetry.dashboard import top
    from .telemetry.live import DEFAULT_PORT

    if args.url and args.port is not None:
        raise SystemExit("top: pass --url or --port, not both")
    url = args.url or f"http://127.0.0.1:{args.port or DEFAULT_PORT}"
    try:
        return top(url, interval=args.interval, once=args.once)
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_serve(args) -> int:
    """Run the job daemon until SIGTERM/SIGINT, then drain gracefully."""
    import signal
    import threading

    from .serve import DEFAULT_PORT, ServeManager, ServeServer

    if args.log_level:
        configure_logging(args.log_level)
    opts = {}
    if args.compressor in ("szlike", "adaptive"):
        opts["error_bound"] = args.error_bound
    base = MemQSimConfig(
        chunk_qubits=args.chunk_qubits,
        compressor=args.compressor,
        compressor_options=opts,
        device=DeviceSpec(memory_bytes=int(args.device_mb * (1 << 20))),
        workers=args.workers,
        execution=args.execution,
    )
    manager = ServeManager(base, Telemetry(), max_jobs=args.max_jobs,
                           plan_cache_capacity=args.plan_cache,
                           events_dir=args.events_dir)
    port = DEFAULT_PORT if args.port is None else args.port
    server = ServeServer(manager, port=port, host=args.host).start()
    print(f"serve: listening on {server.url} "
          f"(device {args.device_mb:g}MiB, max {args.max_jobs} jobs)",
          flush=True)

    stop = threading.Event()

    def _signal(signum, _frame):
        print(f"serve: caught signal {signum}, draining "
              "(running jobs stop at the next group-pass boundary)",
              flush=True)
        stop.set()

    signal.signal(signal.SIGTERM, _signal)
    signal.signal(signal.SIGINT, _signal)
    try:
        stop.wait()
    finally:
        manager.shutdown()
        server.stop()
        stats = manager.stats()["jobs"]
        served = stats.get("done", 0)
        print(f"serve: shutdown complete ({served} jobs completed, "
              f"{stats.get('cancelled', 0)} cancelled)", flush=True)
    return 0


def _cmd_submit(args) -> int:
    from .serve import ServeClient

    payload = {"tenant": args.tenant, "shots": args.shots}
    if args.seed is not None:
        payload["seed"] = args.seed
    if args.qasm:
        with open(args.qasm) as fh:
            payload["qasm"] = fh.read()
    elif args.workload:
        payload["workload"] = args.workload
        payload["qubits"] = args.qubits
    else:
        raise SystemExit("submit: provide a workload name or --qasm FILE")
    config = {}
    for key in ("compressor", "error_bound", "chunk_qubits", "execution",
                "workers"):
        value = getattr(args, key)
        if value is not None:
            config[key] = value
    if args.fusion:
        config["fusion"] = True
    if config:
        payload["config"] = config
    client = ServeClient(_serve_url(args))
    job = client.submit(payload)
    if not args.wait:
        print(json.dumps({"job": job}, indent=2))
        return 0
    snap = client.wait(job["id"], timeout=args.timeout)
    if snap["state"] == "done":
        print(json.dumps(client.result(job["id"]), indent=2))
        return 0
    print(json.dumps({"job": snap}, indent=2))
    return 1


def _cmd_jobs(args) -> int:
    from .serve import ServeClient

    jobs = ServeClient(_serve_url(args)).jobs()
    t = Table(["id", "tenant", "state", "circuit", "n", "progress"],
              title="daemon jobs")
    for j in jobs:
        frac = j.get("progress", {}).get("fraction")
        t.add(j["id"], j["tenant"], j["state"],
              j["circuit"]["name"] or "qasm", j["circuit"]["num_qubits"],
              f"{frac * 100:.1f}%" if isinstance(frac, float) else "-")
    print(t.render())
    return 0


def _cmd_result(args) -> int:
    from .serve import ServeAPIError, ServeClient

    try:
        print(json.dumps(ServeClient(_serve_url(args)).result(args.job_id),
                         indent=2))
        return 0
    except ServeAPIError as exc:
        print(f"result: {exc}", file=sys.stderr)
        return 1


def _cmd_cancel(args) -> int:
    from .serve import ServeAPIError, ServeClient

    try:
        job = ServeClient(_serve_url(args)).cancel(args.job_id)
        print(json.dumps({"job": job}, indent=2))
        return 0
    except ServeAPIError as exc:
        print(f"cancel: {exc}", file=sys.stderr)
        return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "workloads": _cmd_workloads,
        "compressors": _cmd_compressors,
        "plan": _cmd_plan,
        "trace": _cmd_trace,
        "report": _cmd_report,
        "memtrace": _cmd_memtrace,
        "audit": _cmd_audit,
        "top": _cmd_top,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "result": _cmd_result,
        "cancel": _cmd_cancel,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # stdout consumer (head, less) closed the pipe — normal exit.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
