"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — simulate a named workload (or an OpenQASM file) with MEMQSim
  and print the result report; optionally sample, save a checkpoint, or
  compare against the dense baseline.
* ``workloads`` — list the registered workload generators.
* ``compressors`` — list registered codecs, optionally evaluating them on
  a workload's state vector.
* ``plan`` — show the offline stage plan for a workload at a given layout.

Examples::

    python -m repro run qft -n 14 --compressor szlike --error-bound 1e-6
    python -m repro run --qasm circuit.qasm --shots 1000
    python -m repro compressors --evaluate qft -n 12
    python -m repro plan grover -n 12 --chunk-qubits 6
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import Table, format_bytes, format_seconds
from .circuits import WORKLOADS, from_qasm, get_workload
from .compression import available_compressors, evaluate_compressor, get_compressor
from .core import MemQSim, MemQSimConfig
from .device import DeviceSpec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="MEMQSim: memory-efficient quantum state-vector simulation",
    )
    sub = p.add_subparsers(dest="command", required=True)

    runp = sub.add_parser("run", help="simulate a workload or QASM file")
    runp.add_argument("workload", nargs="?", help=f"one of {sorted(WORKLOADS)}")
    runp.add_argument("--qasm", help="OpenQASM 2.0 file to simulate instead")
    runp.add_argument("-n", "--qubits", type=int, default=12)
    runp.add_argument("--compressor", default="szlike",
                      help="codec name (see `compressors`)")
    runp.add_argument("--error-bound", type=float, default=1e-6)
    runp.add_argument("--chunk-qubits", type=int, default=0, help="0 = auto")
    runp.add_argument("--autotune", action="store_true",
                      help="probe chunk sizes on a circuit prefix first")
    runp.add_argument("--transfer", default="sync",
                      choices=["sync", "async", "buffer"])
    runp.add_argument("--device-mb", type=float, default=256.0,
                      help="simulated device memory (MiB)")
    runp.add_argument("--offload", type=float, default=0.0,
                      help="CPU offload fraction [0,1]")
    runp.add_argument("--fuse", action="store_true", help="fuse 1q gate runs")
    runp.add_argument("--cache-chunks", type=int, default=0,
                      help="decompressed-chunk cache capacity (0 = off)")
    runp.add_argument("--cache-policy", default="mru", choices=["lru", "mru"])
    runp.add_argument("--devices", type=int, default=1,
                      help="simulated device count")
    runp.add_argument("--shots", type=int, default=0, help="sample this many shots")
    runp.add_argument("--seed", type=int, default=None)
    runp.add_argument("--save-state", help="write a compressed checkpoint here")
    runp.add_argument("--checkpoint", help="resume from this checkpoint")
    runp.add_argument("--compare-dense", action="store_true",
                      help="also run the dense baseline and report fidelity")

    sub.add_parser("workloads", help="list workload generators")

    comp = sub.add_parser("compressors", help="list / evaluate codecs")
    comp.add_argument("--evaluate", metavar="WORKLOAD",
                      help="evaluate all codecs on this workload's state")
    comp.add_argument("-n", "--qubits", type=int, default=12)

    planp = sub.add_parser("plan", help="show the offline stage plan")
    planp.add_argument("workload")
    planp.add_argument("-n", "--qubits", type=int, default=12)
    planp.add_argument("--chunk-qubits", type=int, default=6)
    planp.add_argument("--max-group", type=int, default=2)
    return p


def _load_circuit(args):
    if args.qasm:
        with open(args.qasm) as fh:
            return from_qasm(fh.read())
    if not args.workload:
        raise SystemExit("run: provide a workload name or --qasm FILE")
    return get_workload(args.workload, args.qubits)


def _cmd_run(args) -> int:
    circuit = _load_circuit(args)
    opts = {}
    if args.compressor in ("szlike", "adaptive"):
        opts["error_bound"] = args.error_bound
    cfg = MemQSimConfig(
        chunk_qubits=args.chunk_qubits,
        compressor=args.compressor,
        compressor_options=opts,
        transfer=args.transfer,
        device=DeviceSpec(memory_bytes=int(args.device_mb * (1 << 20))),
        cpu_offload_fraction=args.offload,
        fuse_gates=args.fuse,
        cache_chunks=args.cache_chunks,
        cache_policy=args.cache_policy,
        num_devices=args.devices,
    )
    if args.autotune:
        from .pipeline import autotune_chunk_qubits

        rep = autotune_chunk_qubits(circuit, cfg)
        print("autotune probe:")
        print(rep.table())
        cfg = cfg.with_updates(chunk_qubits=rep.best_chunk_qubits)
    res = MemQSim(cfg).run(circuit, checkpoint=args.checkpoint)
    print(res.report())
    if args.shots:
        counts = res.sample(args.shots, seed=args.seed)
        top = sorted(counts.items(), key=lambda kv: -kv[1])[:8]
        print("\ntop outcomes:")
        for bits, cnt in top:
            print(f"  |{bits}>  {cnt}")
    if args.compare_dense:
        if circuit.num_qubits > 20:
            print("\n(dense comparison skipped: too many qubits)")
        else:
            from .statevector import DenseSimulator

            ref = DenseSimulator().run(circuit)
            print(f"\nfidelity vs dense: {res.fidelity_vs(ref.data):.12f}")
    if args.save_state:
        nb = res.save_state(args.save_state)
        print(f"\ncheckpoint written: {args.save_state} ({format_bytes(nb)})")
    return 0


def _cmd_workloads(_args) -> int:
    t = Table(["name", "example (n=8)"], title="registered workloads")
    for name in sorted(WORKLOADS):
        c = get_workload(name, 8)
        t.add(name, f"{len(c)} gates, depth {c.depth()}")
    print(t.render())
    return 0


def _cmd_compressors(args) -> int:
    if not args.evaluate:
        t = Table(["name", "kind"], title="registered compressors")
        for name in available_compressors():
            comp = get_compressor(name)
            t.add(name, "lossy" if comp.is_lossy else "lossless")
        print(t.render())
        return 0
    from .statevector import DenseSimulator

    sv = DenseSimulator().run(get_workload(args.evaluate, args.qubits)).data
    t = Table(["codec", "ratio", "max err", "compress", "decompress"],
              title=f"codecs on {args.evaluate} (n={args.qubits})")
    for name in available_compressors():
        rep = evaluate_compressor(get_compressor(name), sv)
        t.add(rep.compressor, f"{rep.ratio:.1f}x", f"{rep.max_error:.1e}",
              format_seconds(rep.compress_seconds),
              format_seconds(rep.decompress_seconds))
    print(t.render())
    return 0


def _cmd_plan(args) -> int:
    from .memory import ChunkLayout
    from .pipeline import describe_plan, plan_stages

    circuit = get_workload(args.workload, args.qubits)
    layout = ChunkLayout(args.qubits, args.chunk_qubits)
    stages = plan_stages(circuit, layout, args.max_group)
    rep = describe_plan(stages, layout)
    print(f"{args.workload} n={args.qubits}: {rep.gates_total} gates -> "
          f"{rep.num_stages} stages ({rep.num_local_stages} local, "
          f"{rep.num_permutation_stages} permutation), "
          f"{rep.group_passes} group passes")
    for i, s in enumerate(stages[:30]):
        print(f"  {i:>3}: {s!r}")
    if len(stages) > 30:
        print(f"  ... {len(stages) - 30} more stages")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "workloads": _cmd_workloads,
        "compressors": _cmd_compressors,
        "plan": _cmd_plan,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # stdout consumer (head, less) closed the pipe — normal exit.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
