"""Chunk layout: global amplitude index <-> (chunk, offset) arithmetic.

The state vector of ``n`` qubits is split into ``2^(n-c)`` chunks of
``2^c`` amplitudes (``c`` = ``chunk_qubits``). In little-endian indexing:

* qubits ``0..c-1`` are **local** — a gate on them touches each chunk
  independently;
* qubits ``c..n-1`` are **global** — their bits select the chunk id, so a
  gate on global qubits couples *pairs/groups of chunks* (the classic
  distributed-state-vector pairing scheme, which MEMQSim's offline stage
  applies to compressed chunks instead of MPI ranks).

:meth:`ChunkLayout.chunk_groups` enumerates the closed chunk groups for a
set of global qubits and tells the executor where each global qubit lands
inside the concatenated group buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["ChunkLayout", "GroupPlacement"]


@dataclass(frozen=True)
class GroupPlacement:
    """How a set of global qubits maps into a concatenated group buffer.

    Attributes:
        group_qubits: the global qubits, sorted ascending.
        virtual_positions: position of each of those qubits within the
            concatenated buffer (parallel to ``group_qubits``): qubit
            ``group_qubits[i]`` becomes buffer qubit ``chunk_qubits + i``.
        groups: list of chunk-id tuples; each tuple, concatenated in order,
            forms one closed buffer of ``2^(c + t)`` amplitudes.
    """

    group_qubits: Tuple[int, ...]
    virtual_positions: Tuple[int, ...]
    groups: Tuple[Tuple[int, ...], ...]


class ChunkLayout:
    """Index arithmetic for a chunked state vector."""

    def __init__(self, num_qubits: int, chunk_qubits: int,
                 itemsize: int = 16):
        if chunk_qubits < 1:
            raise ValueError("chunk_qubits must be >= 1")
        if chunk_qubits > num_qubits:
            raise ValueError(
                f"chunk_qubits {chunk_qubits} exceeds num_qubits {num_qubits}"
            )
        if itemsize not in (8, 16):
            raise ValueError(
                f"itemsize must be 8 (complex64) or 16 (complex128), "
                f"got {itemsize}")
        self.num_qubits = int(num_qubits)
        self.chunk_qubits = int(chunk_qubits)
        #: bytes per amplitude at rest; every byte-exact consumer (planner
        #: fit checks, traffic prediction, span accounting) derives from
        #: this instead of assuming complex128
        self.itemsize = int(itemsize)

    # -- sizes -----------------------------------------------------------------

    @property
    def num_amplitudes(self) -> int:
        return 1 << self.num_qubits

    @property
    def chunk_size(self) -> int:
        """Amplitudes per chunk."""
        return 1 << self.chunk_qubits

    @property
    def chunk_nbytes(self) -> int:
        return self.chunk_size * self.itemsize

    @property
    def dtype(self):
        """The amplitude dtype this layout's itemsize implies."""
        import numpy as np

        return np.dtype(np.complex64 if self.itemsize == 8 else np.complex128)

    @property
    def num_chunks(self) -> int:
        return 1 << (self.num_qubits - self.chunk_qubits)

    @property
    def num_global_qubits(self) -> int:
        return self.num_qubits - self.chunk_qubits

    # -- classification -----------------------------------------------------------

    def is_local(self, qubit: int) -> bool:
        self._check_qubit(qubit)
        return qubit < self.chunk_qubits

    def local_qubits(self, qubits: Sequence[int]) -> Tuple[int, ...]:
        return tuple(q for q in qubits if self.is_local(q))

    def global_qubits(self, qubits: Sequence[int]) -> Tuple[int, ...]:
        return tuple(q for q in qubits if not self.is_local(q))

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise ValueError(f"qubit {qubit} out of range for n={self.num_qubits}")

    # -- index arithmetic -----------------------------------------------------------

    def chunk_of(self, index: int) -> int:
        return index >> self.chunk_qubits

    def offset_of(self, index: int) -> int:
        return index & (self.chunk_size - 1)

    def split(self, index: int) -> Tuple[int, int]:
        """Global amplitude index -> (chunk id, offset)."""
        if not 0 <= index < self.num_amplitudes:
            raise ValueError(f"index {index} out of range")
        return self.chunk_of(index), self.offset_of(index)

    def join(self, chunk: int, offset: int) -> int:
        """(chunk id, offset) -> global amplitude index."""
        if not 0 <= chunk < self.num_chunks:
            raise ValueError(f"chunk {chunk} out of range")
        if not 0 <= offset < self.chunk_size:
            raise ValueError(f"offset {offset} out of range")
        return (chunk << self.chunk_qubits) | offset

    def chunk_base_index(self, chunk: int) -> int:
        return chunk << self.chunk_qubits

    # -- grouping for global-qubit gates ---------------------------------------------

    def chunk_groups(self, qubits: Sequence[int]) -> GroupPlacement:
        """Plan chunk grouping for a gate acting on ``qubits``.

        Only the *global* members of ``qubits`` matter; the returned
        placement covers all chunks exactly once. For ``t`` global qubits
        each group holds ``2^t`` chunks ordered so that within the
        concatenated buffer, global qubit ``group_qubits[i]`` sits at bit
        position ``chunk_qubits + i``.
        """
        gq = tuple(sorted(self.global_qubits(qubits)))
        t = len(gq)
        c = self.chunk_qubits
        if t == 0:
            groups = tuple((k,) for k in range(self.num_chunks))
            return GroupPlacement(gq, (), groups)
        # Chunk-id bit positions of the group qubits.
        bits = [q - c for q in gq]
        bitmask = 0
        for b in bits:
            bitmask |= 1 << b
        groups: List[Tuple[int, ...]] = []
        for base in range(self.num_chunks):
            if base & bitmask:
                continue  # not the canonical (all-zero-on-group-bits) member
            members = []
            for j in range(1 << t):
                k = base
                for i, b in enumerate(bits):
                    if (j >> i) & 1:
                        k |= 1 << b
                members.append(k)
            groups.append(tuple(members))
        positions = tuple(c + i for i in range(t))
        return GroupPlacement(gq, positions, tuple(groups))

    def gate_virtual_qubits(self, qubits: Sequence[int],
                            placement: GroupPlacement) -> Tuple[int, ...]:
        """Map gate qubits to their positions inside a group buffer."""
        pos = {q: placement.virtual_positions[i]
               for i, q in enumerate(placement.group_qubits)}
        out = []
        for q in qubits:
            if self.is_local(q):
                out.append(q)
            else:
                out.append(pos[q])
        return tuple(out)

    def __repr__(self) -> str:
        return (
            f"<ChunkLayout n={self.num_qubits} c={self.chunk_qubits} "
            f"chunks={self.num_chunks}x{self.chunk_size}>"
        )
