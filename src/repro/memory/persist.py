"""Persistence for the compressed chunk store (checkpoint/restore).

Because chunks are already compressed byte blobs, a checkpoint is just the
layout header plus the blob table — the on-disk footprint equals the
in-memory compressed footprint, and save/load never materializes the dense
vector. The format is a single self-describing file:

    magic  "MQS1"  (complex128 stores) | "MQS2" (dtype-carrying)
    [MQS2 only] u8 amplitude itemsize (8 = complex64, 16 = complex128)
    u32    num_qubits
    u32    chunk_qubits
    u32    compressor-name length | name bytes (utf-8)
    u64    num_chunks
    per chunk: u64 blob length | blob bytes
               (length 2^64-1 marks a reference to the shared zero blob,
                which is stored once up front; length 2^64-2 marks an
                uninitialized chunk)

complex128 stores keep writing the historical ``MQS1`` frame byte for
byte; non-c128 stores write ``MQS2`` with the itemsize byte, and the
loader accepts both.

Use :func:`save_store` / :func:`load_store`; the loader rebuilds the store
around a compressor instance you provide (it must match the one that wrote
the blobs — the name is checked).
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Optional, Union

from ..compression.interface import Compressor
from ..telemetry import get_logger
from .accounting import MemoryTracker
from .chunkstore import CompressedChunkStore
from .layout import ChunkLayout

log = get_logger(__name__)

__all__ = ["save_store", "load_store", "StoreFormatError"]

_MAGIC = b"MQS1"
_MAGIC_V2 = b"MQS2"
_ZERO_REF = (1 << 64) - 1
_UNINIT = (1 << 64) - 2


class StoreFormatError(ValueError):
    """Raised for malformed or mismatched checkpoint files."""


def save_store(store: CompressedChunkStore, path: Union[str, Path]) -> int:
    """Write the store to ``path``; returns bytes written."""
    path = Path(path)
    name = store.compressor.name.encode("utf-8")
    item = store.layout.itemsize
    parts = [
        _MAGIC if item == 16 else _MAGIC_V2 + struct.pack("<B", item),
        struct.pack("<II", store.layout.num_qubits, store.layout.chunk_qubits),
        struct.pack("<I", len(name)),
        name,
        struct.pack("<Q", store.layout.num_chunks),
    ]
    zero = store.zero_blob_bytes()
    parts.append(struct.pack("<Q", len(zero) if zero is not None else 0))
    if zero is not None:
        parts.append(zero)
    for k in range(store.layout.num_chunks):
        if store.is_zero_chunk(k):
            parts.append(struct.pack("<Q", _ZERO_REF))
            continue
        blob = store.get_blob(k)
        if blob is None:
            parts.append(struct.pack("<Q", _UNINIT))
        else:
            parts.append(struct.pack("<Q", len(blob)))
            parts.append(blob)
    data = b"".join(parts)
    path.write_bytes(data)
    log.info("saved %d-chunk store to %s (%d bytes)",
             store.layout.num_chunks, path, len(data))
    return len(data)


def load_store(
    path: Union[str, Path],
    compressor: Compressor,
    tracker: Optional[MemoryTracker] = None,
) -> CompressedChunkStore:
    """Rebuild a store from a checkpoint written by :func:`save_store`."""
    data = Path(path).read_bytes()
    itemsize = 16
    if data[:4] == _MAGIC:
        off = 4
    elif data[:4] == _MAGIC_V2:
        (itemsize,) = struct.unpack_from("<B", data, 4)
        if itemsize not in (8, 16):
            raise StoreFormatError(f"bad amplitude itemsize {itemsize}")
        off = 5
    else:
        raise StoreFormatError("not a MEMQSim store checkpoint")
    num_qubits, chunk_qubits = struct.unpack_from("<II", data, off)
    off += 8
    (name_len,) = struct.unpack_from("<I", data, off)
    off += 4
    name = data[off:off + name_len].decode("utf-8")
    off += name_len
    if name != compressor.name:
        raise StoreFormatError(
            f"checkpoint was written with compressor {name!r}, "
            f"got {compressor.name!r}"
        )
    (num_chunks,) = struct.unpack_from("<Q", data, off)
    off += 8
    layout = ChunkLayout(num_qubits, chunk_qubits, itemsize=itemsize)
    if layout.num_chunks != num_chunks:
        raise StoreFormatError("chunk count does not match layout")
    store = CompressedChunkStore(layout, compressor, tracker)
    (zero_len,) = struct.unpack_from("<Q", data, off)
    off += 8
    zero = None
    if zero_len:
        zero = data[off:off + zero_len]
        off += zero_len
        store._zero_blob = zero
    for k in range(num_chunks):
        (blen,) = struct.unpack_from("<Q", data, off)
        off += 8
        if blen == _UNINIT:
            continue
        if blen == _ZERO_REF:
            if zero is None:
                raise StoreFormatError("zero-blob reference without zero blob")
            store._set_blob(k, zero, shared=True)
            continue
        if off + blen > len(data):
            raise StoreFormatError("truncated checkpoint")
        store._set_blob(k, data[off:off + blen])
        off += blen
    log.info("loaded %d-chunk store from %s (%d bytes, codec=%s)",
             num_chunks, path, len(data), name)
    return store
