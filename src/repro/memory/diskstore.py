"""Out-of-core chunk storage: spill compressed blobs to disk.

The paper keeps the compressed state in CPU memory; when even the
*compressed* footprint outgrows RAM, the next rung is disk. This store
keeps blobs in an append-only log file with an in-memory offset index —
the only RAM cost is ~48 bytes of index per chunk, regardless of state
size, so the qubit ceiling becomes a function of disk capacity.

Updates append (the old record becomes garbage); when the garbage fraction
exceeds ``compact_threshold`` the log is rewritten in place. The class
exposes the same surface as :class:`CompressedChunkStore`, so the
scheduler, cache, results object and checkpointing all work unchanged on
top of it.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..compression.interface import Compressor
from .accounting import MemoryTracker
from .chunkstore import CompressedChunkStore
from .layout import ChunkLayout

__all__ = ["DiskChunkStore"]

CATEGORY = "disk_store"


class DiskChunkStore(CompressedChunkStore):
    """Chunk store whose blobs live in an on-disk append log.

    Inherits all streaming init/query logic from the in-memory store and
    overrides only blob placement. The memory tracker's ``disk_store``
    category records *file* bytes, kept separate from host-RAM categories.
    """

    def __init__(
        self,
        layout: ChunkLayout,
        compressor: Compressor,
        path: Union[str, Path],
        tracker: Optional[MemoryTracker] = None,
        compact_threshold: float = 0.5,
        telemetry=None,
    ):
        super().__init__(layout, compressor, tracker, telemetry)
        if not 0.0 < compact_threshold <= 1.0:
            raise ValueError("compact_threshold must be in (0, 1]")
        self.path = Path(path)
        self.compact_threshold = float(compact_threshold)
        self._fh = open(self.path, "w+b")
        # chunk -> (offset, length); -1 length marks "uses the zero blob"
        self._index: List[Optional[tuple]] = [None] * layout.num_chunks
        self._zero_record: Optional[tuple] = None
        self._live_bytes = 0
        self._file_bytes = 0
        self.compactions = 0

    # -- blob plumbing (overrides) -------------------------------------------

    def _append(self, blob: bytes) -> tuple:
        off = self._file_bytes
        self._fh.seek(off)
        self._fh.write(blob)
        self._file_bytes += len(blob)
        self.tracker.alloc(CATEGORY, len(blob))
        if self.telemetry.enabled:
            self.telemetry.traffic.record("disk", "write", len(blob))
        return (off, len(blob))

    def _read_record(self, rec: tuple) -> bytes:
        self._fh.seek(rec[0])
        blob = self._fh.read(rec[1])
        if self.telemetry.enabled:
            self.telemetry.traffic.record("disk", "read", len(blob))
        return blob

    def _set_blob(self, chunk: int, blob: bytes, shared: bool = False) -> None:
        old = self._index[chunk]
        if old is not None and old is not self._zero_record:
            self._live_bytes -= old[1]
        if shared:
            if self._zero_record is None:
                self._zero_record = self._append(blob)
                self._live_bytes += self._zero_record[1]
            self._index[chunk] = self._zero_record
        else:
            rec = self._append(blob)
            self._live_bytes += rec[1]
            self._index[chunk] = rec
        self._maybe_compact()

    def load(self, chunk: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        rec = self._index[chunk]
        if rec is None:
            raise KeyError(f"chunk {chunk} not initialized")
        # Shared decode path: codec stats/metrics/ledger accounting is
        # byte-identical to the in-memory store; only the disk read is
        # specific to this tier.
        return self._decode(chunk, self._read_record(rec), out)

    # -- blob access overrides (the in-memory list stays empty) ----------------

    def get_blob(self, chunk: int):
        rec = self._index[chunk]
        if rec is None:
            return None
        return self._read_record(rec)

    def is_zero_chunk(self, chunk: int) -> bool:
        return (self._index[chunk] is not None
                and self._index[chunk] is self._zero_record)

    def zero_blob_bytes(self):
        if self._zero_record is None:
            return None
        return self._read_record(self._zero_record)

    def compressed_nbytes(self) -> int:
        return self._live_bytes

    def blob_sizes(self) -> List[int]:
        return [0 if r is None else r[1] for r in self._index]

    def permute(self, perm) -> None:
        if len(perm) != self.layout.num_chunks:
            raise ValueError("permutation length mismatch")
        if sorted(perm) != list(range(len(perm))):
            raise ValueError("not a permutation of chunk ids")
        old_idx = list(self._index)
        for dst, src in enumerate(perm):
            self._index[dst] = old_idx[src]

    # -- compaction -----------------------------------------------------------

    @property
    def file_bytes(self) -> int:
        return self._file_bytes

    @property
    def garbage_fraction(self) -> float:
        if self._file_bytes == 0:
            return 0.0
        return 1.0 - self._live_bytes / self._file_bytes

    def _maybe_compact(self) -> None:
        if self._file_bytes < 1 << 16:
            return
        if self.garbage_fraction >= self.compact_threshold:
            self.compact()

    def compact(self) -> None:
        """Rewrite the log keeping only live records."""
        records = {}
        for rec in self._index:
            if rec is not None:
                records.setdefault(id(rec), rec)
        payloads = {}
        for key, rec in records.items():
            payloads[key] = self._read_record(rec)
        freed = self._file_bytes
        self._fh.seek(0)
        self._fh.truncate(0)
        self._file_bytes = 0
        self._live_bytes = 0
        self.tracker.free(CATEGORY, freed)
        new_pos = {}
        for key, blob in payloads.items():
            new_pos[key] = self._append(blob)
            self._live_bytes += len(blob)
        for i, rec in enumerate(self._index):
            if rec is not None:
                self._index[i] = new_pos[id(rec)]
        if self._zero_record is not None:
            # Relocate the shared zero record, or drop it if no chunk
            # references it anymore (it will be re-appended on demand).
            self._zero_record = new_pos.get(id(self._zero_record))
        self.compactions += 1

    def close(self) -> None:
        self._fh.close()
        self.tracker.free(CATEGORY, self._file_bytes)
        self._file_bytes = 0
        self._live_bytes = 0

    def __enter__(self) -> "DiskChunkStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __repr__(self) -> str:
        return (
            f"<DiskChunkStore {self.path.name} file={self._file_bytes:,}B "
            f"live={self._live_bytes:,}B garbage={self.garbage_fraction:.0%}>"
        )
