"""Out-of-core chunk storage: spill compressed blobs to disk.

The paper keeps the compressed state in CPU memory; when even the
*compressed* footprint outgrows RAM, the next rung is disk. Two pieces
live here:

* :class:`BlobLog` — an append-only blob log file with mmap-backed reads.
  Updates append (the old record becomes garbage); the owner triggers a
  rewrite when the garbage fraction crosses its threshold. The log is the
  shared disk substrate for both stores below **and** for the tiered
  store's spill edge (:class:`~repro.memory.hierarchy.TieredChunkStore`).
* :class:`DiskChunkStore` — a chunk store whose blobs all live in a log;
  the only RAM cost is ~48 bytes of index per chunk, regardless of state
  size, so the qubit ceiling becomes a function of disk capacity.

Both expose the same surface as :class:`CompressedChunkStore`, so the
scheduler, cache, results object and checkpointing all work unchanged on
top of them.
"""

from __future__ import annotations

import mmap
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from ..compression.interface import Compressor
from .accounting import MemoryTracker
from .chunkstore import CompressedChunkStore
from .layout import ChunkLayout

__all__ = ["BlobLog", "DiskChunkStore"]

CATEGORY = "disk_store"


class BlobLog:
    """Append-only blob log with mmap-backed reads.

    Records are opaque ``(offset, length)`` tuples; callers key remaps by
    ``id(record)`` so shared records (the interned zero blob) stay shared
    across a rewrite. Reads go through a lazily-(re)mapped ``mmap`` view —
    the file handle is flushed and the view regrown only when a read
    reaches past the mapped extent, so steady-state reads are memcpys out
    of the page cache, not syscalls.

    The ``tracker`` category records *file* bytes; every append/read also
    lands on the traffic ledger's ``disk.write``/``disk.read`` edge when
    telemetry is enabled.
    """

    def __init__(
        self,
        path: Union[str, Path],
        tracker: Optional[MemoryTracker] = None,
        telemetry=None,
        category: str = CATEGORY,
    ):
        from ..telemetry import NULL_TELEMETRY

        self.path = Path(path)
        self.tracker = tracker if tracker is not None else MemoryTracker()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.category = category
        self._fh = open(self.path, "w+b")
        self._mm: Optional[mmap.mmap] = None
        self._mm_size = 0
        self._file_bytes = 0
        self._live_bytes = 0

    # -- properties -----------------------------------------------------------

    @property
    def file_bytes(self) -> int:
        return self._file_bytes

    @property
    def live_bytes(self) -> int:
        return self._live_bytes

    @property
    def garbage_fraction(self) -> float:
        if self._file_bytes == 0:
            return 0.0
        return 1.0 - self._live_bytes / self._file_bytes

    # -- record I/O -----------------------------------------------------------

    def append(self, blob: bytes) -> tuple:
        """Append ``blob``; returns its ``(offset, length)`` record."""
        off = self._file_bytes
        self._fh.seek(off)
        self._fh.write(blob)
        self._file_bytes += len(blob)
        self._live_bytes += len(blob)
        self.tracker.alloc(self.category, len(blob))
        if self.telemetry.enabled:
            self.telemetry.traffic.record("disk", "write", len(blob))
        return (off, len(blob))

    def read(self, rec: tuple) -> bytes:
        """Read a record's payload (mmap-backed)."""
        off, length = rec
        if off + length > self._mm_size:
            self._remap()
        if self._mm is not None and off + length <= self._mm_size:
            blob = bytes(self._mm[off:off + length])
        else:  # pragma: no cover - mmap unavailable / zero-length file
            self._fh.flush()
            self._fh.seek(off)
            blob = self._fh.read(length)
        if self.telemetry.enabled:
            self.telemetry.traffic.record("disk", "read", len(blob))
        return blob

    def free(self, rec: tuple) -> None:
        """Mark a record dead (its bytes become garbage until a rewrite)."""
        self._live_bytes -= rec[1]

    def _remap(self) -> None:
        # Buffered writes must reach the OS before the page cache sees
        # them; flush, then grow the view to the current file extent.
        self._fh.flush()
        self._drop_mmap()
        if self._file_bytes > 0:
            try:
                self._mm = mmap.mmap(self._fh.fileno(), self._file_bytes,
                                     access=mmap.ACCESS_READ)
                self._mm_size = self._file_bytes
            except (ValueError, OSError):  # pragma: no cover
                self._mm = None
                self._mm_size = 0

    def _drop_mmap(self) -> None:
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        self._mm_size = 0

    # -- rewrite (compaction core) --------------------------------------------

    def rewrite(self, records: Dict[int, tuple]) -> Dict[int, tuple]:
        """Rewrite the log keeping only ``records`` (keyed by ``id(rec)``).

        Returns ``{id(old_rec): new_rec}`` so the owner can remap its
        index; shared old records map to one shared new record.
        """
        payloads = {key: self.read(rec) for key, rec in records.items()}
        self._drop_mmap()
        freed = self._file_bytes
        self._fh.seek(0)
        self._fh.truncate(0)
        self._file_bytes = 0
        self._live_bytes = 0
        self.tracker.free(self.category, freed)
        return {key: self.append(blob) for key, blob in payloads.items()}

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        self._drop_mmap()
        self._fh.close()
        self.tracker.free(self.category, self._file_bytes)
        self._file_bytes = 0
        self._live_bytes = 0

    def unlink(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __repr__(self) -> str:
        return (
            f"<BlobLog {self.path.name} file={self._file_bytes:,}B "
            f"live={self._live_bytes:,}B garbage={self.garbage_fraction:.0%}>"
        )


class DiskChunkStore(CompressedChunkStore):
    """Chunk store whose blobs live in an on-disk append log.

    Inherits all streaming init/query logic from the in-memory store and
    overrides only blob placement. The memory tracker's ``disk_store``
    category records *file* bytes, kept separate from host-RAM categories.
    """

    def __init__(
        self,
        layout: ChunkLayout,
        compressor: Compressor,
        path: Union[str, Path],
        tracker: Optional[MemoryTracker] = None,
        compact_threshold: float = 0.5,
        telemetry=None,
    ):
        super().__init__(layout, compressor, tracker, telemetry)
        if not 0.0 < compact_threshold <= 1.0:
            raise ValueError("compact_threshold must be in (0, 1]")
        self.compact_threshold = float(compact_threshold)
        self._log = BlobLog(path, tracker=self.tracker,
                            telemetry=self.telemetry)
        self.path = self._log.path
        # chunk -> (offset, length) record in the log
        self._index: List[Optional[tuple]] = [None] * layout.num_chunks
        self._zero_record: Optional[tuple] = None
        self.compactions = 0

    # -- blob plumbing (overrides) -------------------------------------------

    def _set_blob(self, chunk: int, blob: bytes, shared: bool = False) -> None:
        old = self._index[chunk]
        if old is not None and old is not self._zero_record:
            self._log.free(old)
        if shared:
            if self._zero_record is None:
                self._zero_record = self._log.append(blob)
            self._index[chunk] = self._zero_record
        else:
            self._index[chunk] = self._log.append(blob)
        self._maybe_compact()

    def load(self, chunk: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        rec = self._index[chunk]
        if rec is None:
            raise KeyError(f"chunk {chunk} not initialized")
        # Shared decode path: codec stats/metrics/ledger accounting is
        # byte-identical to the in-memory store; only the disk read is
        # specific to this tier.
        return self._decode(chunk, self._log.read(rec), out)

    # -- blob access overrides (the in-memory list stays empty) ----------------

    def get_blob(self, chunk: int):
        rec = self._index[chunk]
        if rec is None:
            return None
        return self._log.read(rec)

    def is_zero_chunk(self, chunk: int) -> bool:
        return (self._index[chunk] is not None
                and self._index[chunk] is self._zero_record)

    def zero_blob_bytes(self):
        if self._zero_record is None:
            return None
        return self._log.read(self._zero_record)

    def compressed_nbytes(self) -> int:
        return self._log.live_bytes

    def blob_sizes(self) -> List[int]:
        return [0 if r is None else r[1] for r in self._index]

    def permute(self, perm) -> None:
        if len(perm) != self.layout.num_chunks:
            raise ValueError("permutation length mismatch")
        if sorted(perm) != list(range(len(perm))):
            raise ValueError("not a permutation of chunk ids")
        old_idx = list(self._index)
        for dst, src in enumerate(perm):
            self._index[dst] = old_idx[src]

    # -- compaction -----------------------------------------------------------

    @property
    def file_bytes(self) -> int:
        return self._log.file_bytes

    @property
    def garbage_fraction(self) -> float:
        return self._log.garbage_fraction

    def _maybe_compact(self) -> None:
        if self._log.file_bytes < 1 << 16:
            return
        if self._log.garbage_fraction >= self.compact_threshold:
            self.compact()

    def compact(self) -> None:
        """Rewrite the log keeping only live records."""
        records: Dict[int, tuple] = {}
        for rec in self._index:
            if rec is not None:
                records.setdefault(id(rec), rec)
        new_pos = self._log.rewrite(records)
        for i, rec in enumerate(self._index):
            if rec is not None:
                self._index[i] = new_pos[id(rec)]
        if self._zero_record is not None:
            # Relocate the shared zero record, or drop it if no chunk
            # references it anymore (it will be re-appended on demand).
            self._zero_record = new_pos.get(id(self._zero_record))
        self.compactions += 1

    def close(self) -> None:
        self._log.close()

    def __enter__(self) -> "DiskChunkStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self._log.unlink()

    def __repr__(self) -> str:
        return (
            f"<DiskChunkStore {self.path.name} file={self.file_bytes:,}B "
            f"live={self._log.live_bytes:,}B "
            f"garbage={self.garbage_fraction:.0%}>"
        )
