"""The compressed host-side chunk store (paper Fig. 2, offline stage).

Every chunk of the state vector lives in host memory *only* in compressed
form. ``load`` decompresses a chunk into a caller-supplied (or fresh)
buffer; ``store`` recompresses a buffer back into the blob slot. The store
never holds more than the blobs plus whatever buffers the caller manages —
the accounting reflects exactly that.

Zero chunks are the common case early in a simulation (the initial state is
one nonzero amplitude), so all-zero chunks share one interned blob.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..compression.interface import Compressor
from ..telemetry import NULL_TELEMETRY, get_logger
from .accounting import MemoryTracker
from .layout import ChunkLayout

log = get_logger(__name__)

__all__ = ["CompressedChunkStore", "StoreStats"]

CATEGORY = "chunk_store"


@dataclass
class StoreStats:
    """Cumulative codec traffic through the store."""

    loads: int = 0
    stores: int = 0
    bytes_decompressed: int = 0
    bytes_compressed: int = 0
    compress_seconds: float = 0.0
    decompress_seconds: float = 0.0

    def merged(self, other: "StoreStats") -> "StoreStats":
        return StoreStats(
            loads=self.loads + other.loads,
            stores=self.stores + other.stores,
            bytes_decompressed=self.bytes_decompressed + other.bytes_decompressed,
            bytes_compressed=self.bytes_compressed + other.bytes_compressed,
            compress_seconds=self.compress_seconds + other.compress_seconds,
            decompress_seconds=self.decompress_seconds + other.decompress_seconds,
        )


class CompressedChunkStore:
    """Host store keeping every state-vector chunk independently compressed."""

    def __init__(
        self,
        layout: ChunkLayout,
        compressor: Compressor,
        tracker: Optional[MemoryTracker] = None,
        telemetry=None,
        dtype=None,
    ):
        self.layout = layout
        self.compressor = compressor
        self.tracker = tracker if tracker is not None else MemoryTracker()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.stats = StoreStats()
        self._blobs: List[Optional[bytes]] = [None] * layout.num_chunks
        self._zero_blob: Optional[bytes] = None
        self._zero_refs = 0
        self._dtype = np.dtype(dtype) if dtype is not None \
            else np.dtype(np.complex64 if layout.itemsize == 8
                          else np.complex128)
        if self._dtype.itemsize != layout.itemsize:
            raise ValueError(
                f"store dtype {self._dtype} ({self._dtype.itemsize}B) does "
                f"not match layout itemsize {layout.itemsize}")

    @property
    def dtype(self) -> np.dtype:
        """Amplitude dtype chunks decompress to.

        Layers above the store (the decompressed-chunk cache, staging
        helpers, the codec worker pool) derive their element type from
        here instead of assuming ``complex128``. Defaults to whatever the
        layout's itemsize implies (``complex64`` at 8 bytes/amplitude).
        """
        return self._dtype

    # -- initialization -------------------------------------------------------

    def init_zero_state(self) -> None:
        """Install |0...0>: chunk 0 has amplitude 1 at offset 0, rest zero."""
        zeros = np.zeros(self.layout.chunk_size, dtype=self.dtype)
        self._zero_blob = self._compress(zeros)
        first = zeros.copy()
        first[0] = 1.0
        first_blob = self._compress(first)
        for k in range(self.layout.num_chunks):
            self._set_blob(k, self._zero_blob if k else first_blob, shared=k > 0)

    def init_from_statevector(self, data: np.ndarray) -> None:
        """Chunk and compress an existing dense vector (tests/examples)."""
        if data.shape != (self.layout.num_amplitudes,):
            raise ValueError("state vector size mismatch")
        cs = self.layout.chunk_size
        for k in range(self.layout.num_chunks):
            self._set_blob(k, self._compress(
                np.ascontiguousarray(data[k * cs:(k + 1) * cs],
                                     dtype=self.dtype)
            ))

    def init_product_state(self, factors) -> None:
        """Install a product state without ever densifying.

        ``factors[q]`` is the normalized 2-vector of qubit ``q``. The local
        part (a kron over the chunk qubits) is built once and scaled per
        chunk by the product of the global-qubit components the chunk id
        selects; chunks whose global factor vanishes intern the zero blob.
        Memory: O(chunk_size), independent of the qubit count.
        """
        n = self.layout.num_qubits
        if len(factors) != n:
            raise ValueError(f"need {n} single-qubit factors")
        facs = []
        for q, f in enumerate(factors):
            f = np.asarray(f, dtype=np.complex128)
            if f.shape != (2,):
                raise ValueError(f"factor {q} is not a 2-vector")
            if not np.isclose(np.linalg.norm(f), 1.0, atol=1e-9):
                raise ValueError(f"factor {q} is not normalized")
            facs.append(f)
        c = self.layout.chunk_qubits
        local = np.ones(1, dtype=self.dtype)
        # kron builds indices with the *first* operand as the most
        # significant axis, so fold from the highest local qubit down.
        for q in reversed(range(c)):
            local = np.kron(local, facs[q])
        zero_needed = False
        for k in range(self.layout.num_chunks):
            scale = 1.0 + 0.0j
            for q in range(c, n):
                scale *= facs[q][(k >> (q - c)) & 1]
            if scale == 0.0:
                self.zero_chunk(k)
                continue
            self._set_blob(k, self._compress(local * scale))

    # -- chunk I/O ---------------------------------------------------------------

    def load(self, chunk: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Decompress chunk ``chunk`` into ``out`` (or a new buffer)."""
        blob = self._blobs[chunk]
        if blob is None:
            raise KeyError(f"chunk {chunk} not initialized")
        return self._decode(chunk, blob, out)

    def _decode(self, chunk: int, blob: bytes,
                out: Optional[np.ndarray]) -> np.ndarray:
        """Decompress one blob with full stats/metrics/ledger accounting.

        Shared by every load path (in-memory and disk) so byte accounting
        stays identical regardless of where the blob came from.
        """
        t0 = time.perf_counter()
        arr = self.compressor.decompress(blob)
        dt = time.perf_counter() - t0
        self.stats.decompress_seconds += dt
        self.stats.loads += 1
        self.stats.bytes_decompressed += arr.nbytes
        tel = self.telemetry
        if tel.enabled:
            tel.metrics.counter("codec.decompress.bytes").inc(arr.nbytes)
            tel.metrics.histogram("codec.decompress.seconds").observe(dt)
            tel.traffic.record("codec", "compressed_in", len(blob))
            tel.traffic.record("codec", "raw_out", arr.nbytes)
        if arr.shape[0] != self.layout.chunk_size:
            raise ValueError(
                f"chunk {chunk} decompressed to {arr.shape[0]} amplitudes, "
                f"expected {self.layout.chunk_size}"
            )
        if out is not None:
            out[: arr.shape[0]] = arr
            return out
        return arr

    def store(self, chunk: int, data: np.ndarray) -> None:
        """Compress ``data`` into chunk ``chunk``'s slot."""
        if data.shape[0] != self.layout.chunk_size:
            raise ValueError("buffer size mismatch")
        self._set_blob(chunk, self._compress(data))

    # -- batch / external-codec entry points (worker pool) ---------------------

    def load_batch(self, chunks, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Decompress several chunks into one contiguous buffer.

        Routes through :meth:`Compressor.decompress_batch` so a batching
        codec (or a worker pool targeting the batch interface) handles the
        whole request at once. Result layout: chunk ``chunks[i]`` occupies
        ``out[i*cs:(i+1)*cs]``.
        """
        cs = self.layout.chunk_size
        if out is None:
            out = np.empty(len(chunks) * cs, dtype=self.dtype)
        blobs = []
        for c in chunks:
            blob = self.get_blob(c)
            if blob is None:
                raise KeyError(f"chunk {c} not initialized")
            blobs.append(blob)
        t0 = time.perf_counter()
        arrays = self.compressor.decompress_batch(blobs)
        dt = time.perf_counter() - t0
        for i, arr in enumerate(arrays):
            if arr.shape[0] != cs:
                raise ValueError(
                    f"chunk {chunks[i]} decompressed to {arr.shape[0]} "
                    f"amplitudes, expected {cs}"
                )
            out[i * cs:(i + 1) * cs] = arr
            self.note_decompressed(arr.nbytes, 0.0,
                                   blob_nbytes=len(blobs[i]))
        self.stats.decompress_seconds += dt
        return out

    def store_batch(self, chunks, data: np.ndarray) -> None:
        """Compress a contiguous buffer back into several chunk slots."""
        cs = self.layout.chunk_size
        if data.shape[0] != len(chunks) * cs:
            raise ValueError("buffer size mismatch")
        views = [data[i * cs:(i + 1) * cs] for i in range(len(chunks))]
        t0 = time.perf_counter()
        blobs = self.compressor.compress_batch(views)
        dt = time.perf_counter() - t0
        for c, blob in zip(chunks, blobs):
            self.put_blob(c, blob, data_nbytes=cs * self.dtype.itemsize)
        self.stats.compress_seconds += dt

    def put_blob(self, chunk: int, blob: bytes, *, seconds: float = 0.0,
                 data_nbytes: int = 0, worker: int = 0) -> None:
        """Install an externally-compressed blob (codec worker-pool path).

        Accounting mirrors :meth:`store`: ``seconds`` is the codec time the
        producer measured (worker-side), ``data_nbytes`` the uncompressed
        size the blob encodes, ``worker`` the producing worker's pid (the
        ledger keeps per-worker attributions that sum to parent totals).
        """
        self.stats.stores += 1
        self.stats.compress_seconds += seconds
        self.stats.bytes_compressed += len(blob)
        tel = self.telemetry
        if tel.enabled:
            tel.metrics.counter("codec.compress.bytes_in").inc(data_nbytes)
            tel.metrics.counter("codec.compress.bytes_out").inc(len(blob))
            if seconds:
                tel.metrics.histogram("codec.compress.seconds").observe(seconds)
            tel.traffic.record("codec", "raw_in", data_nbytes, worker=worker)
            tel.traffic.record("codec", "compressed_out", len(blob),
                               worker=worker)
            self._note_entropy(tel, blob)
        self._set_blob(chunk, blob)

    def note_decompressed(self, nbytes: int, seconds: float = 0.0, *,
                          blob_nbytes: int = 0, worker: int = 0) -> None:
        """Account a decompression performed outside :meth:`load` (workers)."""
        self.stats.loads += 1
        self.stats.decompress_seconds += seconds
        self.stats.bytes_decompressed += nbytes
        tel = self.telemetry
        if tel.enabled:
            tel.metrics.counter("codec.decompress.bytes").inc(nbytes)
            if seconds:
                tel.metrics.histogram("codec.decompress.seconds").observe(seconds)
            tel.traffic.record("codec", "compressed_in", blob_nbytes,
                               worker=worker)
            tel.traffic.record("codec", "raw_out", nbytes, worker=worker)

    def _compress(self, data: np.ndarray) -> bytes:
        if data.dtype != self._dtype:
            data = data.astype(self._dtype)
        t0 = time.perf_counter()
        blob = self.compressor.compress(data)
        dt = time.perf_counter() - t0
        self.stats.compress_seconds += dt
        self.stats.stores += 1
        self.stats.bytes_compressed += len(blob)
        tel = self.telemetry
        if tel.enabled:
            tel.metrics.counter("codec.compress.bytes_in").inc(data.nbytes)
            tel.metrics.counter("codec.compress.bytes_out").inc(len(blob))
            tel.metrics.histogram("codec.compress.seconds").observe(dt)
            tel.traffic.record("codec", "raw_in", data.nbytes)
            tel.traffic.record("codec", "compressed_out", len(blob))
            self._note_entropy(tel, blob)
        return blob

    @staticmethod
    def _note_entropy(tel, blob: bytes) -> None:
        """Count which entropy stage the codec picked, sniffed per blob.

        Works on the header alone, so worker-pool blobs (which arrive as
        bytes via :meth:`put_blob`) are attributed parent-side too. Non-SZL1
        codecs contribute nothing.
        """
        from ..compression.szlike import blob_entropy  # lazy: avoids import cycle
        choice = blob_entropy(blob)
        if choice is not None:
            tel.metrics.counter(f"codec.entropy_choice.{choice}").inc()
            tel.emit("codec.choice", entropy=choice, nbytes=len(blob))

    def _set_blob(self, chunk: int, blob: bytes, shared: bool = False) -> None:
        old = self._blobs[chunk]
        if old is not None:
            if self._is_shared(chunk):
                self._zero_refs -= 1
                if self._zero_refs == 0 and self._zero_blob is not None:
                    self.tracker.free(CATEGORY, len(self._zero_blob))
            else:
                self.tracker.free(CATEGORY, len(old))
        self._blobs[chunk] = blob
        if shared:
            self._zero_refs += 1
            if self._zero_refs == 1:
                self.tracker.alloc(CATEGORY, len(blob))
        else:
            self.tracker.alloc(CATEGORY, len(blob))

    def _is_shared(self, chunk: int) -> bool:
        return self._blobs[chunk] is not None and self._blobs[chunk] is self._zero_blob

    def zero_chunk(self, chunk: int) -> None:
        """Set a chunk to all-zero amplitudes via the interned zero blob.

        Used by measurement collapse on global qubits: discarding a branch
        zeroes whole chunks without any codec work.
        """
        if self._zero_blob is None:
            zeros = np.zeros(self.layout.chunk_size, dtype=self.dtype)
            self._zero_blob = self.compressor.compress(zeros)
        self._set_blob(chunk, self._zero_blob, shared=True)

    def permute(self, perm) -> None:
        """Relabel chunks: ``new_blob[d] = old_blob[perm[d]]``.

        Executes global-qubit X/SWAP gates on *compressed* data — no codec
        or transfer traffic. ``perm`` must be a permutation of chunk ids.
        """
        if len(perm) != self.layout.num_chunks:
            raise ValueError("permutation length mismatch")
        old = list(self._blobs)
        if sorted(perm) != list(range(len(old))):
            raise ValueError("not a permutation of chunk ids")
        for dst, src in enumerate(perm):
            self._blobs[dst] = old[src]

    # -- blob access (persistence & subclasses) ----------------------------------

    def get_blob(self, chunk: int) -> Optional[bytes]:
        """Raw compressed blob of a chunk (None if uninitialized)."""
        return self._blobs[chunk]

    def is_zero_chunk(self, chunk: int) -> bool:
        """Whether the chunk references the shared zero blob."""
        return self._is_shared(chunk)

    def zero_blob_bytes(self) -> Optional[bytes]:
        """The interned all-zero blob, if one exists."""
        return self._zero_blob

    # -- footprint queries -----------------------------------------------------------

    def compressed_nbytes(self) -> int:
        """Total unique blob bytes currently held."""
        seen_zero = False
        total = 0
        for blob in self._blobs:
            if blob is None:
                continue
            if blob is self._zero_blob:
                if not seen_zero:
                    total += len(blob)
                    seen_zero = True
                continue
            total += len(blob)
        return total

    def dense_nbytes(self) -> int:
        return self.layout.num_amplitudes * self.dtype.itemsize

    def compression_ratio(self) -> float:
        c = self.compressed_nbytes()
        return float("inf") if c == 0 else self.dense_nbytes() / c

    def blob_sizes(self) -> List[int]:
        return [0 if b is None else len(b) for b in self._blobs]

    # -- whole-vector reconstruction (tests / small n) ----------------------------------

    def to_statevector(self) -> np.ndarray:
        out = np.empty(self.layout.num_amplitudes, dtype=self.dtype)
        cs = self.layout.chunk_size
        for k in range(self.layout.num_chunks):
            out[k * cs:(k + 1) * cs] = self.load(k)
        return out

    def __repr__(self) -> str:
        return (
            f"<CompressedChunkStore {self.layout!r} codec={self.compressor.name} "
            f"bytes={self.compressed_nbytes():,} ratio={self.compression_ratio():.1f}x>"
        )
