"""The plan-driven memory hierarchy: schedule, tiered store, facade.

The system's central observation is that a
:class:`~repro.compile.CompiledPlan` fixes the *entire* chunk access
sequence before execution — so every memory-tier decision that a classical
cache must guess at (what to evict, what to prefetch, what to spill) can
be computed exactly. Three pieces wire that through:

* :class:`AccessSchedule` — the plan's access sequence with a shared
  replay cursor. The scheduler re-seeks the cursor at every group pass;
  the Belady cache policy matches accesses against it; the tiered store
  asks it which resident blob is needed farthest in the future.
* :class:`TieredChunkStore` — the third tier. Hot compressed blobs stay
  in RAM under a byte budget; the plan-coldest blobs spill to an
  append-log file (:class:`~repro.memory.diskstore.BlobLog`, mmap-backed
  reads). The hierarchy becomes arena → host blobs → disk blobs, with
  ``disk.read``/``disk.write`` ledger attribution on the spill edge.
* :class:`MemoryHierarchy` — the facade :class:`~repro.core.MemQSim`
  builds: base store, optional decompressed-chunk cache, and the one
  schedule every layer shares.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..compression.interface import Compressor
from .accounting import MemoryTracker
from .cache import ChunkCache
from .chunkstore import CATEGORY as RAM_CATEGORY
from .chunkstore import CompressedChunkStore
from .diskstore import BlobLog
from .layout import ChunkLayout

__all__ = [
    "AccessSchedule",
    "TierStats",
    "TieredChunkStore",
    "MemoryHierarchy",
]

_INF = float("inf")


class AccessSchedule:
    """A compiled plan's exact chunk access sequence, with a shared cursor.

    Built from :func:`repro.analysis.audit.predict_pass_schedule` — the
    same predictor the audit plane verifies live runs against, so the
    schedule is guaranteed to match what a conforming scheduler executes.
    Consumers:

    * the scheduler calls :meth:`begin_pass` per group pass and
      :meth:`barrier` at permutation stages, keeping the cursor honest
      even when some accesses bypass the schedule-aware layers;
    * :class:`~repro.memory.cache.BeladyPolicy` calls :meth:`observe` per
      cache access to learn that access's next-use position;
    * :class:`TieredChunkStore` calls :meth:`next_use_of` to find the
      plan-coldest resident blob when it must spill.

    All next-use queries are **barrier-bounded**: a reuse on the far side
    of a permutation stage counts as "never" (chunk ids are relabeled and
    caches flush there, so reuse does not survive the crossing).
    """

    def __init__(
        self,
        passes: Sequence[Tuple[str, int, int, Tuple[int, ...]]],
    ):
        seq: List[Tuple[int, str]] = []   # (chunk, op); barriers = (-1, "b")
        pass_start: Dict[Tuple[int, int], int] = {}
        barrier_pos: Dict[int, int] = {}
        for kind, si, gi, members in passes:
            if kind == "barrier":
                barrier_pos[si] = len(seq)
                seq.append((-1, "b"))
                continue
            pass_start[(si, gi)] = len(seq)
            for chunk in members:
                seq.append((chunk, "r"))
            for chunk in members:
                seq.append((chunk, "w"))
        self._seq = seq
        self._pass_start = pass_start
        self._barrier_pos = barrier_pos
        self._barriers = sorted(barrier_pos.values())
        positions: Dict[int, List[int]] = {}
        for i, (chunk, op) in enumerate(seq):
            if op != "b":
                positions.setdefault(chunk, []).append(i)
        self._positions = positions
        # next_use[i]: position of the same chunk's next access within its
        # barrier epoch; INF past the epoch (mirrors memtrace's Belady).
        next_use = [_INF] * len(seq)
        last_seen: Dict[int, int] = {}
        for i in range(len(seq) - 1, -1, -1):
            chunk, op = seq[i]
            if op == "b":
                last_seen.clear()
                continue
            if chunk in last_seen:
                next_use[i] = last_seen[chunk]
            last_seen[chunk] = i
        self._next_use = next_use
        self.cursor = 0
        self.matched = 0
        self.off_schedule = 0

    @classmethod
    def from_stages(cls, stages, layout: ChunkLayout,
                    serpentine: bool = False) -> "AccessSchedule":
        # Runtime import: analysis sits above memory in the import graph.
        from ..analysis.audit import predict_pass_schedule

        return cls(predict_pass_schedule(stages, layout, serpentine))

    def __len__(self) -> int:
        return len(self._seq)

    # -- cursor advancement ---------------------------------------------------

    def begin_pass(self, stage: int, group: int) -> None:
        """Seek the cursor to the start of pass ``(stage, group)``.

        Called by the scheduler before each group pass — the authoritative
        resync point, so layers that only see *some* accesses (the blob
        path sees none) still track plan position pass-by-pass.
        """
        pos = self._pass_start.get((stage, group))
        if pos is not None:
            self.cursor = pos

    def barrier(self, stage: int) -> None:
        """Advance the cursor past stage ``stage``'s permutation barrier."""
        pos = self._barrier_pos.get(stage)
        if pos is not None:
            self.cursor = pos + 1

    def observe(self, chunk: int, op: str) -> Optional[float]:
        """Match one live access against the schedule.

        On a match the cursor advances past it and the access's
        barrier-bounded next-use position is returned (``inf`` = never
        again this epoch). ``None`` means the access is off-schedule
        (ad-hoc load, post-run query) — the caller should fall back to a
        heuristic; the cursor does not move, so one stray access cannot
        derail replay of the remaining plan.
        """
        cur = self.cursor
        seq = self._seq
        while cur < len(seq) and seq[cur][1] == "b":
            cur += 1
        if cur < len(seq) and seq[cur] == (chunk, op):
            self.cursor = cur + 1
            self.matched += 1
            return self._next_use[cur]
        self.off_schedule += 1
        return None

    # -- future queries -------------------------------------------------------

    def next_use_of(self, chunk: int) -> float:
        """Barrier-bounded position of ``chunk``'s next use at/after the
        cursor; ``inf`` if it is not needed again before the next barrier.
        """
        pos_list = self._positions.get(chunk)
        if not pos_list:
            return _INF
        i = bisect_left(pos_list, self.cursor)
        if i == len(pos_list):
            return _INF
        p = pos_list[i]
        j = bisect_left(self._barriers, self.cursor)
        if j < len(self._barriers) and self._barriers[j] < p:
            return _INF
        return float(p)

    def remaining(self) -> int:
        return len(self._seq) - self.cursor

    def __repr__(self) -> str:
        return (f"<AccessSchedule {self.cursor}/{len(self._seq)} "
                f"matched={self.matched} off_schedule={self.off_schedule}>")


@dataclass
class TierStats:
    """Spill/promote accounting for the RAM↔disk blob edge."""

    spills: int = 0
    promotions: int = 0
    spilled_bytes: int = 0
    promoted_bytes: int = 0


class TieredChunkStore(CompressedChunkStore):
    """Compressed blobs split across a RAM tier and a disk append log.

    Blob writes land in RAM first; when unique RAM blob bytes exceed
    ``host_budget_bytes``, the store spills the **plan-coldest** resident
    blobs (farthest next use per the attached :class:`AccessSchedule`;
    least-recently-touched when no schedule is attached) to the log.
    Reads of a disk-resident blob are served straight from the mmap-backed
    log without promotion — promotion happens ahead of use instead, via
    the scheduler's :meth:`will_need` hints, so a read burst never evicts
    the chunks it is about to use.

    The interned all-zero blob is pinned in RAM (it is one blob shared by
    arbitrarily many chunks; spilling it would save nothing). Permutation
    stages relabel both tiers' indices and move zero bytes, preserving the
    audit plane's permutations-are-free invariant. The tracker keeps RAM
    blobs under ``chunk_store`` and file bytes under ``disk_store``, and
    every spill/read lands on the ledger's ``disk.*`` edge.
    """

    def __init__(
        self,
        layout: ChunkLayout,
        compressor: Compressor,
        path: Union[str, Path],
        host_budget_bytes: int,
        tracker: Optional[MemoryTracker] = None,
        compact_threshold: float = 0.5,
        telemetry=None,
    ):
        super().__init__(layout, compressor, tracker, telemetry)
        if not 0.0 < compact_threshold <= 1.0:
            raise ValueError("compact_threshold must be in (0, 1]")
        self.compact_threshold = float(compact_threshold)
        #: unique RAM blob bytes allowed; <= 0 means unbounded (the store
        #: degenerates to the in-memory store plus an idle log file)
        self.host_budget_bytes = int(host_budget_bytes)
        self._log = BlobLog(path, tracker=self.tracker,
                            telemetry=self.telemetry)
        self.path = self._log.path
        # chunk -> (offset, length) log record; exclusive with _blobs[chunk]
        self._disk: List[Optional[tuple]] = [None] * layout.num_chunks
        # RAM-resident non-shared chunks, oldest-touched first (the
        # schedule-less spill fallback); zero-shared chunks never enter.
        self._ram_order: "OrderedDict[int, None]" = OrderedDict()
        self._host_bytes = 0  # unique RAM blob bytes (zero counted once)
        self.schedule: Optional[AccessSchedule] = None
        self.tier_stats = TierStats()
        self.compactions = 0

    # -- placement ------------------------------------------------------------

    def _drop_location(self, chunk: int) -> None:
        """Release whatever tier currently backs ``chunk``."""
        blob = self._blobs[chunk]
        if blob is not None:
            self._blobs[chunk] = None
            if blob is self._zero_blob:
                self._zero_refs -= 1
                if self._zero_refs == 0:
                    self.tracker.free(RAM_CATEGORY, len(blob))
                    self._host_bytes -= len(blob)
            else:
                self._ram_order.pop(chunk, None)
                self.tracker.free(RAM_CATEGORY, len(blob))
                self._host_bytes -= len(blob)
            return
        rec = self._disk[chunk]
        if rec is not None:
            self._disk[chunk] = None
            self._log.free(rec)
            self._maybe_compact()

    def _set_blob(self, chunk: int, blob: bytes, shared: bool = False) -> None:
        self._drop_location(chunk)
        if shared:
            self._zero_refs += 1
            if self._zero_refs == 1:
                self.tracker.alloc(RAM_CATEGORY, len(blob))
                self._host_bytes += len(blob)
            self._blobs[chunk] = blob
            return
        self._blobs[chunk] = blob
        self._ram_order[chunk] = None
        self.tracker.alloc(RAM_CATEGORY, len(blob))
        self._host_bytes += len(blob)
        self._enforce_budget()

    def _enforce_budget(self) -> None:
        if self.host_budget_bytes <= 0:
            return
        while self._host_bytes > self.host_budget_bytes and self._ram_order:
            self._spill(self._pick_spill_victim())

    def _pick_spill_victim(self) -> int:
        if self.schedule is not None:
            # Plan-coldest: first maximum over resident chunks. Finite
            # next-use positions are unique schedule indices; inf ties are
            # all equivalent (none is needed again this epoch).
            victim = None
            victim_nu = -1.0
            for chunk in self._ram_order:
                nu = self.schedule.next_use_of(chunk)
                if victim is None or nu > victim_nu:
                    victim, victim_nu = chunk, nu
                    if nu == _INF:
                        break
            return victim
        return next(iter(self._ram_order))  # least recently touched

    def _spill(self, chunk: int) -> None:
        blob = self._blobs[chunk]
        self._blobs[chunk] = None
        self._ram_order.pop(chunk, None)
        self.tracker.free(RAM_CATEGORY, len(blob))
        self._host_bytes -= len(blob)
        self._disk[chunk] = self._log.append(blob)
        self.tier_stats.spills += 1
        self.tier_stats.spilled_bytes += len(blob)
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("tier.spill").inc()

    def _promote(self, chunk: int, rec: tuple) -> None:
        blob = self._log.read(rec)
        self._disk[chunk] = None
        self._log.free(rec)
        self._blobs[chunk] = blob
        self._ram_order[chunk] = None
        self.tracker.alloc(RAM_CATEGORY, len(blob))
        self._host_bytes += len(blob)
        self.tier_stats.promotions += 1
        self.tier_stats.promoted_bytes += len(blob)
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("tier.promote").inc()
        self._maybe_compact()

    # -- advisory prefetch ----------------------------------------------------

    def will_need(self, chunks) -> None:
        """Promote the given chunks' blobs into RAM ahead of use.

        The scheduler calls this with a group pass's members before
        streaming them; the spill choice that rebalancing forces is
        plan-aware, so promoted chunks (imminent next use) never bounce
        straight back to disk while a budget-respecting placement exists.
        """
        promoted = False
        for chunk in chunks:
            rec = self._disk[chunk]
            if rec is not None:
                self._promote(chunk, rec)
                promoted = True
        if promoted:
            self._enforce_budget()

    # -- chunk / blob I/O -----------------------------------------------------

    def load(self, chunk: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        blob = self.get_blob(chunk)
        if blob is None:
            raise KeyError(f"chunk {chunk} not initialized")
        return self._decode(chunk, blob, out)

    def get_blob(self, chunk: int) -> Optional[bytes]:
        blob = self._blobs[chunk]
        if blob is not None:
            if blob is not self._zero_blob and chunk in self._ram_order:
                self._ram_order.move_to_end(chunk)
            return blob
        rec = self._disk[chunk]
        if rec is None:
            return None
        # Served from the log without promotion (ledger: disk.read).
        return self._log.read(rec)

    def is_on_disk(self, chunk: int) -> bool:
        return self._disk[chunk] is not None

    def permute(self, perm) -> None:
        if len(perm) != self.layout.num_chunks:
            raise ValueError("permutation length mismatch")
        if sorted(perm) != list(range(len(perm))):
            raise ValueError("not a permutation of chunk ids")
        inv = [0] * len(perm)
        for dst, src in enumerate(perm):
            inv[src] = dst
        old_blobs = list(self._blobs)
        old_disk = list(self._disk)
        for dst, src in enumerate(perm):
            self._blobs[dst] = old_blobs[src]
            self._disk[dst] = old_disk[src]
        # Relabel the recency order too, preserving its ordering — pure
        # index bookkeeping; no blob moves, no disk traffic.
        self._ram_order = OrderedDict(
            (inv[c], None) for c in self._ram_order)

    # -- footprint queries ----------------------------------------------------

    def host_blob_bytes(self) -> int:
        """Unique RAM-tier blob bytes (the budgeted quantity)."""
        return self._host_bytes

    def disk_blob_bytes(self) -> int:
        """Live disk-tier blob bytes (excludes log garbage)."""
        return self._log.live_bytes

    def compressed_nbytes(self) -> int:
        return self._host_bytes + self._log.live_bytes

    def blob_sizes(self) -> List[int]:
        sizes = []
        for chunk in range(self.layout.num_chunks):
            blob = self._blobs[chunk]
            if blob is not None:
                sizes.append(len(blob))
                continue
            rec = self._disk[chunk]
            sizes.append(0 if rec is None else rec[1])
        return sizes

    # -- log compaction -------------------------------------------------------

    @property
    def file_bytes(self) -> int:
        return self._log.file_bytes

    @property
    def garbage_fraction(self) -> float:
        return self._log.garbage_fraction

    def _maybe_compact(self) -> None:
        if self._log.file_bytes < 1 << 16:
            return
        if self._log.garbage_fraction >= self.compact_threshold:
            self.compact()

    def compact(self) -> None:
        """Rewrite the log keeping only live (disk-resident) records."""
        records: Dict[int, tuple] = {}
        for rec in self._disk:
            if rec is not None:
                records.setdefault(id(rec), rec)
        new_pos = self._log.rewrite(records)
        for i, rec in enumerate(self._disk):
            if rec is not None:
                self._disk[i] = new_pos[id(rec)]
        self.compactions += 1

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        self._log.close()

    def __enter__(self) -> "TieredChunkStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self._log.unlink()

    def __repr__(self) -> str:
        return (
            f"<TieredChunkStore host={self._host_bytes:,}B"
            f"/{self.host_budget_bytes:,}B disk={self._log.live_bytes:,}B "
            f"spills={self.tier_stats.spills} "
            f"promotions={self.tier_stats.promotions}>"
        )


class MemoryHierarchy:
    """The unified plan-driven memory stack MemQSim runs against.

    Composes a base compressed store (memory / disk / tiered), an optional
    decompressed-chunk cache in front of it, and — once a compiled plan
    exists — the one :class:`AccessSchedule` every schedule-aware layer
    shares. ``store_like`` is what the scheduler streams against.
    """

    def __init__(self, store: CompressedChunkStore,
                 cache: Optional[ChunkCache] = None):
        self.store = store
        self.cache = cache
        self.schedule: Optional[AccessSchedule] = None

    @classmethod
    def build(
        cls,
        store: CompressedChunkStore,
        *,
        cache_chunks: int = 0,
        cache_policy: str = "mru",
        tracker: Optional[MemoryTracker] = None,
        telemetry=None,
    ) -> "MemoryHierarchy":
        cache = None
        if cache_chunks:
            cache = ChunkCache(store, cache_chunks, cache_policy, tracker,
                               telemetry=telemetry)
        return cls(store, cache)

    @property
    def store_like(self):
        """The top of the stack — what the scheduler reads and writes."""
        return self.cache if self.cache is not None else self.store

    def needs_schedule(self) -> bool:
        return ((self.cache is not None and self.cache.policy == "belady")
                or isinstance(self.store, TieredChunkStore))

    def attach_plan(self, stages, layout: ChunkLayout,
                    serpentine: bool = False) -> Optional[AccessSchedule]:
        """Derive the plan's access schedule and attach it everywhere.

        Returns the shared :class:`AccessSchedule` (which the scheduler
        must advance via ``begin_pass``/``barrier``), or ``None`` when no
        layer is schedule-aware — an unattached Belady cache falls back
        to MRU and a tiered store to LRU spilling, so ad-hoc runs without
        a plan (serve ad-hoc loads, direct store use) stay correct.
        """
        if not self.needs_schedule():
            return None
        self.schedule = AccessSchedule.from_stages(stages, layout, serpentine)
        if self.cache is not None:
            self.cache.attach_schedule(self.schedule)
        if isinstance(self.store, TieredChunkStore):
            self.store.schedule = self.schedule
        return self.schedule

    def flush(self) -> None:
        if self.cache is not None:
            self.cache.flush()

    def describe(self) -> Dict[str, object]:
        """Tier topology for results/telemetry exposition."""
        tiers: List[Dict[str, object]] = []
        if self.cache is not None:
            tiers.append({
                "tier": "decompressed_cache",
                "policy": self.cache.policy,
                "capacity_chunks": self.cache.capacity,
            })
        if isinstance(self.store, TieredChunkStore):
            tiers.append({
                "tier": "host_blobs",
                "budget_bytes": self.store.host_budget_bytes,
                "resident_bytes": self.store.host_blob_bytes(),
            })
            tiers.append({
                "tier": "disk_blobs",
                "live_bytes": self.store.disk_blob_bytes(),
                "file_bytes": self.store.file_bytes,
                "spills": self.store.tier_stats.spills,
                "promotions": self.store.tier_stats.promotions,
            })
        else:
            tiers.append({"tier": type(self.store).__name__})
        return {
            "tiers": tiers,
            "schedule_attached": self.schedule is not None,
            "schedule_length": len(self.schedule) if self.schedule else 0,
        }

    def __repr__(self) -> str:
        return (f"<MemoryHierarchy cache={self.cache!r} "
                f"store={type(self.store).__name__} "
                f"schedule={'yes' if self.schedule else 'no'}>")
