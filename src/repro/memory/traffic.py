"""Memory-traffic ledger and chunk access recorder (canonical import path).

The memory plane is where tier edges live — arena, store, disk, cache —
so this is the natural place to import the audit types from::

    from repro.memory.traffic import TrafficLedger, ChunkAccessRecorder

The implementation sits in :mod:`repro.telemetry.traffic` because the
ledger hangs off :class:`~repro.telemetry.Telemetry` (which must not
import the memory package — the stores import telemetry).
"""

from ..telemetry.traffic import (
    EDGES,
    NULL_ACCESS_RECORDER,
    NULL_TRAFFIC_LEDGER,
    OUT_OF_STAGE,
    AccessEvent,
    ChunkAccessRecorder,
    NullChunkAccessRecorder,
    NullTrafficLedger,
    TrafficLedger,
)

__all__ = [
    "EDGES",
    "OUT_OF_STAGE",
    "TrafficLedger",
    "NullTrafficLedger",
    "NULL_TRAFFIC_LEDGER",
    "AccessEvent",
    "ChunkAccessRecorder",
    "NullChunkAccessRecorder",
    "NULL_ACCESS_RECORDER",
]
