"""Chunked memory layer: layout math, compressed store, buffers, accounting."""

from .accounting import MemorySnapshot, MemoryTracker
from .bufferpool import BufferPool
from .cache import CacheStats, ChunkCache
from .chunkstore import CompressedChunkStore, StoreStats
from .diskstore import DiskChunkStore
from .layout import ChunkLayout, GroupPlacement
from .persist import StoreFormatError, load_store, save_store

__all__ = [
    "ChunkLayout",
    "GroupPlacement",
    "CompressedChunkStore",
    "DiskChunkStore",
    "StoreStats",
    "BufferPool",
    "ChunkCache",
    "CacheStats",
    "MemoryTracker",
    "MemorySnapshot",
    "save_store",
    "load_store",
    "StoreFormatError",
]
