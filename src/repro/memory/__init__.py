"""Chunked memory layer: layout math, compressed store, buffers, accounting."""

from .accounting import MemorySnapshot, MemoryTracker
from .bufferpool import BufferPool
from .cache import CacheStats, ChunkCache
from .chunkstore import CompressedChunkStore, StoreStats
from .diskstore import DiskChunkStore
from .layout import ChunkLayout, GroupPlacement
from .persist import StoreFormatError, load_store, save_store
from .traffic import (
    EDGES,
    NULL_ACCESS_RECORDER,
    NULL_TRAFFIC_LEDGER,
    ChunkAccessRecorder,
    NullChunkAccessRecorder,
    NullTrafficLedger,
    TrafficLedger,
)

__all__ = [
    "ChunkLayout",
    "GroupPlacement",
    "CompressedChunkStore",
    "DiskChunkStore",
    "StoreStats",
    "BufferPool",
    "ChunkCache",
    "CacheStats",
    "MemoryTracker",
    "MemorySnapshot",
    "save_store",
    "load_store",
    "StoreFormatError",
    "EDGES",
    "TrafficLedger",
    "NullTrafficLedger",
    "NULL_TRAFFIC_LEDGER",
    "ChunkAccessRecorder",
    "NullChunkAccessRecorder",
    "NULL_ACCESS_RECORDER",
]
