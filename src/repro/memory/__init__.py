"""Chunked memory layer: layout math, compressed store, buffers, accounting."""

from .accounting import MemorySnapshot, MemoryTracker
from .bufferpool import BufferPool
from .cache import (
    CACHE_POLICIES,
    BeladyPolicy,
    CacheStats,
    ChunkCache,
    EvictionPolicy,
    LruPolicy,
    MruPolicy,
    make_policy,
)
from .chunkstore import CompressedChunkStore, StoreStats
from .diskstore import BlobLog, DiskChunkStore
from .hierarchy import (
    AccessSchedule,
    MemoryHierarchy,
    TieredChunkStore,
    TierStats,
)
from .layout import ChunkLayout, GroupPlacement
from .persist import StoreFormatError, load_store, save_store
from .traffic import (
    EDGES,
    NULL_ACCESS_RECORDER,
    NULL_TRAFFIC_LEDGER,
    ChunkAccessRecorder,
    NullChunkAccessRecorder,
    NullTrafficLedger,
    TrafficLedger,
)

__all__ = [
    "ChunkLayout",
    "GroupPlacement",
    "CompressedChunkStore",
    "DiskChunkStore",
    "BlobLog",
    "TieredChunkStore",
    "TierStats",
    "AccessSchedule",
    "MemoryHierarchy",
    "StoreStats",
    "BufferPool",
    "ChunkCache",
    "CacheStats",
    "EvictionPolicy",
    "LruPolicy",
    "MruPolicy",
    "BeladyPolicy",
    "CACHE_POLICIES",
    "make_policy",
    "MemoryTracker",
    "MemorySnapshot",
    "save_store",
    "load_store",
    "StoreFormatError",
    "EDGES",
    "TrafficLedger",
    "NullTrafficLedger",
    "NULL_TRAFFIC_LEDGER",
    "ChunkAccessRecorder",
    "NullChunkAccessRecorder",
    "NULL_ACCESS_RECORDER",
]
