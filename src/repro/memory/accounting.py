"""Memory accounting: current/peak bytes per category.

The whole point of MEMQSim is the memory footprint, so every allocation the
simulator makes flows through a :class:`MemoryTracker`: the compressed host
store, the host staging buffers, and the device arena each get a category.
The tracker answers the two headline questions:

* peak bytes per category / total (Fig. 2 benchmark), and
* the *qubit headroom*: how many extra qubits the same budget supports at
  the observed compression ratio (the paper's "+5 qubits" claim).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["MemoryTracker", "MemorySnapshot"]


@dataclass
class MemorySnapshot:
    """Point-in-time memory state (bytes)."""

    label: str
    current: Dict[str, int]
    total: int


class MemoryTracker:
    """Tracks current and peak byte usage by category.

    With a telemetry object attached, every balance change also updates a
    ``mem.<category>.bytes`` gauge (whose ``max`` mirrors the peak), so
    memory traces correlate with pipeline spans in one export.
    """

    def __init__(self, telemetry=None) -> None:
        self._current: Dict[str, int] = {}
        self._peak: Dict[str, int] = {}
        self._total_peak = 0
        self._snapshots: List[MemorySnapshot] = []
        self._last_event: Dict[str, int] = {}
        self.telemetry = telemetry

    def attach_telemetry(self, telemetry) -> None:
        """Start mirroring balances into gauges (existing ones included)."""
        self.telemetry = telemetry
        if telemetry is not None and telemetry.enabled:
            for cat, cur in self._current.items():
                telemetry.metrics.gauge(f"mem.{cat}.bytes").set(cur)

    def _gauge(self, category: str, value: int) -> None:
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.metrics.gauge(f"mem.{category}.bytes").set(value)
            # Publish significant balance changes on the live bus so
            # dashboards / per-job SSE streams see occupancy *movement*
            # without per-blob event flood: a category emits when it moved
            # by >= 1/64 of its peak (and always on its first change).
            last = self._last_event.get(category)
            if last is None or \
                    abs(value - last) >= max(1, self._peak.get(category, 0) >> 6):
                self._last_event[category] = value
                tel.emit("mem.gauge", category=category, bytes=value,
                         peak=self._peak.get(category, 0))

    # -- mutation ---------------------------------------------------------

    def alloc(self, category: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        cur = self._current.get(category, 0) + nbytes
        self._current[category] = cur
        if cur > self._peak.get(category, 0):
            self._peak[category] = cur
        total = self.total_current()
        if total > self._total_peak:
            self._total_peak = total
        self._gauge(category, cur)

    def free(self, category: str, nbytes: int) -> None:
        cur = self._current.get(category, 0) - nbytes
        if cur < 0:
            raise ValueError(
                f"negative balance for {category!r}: freeing {nbytes} from "
                f"{self._current.get(category, 0)}"
            )
        self._current[category] = cur
        self._gauge(category, cur)

    def resize(self, category: str, old_nbytes: int, new_nbytes: int) -> None:
        """Atomic free+alloc so peaks don't double-count a replacement."""
        self.free(category, old_nbytes)
        self.alloc(category, new_nbytes)

    def snapshot(self, label: str = "") -> MemorySnapshot:
        snap = MemorySnapshot(label, dict(self._current), self.total_current())
        self._snapshots.append(snap)
        return snap

    # -- queries ------------------------------------------------------------

    def current(self, category: str) -> int:
        return self._current.get(category, 0)

    def peak(self, category: str) -> int:
        return self._peak.get(category, 0)

    def total_current(self) -> int:
        return sum(self._current.values())

    def total_peak(self) -> int:
        return self._total_peak

    def categories(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self._current) | set(self._peak)))

    @property
    def snapshots(self) -> Tuple[MemorySnapshot, ...]:
        return tuple(self._snapshots)

    # -- derived figures -------------------------------------------------------

    @staticmethod
    def dense_bytes(num_qubits: int) -> int:
        """Footprint of the uncompressed dense state vector."""
        return (1 << num_qubits) * 16

    def effective_ratio(self, num_qubits: int, category: str = "chunk_store") -> float:
        """Dense footprint over this run's peak store footprint."""
        peak = self.peak(category)
        if peak == 0:
            return math.inf
        return self.dense_bytes(num_qubits) / peak

    @staticmethod
    def extra_qubits_from_ratio(ratio: float) -> float:
        """Qubit headroom: each 2x of compression buys one more qubit."""
        if ratio <= 0:
            raise ValueError("ratio must be positive")
        return math.log2(ratio)

    def report(self) -> str:
        lines = [f"{'category':<16} {'current':>14} {'peak':>14}"]
        for cat in self.categories():
            lines.append(
                f"{cat:<16} {self.current(cat):>14,} {self.peak(cat):>14,}"
            )
        lines.append(f"{'TOTAL':<16} {self.total_current():>14,} {self.total_peak():>14,}")
        return "\n".join(lines)
