"""Reusable host staging buffers (the paper's "CPU buffers").

The online stage decompresses chunks into a *fixed* set of staging buffers
rather than allocating per chunk — this is what bounds the uncompressed host
footprint to ``num_buffers * buffer_size`` regardless of qubit count. The
pool hands out preallocated complex128 arrays and takes them back; acquiring
beyond capacity raises, which surfaces scheduling bugs instead of silently
growing memory.
"""

from __future__ import annotations

import time
from typing import List, Optional, Set

import numpy as np

from ..telemetry import NULL_TELEMETRY, get_logger
from .accounting import MemoryTracker

__all__ = ["BufferPool"]

CATEGORY = "host_buffers"

log = get_logger(__name__)


class BufferPool:
    """Fixed pool of equally-sized complex128 staging buffers."""

    def __init__(
        self,
        num_buffers: int,
        buffer_size: int,
        tracker: Optional[MemoryTracker] = None,
        telemetry=None,
    ):
        if num_buffers < 1:
            raise ValueError("num_buffers must be >= 1")
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        self.num_buffers = int(num_buffers)
        self.buffer_size = int(buffer_size)
        self.tracker = tracker if tracker is not None else MemoryTracker()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._free: List[np.ndarray] = [
            np.empty(buffer_size, dtype=np.complex128) for _ in range(num_buffers)
        ]
        self._out: Set[int] = set()
        self.tracker.alloc(CATEGORY, self.total_nbytes)
        self.peak_in_use = 0

    @property
    def total_nbytes(self) -> int:
        return self.num_buffers * self.buffer_size * 16

    @property
    def available(self) -> int:
        return len(self._free)

    @property
    def in_use(self) -> int:
        return self.num_buffers - len(self._free)

    def acquire(self) -> np.ndarray:
        """Take a buffer; contents are unspecified (callers overwrite)."""
        tel = self.telemetry
        t0 = time.perf_counter() if tel.enabled else 0.0
        if not self._free:
            raise RuntimeError(
                f"buffer pool exhausted ({self.num_buffers} buffers all in use)"
            )
        buf = self._free.pop()
        self._out.add(id(buf))
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        if tel.enabled:
            # On this synchronous pool a free buffer is always ready, so
            # "wait" is the hand-out latency; a blocking pool would observe
            # genuine queueing here.
            tel.metrics.counter("pool.acquire.count").inc()
            tel.metrics.histogram("pool.acquire.wait.seconds").observe(
                time.perf_counter() - t0)
            tel.metrics.gauge("pool.in_use").set(self.in_use)
        return buf

    def release(self, buf: np.ndarray) -> None:
        """Return a buffer obtained from :meth:`acquire`."""
        if id(buf) not in self._out:
            raise ValueError("buffer does not belong to this pool")
        self._out.remove(id(buf))
        self._free.append(buf)
        if self.telemetry.enabled:
            self.telemetry.metrics.gauge("pool.in_use").set(self.in_use)

    def close(self) -> None:
        """Release accounting (pool must be fully returned)."""
        if self._out:
            raise RuntimeError(f"{len(self._out)} buffers still in use")
        self.tracker.free(CATEGORY, self.total_nbytes)
        self._free.clear()

    def __repr__(self) -> str:
        return (
            f"<BufferPool {self.num_buffers}x{self.buffer_size} "
            f"({self.in_use} in use, peak {self.peak_in_use})>"
        )
