"""Reusable host staging buffers (the paper's "CPU buffers").

The online stage decompresses chunks into a *fixed* set of staging buffers
rather than allocating per chunk — this is what bounds the uncompressed host
footprint to ``num_buffers * buffer_size`` regardless of qubit count. The
pool hands out preallocated complex128 arrays and takes them back; acquiring
beyond capacity raises, which surfaces scheduling bugs instead of silently
growing memory.

:class:`ScratchPool` is the codec-side sibling: a size-classed recycling
bin for the short-lived scratch arrays the entropy coder and the SZ-like
pipeline would otherwise allocate per chunk (bit matrices, plane buffers,
jump tables). Where :class:`BufferPool` enforces a fixed budget and strict
accounting, the scratch pool only *recycles* — misses fall through to the
allocator, and retention is capped so it can never hoard memory.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Set

import numpy as np

from ..telemetry import NULL_TELEMETRY, get_logger
from .accounting import MemoryTracker

__all__ = ["BufferPool", "ScratchPool", "scratch_pool"]

CATEGORY = "host_buffers"

log = get_logger(__name__)


class BufferPool:
    """Fixed pool of equally-sized complex staging buffers."""

    def __init__(
        self,
        num_buffers: int,
        buffer_size: int,
        tracker: Optional[MemoryTracker] = None,
        telemetry=None,
        dtype=np.complex128,
    ):
        if num_buffers < 1:
            raise ValueError("num_buffers must be >= 1")
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        self.num_buffers = int(num_buffers)
        self.buffer_size = int(buffer_size)
        self.dtype = np.dtype(dtype)
        self.tracker = tracker if tracker is not None else MemoryTracker()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._free: List[np.ndarray] = [
            np.empty(buffer_size, dtype=self.dtype)
            for _ in range(num_buffers)
        ]
        self._out: Set[int] = set()
        self.tracker.alloc(CATEGORY, self.total_nbytes)
        self.peak_in_use = 0

    @property
    def total_nbytes(self) -> int:
        return self.num_buffers * self.buffer_size * self.dtype.itemsize

    @property
    def available(self) -> int:
        return len(self._free)

    @property
    def in_use(self) -> int:
        return self.num_buffers - len(self._free)

    def acquire(self) -> np.ndarray:
        """Take a buffer; contents are unspecified (callers overwrite)."""
        tel = self.telemetry
        t0 = time.perf_counter() if tel.enabled else 0.0
        if not self._free:
            raise RuntimeError(
                f"buffer pool exhausted ({self.num_buffers} buffers all in use)"
            )
        buf = self._free.pop()
        self._out.add(id(buf))
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        if tel.enabled:
            # On this synchronous pool a free buffer is always ready, so
            # "wait" is the hand-out latency; a blocking pool would observe
            # genuine queueing here.
            tel.metrics.counter("pool.acquire.count").inc()
            tel.metrics.histogram("pool.acquire.wait.seconds").observe(
                time.perf_counter() - t0)
            tel.metrics.gauge("pool.in_use").set(self.in_use)
        return buf

    def release(self, buf: np.ndarray) -> None:
        """Return a buffer obtained from :meth:`acquire`."""
        if id(buf) not in self._out:
            raise ValueError("buffer does not belong to this pool")
        self._out.remove(id(buf))
        self._free.append(buf)
        if self.telemetry.enabled:
            self.telemetry.metrics.gauge("pool.in_use").set(self.in_use)

    def close(self) -> None:
        """Release accounting (pool must be fully returned)."""
        if self._out:
            raise RuntimeError(f"{len(self._out)} buffers still in use")
        self.tracker.free(CATEGORY, self.total_nbytes)
        self._free.clear()

    def __repr__(self) -> str:
        return (
            f"<BufferPool {self.num_buffers}x{self.buffer_size} "
            f"({self.in_use} in use, peak {self.peak_in_use})>"
        )


class ScratchPool:
    """Thread-safe freelist of reusable scratch arrays, size-classed.

    ``borrow(n, dtype)`` yields a 1-D array of ``n`` elements backed by a
    power-of-two byte buffer; on exit the buffer returns to its size-class
    freelist for the next borrower. Contents are never cleared — borrowers
    overwrite. Buffers whose return would push total retained bytes past
    ``max_bytes`` are dropped instead (the cap bounds the pool, not the
    workload). One freelist covers all dtypes: buffers are stored as raw
    uint8 and re-viewed per borrow, so an int32 jump table and a float64
    plane buffer of similar size recycle the same memory.
    """

    def __init__(self, max_bytes: int = 1 << 26):
        self.max_bytes = int(max_bytes)
        self._free: Dict[int, List[np.ndarray]] = {}
        self._lock = threading.Lock()
        self.retained_bytes = 0
        self.hits = 0
        self.misses = 0
        self.drops = 0

    @staticmethod
    def _capacity(nbytes: int) -> int:
        return 1 << max(8, (max(nbytes, 1) - 1).bit_length())

    @contextmanager
    def borrow(self, n: int, dtype):
        """Context manager yielding a reusable ``(n,)`` array of ``dtype``."""
        dtype = np.dtype(dtype)
        nbytes = int(n) * dtype.itemsize
        cap = self._capacity(nbytes)
        with self._lock:
            bucket = self._free.get(cap)
            if bucket:
                base = bucket.pop()
                self.retained_bytes -= cap
                self.hits += 1
            else:
                base = None
                self.misses += 1
        if base is None:
            base = np.empty(cap, dtype=np.uint8)
        try:
            yield base[:nbytes].view(dtype)
        finally:
            with self._lock:
                if self.retained_bytes + cap <= self.max_bytes:
                    self._free.setdefault(cap, []).append(base)
                    self.retained_bytes += cap
                else:
                    self.drops += 1

    def clear(self) -> None:
        """Drop every retained buffer (outstanding borrows are unaffected)."""
        with self._lock:
            self._free.clear()
            self.retained_bytes = 0

    def __repr__(self) -> str:
        return (
            f"<ScratchPool retained={self.retained_bytes:,}B "
            f"hits={self.hits} misses={self.misses} drops={self.drops}>"
        )


_SCRATCH: Optional[ScratchPool] = None
_SCRATCH_PID = -1
_SCRATCH_LOCK = threading.Lock()


def scratch_pool() -> ScratchPool:
    """The per-process scratch pool.

    Keyed on the pid so a forked codec worker lazily creates its own pool
    instead of sharing (copy-on-write) freelist state with the parent —
    each :class:`~repro.parallel.pool.CodecWorkerPool` worker recycles
    scratch across the jobs *it* runs, with no cross-process traffic.
    """
    global _SCRATCH, _SCRATCH_PID
    pid = os.getpid()
    if _SCRATCH is None or _SCRATCH_PID != pid:
        with _SCRATCH_LOCK:
            if _SCRATCH is None or _SCRATCH_PID != pid:
                _SCRATCH = ScratchPool()
                _SCRATCH_PID = pid
    return _SCRATCH
