"""Decompressed-chunk cache with write-back (paper design challenge 3).

The paper criticizes prior compressed simulation for poor data locality and
low cache hit rates. This cache sits in front of the
:class:`~repro.memory.chunkstore.CompressedChunkStore` and keeps a bounded
number of *decompressed* chunks resident:

* ``load`` hits skip decompression entirely;
* ``store`` marks the cached copy dirty and skips recompression until the
  chunk is evicted (**write-back**) — consecutive stages touching the same
  chunk pay the codec once, not per stage;
* eviction policy is pluggable (:class:`EvictionPolicy`): classic ``lru``;
  ``mru``, the right heuristic for the cyclic full-sweep access pattern
  chunked simulation generates (LRU evicts exactly the chunk that will be
  needed next; MRU pins a stable subset); and ``belady``, the *optimal*
  policy — evict the resident chunk with the farthest next use. Belady is
  normally a thought experiment, but the
  :class:`~repro.compile.CompiledPlan` fixes the entire access sequence
  before execution, so here it is achievable: attach an
  :class:`~repro.memory.hierarchy.AccessSchedule` and the cache replays
  the plan's future exactly. Off-schedule accesses (ad-hoc loads in serve
  jobs, result queries) fall back to MRU.

The cache reports hits/misses/write-backs so the locality experiment (A7)
can show hit rate and codec-time savings versus capacity and policy.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..telemetry import NULL_TELEMETRY, get_logger
from .accounting import MemoryTracker
from .chunkstore import CompressedChunkStore

__all__ = [
    "ChunkCache",
    "CacheStats",
    "EvictionPolicy",
    "LruPolicy",
    "MruPolicy",
    "BeladyPolicy",
    "CACHE_POLICIES",
    "make_policy",
]

CATEGORY = "chunk_cache"

log = get_logger(__name__)


@dataclass
class CacheStats:
    """Hit/miss accounting."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    write_hits: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class EvictionPolicy:
    """Victim selection for :class:`ChunkCache`.

    ``entries`` passed to :meth:`victim` is the cache's ``OrderedDict``
    (iteration order = recency, oldest first). Hooks are called on every
    cache event so stateful policies (Belady) can track per-chunk
    metadata.
    """

    name = "?"

    def on_access(self, chunk: int, op: str) -> None:
        """An access (``op`` = ``"r"``/``"w"``) is about to hit the cache."""

    def victim(self, entries: "OrderedDict[int, list]") -> int:
        raise NotImplementedError

    def on_remove(self, chunk: int) -> None:
        """``chunk`` left the cache (eviction, invalidation, zeroing)."""

    def on_clear(self) -> None:
        """The cache was flushed empty."""

    def attach_schedule(self, schedule) -> None:
        """Attach a plan-exact schedule; default policies ignore it."""


class LruPolicy(EvictionPolicy):
    name = "lru"

    def victim(self, entries) -> int:
        return next(iter(entries))


class MruPolicy(EvictionPolicy):
    """Evict the most recently used: pins a stable subset under cyclic
    sweeps, the paper's default."""

    name = "mru"

    def victim(self, entries) -> int:
        return next(reversed(entries))


class BeladyPolicy(EvictionPolicy):
    """Plan-driven Belady/MIN: evict the resident chunk whose next use is
    farthest in the future.

    Next-use positions come from an attached
    :class:`~repro.memory.hierarchy.AccessSchedule`; every cache access is
    matched against the schedule cursor (``observe``), which yields the
    access's barrier-bounded next-use index. Chunks whose accesses fall
    off-schedule (no schedule attached, ad-hoc loads) carry no next-use
    and evict first, most-recent first — i.e. the policy degrades to
    exact MRU, never worse than the previous default.
    """

    name = "belady"

    def __init__(self, schedule=None):
        self.schedule = schedule
        # chunk -> barrier-bounded next-use position; None = off-schedule
        self._next_use: dict = {}

    def attach_schedule(self, schedule) -> None:
        self.schedule = schedule

    def on_access(self, chunk: int, op: str) -> None:
        nu = self.schedule.observe(chunk, op) \
            if self.schedule is not None else None
        self._next_use[chunk] = nu

    def victim(self, entries) -> int:
        # First maximum in recency order; finite next-use positions are
        # unique (they are schedule indices), so the only ties are at
        # infinity — past the next barrier, where the flush erases any
        # difference between choices. Off-schedule entries outrank even
        # infinity and break ties MRU-wise (latest wins).
        victim = None
        victim_nu = -1.0
        unknown = None
        for chunk in entries:
            nu = self._next_use.get(chunk)
            if nu is None:
                unknown = chunk
            elif victim is None or nu > victim_nu:
                victim, victim_nu = chunk, nu
        return unknown if unknown is not None else victim

    def on_remove(self, chunk: int) -> None:
        self._next_use.pop(chunk, None)

    def on_clear(self) -> None:
        self._next_use.clear()


CACHE_POLICIES = ("lru", "mru", "belady")


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate an eviction policy by name (``lru``/``mru``/``belady``)."""
    if name == "lru":
        return LruPolicy()
    if name == "mru":
        return MruPolicy()
    if name == "belady":
        return BeladyPolicy()
    raise ValueError(
        f"policy must be {'|'.join(CACHE_POLICIES)}, got {name!r}")


class ChunkCache:
    """Bounded write-back cache over a compressed chunk store.

    Exposes the same ``load``/``store``/``permute``/``zero_chunk`` surface
    as the store (plus :meth:`flush`); any other attribute delegates to the
    wrapped store, so the cache is a drop-in replacement wherever a store
    is expected.
    """

    def __init__(
        self,
        store: CompressedChunkStore,
        capacity_chunks: int,
        policy: str = "mru",
        tracker: Optional[MemoryTracker] = None,
        telemetry=None,
    ):
        if capacity_chunks < 1:
            raise ValueError("capacity_chunks must be >= 1")
        self.inner = store
        self.capacity = int(capacity_chunks)
        self.policy = policy
        self._policy = make_policy(policy)
        self.dtype = np.dtype(getattr(store, "dtype", np.complex128))
        self.tracker = tracker if tracker is not None else store.tracker
        self.telemetry = telemetry if telemetry is not None else \
            getattr(store, "telemetry", NULL_TELEMETRY)
        self.cache_stats = CacheStats()
        # chunk id -> (array, dirty); insertion order = recency (last=MRU).
        self._entries: "OrderedDict[int, list]" = OrderedDict()

    # -- delegation ---------------------------------------------------------

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def attach_schedule(self, schedule) -> None:
        """Feed the plan-exact access schedule to the eviction policy."""
        self._policy.attach_schedule(schedule)

    # -- cache mechanics ------------------------------------------------------

    def _touch(self, chunk: int) -> None:
        self._entries.move_to_end(chunk)

    def _insert(self, chunk: int, data: np.ndarray, dirty: bool) -> None:
        if chunk in self._entries:
            entry = self._entries[chunk]
            entry[0][:] = data
            entry[1] = entry[1] or dirty
            self._touch(chunk)
            return
        while len(self._entries) >= self.capacity:
            self._evict_one()
        arr = np.array(data, dtype=self.dtype, copy=True)
        self._entries[chunk] = [arr, dirty]
        self.tracker.alloc(CATEGORY, arr.nbytes)

    def _evict_one(self) -> None:
        if not self._entries:
            return
        chunk = self._policy.victim(self._entries)
        entry = self._entries.pop(chunk)
        self._policy.on_remove(chunk)
        arr, dirty = entry
        if dirty:
            self.inner.store(chunk, arr)
            self.cache_stats.writebacks += 1
            if self.telemetry.enabled:
                self.telemetry.metrics.counter("cache.writeback").inc()
        self.tracker.free(CATEGORY, arr.nbytes)
        self.cache_stats.evictions += 1
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("cache.eviction").inc()
            self.telemetry.emit("cache.evict", chunk=chunk, dirty=dirty)

    def flush(self) -> None:
        """Write back every dirty chunk and empty the cache."""
        dirty_n = 0
        for chunk, (arr, dirty) in list(self._entries.items()):
            if dirty:
                self.inner.store(chunk, arr)
                self.cache_stats.writebacks += 1
                dirty_n += 1
            self.tracker.free(CATEGORY, arr.nbytes)
        if self.telemetry.enabled:
            if dirty_n:
                self.telemetry.metrics.counter("cache.writeback").inc(dirty_n)
            if self._entries:
                self.telemetry.emit("cache.flush",
                                    resident=len(self._entries),
                                    written_back=dirty_n)
        log.debug("cache flush: %d resident, %d written back",
                  len(self._entries), dirty_n)
        self._entries.clear()
        self._policy.on_clear()

    @property
    def resident_chunks(self) -> int:
        return len(self._entries)

    # -- store surface ------------------------------------------------------------

    def load(self, chunk: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        self._policy.on_access(chunk, "r")
        entry = self._entries.get(chunk)
        if entry is not None:
            self.cache_stats.hits += 1
            data = entry[0]
            if self.telemetry.enabled:
                self.telemetry.metrics.counter("cache.hit").inc()
                # Bytes *served* from the cache: codec traffic avoided.
                self.telemetry.traffic.record("cache", "hit", data.nbytes)
            self._touch(chunk)
            if out is not None:
                out[: data.shape[0]] = data
                return out
            return data.copy()
        self.cache_stats.misses += 1
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("cache.miss").inc()
            # Bytes fetched *past* the cache (the inner load's decompress).
            self.telemetry.traffic.record(
                "cache", "miss", self.inner.layout.chunk_nbytes)
        data = self.inner.load(chunk)
        self._insert(chunk, data, dirty=False)
        if out is not None:
            out[: data.shape[0]] = data
            return out
        return data

    def store(self, chunk: int, data: np.ndarray) -> None:
        if data.shape[0] != self.inner.layout.chunk_size:
            raise ValueError("buffer size mismatch")
        self._policy.on_access(chunk, "w")
        if chunk in self._entries:
            self.cache_stats.write_hits += 1
        self._insert(chunk, data, dirty=True)

    def load_batch(self, chunks, out: Optional[np.ndarray] = None) -> np.ndarray:
        # Through the cache entry-by-entry so dirty copies stay coherent.
        cs = self.inner.layout.chunk_size
        if out is None:
            out = np.empty(len(chunks) * cs, dtype=self.dtype)
        for i, c in enumerate(chunks):
            self.load(c, out=out[i * cs:(i + 1) * cs])
        return out

    def store_batch(self, chunks, data: np.ndarray) -> None:
        cs = self.inner.layout.chunk_size
        if data.shape[0] != len(chunks) * cs:
            raise ValueError("buffer size mismatch")
        for i, c in enumerate(chunks):
            self.store(c, data[i * cs:(i + 1) * cs])

    def zero_chunk(self, chunk: int) -> None:
        entry = self._entries.pop(chunk, None)
        if entry is not None:
            self.tracker.free(CATEGORY, entry[0].nbytes)
            self._policy.on_remove(chunk)
        self.inner.zero_chunk(chunk)

    # -- blob-level surface (parallel codec path) ----------------------------

    def get_blob(self, chunk: int):
        """Coherent raw-blob read: write back a dirty cached copy first."""
        entry = self._entries.get(chunk)
        if entry is not None and entry[1]:
            self.inner.store(chunk, entry[0])
            entry[1] = False
            self.cache_stats.writebacks += 1
            if self.telemetry.enabled:
                self.telemetry.metrics.counter("cache.writeback").inc()
        return self.inner.get_blob(chunk)

    def put_blob(self, chunk: int, blob: bytes, **kwargs) -> None:
        """Install an external blob, dropping any (now stale) cached copy."""
        entry = self._entries.pop(chunk, None)
        if entry is not None:
            self.tracker.free(CATEGORY, entry[0].nbytes)
            self._policy.on_remove(chunk)
        self.inner.put_blob(chunk, blob, **kwargs)

    def permute(self, perm) -> None:
        # Blob permutation happens on compressed data; flush first so the
        # relabeling sees every update, then drop the (now stale) cache.
        self.flush()
        self.inner.permute(perm)

    def to_statevector(self) -> np.ndarray:
        self.flush()
        return self.inner.to_statevector()

    def compressed_nbytes(self) -> int:
        self.flush()
        return self.inner.compressed_nbytes()

    def compression_ratio(self) -> float:
        self.flush()
        return self.inner.compression_ratio()

    def __repr__(self) -> str:
        s = self.cache_stats
        return (
            f"<ChunkCache {self.policy} {self.resident_chunks}/{self.capacity} "
            f"hit_rate={s.hit_rate:.2f} writebacks={s.writebacks}>"
        )
