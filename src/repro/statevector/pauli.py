"""Pauli-string machinery shared by the dense and chunked simulators.

A Pauli string ``P`` over qubits decomposes into an X-type bit mask (which
amplitudes pair up), a Z-type mask (sign flips), and the Y bookkeeping
phases. ``<psi|P|psi> = sum_i conj(psi_i) * phase(i) * psi_{i ^ x_mask}``
with a per-index phase computed here vectorized — the same function serves
the dense path (one call over all indices) and the chunked path (one call
per chunk's global index range), so both agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["PauliString", "parse_pauli", "pauli_phase"]


@dataclass(frozen=True)
class PauliString:
    """Parsed Pauli string.

    Attributes:
        x_mask: OR of ``1 << q`` for X and Y qubits (amplitude pairing).
        z_mask: OR of ``1 << q`` for Z qubits (index-parity signs).
        y_qubits: qubits carrying Y (each contributes ``i * (-1)^bit``).
        num_qubits: highest qubit + 1 (for validation).
    """

    x_mask: int
    z_mask: int
    y_qubits: Tuple[int, ...]
    num_qubits: int

    @property
    def is_diagonal(self) -> bool:
        return self.x_mask == 0


def parse_pauli(pauli: str, qubits: Optional[Sequence[int]] = None) -> PauliString:
    """Parse ``pauli`` over ``qubits`` (defaults to ``0..len-1``)."""
    pauli = pauli.upper()
    if qubits is None:
        qubits = list(range(len(pauli)))
    if len(pauli) != len(qubits):
        raise ValueError("pauli string and qubit list lengths differ")
    if len(set(qubits)) != len(qubits):
        raise ValueError("duplicate qubits in Pauli string")
    x_mask = 0
    z_mask = 0
    y_qubits: List[int] = []
    hi = -1
    for ch, q in zip(pauli, qubits):
        if q < 0:
            raise ValueError("negative qubit index")
        hi = max(hi, q)
        if ch == "I":
            continue
        elif ch == "Z":
            z_mask |= 1 << q
        elif ch == "X":
            x_mask |= 1 << q
        elif ch == "Y":
            x_mask |= 1 << q
            y_qubits.append(q)
        else:
            raise ValueError(f"invalid Pauli letter {ch!r}")
    return PauliString(x_mask, z_mask, tuple(y_qubits), hi + 1)


def _parity(bits: np.ndarray) -> np.ndarray:
    """Vectorized popcount parity of a uint64 array."""
    v = bits.copy()
    v ^= v >> np.uint64(32)
    v ^= v >> np.uint64(16)
    v ^= v >> np.uint64(8)
    v ^= v >> np.uint64(4)
    v ^= v >> np.uint64(2)
    v ^= v >> np.uint64(1)
    return (v & np.uint64(1)).astype(np.int64)


def pauli_phase(ps: PauliString, idx: np.ndarray) -> np.ndarray:
    """Phase ``phase(i)`` such that ``(P psi)_i = phase(i) * psi_{i ^ x}``.

    ``idx`` is the array of *global* amplitude indices (uint64). The phase
    combines the Z-parity sign of ``i`` and, per Y qubit, ``i * (-1)^b``
    where ``b`` is the source bit (of ``i ^ x_mask``).
    """
    idx = idx.astype(np.uint64, copy=False)
    phase = np.ones(idx.shape, dtype=np.complex128)
    if ps.z_mask:
        par = _parity(idx & np.uint64(ps.z_mask))
        phase *= 1.0 - 2.0 * par
    if ps.y_qubits:
        flipped = idx ^ np.uint64(ps.x_mask)
        ymask = 0
        for q in ps.y_qubits:
            ymask |= 1 << q
        par = _parity(flipped & np.uint64(ymask))
        phase *= (1j ** len(ps.y_qubits)) * (1.0 - 2.0 * par)
    return phase
