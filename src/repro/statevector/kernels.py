"""Vectorized amplitude-update kernels.

These functions are the numerical heart of both the dense baseline simulator
and the simulated-GPU executor: they apply a ``k``-qubit unitary to a state
vector (or to any amplitude buffer whose length is a power of two — chunked
execution reuses them on chunk and pair buffers).

Conventions
-----------
* Little-endian: qubit ``q`` is bit ``q`` of the basis index.
* A gate on qubits ``(q0, q1, ..)`` has its *first* listed qubit as the least
  significant axis of its matrix (see :mod:`repro.circuits.gates`).
* All kernels update the buffer **in place** (guide idiom: in-place ops and
  views, not copies), allocating only small per-call temporaries.

Fast paths
----------
* single-qubit gates use a strided 3-D view — no data movement;
* diagonal gates multiply slices by scalars;
* X / SWAP permutations swap slices;
* the generic path reshapes to a ``(2,)*m`` tensor, moves the target axes to
  the front and applies one matmul (one contiguous copy each way).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "apply_gate",
    "apply_matrix_generic",
    "apply_1q",
    "apply_diagonal",
    "apply_stored_diagonal",
    "apply_circuit_gate",
    "apply_gate_list",
    "num_qubits_of",
]


def num_qubits_of(buf: np.ndarray) -> int:
    """Number of qubits represented by a power-of-two-length buffer."""
    n = buf.shape[0]
    m = n.bit_length() - 1
    if 1 << m != n:
        raise ValueError(f"buffer length {n} is not a power of two")
    return m


# ---------------------------------------------------------------------------
# Single-qubit fast paths
# ---------------------------------------------------------------------------

def apply_1q(buf: np.ndarray, matrix: np.ndarray, qubit: int) -> None:
    """Apply a 2x2 unitary to ``qubit`` of ``buf`` in place."""
    stride = 1 << qubit
    view = buf.reshape(-1, 2, stride)
    a = view[:, 0, :]
    b = view[:, 1, :]
    m00, m01, m10, m11 = matrix[0, 0], matrix[0, 1], matrix[1, 0], matrix[1, 1]
    if m01 == 0 and m10 == 0:
        # Diagonal: pure in-place scaling.
        if m00 != 1:
            a *= m00
        if m11 != 1:
            b *= m11
        return
    if m00 == 0 and m11 == 0 and m01 == 1 and m10 == 1:
        # Pauli-X: slice swap without a full temp copy of both halves.
        tmp = a.copy()
        a[...] = b
        b[...] = tmp
        return
    new_a = m00 * a + m01 * b
    b *= m11
    b += m10 * a
    a[...] = new_a


def apply_diagonal(buf: np.ndarray, diag: np.ndarray, qubits: Sequence[int]) -> None:
    """Apply a diagonal gate given by its diagonal vector ``diag``.

    ``diag`` has length ``2^k``; entry ``t`` multiplies amplitudes whose bits
    on ``qubits`` spell ``t`` (first listed qubit = least significant bit of
    ``t``).
    """
    m = num_qubits_of(buf)
    k = len(qubits)
    tensor = buf.reshape((2,) * m)
    for t in range(1 << k):
        factor = diag[t]
        if factor == 1:
            continue
        idx = [slice(None)] * m
        for j, q in enumerate(qubits):
            idx[m - 1 - q] = (t >> j) & 1
        tensor[tuple(idx)] *= factor


#: memoized wide-diagonal gather tables, keyed (num_qubits, qubits tuple).
#: The chunk loop applies the same diagonal op to every chunk of a group, so
#: the table is identical across calls; bounded so pathological gate variety
#: cannot grow it without limit.
_DIAG_GATHER_CACHE: dict = {}
_DIAG_GATHER_CACHE_MAX = 64


def _diag_gather_table(m: int, qubits: tuple) -> np.ndarray:
    key = (m, qubits)
    t = _DIAG_GATHER_CACHE.get(key)
    if t is None:
        idx = np.arange(1 << m, dtype=np.int64)
        t = np.zeros_like(idx)
        for j, q in enumerate(qubits):
            t |= ((idx >> q) & 1) << j
        if len(_DIAG_GATHER_CACHE) >= _DIAG_GATHER_CACHE_MAX:
            _DIAG_GATHER_CACHE.clear()
        _DIAG_GATHER_CACHE[key] = t
    return t


def apply_stored_diagonal(buf: np.ndarray, diag: np.ndarray,
                          qubits: Sequence[int]) -> None:
    """Apply a diagonal gate of any width, including the full register.

    Wide diagonals (e.g. Grover oracles over all qubits) use a vectorized
    gather of the diagonal instead of ``2^k`` slice updates; the gather
    index table is memoized across the per-chunk loop.
    """
    m = num_qubits_of(buf)
    k = len(qubits)
    if k <= 3:
        apply_diagonal(buf, diag, qubits)
        return
    if tuple(qubits) == tuple(range(m)):
        buf *= diag
        return
    buf *= diag[_diag_gather_table(m, tuple(qubits))]


def apply_circuit_gate(buf: np.ndarray, gate) -> None:
    """Apply a :class:`~repro.circuits.gates.Gate`, using the compact
    diagonal representation when the gate stores one."""
    d = getattr(gate, "diag", None)
    if d is not None:
        apply_stored_diagonal(buf, d, gate.qubits)
    else:
        apply_gate(buf, gate.matrix, gate.qubits)


# ---------------------------------------------------------------------------
# Generic k-qubit path
# ---------------------------------------------------------------------------

def apply_matrix_generic(
    buf: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> None:
    """Apply a ``2^k x 2^k`` unitary to ``qubits`` of ``buf`` in place.

    Works for any k < m. One matmul over a gathered ``(2^k, 2^(m-k))`` view.
    """
    m = num_qubits_of(buf)
    k = len(qubits)
    tensor = buf.reshape((2,) * m)
    # Axis of qubit q is (m - 1 - q); gather axes most-significant-gate-bit
    # first so the flattened row index equals the gate-matrix index.
    axes = [m - 1 - q for q in reversed(qubits)]
    moved = np.moveaxis(tensor, axes, range(k))
    shape = moved.shape
    flat = np.ascontiguousarray(moved).reshape(1 << k, -1)
    moved[...] = (matrix @ flat).reshape(shape)


def apply_gate(
    buf: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int | None = None,
) -> None:
    """Dispatch to the best kernel for this gate.

    Args:
        buf: amplitude buffer of length ``2^m`` (modified in place).
        matrix: the gate's ``2^k x 2^k`` unitary.
        qubits: gate qubits (little-endian positions within ``buf``).
        num_qubits: optional sanity-check value for ``m``.
    """
    if num_qubits is not None and buf.shape[0] != 1 << num_qubits:
        raise ValueError(
            f"buffer length {buf.shape[0]} != 2^{num_qubits}"
        )
    k = len(qubits)
    if k == 1:
        apply_1q(buf, matrix, qubits[0])
        return
    # Diagonal fast path for multi-qubit gates (cz, cp, rzz, ccz, ...).
    d = np.diag(matrix)
    if np.count_nonzero(matrix) == np.count_nonzero(d):
        apply_diagonal(buf, d, qubits)
        return
    apply_matrix_generic(buf, matrix, qubits)


def apply_gate_list(
    buf: np.ndarray,
    gates: Sequence[Tuple[np.ndarray, Tuple[int, ...]]],
) -> None:
    """Apply ``(matrix, qubits)`` pairs in order — the executor's batch entry."""
    for matrix, qubits in gates:
        apply_gate(buf, matrix, qubits)


# ---------------------------------------------------------------------------
# Gate fusion helper
# ---------------------------------------------------------------------------

def fuse_1q_matrices(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Multiply a chain of 2x2 matrices applied first-to-last into one."""
    out = np.eye(2, dtype=np.complex128)
    for m in matrices:
        out = m @ out
    return out
