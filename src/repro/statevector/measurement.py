"""Measurement: sampling, collapse, and counts.

Sampling never builds per-shot copies of the state — it draws from the
probability vector with an inverse-CDF search (vectorized ``searchsorted``),
which is exact for terminal measurement. Mid-circuit measurement collapses
the state in place.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Sequence

import numpy as np

from .statevector import StateVector

__all__ = ["sample_counts", "sample_outcomes", "measure_qubit", "expectation_z"]


def sample_outcomes(
    sv: StateVector, shots: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Draw ``shots`` basis-state indices from ``|amp|^2``."""
    if shots < 0:
        raise ValueError("shots must be >= 0")
    if rng is None:
        rng = np.random.default_rng()
    probs = sv.probabilities()
    total = probs.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        probs = probs / total
    cdf = np.cumsum(probs)
    cdf[-1] = 1.0
    u = rng.random(shots)
    return np.searchsorted(cdf, u, side="right").astype(np.int64)


def sample_counts(
    sv: StateVector,
    shots: int,
    qubits: Optional[Sequence[int]] = None,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, int]:
    """Histogram of measurement bitstrings (qubit 0 rightmost).

    If ``qubits`` is given, outcomes are restricted to those qubits, with
    ``qubits[0]`` as the rightmost character.
    """
    outcomes = sample_outcomes(sv, shots, rng)
    n = sv.num_qubits
    if qubits is None:
        width = n
        keys = [format(int(o), f"0{width}b") for o in outcomes]
    else:
        width = len(qubits)
        reduced = np.zeros_like(outcomes)
        for j, q in enumerate(qubits):
            reduced |= ((outcomes >> q) & 1) << j
        keys = [format(int(o), f"0{width}b") for o in reduced]
    return dict(Counter(keys))


def measure_qubit(
    sv: StateVector, qubit: int, rng: Optional[np.random.Generator] = None
) -> int:
    """Projectively measure one qubit, collapsing ``sv`` in place.

    Returns the observed bit. The state is renormalized.
    """
    if rng is None:
        rng = np.random.default_rng()
    n = sv.num_qubits
    if not 0 <= qubit < n:
        raise ValueError(f"qubit {qubit} out of range")
    view = sv.data.reshape(-1, 2, 1 << qubit)
    p1 = float(np.sum(np.abs(view[:, 1, :]) ** 2))
    p1 = min(1.0, max(0.0, p1))
    bit = 1 if rng.random() < p1 else 0
    keep = p1 if bit == 1 else 1.0 - p1
    if keep <= 0.0:
        # Numerically impossible branch drawn; fall back to the certain one.
        bit = 1 - bit
        keep = 1.0 - keep
    view[:, 1 - bit, :] = 0.0
    sv.data /= np.sqrt(keep)
    return bit


def expectation_z(sv: StateVector, qubit: int) -> float:
    """⟨Z_q⟩ computed from the marginal without building an operator."""
    view = sv.data.reshape(-1, 2, 1 << qubit)
    p1 = float(np.sum(np.abs(view[:, 1, :]) ** 2))
    return 1.0 - 2.0 * p1
