"""Entanglement measures.

Why do some state vectors compress 100x and others not at all? The
information-theoretic answer is entanglement: a weakly-entangled state is
(near) a product of small tensors, so its amplitude array is highly
redundant; a Page-typical random state has nearly maximal entropy and is
incompressible. These utilities quantify that:

* :func:`entanglement_entropy` — von Neumann entropy (base 2) across a
  contiguous bipartition, via SVD of the amplitude matrix;
* :func:`reduced_density_matrix` — exact RDM of an arbitrary small qubit
  subset;
* :func:`entropy_profile` — entropy at every cut position (the "area law
  vs volume law" fingerprint).

Experiment A8 correlates these against measured compression ratios.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = [
    "entanglement_entropy",
    "reduced_density_matrix",
    "von_neumann_entropy",
    "entropy_profile",
    "max_entropy",
]


def _as_state(data) -> np.ndarray:
    arr = np.asarray(getattr(data, "data", data), dtype=np.complex128)
    n = arr.shape[0]
    if n & (n - 1):
        raise ValueError("state length is not a power of two")
    return arr


def entanglement_entropy(state, cut: int) -> float:
    """Entropy (bits) across the bipartition qubits [0, cut) | [cut, n).

    Computed from the singular values of the ``(2^(n-cut), 2^cut)``
    amplitude matrix (C-order reshape puts the low qubits in the last
    axis), which is numerically exact and never forms a density matrix.
    """
    psi = _as_state(state)
    n = psi.shape[0].bit_length() - 1
    if not 0 < cut < n:
        raise ValueError(f"cut must be in 1..{n - 1}")
    mat = psi.reshape(1 << (n - cut), 1 << cut)
    s = np.linalg.svd(mat, compute_uv=False)
    p = s * s
    p = p[p > 1e-300]
    p = p / p.sum()
    return float(-(p * np.log2(p)).sum())


def von_neumann_entropy(rho: np.ndarray) -> float:
    """Entropy (bits) of a density matrix."""
    w = np.linalg.eigvalsh(rho)
    w = w[w > 1e-300]
    return float(-(w * np.log2(w)).sum())


def reduced_density_matrix(state, qubits: Sequence[int]) -> np.ndarray:
    """Exact RDM over ``qubits`` (first listed = least significant index).

    Cost is ``O(2^n * 2^k)`` — fine for the few-qubit marginals analysis
    needs.
    """
    psi = _as_state(state)
    n = psi.shape[0].bit_length() - 1
    qubits = list(qubits)
    if len(set(qubits)) != len(qubits):
        raise ValueError("duplicate qubits")
    if any(not 0 <= q < n for q in qubits):
        raise ValueError("qubit out of range")
    k = len(qubits)
    tensor = psi.reshape((2,) * n)
    keep_axes = [n - 1 - q for q in reversed(qubits)]  # MSB-first gate order
    rest = [a for a in range(n) if a not in keep_axes]
    moved = np.moveaxis(tensor, keep_axes, range(k))
    flat = moved.reshape(1 << k, -1)
    rho = flat @ flat.conj().T
    return rho


def entropy_profile(state) -> List[float]:
    """Entanglement entropy at every cut 1..n-1."""
    psi = _as_state(state)
    n = psi.shape[0].bit_length() - 1
    return [entanglement_entropy(psi, cut) for cut in range(1, n)]


def max_entropy(cut: int, num_qubits: int) -> float:
    """Upper bound: min(cut, n-cut) bits."""
    return float(min(cut, num_qubits - cut))
