"""The dense full-memory baseline simulator (SV-Sim stand-in).

:class:`DenseSimulator` holds the entire ``2^n`` state vector in one
contiguous array and applies gates through the vectorized kernels. It is

* the correctness oracle every MEMQSim configuration is tested against, and
* the "no compression, unlimited memory" baseline in the end-to-end
  benchmarks (experiment A3 in DESIGN.md).

Gate fusion is delegated to the shared compile layer
(:func:`repro.compile.compile_gates`) — the same passes that lower the
chunked pipeline's plan — so the dense baseline and MEMQSim execute
identically-fused ops.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..circuits.circuit import Circuit
from .kernels import apply_gate, apply_stored_diagonal
from .measurement import sample_counts
from .statevector import StateVector

__all__ = ["DenseSimulator", "DenseRunStats"]


@dataclass
class DenseRunStats:
    """Timing and size accounting for one dense run."""

    num_qubits: int = 0
    num_gates: int = 0
    num_fused_groups: int = 0
    wall_time_s: float = 0.0
    peak_bytes: int = 0
    per_gate_seconds: Dict[str, float] = field(default_factory=dict)


class DenseSimulator:
    """Full in-memory state-vector simulator."""

    def __init__(self, fuse_single_qubit_gates: bool = False,
                 max_fuse_qubits: int = 3):
        self.fuse_single_qubit_gates = bool(fuse_single_qubit_gates)
        self.max_fuse_qubits = int(max_fuse_qubits)
        self.last_stats: Optional[DenseRunStats] = None

    # -- public API -------------------------------------------------------

    def run(
        self,
        circuit: Circuit,
        initial_state: Optional[StateVector] = None,
    ) -> StateVector:
        """Execute ``circuit`` and return the final state."""
        sv = (
            initial_state.copy()
            if initial_state is not None
            else StateVector(circuit.num_qubits)
        )
        if sv.num_qubits != circuit.num_qubits:
            raise ValueError("initial state size does not match circuit")
        stats = DenseRunStats(
            num_qubits=circuit.num_qubits,
            num_gates=len(circuit),
            peak_bytes=sv.nbytes,
        )
        t0 = time.perf_counter()
        ops = self._plan(circuit)
        stats.num_fused_groups = len(ops)
        for op in ops:
            g0 = time.perf_counter()
            d = op.diag
            if d is not None:
                apply_stored_diagonal(sv.data, d, op.qubits)
            else:
                apply_gate(sv.data, op.to_gate().matrix, op.qubits,
                           circuit.num_qubits)
            dt = time.perf_counter() - g0
            name = op.name
            stats.per_gate_seconds[name] = stats.per_gate_seconds.get(name, 0.0) + dt
        stats.wall_time_s = time.perf_counter() - t0
        self.last_stats = stats
        return sv

    def sample(
        self,
        circuit: Circuit,
        shots: int,
        seed: Optional[int] = None,
    ) -> Dict[str, int]:
        """Run and sample measurement outcomes on all qubits."""
        sv = self.run(circuit)
        return sample_counts(sv, shots, rng=np.random.default_rng(seed))

    def expectation(self, circuit: Circuit, pauli: str,
                    qubits: Optional[Sequence[int]] = None) -> float:
        return self.run(circuit).expectation_pauli(pauli, qubits)

    # -- planning ------------------------------------------------------------

    def _plan(self, circuit: Circuit):
        """Lower the circuit to compiled ops (GateOp/FusedOp).

        With fusion off every gate lowers 1:1; with fusion on the shared
        compile passes fold 1q runs, merge diagonal runs, and fuse gate
        windows up to ``max_fuse_qubits``-wide dense unitaries.
        """
        # Runtime import: repro.compile imports this package's kernels.
        from ..compile import CompileOptions, compile_gates

        opts = CompileOptions(fusion=self.fuse_single_qubit_gates,
                              max_fuse_qubits=self.max_fuse_qubits)
        ops, _ = compile_gates(circuit.gates, opts)
        return ops
