"""The dense full-memory baseline simulator (SV-Sim stand-in).

:class:`DenseSimulator` holds the entire ``2^n`` state vector in one
contiguous array and applies gates through the vectorized kernels. It is

* the correctness oracle every MEMQSim configuration is tested against, and
* the "no compression, unlimited memory" baseline in the end-to-end
  benchmarks (experiment A3 in DESIGN.md).

Optional adjacent single-qubit gate fusion (guide idiom: compute less) merges
runs of 1q gates on the same qubit into one 2x2 matmul.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate
from .kernels import apply_gate, apply_stored_diagonal, fuse_1q_matrices
from .measurement import sample_counts
from .statevector import StateVector

__all__ = ["DenseSimulator", "DenseRunStats"]


@dataclass
class DenseRunStats:
    """Timing and size accounting for one dense run."""

    num_qubits: int = 0
    num_gates: int = 0
    num_fused_groups: int = 0
    wall_time_s: float = 0.0
    peak_bytes: int = 0
    per_gate_seconds: Dict[str, float] = field(default_factory=dict)


class DenseSimulator:
    """Full in-memory state-vector simulator."""

    def __init__(self, fuse_single_qubit_gates: bool = False):
        self.fuse_single_qubit_gates = bool(fuse_single_qubit_gates)
        self.last_stats: Optional[DenseRunStats] = None

    # -- public API -------------------------------------------------------

    def run(
        self,
        circuit: Circuit,
        initial_state: Optional[StateVector] = None,
    ) -> StateVector:
        """Execute ``circuit`` and return the final state."""
        sv = (
            initial_state.copy()
            if initial_state is not None
            else StateVector(circuit.num_qubits)
        )
        if sv.num_qubits != circuit.num_qubits:
            raise ValueError("initial state size does not match circuit")
        stats = DenseRunStats(
            num_qubits=circuit.num_qubits,
            num_gates=len(circuit),
            peak_bytes=sv.nbytes,
        )
        t0 = time.perf_counter()
        groups = self._plan(circuit)
        stats.num_fused_groups = len(groups)
        for kind, payload, qubits, name in groups:
            g0 = time.perf_counter()
            if kind == "diag":
                apply_stored_diagonal(sv.data, payload, qubits)
            else:
                apply_gate(sv.data, payload, qubits, circuit.num_qubits)
            dt = time.perf_counter() - g0
            stats.per_gate_seconds[name] = stats.per_gate_seconds.get(name, 0.0) + dt
        stats.wall_time_s = time.perf_counter() - t0
        self.last_stats = stats
        return sv

    def sample(
        self,
        circuit: Circuit,
        shots: int,
        seed: Optional[int] = None,
    ) -> Dict[str, int]:
        """Run and sample measurement outcomes on all qubits."""
        sv = self.run(circuit)
        return sample_counts(sv, shots, rng=np.random.default_rng(seed))

    def expectation(self, circuit: Circuit, pauli: str,
                    qubits: Optional[Sequence[int]] = None) -> float:
        return self.run(circuit).expectation_pauli(pauli, qubits)

    # -- planning ------------------------------------------------------------

    def _plan(self, circuit: Circuit):
        """Return ``(kind, payload, qubits, name)`` records to execute.

        ``kind`` is ``"mat"`` (payload = unitary matrix) or ``"diag"``
        (payload = stored diagonal vector). With fusion enabled, consecutive
        single-qubit gates on the same qubit (with no intervening gate
        touching that qubit) collapse into one matrix.
        """

        def record(g: Gate):
            if g.diag is not None:
                return ("diag", g.diag, g.qubits, g.name)
            return ("mat", g.matrix, g.qubits, g.name)

        if not self.fuse_single_qubit_gates:
            return [record(g) for g in circuit]
        out = []
        pending: Dict[int, List[np.ndarray]] = {}

        def flush(q: int) -> None:
            mats = pending.pop(q, None)
            if mats:
                if len(mats) == 1:
                    out.append(("mat", mats[0], (q,), "fused1q"))
                else:
                    out.append(("mat", fuse_1q_matrices(mats), (q,), "fused1q"))

        for g in circuit:
            if g.num_qubits == 1 and g.diag is None:
                pending.setdefault(g.qubits[0], []).append(g.matrix)
            else:
                for q in g.qubits:
                    flush(q)
                out.append(record(g))
        for q in list(pending):
            flush(q)
        return out
