"""Dense state-vector substrate: vectors, kernels, measurement, baseline sim."""

from .entanglement import (
    entanglement_entropy,
    entropy_profile,
    max_entropy,
    reduced_density_matrix,
    von_neumann_entropy,
)
from .kernels import apply_gate, apply_1q, apply_diagonal, apply_matrix_generic
from .measurement import expectation_z, measure_qubit, sample_counts, sample_outcomes
from .simulator import DenseRunStats, DenseSimulator
from .statevector import StateVector

__all__ = [
    "StateVector",
    "DenseSimulator",
    "DenseRunStats",
    "apply_gate",
    "apply_1q",
    "apply_diagonal",
    "apply_matrix_generic",
    "sample_counts",
    "sample_outcomes",
    "measure_qubit",
    "expectation_z",
    "entanglement_entropy",
    "entropy_profile",
    "reduced_density_matrix",
    "von_neumann_entropy",
    "max_entropy",
]
