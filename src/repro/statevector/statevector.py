"""The :class:`StateVector` wrapper.

Owns a dense complex amplitude array and provides the quantum-state queries
the rest of the system needs: norm, probabilities, marginals, fidelity,
Pauli-string expectation values and basis-state formatting. Gate application
lives in :mod:`repro.statevector.kernels`; simulators mutate the underlying
array in place through :attr:`StateVector.data`.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["StateVector"]

_CDTYPE = np.complex128


class StateVector:
    """A dense ``2^n`` complex state vector in little-endian convention."""

    def __init__(self, num_qubits: int, data: Optional[np.ndarray] = None):
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        self.num_qubits = int(num_qubits)
        dim = 1 << self.num_qubits
        if data is None:
            self.data = np.zeros(dim, dtype=_CDTYPE)
            self.data[0] = 1.0
        else:
            data = np.asarray(data, dtype=_CDTYPE)
            if data.shape != (dim,):
                raise ValueError(f"data shape {data.shape} != ({dim},)")
            self.data = np.ascontiguousarray(data)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def zero_state(cls, num_qubits: int) -> "StateVector":
        return cls(num_qubits)

    @classmethod
    def basis_state(cls, num_qubits: int, index: int) -> "StateVector":
        sv = cls(num_qubits)
        sv.data[0] = 0.0
        sv.data[index] = 1.0
        return sv

    @classmethod
    def from_bitstring(cls, bits: str) -> "StateVector":
        """Bitstring with qubit 0 rightmost (e.g. ``"10"`` = qubit1=1)."""
        n = len(bits)
        return cls.basis_state(n, int(bits, 2))

    @classmethod
    def random_state(cls, num_qubits: int, seed: Optional[int] = None) -> "StateVector":
        rng = np.random.default_rng(seed)
        dim = 1 << num_qubits
        v = rng.standard_normal(dim) + 1j * rng.standard_normal(dim)
        v /= np.linalg.norm(v)
        return cls(num_qubits, v)

    def copy(self) -> "StateVector":
        return StateVector(self.num_qubits, self.data.copy())

    # -- basic queries ----------------------------------------------------------

    @property
    def dim(self) -> int:
        return self.data.shape[0]

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def norm(self) -> float:
        return float(np.linalg.norm(self.data))

    def normalize(self) -> "StateVector":
        n = self.norm()
        if n == 0.0:
            raise ValueError("cannot normalize the zero vector")
        self.data /= n
        return self

    def probabilities(self) -> np.ndarray:
        p = np.abs(self.data)
        np.square(p, out=p)
        return p

    def probability_of(self, index: int) -> float:
        a = self.data[index]
        return float((a * a.conjugate()).real)

    def marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Joint distribution over ``qubits`` (first listed = LSB of outcome)."""
        n = self.num_qubits
        probs = self.probabilities().reshape((2,) * n)
        keep_axes = [n - 1 - q for q in qubits]
        drop_axes = tuple(a for a in range(n) if a not in keep_axes)
        marg = probs.sum(axis=drop_axes) if drop_axes else probs
        # Remaining axes are ordered by descending qubit index; transpose so
        # the first listed qubit becomes the least significant (last) axis.
        kept_sorted = sorted(qubits, reverse=True)
        perm = [kept_sorted.index(q) for q in reversed(qubits)]
        marg = np.transpose(marg, perm)
        return np.ascontiguousarray(marg).reshape(-1)

    def fidelity(self, other: "StateVector") -> float:
        """``|<self|other>|^2`` for pure states."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("qubit counts differ")
        return float(abs(np.vdot(self.data, other.data)) ** 2)

    def inner(self, other: "StateVector") -> complex:
        return complex(np.vdot(self.data, other.data))

    def trace_distance_bound(self, other: "StateVector") -> float:
        """sqrt(1 - F): an upper-style proxy for pure-state trace distance."""
        f = min(1.0, self.fidelity(other))
        return math.sqrt(1.0 - f)

    # -- expectation values -----------------------------------------------------

    def expectation_pauli(self, pauli: str, qubits: Optional[Sequence[int]] = None) -> float:
        """Expectation of a Pauli string.

        ``pauli`` is a string over ``IXYZ``; ``qubits[i]`` is the qubit acted
        on by ``pauli[i]`` (defaults to ``0..len-1``). Computed without
        building the full operator: Z factors become index-parity signs, and
        X/Y factors become an index permutation plus phases.
        """
        from .pauli import parse_pauli, pauli_phase

        ps = parse_pauli(pauli, qubits)
        if ps.num_qubits > self.num_qubits:
            raise ValueError("Pauli string touches qubits outside the state")
        idx = np.arange(self.dim, dtype=np.uint64)
        ket = self.data[idx ^ np.uint64(ps.x_mask)]
        val = self.data.conj() * pauli_phase(ps, idx) * ket
        return float(complex(val.sum()).real)

    # -- formatting -----------------------------------------------------------

    def to_dict(self, cutoff: float = 1e-12) -> Dict[str, complex]:
        """Map bitstring (qubit 0 rightmost) -> amplitude, above ``cutoff``."""
        out: Dict[str, complex] = {}
        n = self.num_qubits
        for i in np.flatnonzero(np.abs(self.data) > cutoff):
            out[format(int(i), f"0{n}b")] = complex(self.data[i])
        return out

    def __str__(self) -> str:
        terms = []
        for bits, amp in sorted(self.to_dict(cutoff=1e-6).items()):
            terms.append(f"({amp.real:+.4f}{amp.imag:+.4f}j)|{bits}>")
            if len(terms) >= 8:
                terms.append("...")
                break
        return " + ".join(terms) if terms else "0"

    def __repr__(self) -> str:
        return f"<StateVector n={self.num_qubits} norm={self.norm():.6f}>"
