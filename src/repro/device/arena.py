"""Device memory arena: a capacity-enforced allocator over one backing array.

All "device-resident" data lives inside a single preallocated complex128
array, mirroring how a CUDA allocator carves up GPU global memory. The arena
implements first-fit allocation with free-list coalescing; exceeding the
capacity raises :class:`DeviceOutOfMemory` — that pressure is what drives
the chunked schedule (a real GPU gives cudaErrorMemoryAllocation).

Two additions support the multi-tenant service plane (``repro.serve``):

* all mutating operations and aggregate queries are **thread-safe** (one
  internal lock), so concurrent jobs can share a single arena;
* a **lease ledger** (:meth:`DeviceArena.lease` / :class:`ArenaLease`)
  tracks *reserved* capacity separately from live allocations. Admission
  control grants each job a lease covering its worst-case working set
  before the job starts; because every job's actual allocations stay
  within its lease, the sum of grants never exceeding the capacity proves
  concurrent jobs can never hit :class:`DeviceOutOfMemory` mid-run.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..memory.accounting import MemoryTracker
from .spec import DeviceSpec

__all__ = ["DeviceArena", "DeviceOutOfMemory", "DeviceBuffer", "ArenaLease"]

CATEGORY = "device_arena"


class DeviceOutOfMemory(MemoryError):
    """Requested allocation exceeds remaining device memory."""


@dataclass
class DeviceBuffer:
    """A live allocation: a view into the arena's backing store.

    ``size`` counts *logical* amplitudes in the buffer's dtype;
    ``back_size`` counts the complex128 backing elements the allocation
    occupies (equal for c128 buffers, half-as-many backing elements per
    amplitude for complex64 views).
    """

    offset: int  # in backing elements
    size: int  # in logical amplitudes
    view: np.ndarray
    back_size: int = 0  # in backing elements (0 = same as size)

    def __post_init__(self):
        if not self.back_size:
            self.back_size = self.size

    @property
    def nbytes(self) -> int:
        return self.view.nbytes


@dataclass
class ArenaLease:
    """A capacity reservation (amplitudes), not an allocation.

    Held by one tenant/job for its lifetime; release via
    :meth:`DeviceArena.release_lease` (idempotent through ``released``).
    """

    size: int
    name: str = ""
    released: bool = field(default=False, compare=False)

    @property
    def nbytes(self) -> int:
        return self.size * 16


class DeviceArena:
    """First-fit allocator over a fixed complex128 backing array."""

    def __init__(self, spec: DeviceSpec, tracker: Optional[MemoryTracker] = None):
        self.spec = spec
        self.capacity = spec.memory_bytes // 16  # amplitudes
        if self.capacity < 1:
            raise ValueError("device memory too small for a single amplitude")
        self._backing = np.zeros(self.capacity, dtype=np.complex128)
        # Free list of (offset, size), sorted by offset, coalesced.
        self._free: List[Tuple[int, int]] = [(0, self.capacity)]
        self._live: Dict[int, DeviceBuffer] = {}
        self._leases: List[ArenaLease] = []
        self._leased = 0  # amplitudes reserved by live leases
        self._lock = threading.RLock()
        self.tracker = tracker if tracker is not None else MemoryTracker()
        self.peak_amplitudes = 0

    # -- allocation -------------------------------------------------------------

    def alloc(self, size: int, dtype=None) -> DeviceBuffer:
        """Allocate ``size`` amplitudes of ``dtype`` (default complex128).

        The backing stays complex128 (so a shared multi-tenant arena
        serves jobs of any precision); non-c128 requests round up to
        whole backing elements and hand out a reinterpreting view.
        Raises :class:`DeviceOutOfMemory`.
        """
        if size < 1:
            raise ValueError("size must be >= 1")
        dt = np.dtype(np.complex128) if dtype is None else np.dtype(dtype)
        nbytes = size * dt.itemsize
        back = -(-nbytes // 16)  # backing elements, rounded up
        with self._lock:
            for i, (off, sz) in enumerate(self._free):
                if sz >= back:
                    if sz == back:
                        self._free.pop(i)
                    else:
                        self._free[i] = (off + back, sz - back)
                    view = self._backing[off:off + back]
                    if dt != self._backing.dtype:
                        view = view.view(dt)[:size]
                    buf = DeviceBuffer(off, size, view, back_size=back)
                    self._live[off] = buf
                    self.tracker.alloc(CATEGORY, buf.nbytes)
                    self.peak_amplitudes = max(self.peak_amplitudes,
                                               self._used_locked())
                    return buf
            raise DeviceOutOfMemory(
                f"device OOM: need {back * 16:,} bytes, "
                f"{self._free_locked() * 16:,} free of "
                f"{self.capacity * 16:,}"
            )

    def free(self, buf: DeviceBuffer) -> None:
        """Return a buffer to the arena (coalescing neighbours)."""
        with self._lock:
            live = self._live.pop(buf.offset, None)
            if live is not buf:
                raise ValueError(
                    "buffer does not belong to this arena (or double free)")
            self.tracker.free(CATEGORY, buf.nbytes)
            self._insert_free(buf.offset, buf.back_size)

    def _insert_free(self, off: int, size: int) -> None:
        # Insert keeping order, then coalesce with neighbours.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < off:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (off, size))
        # Coalesce right then left.
        if lo + 1 < len(self._free):
            o2, s2 = self._free[lo + 1]
            if off + size == o2:
                self._free[lo] = (off, size + s2)
                self._free.pop(lo + 1)
        if lo > 0:
            o0, s0 = self._free[lo - 1]
            o1, s1 = self._free[lo]
            if o0 + s0 == o1:
                self._free[lo - 1] = (o0, s0 + s1)
                self._free.pop(lo)

    # -- lease ledger (admission control) ---------------------------------------

    def can_lease(self, size: int) -> bool:
        """Would :meth:`lease` succeed right now?"""
        with self._lock:
            return 0 < size <= self.capacity - self._leased

    def lease(self, size: int, name: str = "") -> ArenaLease:
        """Reserve ``size`` amplitudes of capacity for one tenant.

        Raises :class:`DeviceOutOfMemory` when the reservation would
        oversubscribe the arena — the admission-control signal.
        """
        if size < 1:
            raise ValueError("lease size must be >= 1")
        with self._lock:
            if self._leased + size > self.capacity:
                raise DeviceOutOfMemory(
                    f"lease denied: need {size * 16:,} bytes, "
                    f"{(self.capacity - self._leased) * 16:,} unleased of "
                    f"{self.capacity * 16:,}"
                )
            lease = ArenaLease(size, name=name)
            self._leases.append(lease)
            self._leased += size
            return lease

    def release_lease(self, lease: ArenaLease) -> None:
        """Return leased capacity (idempotent)."""
        with self._lock:
            if lease.released:
                return
            try:
                self._leases.remove(lease)
            except ValueError:
                raise ValueError("lease does not belong to this arena")
            lease.released = True
            self._leased -= lease.size

    @property
    def leased_amplitudes(self) -> int:
        with self._lock:
            return self._leased

    @property
    def leases(self) -> List[ArenaLease]:
        with self._lock:
            return list(self._leases)

    # -- queries -------------------------------------------------------------------

    def _used_locked(self) -> int:
        return sum(b.back_size for b in self._live.values())

    def _free_locked(self) -> int:
        return sum(sz for _, sz in self._free)

    @property
    def used(self) -> int:
        """Live amplitudes."""
        with self._lock:
            return self._used_locked()

    @property
    def free_amplitudes(self) -> int:
        with self._lock:
            return self._free_locked()

    @property
    def largest_free_block(self) -> int:
        with self._lock:
            return max((sz for _, sz in self._free), default=0)

    def reset(self) -> None:
        """Drop all allocations and leases (end-of-stage bulk release)."""
        with self._lock:
            for buf in list(self._live.values()):
                self.tracker.free(CATEGORY, buf.nbytes)
            self._live.clear()
            self._free = [(0, self.capacity)]
            for lease in self._leases:
                lease.released = True
            self._leases.clear()
            self._leased = 0

    def __repr__(self) -> str:
        return (
            f"<DeviceArena {self.spec.name} used={self.used * 16:,}B "
            f"leased={self.leased_amplitudes * 16:,}B "
            f"free={self.free_amplitudes * 16:,}B>"
        )
