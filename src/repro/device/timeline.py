"""Execution timeline: stage events and the pipelined-makespan model.

Every unit of work the online stage performs (decompress, H2D, kernel, D2H,
recompress, CPU-side update) is recorded as a :class:`StageEvent` with its
*measured* duration. Because this box executes stages one after another (one
core, no real GPU), the overlap the paper gets from pipelining is computed
by replaying the events through a resource-constrained list scheduler:

* each stage class is bound to a resource (CPU codec, H2D bus, GPU, D2H bus,
  idle CPU cores);
* an event may start when its per-chunk predecessor has finished *and* its
  resource is free;
* the pipelined makespan is the last finish time.

This gives both numbers the Fig. 1 experiment needs: the serial sum and the
overlapped makespan, from the same measured per-stage costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Stage", "StageEvent", "Timeline", "PipelineModel", "ScheduledEvent"]


class Stage(str, Enum):
    """Pipeline stage kinds (paper Fig. 1 steps)."""

    DECOMPRESS = "decompress"  # (1) chunk blob -> CPU buffer
    H2D = "h2d"                # (2) CPU buffer -> GPU memory
    KERNEL = "kernel"          # (3) GPU amplitude update
    D2H = "d2h"                # (4) GPU -> CPU buffer
    CPU_UPDATE = "cpu_update"  # (5) idle-core CPU-side update
    COMPRESS = "compress"      # (6) CPU buffer -> chunk blob


#: resource each stage occupies in the overlap model
STAGE_RESOURCE: Dict[Stage, str] = {
    Stage.DECOMPRESS: "cpu_codec",
    Stage.COMPRESS: "cpu_codec",
    Stage.H2D: "bus_h2d",
    Stage.D2H: "bus_d2h",
    Stage.KERNEL: "gpu",
    Stage.CPU_UPDATE: "cpu_idle",
}


@dataclass(frozen=True)
class StageEvent:
    """One measured unit of stage work."""

    stage: Stage
    duration: float
    chunk: int  # chunk/group id the work belongs to (-1 = global)
    nbytes: int = 0
    step: int = 0  # monotonically increasing issue order


@dataclass(frozen=True)
class ScheduledEvent:
    """A stage event placed on the overlapped timeline."""

    event: StageEvent
    start: float
    end: float
    resource: str


class Timeline:
    """Ordered log of measured stage events."""

    def __init__(self) -> None:
        self.events: List[StageEvent] = []
        self._step = 0

    def record(self, stage: Stage, duration: float, chunk: int = -1,
               nbytes: int = 0) -> StageEvent:
        ev = StageEvent(stage, max(0.0, duration), chunk, nbytes, self._step)
        self._step += 1
        self.events.append(ev)
        return ev

    @classmethod
    def from_spans(cls, spans) -> "Timeline":
        """Rebuild a timeline from telemetry spans named after stages.

        Spans whose ``name`` is a :class:`Stage` value become events (with
        ``chunk``/``nbytes`` read from the span attributes); everything
        else is ignored. Spans are replayed in completion order, which is
        the order the live stage bridge records events in, so a timeline
        rebuilt from a traced run's spans is event-for-event equivalent to
        the one the run populated.
        """
        by_name = {s.value: s for s in Stage}
        tl = cls()
        for sp in sorted(spans, key=lambda s: s.start + s.duration):
            stage = by_name.get(sp.name)
            if stage is None:
                continue
            tl.record(stage, sp.duration, int(sp.args.get("chunk", -1)),
                      int(sp.args.get("nbytes", 0)))
        return tl

    def serial_seconds(self, stage: Optional[Stage] = None) -> float:
        return sum(e.duration for e in self.events
                   if stage is None or e.stage == stage)

    def stage_breakdown(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for e in self.events:
            out[e.stage.value] = out.get(e.stage.value, 0.0) + e.duration
        return out

    def count(self, stage: Optional[Stage] = None) -> int:
        return sum(1 for e in self.events if stage is None or e.stage == stage)

    def clear(self) -> None:
        self.events.clear()
        self._step = 0


class PipelineModel:
    """Replays a timeline through resource-constrained list scheduling."""

    def __init__(self, cpu_codec_lanes: int = 1, cpu_idle_lanes: int = 1,
                 gpu_lanes: int = 1, bus_lanes: int = 0):
        """Lanes model parallel capacity per resource.

        ``cpu_codec_lanes`` > 1 models multi-core (de)compression;
        ``cpu_idle_lanes`` models the idle cores doing CPU-side updates;
        ``gpu_lanes`` > 1 models multiple devices, each with its own bus
        (``bus_lanes`` defaults to ``gpu_lanes``).
        """
        if bus_lanes <= 0:
            bus_lanes = max(1, gpu_lanes)
        self.lanes = {
            "cpu_codec": max(1, cpu_codec_lanes),
            "bus_h2d": max(1, bus_lanes),
            "bus_d2h": max(1, bus_lanes),
            "gpu": max(1, gpu_lanes),
            "cpu_idle": max(1, cpu_idle_lanes),
        }

    def schedule(self, events: Sequence[StageEvent]) -> Tuple[List[ScheduledEvent], float]:
        """Place events; returns (schedule, makespan).

        Dependencies: events sharing a chunk id execute in issue order
        (the per-chunk decompress -> h2d -> kernel -> d2h -> compress
        chain); events on different chunks only contend for resources.
        Chunk id -1 serializes against everything issued before it.
        """
        resource_free: Dict[str, List[float]] = {
            r: [0.0] * n for r, n in self.lanes.items()
        }
        chunk_ready: Dict[int, float] = {}
        barrier_time = 0.0
        scheduled: List[ScheduledEvent] = []
        makespan = 0.0
        for ev in sorted(events, key=lambda e: e.step):
            resource = STAGE_RESOURCE[ev.stage]
            lanes = resource_free[resource]
            lane = min(range(len(lanes)), key=lanes.__getitem__)
            if ev.chunk == -1:
                # A barrier waits for everything issued before it...
                dep = makespan
            else:
                dep = max(chunk_ready.get(ev.chunk, 0.0), barrier_time)
            start = max(lanes[lane], dep)
            end = start + ev.duration
            lanes[lane] = end
            if ev.chunk == -1:
                # ...and everything issued after waits for it.
                barrier_time = end
            else:
                chunk_ready[ev.chunk] = end
            scheduled.append(ScheduledEvent(ev, start, end, f"{resource}[{lane}]"))
            makespan = max(makespan, end)
        return scheduled, makespan

    def makespan(self, timeline: Timeline) -> float:
        _, m = self.schedule(timeline.events)
        return m

    @staticmethod
    def gantt(scheduled: Sequence[ScheduledEvent], width: int = 72) -> str:
        """ASCII Gantt chart of a schedule, one row per resource lane."""
        if not scheduled:
            return "(empty schedule)"
        end = max(s.end for s in scheduled)
        if end <= 0:
            return "(zero-length schedule)"
        rows: Dict[str, List[str]] = {}
        for s in scheduled:
            row = rows.setdefault(s.resource, [" "] * width)
            a = int(s.start / end * (width - 1))
            b = max(a + 1, int(s.end / end * (width - 1)) + 1)
            ch = s.event.stage.value[0].upper()
            for i in range(a, min(b, width)):
                row[i] = ch
        lines = [f"{name:<12} |{''.join(row)}|" for name, row in sorted(rows.items())]
        lines.append(f"{'':<12}  0{'':<{width - 10}}{end * 1e3:.1f} ms")
        return "\n".join(lines)
