"""Host<->device transfer strategies (paper Table 1).

The paper compares three ways to move the selected amplitudes of a chunk to
GPU memory:

* **sync** — one bulk ``cudaMemcpy`` of the whole chunk: one ``np.copyto``
  here. This is the floor: payload bandwidth with a single initiation.
* **async (per-element)** — one ``cudaMemcpyAsync`` *per amplitude*: one
  Python-level element copy per amplitude here. Both real CUDA async copies
  and interpreter-level element copies are dominated by per-call fixed
  overhead, which is precisely the effect Table 1 quantifies (the paper
  measures ~870x over sync; see DESIGN.md's substitution note).
* **buffer** — stage the chunk into a preallocated transfer buffer, ship it
  with one bulk copy, then let "device threads" scatter amplitudes to their
  positions: staging copy + bulk copy + vectorized gather/scatter here,
  which lands within a few percent of sync, as in the paper (~1.03x).

Every call is timed and logged so benchmarks can report H2D/D2H seconds.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..telemetry import NULL_TELEMETRY

__all__ = [
    "TransferStrategy",
    "SyncCopy",
    "AsyncPerElementCopy",
    "BufferedCopy",
    "TransferRecord",
    "TransferLog",
    "make_strategy",
]


@dataclass(frozen=True)
class TransferRecord:
    """One timed transfer."""

    direction: str  # "h2d" | "d2h"
    nbytes: int
    seconds: float
    strategy: str


@dataclass
class TransferLog:
    """Accumulates transfer records and summarizes them."""

    records: List[TransferRecord] = field(default_factory=list)

    def add(self, rec: TransferRecord) -> None:
        self.records.append(rec)

    def total_seconds(self, direction: Optional[str] = None) -> float:
        return sum(
            r.seconds for r in self.records
            if direction is None or r.direction == direction
        )

    def total_bytes(self, direction: Optional[str] = None) -> int:
        return sum(
            r.nbytes for r in self.records
            if direction is None or r.direction == direction
        )

    def bandwidth_gbps(self, direction: Optional[str] = None) -> float:
        s = self.total_seconds(direction)
        if s == 0.0:
            return float("inf")
        return self.total_bytes(direction) / s / 1e9

    def clear(self) -> None:
        self.records.clear()


class TransferStrategy(abc.ABC):
    """Moves amplitudes between host buffers and device-arena views."""

    name: str = "abstract"

    def __init__(self, log: Optional[TransferLog] = None, telemetry=None):
        self.log = log if log is not None else TransferLog()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    def h2d(self, host: np.ndarray, device: np.ndarray) -> float:
        """Host buffer -> device view. Returns elapsed seconds."""
        if host.shape != device.shape:
            raise ValueError("transfer size mismatch")
        t0 = time.perf_counter()
        self._copy(host, device)
        dt = time.perf_counter() - t0
        self.log.add(TransferRecord("h2d", host.nbytes, dt, self.name))
        tel = self.telemetry
        if tel.enabled:
            m = tel.metrics
            m.counter("transfer.h2d.bytes").inc(host.nbytes)
            m.counter("transfer.h2d.count").inc()
            m.histogram("transfer.h2d.seconds").observe(dt)
            tel.traffic.record("arena", "h2d", host.nbytes)
        return dt

    def d2h(self, device: np.ndarray, host: np.ndarray) -> float:
        """Device view -> host buffer. Returns elapsed seconds."""
        if host.shape != device.shape:
            raise ValueError("transfer size mismatch")
        t0 = time.perf_counter()
        self._copy(device, host)
        dt = time.perf_counter() - t0
        self.log.add(TransferRecord("d2h", host.nbytes, dt, self.name))
        tel = self.telemetry
        if tel.enabled:
            m = tel.metrics
            m.counter("transfer.d2h.bytes").inc(host.nbytes)
            m.counter("transfer.d2h.count").inc()
            m.histogram("transfer.d2h.seconds").observe(dt)
            tel.traffic.record("arena", "d2h", host.nbytes)
        return dt

    @abc.abstractmethod
    def _copy(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Move ``src`` into ``dst`` (same shape)."""


class SyncCopy(TransferStrategy):
    """One bulk copy per chunk — the minimum-time reference."""

    name = "sync"

    def _copy(self, src: np.ndarray, dst: np.ndarray) -> None:
        np.copyto(dst, src)


class AsyncPerElementCopy(TransferStrategy):
    """One copy *initiation per amplitude* — the paper's slow strategy.

    Each element goes through an individual, separately-initiated copy call,
    so fixed per-call overhead dominates, just as thousands of tiny
    ``cudaMemcpyAsync`` launches dominate on real hardware.
    """

    name = "async"

    def _copy(self, src: np.ndarray, dst: np.ndarray) -> None:
        n = src.shape[0]
        issue = self._issue_one
        for i in range(n):
            issue(src, dst, i)

    @staticmethod
    def _issue_one(src: np.ndarray, dst: np.ndarray, i: int) -> None:
        # A separate call per element models per-initiation overhead.
        dst[i] = src[i]


class BufferedCopy(TransferStrategy):
    """Stage into a pinned transfer buffer, bulk-copy, then scatter.

    Costs one extra buffer of the largest transfer size (the paper's
    "additional memory space") and two sequential copies plus a vectorized
    device-side placement — within a few percent of sync.
    """

    name = "buffer"

    def __init__(self, max_elements: int, log: Optional[TransferLog] = None,
                 telemetry=None, dtype=np.complex128):
        super().__init__(log, telemetry)
        if max_elements < 1:
            raise ValueError("max_elements must be >= 1")
        self._staging = np.empty(max_elements, dtype=np.dtype(dtype))

    @property
    def staging_nbytes(self) -> int:
        return self._staging.nbytes

    def _copy(self, src: np.ndarray, dst: np.ndarray) -> None:
        n = src.shape[0]
        if n > self._staging.shape[0]:
            raise ValueError(
                f"transfer of {n} elements exceeds staging capacity "
                f"{self._staging.shape[0]}"
            )
        stage = self._staging[:n]
        np.copyto(stage, src)  # host-side gather into the pinned buffer
        np.copyto(dst, stage)  # single bulk copy across the "bus"
        # Device threads then map amplitudes to their in-memory positions.
        # Chunks are shipped contiguously, so the mapping is the identity
        # and costs nothing — exactly as thousands of parallel GPU threads
        # make the placement free on real hardware. A non-identity mapping
        # would be one vectorized permutation here.


def make_strategy(name: str, max_elements: int = 0,
                  log: Optional[TransferLog] = None,
                  telemetry=None, dtype=np.complex128) -> TransferStrategy:
    """Factory by name: ``sync`` | ``async`` | ``buffer``."""
    if name == "sync":
        return SyncCopy(log, telemetry)
    if name == "async":
        return AsyncPerElementCopy(log, telemetry)
    if name == "buffer":
        if max_elements < 1:
            raise ValueError("buffer strategy needs max_elements")
        return BufferedCopy(max_elements, log, telemetry, dtype=dtype)
    raise KeyError(f"unknown transfer strategy {name!r}")
