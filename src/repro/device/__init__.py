"""Simulated device: specs, arena, transfer strategies, executor, timeline."""

from .arena import ArenaLease, DeviceArena, DeviceBuffer, DeviceOutOfMemory
from .executor import DeviceExecutor, KernelLaunch
from .spec import DeviceSpec, HostSpec
from .timeline import (
    STAGE_RESOURCE,
    PipelineModel,
    ScheduledEvent,
    Stage,
    StageEvent,
    Timeline,
)
from .transfer import (
    AsyncPerElementCopy,
    BufferedCopy,
    SyncCopy,
    TransferLog,
    TransferRecord,
    TransferStrategy,
    make_strategy,
)

__all__ = [
    "DeviceSpec",
    "HostSpec",
    "DeviceArena",
    "ArenaLease",
    "DeviceBuffer",
    "DeviceOutOfMemory",
    "DeviceExecutor",
    "KernelLaunch",
    "TransferStrategy",
    "SyncCopy",
    "AsyncPerElementCopy",
    "BufferedCopy",
    "TransferRecord",
    "TransferLog",
    "make_strategy",
    "Stage",
    "StageEvent",
    "ScheduledEvent",
    "Timeline",
    "PipelineModel",
    "STAGE_RESOURCE",
]
