"""The device executor: runs gate kernels on arena-resident buffers.

This is the "GPU side" of MEMQSim. It owns a :class:`DeviceArena` (capacity-
enforced), a :class:`TransferStrategy`, and a :class:`Timeline`; the pipeline
scheduler asks it to

1. stage a host buffer onto the device (H2D, timed & logged),
2. apply a batch of gates to the resident buffer (KERNEL, timed),
3. bring the result back (D2H, timed),

mirroring steps (2)-(4) of the paper's online stage. A *stream* abstraction
queues kernel launches the way CUDA streams do; on this simulated device the
queue drains synchronously, but the issue/drain split keeps the scheduler
code shaped like the real asynchronous system.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..memory.accounting import MemoryTracker
from ..telemetry import NULL_TELEMETRY, get_logger
from .arena import DeviceArena, DeviceBuffer
from .spec import DeviceSpec
from .timeline import Stage, Timeline
from .transfer import TransferStrategy, make_strategy

__all__ = ["DeviceExecutor", "KernelLaunch"]

log = get_logger(__name__)


def _apply_ops(backend, view: np.ndarray, ops: Sequence[object]) -> None:
    """Run an op batch on ``backend``, tolerating gate-only backends.

    Backends from :mod:`repro.core.backend` expose ``apply_ops``; duck-typed
    test doubles may only implement ``apply(buf, gates)``, so lower for them.
    """
    apply_ops = getattr(backend, "apply_ops", None)
    if apply_ops is not None:
        apply_ops(view, ops)
        return
    backend.apply(view, [op.to_gate() if hasattr(op, "to_gate") else op
                         for op in ops])


@dataclass
class KernelLaunch:
    """A queued batch of compiled ops against a device buffer.

    ``ops`` holds :mod:`repro.compile` IR items (:class:`GateOp` /
    :class:`FusedOp`); raw :class:`~repro.circuits.gates.Gate` instances
    are accepted as well — the backend lowers either form.
    """

    buffer: DeviceBuffer
    ops: Tuple[object, ...]
    chunk: int


class DeviceExecutor:
    """Simulated GPU: arena + transfer engine + kernel queue."""

    def __init__(
        self,
        spec: Optional[DeviceSpec] = None,
        transfer: Optional[TransferStrategy] = None,
        timeline: Optional[Timeline] = None,
        tracker: Optional[MemoryTracker] = None,
        backend=None,
        telemetry=None,
        arena: Optional[DeviceArena] = None,
    ):
        """``backend`` is any object with ``apply_ops(buf, ops)`` (see
        :mod:`repro.core.backend`); ``None`` uses the numpy kernels.
        ``arena`` injects an external (possibly shared, multi-tenant)
        :class:`DeviceArena`; the executor then allocates from it but does
        not own it — :meth:`reset` leaves other tenants' buffers alone."""
        self.spec = spec if spec is not None else DeviceSpec()
        self.tracker = tracker if tracker is not None else MemoryTracker()
        self._owns_arena = arena is None
        self.arena = arena if arena is not None \
            else DeviceArena(self.spec, self.tracker)
        self.timeline = timeline if timeline is not None else Timeline()
        self.transfer = transfer if transfer is not None else make_strategy("sync")
        if backend is None:
            # Runtime import: core.backend imports the compile/statevector
            # layers, so a module-level import here would be cyclic.
            from ..core.backend import NumpyKernelBackend

            backend = NumpyKernelBackend()
        self.backend = backend
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._queue: List[KernelLaunch] = []
        self.kernels_launched = 0

    # -- memory ------------------------------------------------------------

    def alloc(self, num_amplitudes: int, dtype=None) -> DeviceBuffer:
        """Allocate a device buffer (raises DeviceOutOfMemory)."""
        return self.arena.alloc(num_amplitudes, dtype=dtype)

    def free(self, buf: DeviceBuffer) -> None:
        self.arena.free(buf)

    def can_fit(self, num_amplitudes: int) -> bool:
        return self.arena.largest_free_block >= num_amplitudes

    # -- transfers -----------------------------------------------------------

    def upload(self, host: np.ndarray, buf: DeviceBuffer, chunk: int = -1) -> float:
        """H2D: host buffer -> device buffer. Returns seconds."""
        dt = self.transfer.h2d(host, buf.view[: host.shape[0]])
        self.telemetry.record_stage(self.timeline, Stage.H2D, dt,
                                    chunk=chunk, nbytes=host.nbytes)
        return dt

    def download(self, buf: DeviceBuffer, host: np.ndarray, chunk: int = -1) -> float:
        """D2H: device buffer -> host buffer. Returns seconds."""
        dt = self.transfer.d2h(buf.view[: host.shape[0]], host)
        self.telemetry.record_stage(self.timeline, Stage.D2H, dt,
                                    chunk=chunk, nbytes=host.nbytes)
        return dt

    # -- kernels ---------------------------------------------------------------

    def launch(self, buf: DeviceBuffer, ops: Sequence[object],
               chunk: int = -1) -> None:
        """Queue a compiled-op batch on the stream (asynchronous issue)."""
        self._queue.append(KernelLaunch(buf, tuple(ops), chunk))

    def synchronize(self) -> float:
        """Drain the stream; returns total kernel seconds executed."""
        total = 0.0
        tel = self.telemetry
        for launch in self._queue:
            t0 = time.perf_counter()
            _apply_ops(self.backend, launch.buffer.view, launch.ops)
            dt = time.perf_counter() - t0
            tel.record_stage(self.timeline, Stage.KERNEL, dt,
                             chunk=launch.chunk, nbytes=launch.buffer.nbytes,
                             gates=len(launch.ops))
            if tel.enabled:
                tel.metrics.counter("kernel.gates").inc(len(launch.ops))
                tel.metrics.histogram("kernel.seconds").observe(dt)
            self.kernels_launched += len(launch.ops)
            total += dt
        self._queue.clear()
        return total

    def run_ops(self, buf: DeviceBuffer, ops: Sequence[object],
                chunk: int = -1) -> float:
        """Issue + drain in one call (the common synchronous path)."""
        self.launch(buf, ops, chunk)
        return self.synchronize()

    # Historical name; gate batches and op batches both work.
    run_gates = run_ops

    def reset(self) -> None:
        """Release all device memory and pending work.

        With an injected shared arena, only the pending kernel queue is
        dropped — a bulk arena reset would free *other* tenants' live
        buffers (the scheduler already frees its per-pass allocations)."""
        self._queue.clear()
        if self._owns_arena:
            self.arena.reset()

    def __repr__(self) -> str:
        return (
            f"<DeviceExecutor {self.spec.name} transfer={self.transfer.name} "
            f"kernels={self.kernels_launched}>"
        )
