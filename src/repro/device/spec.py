"""Host and device capability descriptions.

These play the role of the physical machine in the paper's design: a host
(CPU) with large memory holding the compressed store, and a device (GPU)
with much smaller memory executing the amplitude-update kernels. Capacities
are enforced — the arena refuses to over-allocate — which is what forces the
chunked schedule, exactly as limited GPU memory does in the real system.

Defaults model a user-level workstation scaled to simulation sizes; tests
and benchmarks construct tighter specs to exercise capacity pressure.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "HostSpec"]


@dataclass(frozen=True)
class DeviceSpec:
    """Simulated accelerator.

    Attributes:
        memory_bytes: device memory capacity (arena size).
        name: label for reports.
        kernel_throughput_gbps: nominal amplitude-update throughput used
            only for *modeled* timings in reports (measured timings are
            always preferred); kept for what-if analysis.
    """

    memory_bytes: int = 1 << 28  # 256 MiB
    name: str = "sim-gpu"
    kernel_throughput_gbps: float = 600.0

    def fits(self, nbytes: int) -> bool:
        return nbytes <= self.memory_bytes

    def max_amplitudes(self) -> int:
        return self.memory_bytes // 16

    def max_qubits_resident(self) -> int:
        """Largest full state vector that would fit on the device."""
        n = 0
        while (1 << (n + 1)) * 16 <= self.memory_bytes:
            n += 1
        return n


@dataclass(frozen=True)
class HostSpec:
    """Simulated host.

    Attributes:
        memory_bytes: host memory budget for the compressed store + buffers.
        cores: CPU cores available; cores beyond the one driving the device
            are "idle cores" the paper's step (5) offloads chunk updates to.
    """

    memory_bytes: int = 1 << 32  # 4 GiB
    cores: int = 8
    name: str = "sim-host"

    @property
    def idle_cores(self) -> int:
        return max(0, self.cores - 1)

    def max_qubits_dense(self) -> int:
        """Largest dense state vector the host could hold uncompressed."""
        n = 0
        while (1 << (n + 1)) * 16 <= self.memory_bytes:
            n += 1
        return n
