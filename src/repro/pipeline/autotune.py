"""Chunk-granularity auto-tuning (design challenge 2, closed-loop).

Experiment A1 shows the granularity trade-off is real and workload-
dependent; this module picks ``chunk_qubits`` *empirically*: it executes a
short prefix of the actual circuit at each candidate size and scores

    measured serial seconds  +  memory penalty if the working set
                                busts the host budget

The probe runs the true pipeline (codec, transfers, kernels), so every
effect A1 measures — per-blob overhead, per-pass cost, ratio — lands in
the score without being modeled. Cost is bounded: ``probe_gates`` gates
per candidate (default 24) at the target qubit count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..circuits.circuit import Circuit

__all__ = ["autotune_chunk_qubits", "TuneReport"]


@dataclass(frozen=True)
class TuneReport:
    """Outcome of a tuning sweep."""

    best_chunk_qubits: int
    scores: Tuple[Tuple[int, float], ...]  # (chunk_qubits, seconds)
    probe_gates: int

    def table(self) -> str:
        lines = [f"{'chunk_qubits':>12} {'probe seconds':>14}"]
        for c, s in self.scores:
            marker = "  <-- best" if c == self.best_chunk_qubits else ""
            lines.append(f"{c:>12} {s:>14.4f}{marker}")
        return "\n".join(lines)


def autotune_chunk_qubits(
    circuit: Circuit,
    config,
    candidates: Optional[Sequence[int]] = None,
    probe_gates: int = 24,
) -> TuneReport:
    """Pick ``chunk_qubits`` by probing a circuit prefix at each candidate.

    Args:
        circuit: the full circuit (only a prefix is executed).
        config: a :class:`~repro.core.config.MemQSimConfig`; its device and
            codec settings are used as-is, ``chunk_qubits`` is overridden
            per candidate.
        candidates: chunk sizes to try (default: every feasible size from
            2 up to ``min(n - 1, max_chunk_qubits)``).
        probe_gates: prefix length per probe.

    Returns:
        a :class:`TuneReport`; apply with
        ``config.with_updates(chunk_qubits=report.best_chunk_qubits)``.
    """
    from ..core.memqsim import MemQSim  # late import: avoid cycle

    n = circuit.num_qubits
    if candidates is None:
        hi = min(n - 1, config.max_chunk_qubits)
        # The chunk (doubled for a group of 2, double-buffered) must fit
        # the device — at the resolved precision's itemsize, so c64 runs
        # probe chunk sizes a full qubit larger.
        dev_amps = config.device.memory_bytes // config.storage_itemsize()
        while hi >= 2 and (1 << (hi + 1)) * 2 > dev_amps:
            hi -= 1
        candidates = list(range(2, hi + 1))
    candidates = [c for c in candidates if 1 <= c <= n]
    if not candidates:
        raise ValueError("no feasible chunk sizes for this device/circuit")
    prefix = circuit[:probe_gates]
    # A prefix that never touches high qubits would make every candidate
    # look local-only; extend with the first global-touching gates if the
    # plain prefix is too narrow.
    touched = prefix.max_qubit_touched()
    if touched < n - 1:
        for g in list(circuit)[probe_gates:]:
            prefix.append(g)
            if max(g.qubits) >= n - 1 or len(prefix) >= 3 * probe_gates:
                break
    scores: List[Tuple[int, float]] = []
    for c in candidates:
        cfg = config.with_updates(chunk_qubits=c)
        try:
            res = MemQSim(cfg).run(prefix)
        except (MemoryError, ValueError):
            scores.append((c, math.inf))
            continue
        scores.append((c, res.serial_seconds))
    best = min(scores, key=lambda cs: cs[1])[0]
    return TuneReport(
        best_chunk_qubits=best,
        scores=tuple(scores),
        probe_gates=len(prefix),
    )
