"""Cooperative cancellation for long-running pipeline executions.

A :class:`CancelToken` is handed to the stage scheduler (and, through it,
to every engine subclass); the scheduler polls it at **group-pass
boundaries** — the natural safe points where no staging buffer is in
flight and every pending store has a retained input. Cancelling mid-pass
is never observable: the current group pass always finishes, so the
compressed store is left in a consistent per-chunk state (every chunk
holds either its pre-stage or post-stage blob, never a torn write).

The token is thread-safe: the owner (a job manager, a signal handler)
calls :meth:`CancelToken.cancel` from any thread; the executing thread
raises :class:`JobCancelled` at its next checkpoint.
"""

from __future__ import annotations

import threading
from typing import Optional

__all__ = ["JobCancelled", "CancelToken", "NULL_CANCEL"]


class JobCancelled(Exception):
    """Raised by the executing thread when its CancelToken fires."""


class CancelToken:
    """A latch the owner sets once; pollers raise :class:`JobCancelled`."""

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: Optional[str] = None

    def cancel(self, reason: str = "") -> None:
        """Request cancellation (idempotent; first reason wins)."""
        if not self._event.is_set():
            self.reason = reason or self.reason
            self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def raise_if_cancelled(self) -> None:
        """Checkpoint: raise :class:`JobCancelled` if the token fired."""
        if self._event.is_set():
            raise JobCancelled(self.reason or "cancelled")

    def __repr__(self) -> str:
        state = f"cancelled: {self.reason!r}" if self.cancelled else "armed"
        return f"<CancelToken {state}>"


class _NullCancelToken:
    """Disabled twin: polling is a free no-op (the default everywhere)."""

    __slots__ = ()
    cancelled = False
    reason = None

    def cancel(self, reason: str = "") -> None:
        pass

    def raise_if_cancelled(self) -> None:
        pass

    def __repr__(self) -> str:
        return "<NullCancelToken>"


#: shared disabled instance — the default wherever cancellation is optional
NULL_CANCEL = _NullCancelToken()
