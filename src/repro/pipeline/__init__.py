"""Pipeline: offline planner, online scheduler, CPU offload policy."""

from .autotune import TuneReport, autotune_chunk_qubits
from .cancel import NULL_CANCEL, CancelToken, JobCancelled
from .cpu_offload import OffloadAdvice, advise_from_timeline, balanced_offload_fraction
from .planner import PlanReport, describe_plan, max_group_qubits_for, plan_stages
from .scheduler import StageScheduler, remap_gate_for_group, restrict_diagonal
from .stages import GateStage, PermutationStage

__all__ = [
    "CancelToken",
    "JobCancelled",
    "NULL_CANCEL",
    "GateStage",
    "PermutationStage",
    "plan_stages",
    "max_group_qubits_for",
    "describe_plan",
    "PlanReport",
    "StageScheduler",
    "remap_gate_for_group",
    "restrict_diagonal",
    "OffloadAdvice",
    "balanced_offload_fraction",
    "advise_from_timeline",
    "autotune_chunk_qubits",
    "TuneReport",
]
