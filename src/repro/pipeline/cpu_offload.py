"""Idle-core CPU offload policy (paper step (5)).

While the GPU processes its groups, idle CPU cores can decompress, update
and recompress other groups entirely host-side. The *fraction* of groups to
route to the CPU determines the balance; this module provides the split
heuristic the configuration layer uses.

The balanced split equalizes the two paths' per-group costs:

    f* = cpu_cores_available * r  /  (1 + cpu_cores_available * r)

where ``r = t_gpu_path / t_cpu_path`` is the ratio of measured per-group
costs (GPU path: decompress + H2D + kernel + D2H + compress, with codec
work overlappable; CPU path: decompress + update + compress on one core).
When the CPU path is much slower (r small) the optimum sends little work to
the CPU; with several idle cores it grows proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..device.timeline import Stage, Timeline

__all__ = ["OffloadAdvice", "balanced_offload_fraction", "advise_from_timeline"]


@dataclass(frozen=True)
class OffloadAdvice:
    """Recommended CPU share plus the inputs that produced it."""

    fraction: float
    gpu_path_seconds_per_group: float
    cpu_path_seconds_per_group: float
    idle_cores: int


def balanced_offload_fraction(
    gpu_seconds_per_group: float,
    cpu_seconds_per_group: float,
    idle_cores: int,
) -> float:
    """Fraction of groups the CPU should take to finish with the GPU."""
    if idle_cores <= 0 or cpu_seconds_per_group <= 0.0:
        return 0.0
    if gpu_seconds_per_group <= 0.0:
        return 1.0
    r = gpu_seconds_per_group / cpu_seconds_per_group
    f = idle_cores * r / (1.0 + idle_cores * r)
    return min(1.0, max(0.0, f))


def advise_from_timeline(timeline: Timeline, idle_cores: int) -> OffloadAdvice:
    """Derive the split from a profiling run's measured events.

    GPU-path per-group cost is the mean H2D + KERNEL + D2H duration; the
    codec work is excluded because it overlaps with transfers in the
    pipelined schedule. CPU-path cost per group is approximated by the mean
    decompress + compress + kernel cost (the update is the same arithmetic
    either way on this simulated device).
    """
    def mean(stage: Stage) -> float:
        evs = [e.duration for e in timeline.events if e.stage == stage]
        return sum(evs) / len(evs) if evs else 0.0

    gpu_per_group = mean(Stage.H2D) + mean(Stage.KERNEL) + mean(Stage.D2H)
    cpu_per_group = mean(Stage.DECOMPRESS) + mean(Stage.COMPRESS) + mean(Stage.KERNEL)
    f = balanced_offload_fraction(gpu_per_group, cpu_per_group, idle_cores)
    return OffloadAdvice(f, gpu_per_group, cpu_per_group, idle_cores)
