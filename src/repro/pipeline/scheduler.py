"""The online stage: stream chunk groups through the codec/transfer/kernel
pipeline (paper Fig. 1 steps (1)-(6)).

For every :class:`GateStage` the scheduler iterates the chunk groups given
by the layout. Each group pass performs, with each phase *measured* and
recorded on the timeline:

1. DECOMPRESS — load the group's chunks from the compressed store into a
   staging buffer (one slot per chunk);
2. H2D — upload the group buffer to the device arena;
3. KERNEL — apply the stage's gates, with global qubits remapped to their
   virtual in-buffer positions and diagonals restricted per group;
4. D2H — download the updated amplitudes;
5. COMPRESS — recompress each chunk back into the store.

A configurable fraction of groups instead takes the **CPU path** (paper
step (5)): decompress, update with the same kernels on the host, recompress
— recorded as CPU_UPDATE work so the overlap model can place it on idle
cores. :class:`PermutationStage`s relabel compressed blobs directly.

This base scheduler executes serially and the pipelined makespan is
computed afterwards by :class:`repro.device.timeline.PipelineModel` from
the measured events. :class:`repro.parallel.ParallelStageScheduler`
subclasses it to run the same group passes with *real* concurrency: codec
work on a process pool, double-buffered prefetch, asynchronous writeback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.gates import Gate, gate_is_diagonal, make_diagonal_gate
from ..compile import CompiledGateStage, CompileOptions, GateOp, compile_stage
from ..device.timeline import Stage, Timeline
from ..memory.bufferpool import BufferPool
from ..memory.chunkstore import CompressedChunkStore
from ..memory.layout import ChunkLayout, GroupPlacement
from ..telemetry import NULL_TELEMETRY, get_logger
from .cancel import NULL_CANCEL
from .stages import GateStage, PermutationStage

__all__ = ["StageScheduler", "remap_gate_for_group", "restrict_diagonal"]

log = get_logger(__name__)


def restrict_diagonal(
    diag: np.ndarray,
    qubits: Tuple[int, ...],
    fixed_bits: Dict[int, int],
) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Restrict a diagonal gate to the qubits not fixed by the chunk id.

    Args:
        diag: length ``2^k`` diagonal over ``qubits``.
        qubits: the gate's qubits (first = LSB of the diagonal index).
        fixed_bits: qubit -> bit value for qubits whose value the chunk id
            determines (global qubits outside the group).

    Returns:
        (restricted diagonal, remaining qubits) — the diagonal over the
        non-fixed qubits with fixed bits substituted.
    """
    remaining = tuple(q for q in qubits if q not in fixed_bits)
    r = len(remaining)
    base = 0
    for j, q in enumerate(qubits):
        if q in fixed_bits and fixed_bits[q]:
            base |= 1 << j
    if r == len(qubits):
        return diag, qubits
    idx = np.full(1 << r, base, dtype=np.int64)
    u = np.arange(1 << r, dtype=np.int64)
    pos = 0
    for j, q in enumerate(qubits):
        if q not in fixed_bits:
            idx |= ((u >> pos) & 1) << j
            pos += 1
    return diag[idx], remaining


def remap_gate_for_group(
    gate: Gate,
    layout: ChunkLayout,
    placement: GroupPlacement,
    group_base_chunk: int,
) -> Optional[Gate]:
    """Rewrite ``gate`` to act on a concatenated group buffer.

    Local qubits keep their positions; group qubits move to their virtual
    positions; diagonal gates get global-out-of-group qubits substituted
    from the chunk id. Returns ``None`` when a restricted diagonal turns out
    to be the identity for this group.
    """
    d = gate.diag if gate.diag is not None else (
        np.diag(gate.matrix) if _is_diag_gate(gate) else None
    )
    in_group = set(placement.group_qubits)
    if d is not None:
        fixed = {}
        for q in gate.qubits:
            if not layout.is_local(q) and q not in in_group:
                bit_pos = q - layout.chunk_qubits
                fixed[q] = (group_base_chunk >> bit_pos) & 1
        rd, remaining = restrict_diagonal(d, gate.qubits, fixed)
        if not remaining:
            # Fully determined by the chunk id: a global phase rd[0].
            # Tolerances must be essentially exact — dropping a 1e-6
            # rotation would be a correctness bug, not an optimization.
            if np.isclose(rd[0], 1.0, rtol=0.0, atol=1e-15):
                return None
            scaled = np.array([rd[0], rd[0]], dtype=rd.dtype)
            return make_diagonal_gate((0,), scaled, name="gphase_restricted")
        mapping = {}
        for q in remaining:
            if layout.is_local(q):
                mapping[q] = q
            else:
                i = placement.group_qubits.index(q)
                mapping[q] = placement.virtual_positions[i]
        vq = tuple(mapping[q] for q in remaining)
        if np.allclose(rd, 1.0, rtol=0.0, atol=1e-15):
            return None
        return make_diagonal_gate(vq, rd, name=f"{gate.name}_restricted")
    # Non-diagonal: every global qubit must be in the group.
    vq = layout.gate_virtual_qubits(gate.qubits, placement)
    if vq == gate.qubits:
        return gate
    mapping = dict(zip(gate.qubits, vq))
    return gate.remapped(mapping)


_is_diag_gate = gate_is_diagonal


@dataclass
class SchedulerStats:
    """Counters the results object surfaces."""

    group_passes: int = 0
    cpu_group_passes: int = 0
    permutation_stages: int = 0
    gates_applied: int = 0
    gates_skipped_identity: int = 0


class StageScheduler:
    """Executes planned stages against a store + device executor."""

    def __init__(
        self,
        layout: ChunkLayout,
        store: CompressedChunkStore,
        executor,
        pool: BufferPool,
        timeline: Optional[Timeline] = None,
        cpu_offload_fraction: float = 0.0,
        fuse_gates: bool = False,
        serpentine: bool = False,
        telemetry=None,
        backend=None,
        max_fuse_qubits: int = 3,
        cancel=None,
        schedule=None,
    ):
        """``executor`` is one DeviceExecutor or a sequence of them; with
        several, chunk groups are distributed round-robin (simulated
        multi-device execution — the overlap model then runs the kernel
        and bus events on as many lanes as there are devices).
        ``serpentine`` alternates the group sweep direction per stage so a
        bounded chunk cache keeps hitting across stage boundaries.
        ``backend`` executes the CPU-offload path's op batches (see
        :mod:`repro.core.backend`); ``None`` uses the numpy kernels.
        ``fuse_gates`` / ``max_fuse_qubits`` configure the lazy compile of
        raw :class:`GateStage` inputs — stages already lowered by
        :func:`repro.compile.compile_stages` run as-is.
        ``cancel`` is an optional :class:`~repro.pipeline.cancel
        .CancelToken` polled at every group-pass boundary: when it fires,
        the current pass finishes (the store stays chunk-consistent) and
        :class:`~repro.pipeline.cancel.JobCancelled` is raised before the
        next pass starts.
        ``schedule`` is an optional plan-exact
        :class:`~repro.memory.hierarchy.AccessSchedule` shared with the
        memory hierarchy; the scheduler advances its cursor per group
        pass (and past permutation barriers) so schedule-driven layers —
        Belady eviction, plan-coldest spilling — always know where in the
        plan execution stands."""
        if not 0.0 <= cpu_offload_fraction <= 1.0:
            raise ValueError("cpu_offload_fraction must be in [0, 1]")
        self.layout = layout
        self.store = store
        executors = list(executor) if isinstance(executor, (list, tuple)) \
            else [executor]
        if not executors:
            raise ValueError("need at least one executor")
        self.executors = executors
        self.executor = executors[0]
        self.pool = pool
        self.timeline = timeline if timeline is not None else \
            self.executor.timeline
        self.cpu_offload_fraction = cpu_offload_fraction
        self.fuse_gates = bool(fuse_gates)
        self.serpentine = bool(serpentine)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if backend is None:
            # Runtime import — core.backend sits above this module in the
            # import graph, so importing it at module scope would be cyclic.
            from ..core.backend import NumpyKernelBackend

            backend = NumpyKernelBackend()
        self.backend = backend
        self.compile_options = CompileOptions(
            fusion=self.fuse_gates,
            max_fuse_qubits=max_fuse_qubits,
        )
        self.cancel = cancel if cancel is not None else NULL_CANCEL
        self.schedule = schedule
        self._stage_parity = 0
        self._stage_index = 0
        #: the stage index currently executing — the attribution context
        #: for the traffic ledger and the access recorder (store-level
        #: hops don't know which stage drives them; this does)
        self._audit_si = -1
        self.stats = SchedulerStats()

    def _executor_for(self, gi: int):
        return self.executors[gi % len(self.executors)]

    # -- public ---------------------------------------------------------------

    def run_stage(self, stage) -> None:
        si = self._stage_index
        self._stage_index += 1
        self._audit_si = si
        tel = self.telemetry
        if isinstance(stage, PermutationStage):
            tel.emit("stage.start", index=si, kind="permutation")
            tel.progress.stage_started(si)
            with tel.span("stage", index=si, kind="permutation"):
                self._run_permutation(stage)
            tel.progress.group_done(si)
            tel.emit("stage.end", index=si, kind="permutation")
        elif isinstance(stage, (GateStage, CompiledGateStage)):
            if not isinstance(stage, CompiledGateStage):
                # Raw planner stage (direct scheduler users / tests):
                # lower it here; MemQSim pre-compiles the whole plan.
                stage, _ = compile_stage(stage, self.layout,
                                         self.compile_options)
            tel.emit("stage.start", index=si, kind="gate",
                     ops=len(stage.ops), gates=stage.source_gates)
            tel.progress.stage_started(si)
            with tel.span("stage", index=si, kind="gate",
                          ops=len(stage.ops),
                          gates=stage.source_gates):
                self._run_gate_stage(stage, si)
            tel.emit("stage.end", index=si, kind="gate")
        else:
            raise TypeError(f"unknown stage type {type(stage).__name__}")
        # Traffic after this point (result queries, flushes between runs)
        # is out-of-stage again.
        tel.traffic.set_pass()
        self._audit_si = -1

    def run(self, stages: Sequence[object]) -> None:
        log.debug("scheduler: running %d stages", len(stages))
        for s in stages:
            self.cancel.raise_if_cancelled()
            self.run_stage(s)

    # -- permutation stages ---------------------------------------------------------

    def _run_permutation(self, stage: PermutationStage) -> None:
        tel = self.telemetry
        # Blob relabeling moves no bytes, but a cache in front of the store
        # flushes here (write-back traffic lands on this stage), and chunk
        # identities change — the access trace records it as a barrier.
        tel.traffic.set_pass(self._audit_si)
        tel.access.barrier(self._audit_si)
        if self.schedule is not None:
            # Reuse does not survive the relabeling; the schedule cursor
            # crosses the matching barrier so next-use queries stay
            # epoch-bounded on the correct side.
            self.schedule.barrier(self._audit_si)
        with tel.stage_span(self.timeline, Stage.CPU_UPDATE,
                            kind="permutation"):
            self.store.permute(stage.perm)
        self.stats.permutation_stages += 1
        self.stats.gates_applied += len(stage.gates)

    # -- gate stages -------------------------------------------------------------------

    def _cpu_every(self) -> int:
        """Every how many groups the CPU path takes one (0 = never)."""
        if self.cpu_offload_fraction <= 0.0:
            return 0
        if self.cpu_offload_fraction >= 1.0:
            return 1
        return max(1, round(1.0 / self.cpu_offload_fraction))

    def _group_order(self, placement: GroupPlacement) -> List[Tuple[int, Tuple[int, ...]]]:
        """The stage's (group id, members) sweep order (serpentine-aware)."""
        order = list(enumerate(placement.groups))
        if self.serpentine:
            # Alternate sweep direction per stage: the chunks touched last
            # are touched first next stage, so a bounded cache keeps hitting
            # (boustrophedon order — the locality fix for cyclic sweeps).
            self._stage_parity ^= 1
            if self._stage_parity == 0:
                order.reverse()
        return order

    def _run_gate_stage(self, stage: CompiledGateStage, si: int = -1) -> None:
        placement = self.layout.chunk_groups(stage.group_qubits)
        group_size = self.layout.chunk_size << len(placement.group_qubits)
        cpu_every = self._cpu_every()
        order = self._group_order(placement)
        will_need = getattr(self.store, "will_need", None)
        for gi, members in order:
            self.cancel.raise_if_cancelled()
            self.telemetry.traffic.set_pass(si, gi)
            if self.schedule is not None:
                self.schedule.begin_pass(si, gi)
            if will_need is not None:
                # Advisory hint down the hierarchy: a tiered store promotes
                # this pass's disk-resident blobs before the streaming
                # loop pays per-chunk latencies for them.
                will_need(members)
            cpu_path = cpu_every > 0 and (gi % cpu_every == 0)
            ops = self._ops_for_group(stage, placement, members[0])
            with self.telemetry.span(
                "group_pass", stage=si, group=gi,
                path="cpu" if cpu_path else "device",
                chunks=len(members),
                nbytes=group_size * self.layout.itemsize,
            ):
                if cpu_path:
                    self._run_group_cpu(gi, members, ops, group_size)
                else:
                    self._run_group_device(gi, members, ops, group_size)
            self.stats.group_passes += 1
            self.telemetry.progress.group_done(si)
            self.telemetry.emit("group", stage=si, group=gi,
                                chunks=len(members),
                                path="cpu" if cpu_path else "device")

    def _ops_for_group(self, stage: CompiledGateStage,
                       placement: GroupPlacement,
                       base_chunk: int) -> List[GateOp]:
        """Remap the stage's compiled ops into this group's buffer frame.

        Compilation (fusion) happened once per stage; the per-group step
        relabels qubits to virtual positions and restricts diagonals by the
        group's fixed chunk-id bits — that restriction differs per group,
        which is why it cannot be folded into the stage-level compile.
        """
        out: List[GateOp] = []
        for op in stage.ops:
            rg = remap_gate_for_group(op.to_gate(), self.layout, placement,
                                      base_chunk)
            if rg is None:
                self.stats.gates_skipped_identity += 1
            else:
                out.append(GateOp(rg))
        return out

    def _load_group(self, gi: int, members: Tuple[int, ...], buf: np.ndarray) -> None:
        # Events carry the *group* id so the overlap model chains each
        # group's decompress -> h2d -> kernel -> d2h -> compress pass.
        cs = self.layout.chunk_size
        for slot, chunk in enumerate(members):
            self.telemetry.access.record(chunk, self._audit_si, "r")
            with self.telemetry.stage_span(self.timeline, Stage.DECOMPRESS,
                                           chunk=gi,
                                           nbytes=self.layout.chunk_nbytes,
                                           chunk_id=chunk):
                self.store.load(chunk, out=buf[slot * cs:(slot + 1) * cs])

    def _store_group(self, gi: int, members: Tuple[int, ...], buf: np.ndarray) -> None:
        cs = self.layout.chunk_size
        for slot, chunk in enumerate(members):
            self.telemetry.access.record(chunk, self._audit_si, "w")
            with self.telemetry.stage_span(self.timeline, Stage.COMPRESS,
                                           chunk=gi,
                                           nbytes=self.layout.chunk_nbytes,
                                           chunk_id=chunk):
                self.store.store(chunk, buf[slot * cs:(slot + 1) * cs])

    def _device_update(self, gi: int, ops: List[GateOp],
                       view: np.ndarray) -> None:
        """Upload -> kernels -> download for one already-staged group."""
        executor = self._executor_for(gi)
        dev = executor.alloc(view.shape[0], dtype=view.dtype)
        try:
            executor.upload(view, dev, gi)
            if ops:
                executor.run_ops(dev, ops, gi)
                self.stats.gates_applied += len(ops)
            # One synchronous resource sample while the device buffer is
            # live, so the arena-occupancy series rises and falls per
            # group even when passes are shorter than the sample period
            # (rate-limited to the monitor's own interval).
            self.telemetry.monitor.poke()
            executor.download(dev, view, gi)
        finally:
            executor.free(dev)

    def _cpu_update(self, gi: int, ops: List[GateOp],
                    view: np.ndarray) -> None:
        """Host-side update path: same compiled ops, configured backend."""
        with self.telemetry.stage_span(self.timeline, Stage.CPU_UPDATE,
                                       chunk=gi, nbytes=view.nbytes,
                                       gates=len(ops)):
            self.backend.apply_ops(view, ops)
        self.stats.gates_applied += len(ops)
        self.stats.cpu_group_passes += 1

    def _run_group_device(self, gi: int, members: Tuple[int, ...],
                          ops: List[GateOp], group_size: int) -> None:
        buf = self.pool.acquire()
        try:
            view = buf[:group_size]
            self._load_group(gi, members, view)
            self._device_update(gi, ops, view)
            self._store_group(gi, members, view)
        finally:
            self.pool.release(buf)

    def _run_group_cpu(self, gi: int, members: Tuple[int, ...],
                       ops: List[GateOp], group_size: int) -> None:
        buf = self.pool.acquire()
        try:
            view = buf[:group_size]
            self._load_group(gi, members, view)
            self._cpu_update(gi, ops, view)
            self._store_group(gi, members, view)
        finally:
            self.pool.release(buf)
