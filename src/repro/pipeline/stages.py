"""Execution-stage descriptors produced by the offline planner.

The planner splits a circuit into stages, each executable under one chunk
residency pattern:

* :class:`GateStage` — a run of gates whose *global* (cross-chunk) qubits
  all fit in one chunk-group footprint; the scheduler streams every chunk
  group through decompress -> H2D -> kernel -> D2H -> recompress once for
  the whole run.
* :class:`PermutationStage` — pure chunk-id permutations (X on a global
  qubit, SWAP between two global qubits): executed by relabeling compressed
  blobs, with **zero** codec or transfer traffic. This is the strongest form
  of the paper's "efficient memory access pattern" goal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..circuits.gates import Gate

__all__ = ["GateStage", "PermutationStage", "ExecutionStage"]


@dataclass
class GateStage:
    """A run of gates sharing one group-qubit footprint.

    Attributes:
        group_qubits: the global qubits that must be co-resident (sorted);
            empty means all gates are chunk-local.
        gates: the gates, in circuit order.
    """

    group_qubits: Tuple[int, ...]
    gates: List[Gate] = field(default_factory=list)

    @property
    def num_group_qubits(self) -> int:
        return len(self.group_qubits)

    @property
    def is_local(self) -> bool:
        return not self.group_qubits

    def __repr__(self) -> str:
        kind = "local" if self.is_local else f"group{list(self.group_qubits)}"
        return f"<GateStage {kind} gates={len(self.gates)}>"


@dataclass
class PermutationStage:
    """Chunk-id relabeling: ``new_chunk[i] = old_chunk[perm[i]]``.

    ``perm`` is stored as the source index for each destination chunk.
    """

    perm: Tuple[int, ...]
    gates: List[Gate] = field(default_factory=list)  # provenance only

    def __repr__(self) -> str:
        return f"<PermutationStage chunks={len(self.perm)} from {len(self.gates)} gates>"


ExecutionStage = "GateStage | PermutationStage"
