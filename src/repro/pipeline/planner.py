"""The offline stage: partition a circuit into chunk-residency stages.

Given the chunk layout and the device's group capacity, the planner walks
the gate list once and greedily packs gates into stages (paper: "MEMQSim
partitions the input circuit and the corresponding state vector"):

* **diagonal gates never force grouping** — a diagonal multiplies each
  amplitude in place, so whatever its qubits, each chunk can apply its own
  restriction of the diagonal (the chunk id fixes the global bits);
* **pure chunk permutations** (X on a global qubit; SWAP between global
  qubits) become :class:`PermutationStage`s executed on compressed blobs;
* any other gate contributes its global qubits to the current stage's
  group; when the union would exceed ``max_group_qubits``, the stage is
  closed and a new one opened.

``max_group_qubits`` is derived from the device: a group buffer of
``2^(chunk_qubits + t)`` amplitudes must fit in the arena (with one buffer
of headroom for double-buffered pipelines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate, gate_is_diagonal, make_gate
from ..device.spec import DeviceSpec
from ..memory.layout import ChunkLayout
from ..telemetry import get_logger
from .stages import GateStage, PermutationStage

log = get_logger(__name__)

__all__ = ["plan_stages", "max_group_qubits_for", "PlanReport", "describe_plan"]


def max_group_qubits_for(layout: ChunkLayout, device: DeviceSpec,
                         double_buffer: bool = True) -> int:
    """Largest ``t`` such that a group buffer fits the device arena.

    Byte math uses ``layout.itemsize``, so a complex64 layout fits groups
    one qubit wider than complex128 in the same device memory.
    """
    copies = 2 if double_buffer else 1
    item = layout.itemsize
    t = 0
    while True:
        need = copies * (1 << (layout.chunk_qubits + t + 1)) * item
        if need > device.memory_bytes or layout.chunk_qubits + t + 1 > layout.num_qubits:
            break
        t += 1
    if (1 << layout.chunk_qubits) * item * copies > device.memory_bytes:
        raise ValueError(
            f"chunk of {layout.chunk_qubits} qubits does not fit device memory "
            f"{device.memory_bytes:,}B (x{copies} buffers)"
        )
    return t


# Backwards-compatible alias: the canonical predicate now lives with the
# gate definitions so the compile layer can share it without import cycles.
_gate_is_diagonal = gate_is_diagonal


def _permutation_of(g: Gate, layout: ChunkLayout) -> Optional[Tuple[int, ...]]:
    """If ``g`` is a pure chunk-id permutation, return it (dst -> src)."""
    c = layout.chunk_qubits
    nc = layout.num_chunks
    if g.name == "x" and not layout.is_local(g.qubits[0]):
        bit = 1 << (g.qubits[0] - c)
        return tuple(k ^ bit for k in range(nc))
    if g.name == "swap":
        a, b = g.qubits
        if not layout.is_local(a) and not layout.is_local(b):
            ba, bb = a - c, b - c
            perm = []
            for k in range(nc):
                va = (k >> ba) & 1
                vb = (k >> bb) & 1
                src = k & ~(1 << ba) & ~(1 << bb) | (vb << ba) | (va << bb)
                perm.append(src)
            return tuple(perm)
    return None


def _lower_oversized_gate(g: Gate, layout: ChunkLayout,
                          max_group_qubits: int) -> List[Gate]:
    """SWAP-conjugate a gate whose global-qubit count exceeds the cap.

    Classic distributed-SV lowering: swap surplus global qubits with unused
    local qubits, apply the relabeled gate, swap back. Each inserted
    ``swap(local, global)`` touches a single global qubit, so it always fits
    a cap of >= 1.
    """
    gq = sorted(layout.global_qubits(g.qubits))
    surplus = len(gq) - max_group_qubits
    free_locals = [q for q in range(layout.chunk_qubits) if q not in g.qubits]
    if max_group_qubits < 1 or surplus > len(free_locals):
        raise ValueError(
            f"gate {g} needs {len(gq)} co-resident global qubits but the "
            f"device only supports groups of {max_group_qubits} and only "
            f"{len(free_locals)} local qubits are free for swap lowering; "
            f"increase device memory or reduce chunk size"
        )
    victims = gq[:surplus]
    homes = free_locals[:surplus]
    mapping = {q: q for q in g.qubits}
    out: List[Gate] = []
    for loc, glob in zip(homes, victims):
        out.append(make_gate("swap", (loc, glob)))
        mapping[glob] = loc
    out.append(g.remapped(mapping))
    for loc, glob in zip(homes, victims):
        out.append(make_gate("swap", (loc, glob)))
    return out


def plan_stages(
    circuit: Circuit,
    layout: ChunkLayout,
    max_group_qubits: int,
    enable_permutation_stages: bool = True,
) -> List[object]:
    """Partition ``circuit`` into execution stages (see module docstring)."""
    if max_group_qubits < 0:
        raise ValueError("max_group_qubits must be >= 0")
    stages: List[object] = []
    current: Optional[GateStage] = None

    def close() -> None:
        nonlocal current
        if current is not None and current.gates:
            stages.append(current)
        current = None

    def process(g: Gate) -> None:
        nonlocal current
        perm = _permutation_of(g, layout) if enable_permutation_stages else None
        if perm is not None:
            close()
            # Merge consecutive permutations into one relabeling.
            if stages and isinstance(stages[-1], PermutationStage):
                prev: PermutationStage = stages[-1]
                # composed(dst) = prev.perm[perm[dst]]  (apply prev, then g)
                composed = tuple(prev.perm[perm[d]] for d in range(len(perm)))
                stages[-1] = PermutationStage(composed, prev.gates + [g])
            else:
                stages.append(PermutationStage(perm, [g]))
            return
        if _gate_is_diagonal(g):
            # Never forces grouping; joins whatever stage is open.
            if current is None:
                current = GateStage(group_qubits=())
            current.gates.append(g)
            return
        gq = set(layout.global_qubits(g.qubits))
        if len(gq) > max_group_qubits:
            for piece in _lower_oversized_gate(g, layout, max_group_qubits):
                process(piece)
            return
        if current is None:
            current = GateStage(group_qubits=tuple(sorted(gq)))
            current.gates.append(g)
            return
        union = set(current.group_qubits) | gq
        if len(union) <= max_group_qubits:
            current.group_qubits = tuple(sorted(union))
            current.gates.append(g)
        else:
            close()
            current = GateStage(group_qubits=tuple(sorted(gq)))
            current.gates.append(g)

    for g in circuit:
        process(g)
    close()
    log.debug("planned %d gates into %d stages (t_max=%d)",
              len(circuit), len(stages), max_group_qubits)
    return stages


@dataclass
class PlanReport:
    """Summary statistics of a stage plan (experiment A4's fingerprint)."""

    num_stages: int
    num_gate_stages: int
    num_permutation_stages: int
    num_local_stages: int
    gates_total: int
    gates_in_local_stages: int
    max_group_size: int
    group_passes: int  # total (stage, group) executions = codec traffic unit


def describe_plan(stages: Sequence[object], layout: ChunkLayout) -> PlanReport:
    """Compute the plan fingerprint used by benchmarks."""
    gate_stages = [s for s in stages if isinstance(s, GateStage)]
    perm_stages = [s for s in stages if isinstance(s, PermutationStage)]
    local = [s for s in gate_stages if s.is_local]
    passes = 0
    max_group = 0
    for s in gate_stages:
        t = s.num_group_qubits
        max_group = max(max_group, t)
        passes += layout.num_chunks >> t  # number of groups in this stage
    return PlanReport(
        num_stages=len(stages),
        num_gate_stages=len(gate_stages),
        num_permutation_stages=len(perm_stages),
        num_local_stages=len(local),
        gates_total=sum(len(s.gates) for s in gate_stages)
        + sum(len(s.gates) for s in perm_stages),
        gates_in_local_stages=sum(len(s.gates) for s in local),
        max_group_size=max_group,
        group_passes=passes,
    )
