"""Benchmark records, baselines, and the perf regression gate.

The layer above :mod:`repro.telemetry`: where spans and metrics observe a
*single* run, ``repro.bench`` makes runs comparable *across* commits and
machines. Three pieces:

* :mod:`repro.bench.schema` — the ``repro.bench/v1`` record every
  ``benchmarks/bench_*.py`` emits (``results/BENCH_<id>.json``): metric
  repeats, host fingerprint, git rev, rendered tables;
* :mod:`repro.bench.baseline` — committed baselines under
  ``results/baselines/`` and the noise-aware comparator
  (median-of-repeats, per-metric relative tolerance, host-mismatch
  demotion);
* ``python -m repro.bench {check,update,report}`` — the CLI regression
  gate (:mod:`repro.bench.__main__`);
* :mod:`repro.bench.decide` — empirical auto-selection: resolves
  ``precision="auto"`` / ``backend="auto"`` / ``workers=0`` from the
  host-fingerprint-matched corpus, falling back to one-shot micro-probes.

Workflow::

    python benchmarks/run_all.py --skip-slow   # refresh results/BENCH_*.json
    python -m repro.bench check                # gate against baselines
    python -m repro.bench update               # promote current numbers
"""

from .decide import (
    Decision,
    decide_backend,
    decide_precision,
    decide_workers,
    find_record,
    load_corpus,
    resolve_auto_config,
)
from .baseline import (
    DEFAULT_BASELINE_DIR,
    DEFAULT_RESULTS_DIR,
    CompareReport,
    MetricComparison,
    compare_directories,
    compare_records,
    discover_results,
    update_baselines,
)
from .schema import (
    SCHEMA_VERSION,
    git_rev,
    host_fingerprint,
    load_result,
    make_result,
    median,
    metric,
    result_path,
    validate,
    write_result,
)

__all__ = [
    "SCHEMA_VERSION",
    "host_fingerprint",
    "git_rev",
    "metric",
    "median",
    "make_result",
    "write_result",
    "load_result",
    "validate",
    "result_path",
    "MetricComparison",
    "CompareReport",
    "compare_records",
    "compare_directories",
    "discover_results",
    "update_baselines",
    "DEFAULT_RESULTS_DIR",
    "DEFAULT_BASELINE_DIR",
    "Decision",
    "decide_precision",
    "decide_backend",
    "decide_workers",
    "find_record",
    "load_corpus",
    "resolve_auto_config",
]
