"""The canonical benchmark-record schema (``repro.bench/v1``).

Every experiment in ``benchmarks/`` emits one ``results/BENCH_<id>.json``
shaped like this, so benchmark runs from different PRs / machines are
comparable records rather than throwaway stdout:

.. code-block:: json

    {
      "schema": "repro.bench/v1",
      "experiment": "P1",
      "title": "parallel codec scaling",
      "created_unix": 1754500000.0,
      "host": {"cpu_count": 8, "platform": "...", "python": "3.11.8",
               "machine": "x86_64"},
      "git_rev": "43acd33...",
      "params": {"num_qubits": 13, "chunk_qubits": 7},
      "metrics": {
        "wall_seconds": {"values": [1.91, 1.88, 1.95], "unit": "s",
                          "direction": "lower", "tolerance": 0.25}
      },
      "tables": [{"title": "...", "columns": ["..."], "rows": [["..."]]}],
      "extra": {}
    }

``metrics`` carries *repeats* (``values``), never a single number — the
baseline comparator works on medians so one noisy run cannot flip a gate.
``direction`` says which way is better (``"lower"`` for timings, bytes;
``"higher"`` for ratios, hit rates); ``tolerance`` is the relative noise
band the regression gate allows for this metric.

:func:`validate` is the hard gate: CI fails on schema errors even in
warn-only mode.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "SCHEMA_VERSION",
    "host_fingerprint",
    "git_rev",
    "metric",
    "median",
    "make_result",
    "write_result",
    "load_result",
    "validate",
    "result_path",
]

SCHEMA_VERSION = "repro.bench/v1"

#: default relative tolerance for metrics that don't declare their own
DEFAULT_TOLERANCE = 0.25

_DIRECTIONS = ("lower", "higher")


def host_fingerprint() -> Dict[str, Any]:
    """Identify the machine a record was measured on.

    Benchmark numbers are only comparable on like hardware; the comparator
    refuses to hard-fail across differing fingerprints.
    """
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
    }


def git_rev(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit hash, or ``None`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def median(values: Sequence[float]) -> float:
    """Median of the repeats — the comparator's noise-resistant statistic."""
    vs = sorted(float(v) for v in values)
    if not vs:
        raise ValueError("median of no values")
    mid = len(vs) // 2
    if len(vs) % 2:
        return vs[mid]
    return 0.5 * (vs[mid - 1] + vs[mid])


def metric(values, unit: str = "", direction: str = "lower",
           tolerance: Optional[float] = None) -> Dict[str, Any]:
    """Build one schema-shaped metric entry from repeat measurements."""
    if direction not in _DIRECTIONS:
        raise ValueError(f"direction must be one of {_DIRECTIONS}")
    if isinstance(values, (int, float)):
        values = [values]
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("a metric needs at least one measurement")
    entry: Dict[str, Any] = {
        "values": vals,
        "unit": unit,
        "direction": direction,
    }
    if tolerance is not None:
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        entry["tolerance"] = float(tolerance)
    return entry


def _serialize_table(table) -> Dict[str, Any]:
    """Accept a :class:`repro.analysis.Table` or an already-plain dict."""
    if isinstance(table, dict):
        return table
    return {
        "title": getattr(table, "title", ""),
        "columns": list(table.columns),
        "rows": [list(r) for r in table.rows],
    }


def make_result(experiment: str, *, title: str = "",
                params: Optional[Dict[str, Any]] = None,
                metrics: Optional[Dict[str, Any]] = None,
                tables: Optional[Iterable[Any]] = None,
                extra: Optional[Dict[str, Any]] = None,
                repo_root: Optional[str] = None) -> Dict[str, Any]:
    """Assemble a schema-valid benchmark record (plain JSON-able dict).

    ``metrics`` values may be :func:`metric` entries, bare numbers, or
    lists of repeats — the latter two are wrapped with lower-is-better
    defaults (right for timings; pass explicit entries for ratios).
    """
    if not experiment or not experiment.replace("_", "").isalnum():
        raise ValueError(f"bad experiment id: {experiment!r}")
    norm_metrics: Dict[str, Dict[str, Any]] = {}
    for name, m in (metrics or {}).items():
        if isinstance(m, dict):
            norm_metrics[name] = metric(
                m["values"], unit=m.get("unit", ""),
                direction=m.get("direction", "lower"),
                tolerance=m.get("tolerance"))
        else:
            norm_metrics[name] = metric(m)
    return {
        "schema": SCHEMA_VERSION,
        "experiment": experiment,
        "title": title,
        "created_unix": time.time(),
        "host": host_fingerprint(),
        "git_rev": git_rev(repo_root),
        "params": dict(params or {}),
        "metrics": norm_metrics,
        "tables": [_serialize_table(t) for t in (tables or [])],
        "extra": dict(extra or {}),
    }


def result_path(results_dir: str, experiment: str) -> str:
    return os.path.join(results_dir, f"BENCH_{experiment}.json")


def write_result(doc: Dict[str, Any], path: str) -> str:
    """Validate then write one record; returns the absolute path."""
    errors = validate(doc)
    if errors:
        raise ValueError(f"refusing to write invalid bench record: {errors}")
    path = os.path.abspath(path)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, default=str)
        fh.write("\n")
    return path


def load_result(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        return json.load(fh)


def validate(doc: Any) -> List[str]:
    """Schema check; returns a list of human-readable errors (empty = ok)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"record is {type(doc).__name__}, expected object"]

    def need(key: str, types, where: str = "") -> Any:
        val = doc.get(key)
        if val is None or not isinstance(val, types):
            tn = types.__name__ if isinstance(types, type) else \
                "/".join(t.__name__ for t in types)
            errors.append(f"{where}{key}: missing or not {tn}")
            return None
        return val

    if doc.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"schema: expected {SCHEMA_VERSION!r}, got {doc.get('schema')!r}")
    need("experiment", str)
    need("created_unix", (int, float))
    host = need("host", dict)
    if host is not None:
        for k in ("cpu_count", "platform", "python"):
            if k not in host:
                errors.append(f"host.{k}: missing")
    need("params", dict)
    metrics = need("metrics", dict)
    if metrics is not None:
        for name, m in metrics.items():
            if not isinstance(m, dict):
                errors.append(f"metrics[{name}]: not an object")
                continue
            vals = m.get("values")
            if (not isinstance(vals, list) or not vals
                    or not all(isinstance(v, (int, float)) for v in vals)):
                errors.append(f"metrics[{name}].values: need a non-empty "
                              f"list of numbers")
            if m.get("direction") not in _DIRECTIONS:
                errors.append(f"metrics[{name}].direction: must be one of "
                              f"{_DIRECTIONS}")
            tol = m.get("tolerance")
            if tol is not None and (not isinstance(tol, (int, float))
                                    or tol < 0):
                errors.append(f"metrics[{name}].tolerance: must be >= 0")
    tables = doc.get("tables", [])
    if not isinstance(tables, list):
        errors.append("tables: not a list")
    else:
        for i, t in enumerate(tables):
            if not isinstance(t, dict) or "columns" not in t or "rows" not in t:
                errors.append(f"tables[{i}]: need columns + rows")
    return errors


if __name__ == "__main__":  # tiny self-check: validate files given as args
    bad = 0
    for p in sys.argv[1:]:
        errs = validate(load_result(p))
        print(f"{p}: {'ok' if not errs else errs}")
        bad += bool(errs)
    sys.exit(1 if bad else 0)
