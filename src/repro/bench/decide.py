"""Empirical auto-selection of config knobs from the bench corpus.

``MemQSimConfig`` exposes three knobs that may be left open —
``precision="auto"``, ``backend="auto"``, ``workers=0`` — and this module
closes them, in order of preference:

1. **corpus lookup** — the committed baselines under ``results/baselines/``
   carry a host fingerprint; if a record for the deciding experiment exists
   *and* its fingerprint matches this host on the stable keys (cpu count,
   platform, python), the measured numbers decide directly. For precision
   that record is ``BENCH_PR1`` (c64-vs-c128 end-to-end bytes and wall-time
   ratios); its gates mirror the benchmark's own regression gates:
   adopt c64 when it moves at most :data:`BYTES_RATIO_GATE` of the c128
   bytes *and* is not slower (:data:`WALL_RATIO_GATE`).
2. **micro-probe** — with no compatible baseline, run a one-shot probe on
   this machine (a tiny streamed circuit at both precisions; a 16-gate
   kernel batch per backend; the codec-amortization probe for workers).
3. **default** — if even the probe is inconclusive, keep the conservative
   default (c128 / numpy / serial) and say why.

Every choice is returned as a :class:`Decision` carrying the knob, the
value, the source (``corpus`` | ``probe`` | ``default``) and a one-line
rationale; :func:`resolve_auto_config` logs each as an audit line and the
run echoes them in ``config_echo["decisions"]``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..telemetry import get_logger
from .baseline import DEFAULT_BASELINE_DIR, _hosts_match
from .schema import host_fingerprint, load_result, median

log = get_logger(__name__)

__all__ = [
    "Decision",
    "BYTES_RATIO_GATE",
    "WALL_RATIO_GATE",
    "load_corpus",
    "find_record",
    "decide_precision",
    "decide_backend",
    "decide_workers",
    "resolve_auto_config",
]

#: c64 must move at most this share of the c128 end-to-end bytes ...
BYTES_RATIO_GATE = 0.55
#: ... and must not be slower, for the corpus to pick it.
WALL_RATIO_GATE = 1.0
#: a one-shot micro-probe's wall ratio is noisy; allow this much slack
#: (the bytes ratio is deterministic, so it stays the hard gate).
PROBE_WALL_SLACK = 1.25


@dataclass(frozen=True)
class Decision:
    """One resolved auto knob, with its provenance."""

    knob: str
    value: Any
    source: str  # "corpus" | "probe" | "default"
    rationale: str

    def audit_line(self) -> str:
        return (f"auto-resolve {self.knob}={self.value} "
                f"[{self.source}] {self.rationale}")

    def to_dict(self) -> Dict[str, Any]:
        return {"knob": self.knob, "value": self.value,
                "source": self.source, "rationale": self.rationale}


# -- corpus access -----------------------------------------------------------


def load_corpus(corpus_dir: Optional[Union[str, Path]] = None) -> List[dict]:
    """Load every readable ``BENCH_*.json`` record from the corpus dir."""
    root = Path(corpus_dir if corpus_dir is not None else DEFAULT_BASELINE_DIR)
    records: List[dict] = []
    if not root.is_dir():
        return records
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            records.append(load_result(path))
        except (ValueError, OSError):  # unreadable/foreign file: skip
            log.debug("decide: skipping unreadable record %s", path)
    return records


def find_record(
    experiment: str,
    corpus_dir: Optional[Union[str, Path]] = None,
    host: Optional[dict] = None,
) -> Optional[dict]:
    """The corpus record for ``experiment`` iff its host matches this one.

    Matching uses the same stable fingerprint keys as the baseline
    comparator (cpu count, platform, python); a record measured on a
    different machine class must not decide knobs here.
    """
    here = host if host is not None else host_fingerprint()
    for rec in load_corpus(corpus_dir):
        if rec.get("experiment") != experiment:
            continue
        if _hosts_match(rec.get("host", {}), here):
            return rec
        log.debug("decide: %s record found but host fingerprint differs",
                  experiment)
    return None


def _metric_median(rec: dict, name: str) -> Optional[float]:
    m = rec.get("metrics", {}).get(name)
    if not m or not m.get("values"):
        return None
    return median(m["values"])


# -- precision ---------------------------------------------------------------


def decide_precision(
    corpus_dir: Optional[Union[str, Path]] = None,
    allow_probe: bool = True,
) -> Decision:
    """Pick ``c64`` or ``c128`` from BENCH_PR1 or a one-shot micro-probe."""
    rec = find_record("PR1", corpus_dir)
    if rec is not None:
        bytes_ratio = _metric_median(rec, "c64_bytes_ratio")
        wall_ratio = _metric_median(rec, "c64_wall_ratio")
        if bytes_ratio is not None and wall_ratio is not None:
            if bytes_ratio <= BYTES_RATIO_GATE and wall_ratio < WALL_RATIO_GATE:
                return Decision(
                    "precision", "c64", "corpus",
                    f"BENCH_PR1 on a matching host: c64 moves "
                    f"{bytes_ratio:.2f}x the bytes at {wall_ratio:.2f}x the "
                    f"wall time (gates: <= {BYTES_RATIO_GATE}, "
                    f"< {WALL_RATIO_GATE})")
            return Decision(
                "precision", "c128", "corpus",
                f"BENCH_PR1 on a matching host: c64 ratios "
                f"bytes={bytes_ratio:.2f} wall={wall_ratio:.2f} miss the "
                f"gates (<= {BYTES_RATIO_GATE}, < {WALL_RATIO_GATE})")
    if allow_probe:
        try:
            return _probe_precision()
        except Exception as exc:  # probe must never kill the run
            log.warning("decide: precision micro-probe failed: %s", exc)
    return Decision(
        "precision", "c128", "default",
        "no compatible BENCH_PR1 baseline and no probe; keeping full "
        "precision")


def _probe_precision() -> Decision:
    """One-shot streamed run at both precisions; compare bytes and wall.

    The probe must actually stream (a tiny device arena forces multi-stage
    group passes) and use chunks large enough that per-blob codec headers
    do not swamp the payload halving.
    """
    from ..circuits.generators import qft
    from ..core.memqsim import MemQSim
    from ..device.spec import DeviceSpec
    from ..telemetry import Telemetry

    circuit = qft(10)
    observed: Dict[str, Tuple[int, float]] = {}
    for prec in ("c128", "c64"):
        tel = Telemetry()
        t0 = time.perf_counter()
        MemQSim(precision=prec, chunk_qubits=7, compressor="zlib",
                device=DeviceSpec(memory_bytes=1 << 18),
                telemetry=tel).run(circuit)
        wall = time.perf_counter() - t0
        moved = sum(v["bytes"] for v in tel.traffic.totals().values())
        observed[prec] = (moved, wall)
    b128, w128 = observed["c128"]
    b64, w64 = observed["c64"]
    bytes_ratio = b64 / b128 if b128 else 1.0
    wall_ratio = w64 / w128 if w128 else 1.0
    if bytes_ratio <= BYTES_RATIO_GATE and wall_ratio < PROBE_WALL_SLACK:
        return Decision(
            "precision", "c64", "probe",
            f"micro-probe (qft-10, zlib): c64 moved {bytes_ratio:.2f}x the "
            f"bytes at {wall_ratio:.2f}x the wall time")
    return Decision(
        "precision", "c128", "probe",
        f"micro-probe (qft-10, zlib): c64 ratios bytes={bytes_ratio:.2f} "
        f"wall={wall_ratio:.2f} did not clear the gates")


# -- backend -----------------------------------------------------------------


def decide_backend(
    corpus_dir: Optional[Union[str, Path]] = None,
    allow_probe: bool = True,
) -> Decision:
    """Pick the kernel backend from BENCH_PR1 timings or a kernel probe."""
    rec = find_record("PR1", corpus_dir)
    if rec is not None:
        t_numpy = _metric_median(rec, "backend_numpy_seconds")
        t_einsum = _metric_median(rec, "backend_einsum_seconds")
        if t_numpy is not None and t_einsum is not None:
            value = "numpy" if t_numpy <= t_einsum else "einsum"
            return Decision(
                "backend", value, "corpus",
                f"BENCH_PR1 on a matching host: numpy={t_numpy * 1e3:.2f}ms "
                f"vs einsum={t_einsum * 1e3:.2f}ms per kernel batch")
    if allow_probe:
        try:
            return _probe_backend()
        except Exception as exc:
            log.warning("decide: backend micro-probe failed: %s", exc)
    return Decision("backend", "numpy", "default",
                    "no compatible baseline and no probe; keeping the "
                    "strided-kernel default")


def _probe_backend(num_qubits: int = 10, gates: int = 16) -> Decision:
    """Time one batch of gates per backend on a small dense buffer."""
    import numpy as np

    from ..circuits.generators import random_circuit
    from ..core.backend import get_backend

    circuit = random_circuit(num_qubits, gates, seed=7)
    rng = np.random.default_rng(7)
    base = rng.standard_normal(1 << num_qubits) \
        + 1j * rng.standard_normal(1 << num_qubits)
    base /= np.linalg.norm(base)
    timings: Dict[str, float] = {}
    for name in ("numpy", "einsum"):
        buf = base.astype(np.complex128)
        backend = get_backend(name)
        t0 = time.perf_counter()
        backend.apply(buf, list(circuit))
        timings[name] = time.perf_counter() - t0
    value = min(timings, key=timings.get)
    return Decision(
        "backend", value, "probe",
        f"micro-probe ({gates} gates @ n={num_qubits}): "
        + " vs ".join(f"{k}={v * 1e3:.2f}ms" for k, v in timings.items()))


# -- workers -----------------------------------------------------------------


def decide_workers(config, chunk_size: int = 1 << 12) -> Decision:
    """Resolve ``workers=0`` via the codec-amortization probe."""
    from ..parallel.pool import auto_workers

    value = auto_workers(config.make_compressor(), chunk_size)
    why = ("per-chunk codec time amortizes process-pool IPC"
           if value > 1 else
           "codec too fast (or no spare cores) for fan-out to pay")
    return Decision(
        "workers", value, "probe",
        f"codec probe ({config.compressor}, chunk_size={chunk_size}): {why}")


# -- top-level resolution ----------------------------------------------------


def resolve_auto_config(
    config,
    num_qubits: Optional[int] = None,
    corpus_dir: Optional[Union[str, Path]] = None,
) -> Tuple[Any, List[Decision]]:
    """Close every open knob on ``config``; returns (concrete, decisions).

    The returned config has ``precision``/``backend`` concrete and
    ``workers >= 1``, so ``plan_key()`` and all downstream sizing math are
    well-defined. Each decision is logged as one audit line.
    """
    decisions: List[Decision] = []
    updates: Dict[str, Any] = {}
    if config.precision == "auto":
        d = decide_precision(corpus_dir)
        updates["precision"] = d.value
        decisions.append(d)
    if config.backend == "auto":
        d = decide_backend(corpus_dir)
        updates["backend"] = d.value
        decisions.append(d)
    if config.workers == 0:
        partial = config.with_updates(**updates) if updates else config
        chunk_size = 1 << partial.resolve_chunk_qubits(num_qubits) \
            if num_qubits else (1 << 12)
        d = decide_workers(partial, chunk_size)
        updates["workers"] = d.value
        decisions.append(d)
    for d in decisions:
        log.info("%s", d.audit_line())
    resolved = config.with_updates(**updates) if updates else config
    return resolved, decisions
