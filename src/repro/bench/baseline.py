"""Baseline store + the noise-aware regression comparator.

The committed baselines live under ``results/baselines/BENCH_<id>.json``
(same schema as the live records in ``results/``). :func:`compare_records`
judges one live record against its baseline metric-by-metric:

* both sides reduce to the **median of repeats** (one noisy run cannot
  flip the gate);
* the relative change is tested against the metric's **tolerance** band
  (its own ``tolerance`` field, else the comparator default);
* sub-noise absolute timing deltas (< ``min_abs_seconds`` on ``s``-unit
  metrics) never count as regressions, whatever the relative change —
  a 0.2 ms swing on a 0.5 ms metric is scheduler jitter, not a signal;
* a **host-fingerprint mismatch** (different cpu_count / platform /
  python) demotes regressions to warnings: numbers from unlike machines
  are context, not a gate.

``python -m repro.bench check`` turns the reports into an exit code.
"""

from __future__ import annotations

import glob
import os
import shutil
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .schema import (
    DEFAULT_TOLERANCE,
    load_result,
    median,
    result_path,
    validate,
)

__all__ = [
    "MetricComparison",
    "CompareReport",
    "compare_records",
    "compare_directories",
    "discover_results",
    "update_baselines",
    "DEFAULT_RESULTS_DIR",
    "DEFAULT_BASELINE_DIR",
    "MIN_ABS_SECONDS",
]

_REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, os.pardir))
DEFAULT_RESULTS_DIR = os.path.join(_REPO_ROOT, "results")
DEFAULT_BASELINE_DIR = os.path.join(DEFAULT_RESULTS_DIR, "baselines")

#: absolute floor for second-unit metrics: deltas below this are noise
MIN_ABS_SECONDS = 5e-3

#: host fingerprint keys that must match for a hard regression gate
_HOST_KEYS = ("cpu_count", "platform", "python")


@dataclass
class MetricComparison:
    """One metric's verdict."""

    name: str
    status: str  # ok | regression | improvement | new | missing
    baseline: Optional[float] = None
    current: Optional[float] = None
    rel_change: Optional[float] = None  # signed, vs baseline
    tolerance: float = DEFAULT_TOLERANCE
    direction: str = "lower"
    unit: str = ""

    def describe(self) -> str:
        if self.status in ("new", "missing"):
            return f"{self.name}: {self.status}"
        pct = (self.rel_change or 0.0) * 100.0
        return (f"{self.name}: {self.baseline:g} -> {self.current:g} "
                f"({pct:+.1f}%, tol ±{self.tolerance * 100:.0f}%, "
                f"{self.direction} is better)")

    def to_dict(self) -> Dict[str, Any]:
        """This verdict as plain data (the ``check --json`` payload)."""
        rel = self.rel_change
        return {
            "name": self.name,
            "status": self.status,
            "baseline": self.baseline,
            "current": self.current,
            "rel_change": rel if rel is None or abs(rel) != float("inf")
            else None,
            "tolerance": self.tolerance,
            "direction": self.direction,
            "unit": self.unit,
        }


@dataclass
class CompareReport:
    """All metric verdicts for one experiment."""

    experiment: str
    status: str  # ok | regression | no-baseline | schema-error
    metrics: List[MetricComparison] = field(default_factory=list)
    host_mismatch: bool = False
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricComparison]:
        return [m for m in self.metrics if m.status == "regression"]

    @property
    def improvements(self) -> List[MetricComparison]:
        return [m for m in self.metrics if m.status == "improvement"]

    def summary_line(self) -> str:
        flags = []
        if self.host_mismatch:
            flags.append("host-mismatch")
        if self.regressions:
            flags.append(
                "regressed: " + ", ".join(m.name for m in self.regressions))
        if self.improvements:
            flags.append(
                "improved: " + ", ".join(m.name for m in self.improvements))
        tail = f" ({'; '.join(flags)})" if flags else ""
        return f"[{self.experiment}] {self.status}{tail}"

    def to_dict(self) -> Dict[str, Any]:
        """The whole experiment verdict as plain data.

        ``host_mismatch`` regressions are advisory, not gating — consumers
        (CI, decision engines) should combine ``status`` with
        ``host_mismatch`` exactly like the text gate does.
        """
        return {
            "experiment": self.experiment,
            "status": self.status,
            "host_mismatch": self.host_mismatch,
            "gating": self.status == "regression" and not self.host_mismatch,
            "notes": list(self.notes),
            "metrics": [m.to_dict() for m in self.metrics],
        }


def _hosts_match(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    return all(a.get(k) == b.get(k) for k in _HOST_KEYS)


def compare_records(baseline: Optional[Dict[str, Any]],
                    current: Dict[str, Any],
                    default_tolerance: float = DEFAULT_TOLERANCE,
                    min_abs_seconds: float = MIN_ABS_SECONDS) -> CompareReport:
    """Judge one live record against its baseline record."""
    exp = current.get("experiment", "?")
    errors = validate(current)
    if errors:
        return CompareReport(exp, "schema-error", notes=errors)
    if baseline is None:
        return CompareReport(
            exp, "no-baseline",
            notes=["no committed baseline; run `python -m repro.bench "
                   "update` to create one"])
    base_errors = validate(baseline)
    if base_errors:
        return CompareReport(exp, "schema-error",
                             notes=[f"baseline: {e}" for e in base_errors])

    rep = CompareReport(exp, "ok")
    rep.host_mismatch = not _hosts_match(
        baseline.get("host", {}), current.get("host", {}))
    if rep.host_mismatch:
        rep.notes.append(
            "host fingerprint differs from baseline — regressions are "
            "advisory, not gating")

    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        bm, cm = base_metrics.get(name), cur_metrics.get(name)
        if bm is None:
            rep.metrics.append(MetricComparison(name, "new"))
            continue
        if cm is None:
            rep.metrics.append(MetricComparison(name, "missing"))
            continue
        direction = cm.get("direction", "lower")
        tol = cm.get("tolerance")
        if tol is None:
            tol = bm.get("tolerance", default_tolerance)
        b, c = median(bm["values"]), median(cm["values"])
        mc = MetricComparison(name, "ok", baseline=b, current=c,
                              tolerance=float(tol), direction=direction,
                              unit=cm.get("unit", ""))
        mc.rel_change = ((c - b) / abs(b)) if b else (0.0 if c == b else
                                                     float("inf"))
        worse = mc.rel_change > tol if direction == "lower" \
            else mc.rel_change < -tol
        better = mc.rel_change < -tol if direction == "lower" \
            else mc.rel_change > tol
        if mc.unit == "s" and abs(c - b) < min_abs_seconds:
            worse = better = False  # sub-noise absolute delta
        if worse:
            mc.status = "regression"
        elif better:
            mc.status = "improvement"
        rep.metrics.append(mc)
    if any(m.status == "regression" for m in rep.metrics):
        rep.status = "regression"
    return rep


def discover_results(results_dir: str = DEFAULT_RESULTS_DIR
                     ) -> List[Tuple[str, str]]:
    """``(experiment id, path)`` for every ``BENCH_*.json`` in a dir."""
    out = []
    for path in sorted(glob.glob(os.path.join(results_dir, "BENCH_*.json"))):
        exp = os.path.basename(path)[len("BENCH_"):-len(".json")]
        out.append((exp, path))
    return out


def compare_directories(results_dir: str = DEFAULT_RESULTS_DIR,
                        baseline_dir: str = DEFAULT_BASELINE_DIR,
                        default_tolerance: float = DEFAULT_TOLERANCE,
                        only: Optional[List[str]] = None
                        ) -> List[CompareReport]:
    """Compare every live record against its committed baseline."""
    reports = []
    for exp, path in discover_results(results_dir):
        if only and exp not in only:
            continue
        current = load_result(path)
        bpath = result_path(baseline_dir, exp)
        baseline = load_result(bpath) if os.path.exists(bpath) else None
        reports.append(compare_records(baseline, current,
                                       default_tolerance=default_tolerance))
    return reports


def update_baselines(results_dir: str = DEFAULT_RESULTS_DIR,
                     baseline_dir: str = DEFAULT_BASELINE_DIR,
                     only: Optional[List[str]] = None) -> List[str]:
    """Promote live records to committed baselines (schema-checked)."""
    os.makedirs(baseline_dir, exist_ok=True)
    written = []
    for exp, path in discover_results(results_dir):
        if only and exp not in only:
            continue
        errors = validate(load_result(path))
        if errors:
            raise ValueError(f"{path}: refusing to baseline an invalid "
                             f"record: {errors}")
        dst = result_path(baseline_dir, exp)
        shutil.copyfile(path, dst)
        written.append(dst)
    return written
