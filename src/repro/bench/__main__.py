"""``python -m repro.bench`` — the benchmark baseline / regression CLI.

Commands:

* ``check`` — compare every ``results/BENCH_*.json`` against its committed
  baseline in ``results/baselines/``; exits nonzero listing each metric
  that regressed beyond tolerance. ``--warn-only`` keeps regressions as
  annotations (for unlike CI hosts) but still hard-fails on schema errors.
* ``update`` — promote the current records to committed baselines.
* ``report`` — render the full comparison as a table without gating.

Examples::

    python -m repro.bench check
    python -m repro.bench check --only P1,T1 --tolerance 0.4
    python -m repro.bench check --warn-only          # CI on shared runners
    python -m repro.bench update --only P1
    python -m repro.bench report
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..analysis.report import Table
from .baseline import (
    DEFAULT_BASELINE_DIR,
    DEFAULT_RESULTS_DIR,
    CompareReport,
    compare_directories,
    update_baselines,
)
from .schema import DEFAULT_TOLERANCE

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.bench",
        description="benchmark baselines and the perf regression gate",
    )
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("--results", default=DEFAULT_RESULTS_DIR,
                        help="directory holding live BENCH_*.json records")
        sp.add_argument("--baselines", default=DEFAULT_BASELINE_DIR,
                        help="directory holding committed baselines")
        sp.add_argument("--only", help="comma-separated experiment ids")

    checkp = sub.add_parser("check", help="gate current results vs baselines")
    common(checkp)
    checkp.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="default relative tolerance for metrics that "
                             "do not declare one")
    checkp.add_argument("--warn-only", action="store_true",
                        help="report regressions without failing (schema "
                             "errors still fail)")
    checkp.add_argument("--json", nargs="?", const="-", default=None,
                        metavar="FILE",
                        help="emit the machine-readable comparison report "
                             "(to FILE, or to stdout instead of the table "
                             "when no FILE given); exit code is unchanged")

    up = sub.add_parser("update", help="promote current results to baselines")
    common(up)

    rep = sub.add_parser("report", help="print the full comparison table")
    common(rep)
    rep.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    return p


def _only(args) -> Optional[List[str]]:
    if not args.only:
        return None
    return [e.strip() for e in args.only.split(",") if e.strip()]


def _comparison_table(reports: List[CompareReport]) -> Table:
    t = Table(["experiment", "metric", "baseline", "current", "change",
               "status"], title="benchmark comparison vs committed baselines")
    for rep in reports:
        if not rep.metrics:
            t.add(rep.experiment, "-", "-", "-", "-", rep.status)
            continue
        for m in rep.metrics:
            change = ("-" if m.rel_change is None
                      else f"{m.rel_change * 100:+.1f}%")
            status = m.status
            if m.status == "regression" and rep.host_mismatch:
                status = "regression (host-mismatch, advisory)"
            t.add(rep.experiment, m.name,
                  "-" if m.baseline is None else f"{m.baseline:g}",
                  "-" if m.current is None else f"{m.current:g}",
                  change, status)
    return t


def _check_payload(reports: List[CompareReport], args,
                   exit_code: int) -> dict:
    """The ``check --json`` document: per-metric verdicts + the decision."""
    from .schema import SCHEMA_VERSION

    return {
        "schema": f"{SCHEMA_VERSION}/check",
        "default_tolerance": args.tolerance,
        "warn_only": bool(args.warn_only),
        "exit_code": exit_code,
        "counts": {
            "checked": len(reports),
            "ok": sum(1 for r in reports if r.status == "ok"),
            "regressions": sum(1 for r in reports
                               if r.status == "regression"
                               and not r.host_mismatch),
            "advisory_regressions": sum(1 for r in reports
                                        if r.status == "regression"
                                        and r.host_mismatch),
            "no_baseline": sum(1 for r in reports
                               if r.status == "no-baseline"),
            "schema_errors": sum(1 for r in reports
                                 if r.status == "schema-error"),
        },
        "experiments": [r.to_dict() for r in reports],
    }


def _cmd_check(args) -> int:
    reports = compare_directories(args.results, args.baselines,
                                  default_tolerance=args.tolerance,
                                  only=_only(args))
    json_stdout = args.json == "-"
    if not reports:
        if json_stdout:
            import json as _json

            print(_json.dumps(_check_payload([], args, 1), indent=2))
        else:
            print(f"no BENCH_*.json records found in {args.results}")
            print("run `python benchmarks/run_all.py` (or any bench module) "
                  "first")
        return 1
    if not json_stdout:
        print(_comparison_table(reports).render())
    schema_errors = [r for r in reports if r.status == "schema-error"]
    gating = [r for r in reports
              if r.status == "regression" and not r.host_mismatch]
    advisory = [r for r in reports
                if r.status == "regression" and r.host_mismatch]
    missing = [r for r in reports if r.status == "no-baseline"]

    if not json_stdout:
        for r in schema_errors:
            print(f"SCHEMA ERROR [{r.experiment}]:", *r.notes, sep="\n  ")
        for r in missing:
            print(f"note [{r.experiment}]: {r.notes[0]}")
        for bucket, label in ((gating, "REGRESSION"), (advisory, "warning")):
            for r in bucket:
                for m in r.regressions:
                    print(f"{label} [{r.experiment}] {m.describe()}")

    if schema_errors:
        code = 2
    elif gating and not args.warn_only:
        code = 1
    else:
        code = 0
    if not json_stdout:
        if gating and args.warn_only:
            print(f"(--warn-only: {sum(len(r.regressions) for r in gating)} "
                  f"regression(s) reported but not gating)")
        ok = sum(1 for r in reports if r.status == "ok")
        print(f"checked {len(reports)} experiment(s): {ok} ok, "
              f"{len(gating) + len(advisory)} regressed, "
              f"{len(missing)} without baseline")
    if args.json:
        import json as _json

        payload = _json.dumps(_check_payload(reports, args, code), indent=2)
        if json_stdout:
            print(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload)
            print(f"comparison JSON written: {args.json}")
    return code


def _cmd_update(args) -> int:
    written = update_baselines(args.results, args.baselines, only=_only(args))
    if not written:
        print(f"nothing to update: no BENCH_*.json in {args.results}")
        return 1
    for path in written:
        print(f"baseline updated: {path}")
    return 0


def _cmd_report(args) -> int:
    reports = compare_directories(args.results, args.baselines,
                                  default_tolerance=args.tolerance,
                                  only=_only(args))
    if not reports:
        print(f"no BENCH_*.json records found in {args.results}")
        return 1
    print(_comparison_table(reports).render())
    for rep in reports:
        print(rep.summary_line())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return {"check": _cmd_check, "update": _cmd_update,
            "report": _cmd_report}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
