"""Pauli-sum observables (Hamiltonians) and their streamed evaluation.

A :class:`PauliSum` is a real-linear combination of Pauli strings —
the form every VQE/QAOA cost function takes. It evaluates against

* a dense :class:`~repro.statevector.StateVector` (term by term), or
* a chunked :class:`~repro.core.MemQSimResult` *in one streaming pass*:
  all terms share each chunk decompression, so evaluating an m-term
  Hamiltonian costs one pass over the store per distinct X-mask partner
  set instead of m full passes.

Constructors cover the standard model Hamiltonians the examples use:
MaxCut from a networkx graph, transverse-field Ising, and Heisenberg XXZ
chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..statevector.pauli import PauliString, parse_pauli, pauli_phase
from ..statevector.statevector import StateVector

__all__ = ["PauliTerm", "PauliSum", "maxcut_hamiltonian", "ising_hamiltonian",
           "heisenberg_hamiltonian"]


@dataclass(frozen=True)
class PauliTerm:
    """One weighted Pauli string."""

    coefficient: float
    pauli: str
    qubits: Tuple[int, ...]

    def parsed(self) -> PauliString:
        return parse_pauli(self.pauli, self.qubits)

    def __str__(self) -> str:
        ops = " ".join(f"{p}{q}" for p, q in zip(self.pauli, self.qubits))
        return f"{self.coefficient:+g} * {ops}" if ops else f"{self.coefficient:+g}"


class PauliSum:
    """A real-weighted sum of Pauli strings."""

    def __init__(self, terms: Optional[Iterable[PauliTerm]] = None,
                 constant: float = 0.0):
        self.terms: List[PauliTerm] = list(terms) if terms is not None else []
        self.constant = float(constant)

    # -- construction ---------------------------------------------------------

    def add(self, coefficient: float, pauli: str,
            qubits: Sequence[int]) -> "PauliSum":
        """Append a term (validates the string eagerly)."""
        term = PauliTerm(float(coefficient), pauli.upper(), tuple(qubits))
        term.parsed()  # raises on malformed input
        self.terms.append(term)
        return self

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self):
        return iter(self.terms)

    @property
    def num_qubits(self) -> int:
        return max((t.parsed().num_qubits for t in self.terms), default=0)

    def simplified(self) -> "PauliSum":
        """Merge duplicate (pauli, qubits) terms; drop near-zero ones."""
        acc: Dict[Tuple[str, Tuple[int, ...]], float] = {}
        for t in self.terms:
            # canonical key: sort by qubit
            pairs = sorted(zip(t.qubits, t.pauli))
            key = ("".join(p for _, p in pairs), tuple(q for q, _ in pairs))
            acc[key] = acc.get(key, 0.0) + t.coefficient
        out = PauliSum(constant=self.constant)
        for (pauli, qubits), coef in sorted(acc.items()):
            if abs(coef) > 1e-15:
                out.add(coef, pauli, qubits)
        return out

    # -- evaluation ------------------------------------------------------------

    def expectation_dense(self, sv: StateVector) -> float:
        """Term-by-term evaluation against a dense state."""
        total = self.constant
        for t in self.terms:
            total += t.coefficient * sv.expectation_pauli(t.pauli, list(t.qubits))
        return float(total)

    def expectation_chunked(self, result) -> float:
        """One-pass streamed evaluation against a MemQSimResult.

        Terms are grouped by the *global* part of their X-mask (which
        decides the chunk partner); within a group every term shares the
        same pair of decompressed chunks per step.
        """
        lay = result.store.layout
        cq = lay.chunk_qubits
        cs = lay.chunk_size
        n = result.num_qubits
        if self.num_qubits > n:
            raise ValueError("Hamiltonian touches qubits outside the state")
        groups: Dict[int, List[Tuple[float, PauliString]]] = {}
        for t in self.terms:
            ps = t.parsed()
            groups.setdefault(ps.x_mask >> cq, []).append((t.coefficient, ps))
        offs = np.arange(cs, dtype=np.uint64)
        total = self.constant
        for k in range(lay.num_chunks):
            bra = result.store.load(k)
            bra_conj = bra.conj()
            idx = offs | np.uint64(k << cq)
            loaded: Dict[int, np.ndarray] = {0: bra}
            for gbits, members in groups.items():
                partner = k ^ gbits
                ket_chunk = loaded.get(gbits)
                if ket_chunk is None:
                    ket_chunk = bra if partner == k else result.store.load(partner)
                    loaded[gbits] = ket_chunk
                for coef, ps in members:
                    local_x = ps.x_mask & (cs - 1)
                    ket = ket_chunk[offs ^ np.uint64(local_x)]
                    val = np.sum(bra_conj * pauli_phase(ps, idx) * ket)
                    total += coef * float(val.real)
        return float(total)

    def expectation(self, state) -> float:
        """Dispatch on the state type (StateVector or MemQSimResult)."""
        if isinstance(state, StateVector):
            return self.expectation_dense(state)
        if hasattr(state, "store"):
            return self.expectation_chunked(state)
        raise TypeError(f"cannot evaluate against {type(state).__name__}")

    # -- dense matrix (tests, small n) -------------------------------------------

    def to_matrix(self, num_qubits: Optional[int] = None) -> np.ndarray:
        """Dense operator matrix — exponential, tests only."""
        n = num_qubits if num_qubits is not None else self.num_qubits
        if n > 12:
            raise ValueError("to_matrix is for small systems only")
        dim = 1 << n
        single = {
            "I": np.eye(2, dtype=complex),
            "X": np.array([[0, 1], [1, 0]], dtype=complex),
            "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
            "Z": np.diag([1.0, -1.0]).astype(complex),
        }
        out = self.constant * np.eye(dim, dtype=complex)
        for t in self.terms:
            by_qubit = {q: single[p] for p, q in zip(t.pauli, t.qubits)}
            op = np.eye(1, dtype=complex)
            for q in reversed(range(n)):
                op = np.kron(op, by_qubit.get(q, single["I"]))
            out += t.coefficient * op
        return out

    def __str__(self) -> str:
        parts = [str(t) for t in self.terms[:12]]
        if len(self.terms) > 12:
            parts.append(f"... (+{len(self.terms) - 12} terms)")
        if self.constant:
            parts.insert(0, f"{self.constant:+g}")
        return " ".join(parts) if parts else "0"

    def __repr__(self) -> str:
        return f"<PauliSum {len(self.terms)} terms on {self.num_qubits} qubits>"


def maxcut_hamiltonian(graph) -> PauliSum:
    """MaxCut cost: C = sum_edges (1 - Z_u Z_v)/2 (to be *maximized*)."""
    h = PauliSum()
    m = graph.number_of_edges()
    h.constant = m / 2.0
    for (u, v) in graph.edges():
        h.add(-0.5, "ZZ", (u, v))
    return h


def ising_hamiltonian(num_qubits: int, j: float = 1.0, g: float = 0.5,
                      periodic: bool = False) -> PauliSum:
    """Transverse-field Ising chain: -J sum Z_i Z_{i+1} - g sum X_i."""
    h = PauliSum()
    last = num_qubits if periodic else num_qubits - 1
    for i in range(last):
        h.add(-j, "ZZ", (i, (i + 1) % num_qubits))
    for i in range(num_qubits):
        h.add(-g, "X", (i,))
    return h


def heisenberg_hamiltonian(num_qubits: int, jx: float = 1.0, jy: float = 1.0,
                           jz: float = 1.0) -> PauliSum:
    """Heisenberg XXZ chain: sum_i Jx XX + Jy YY + Jz ZZ on neighbours."""
    h = PauliSum()
    for i in range(num_qubits - 1):
        h.add(jx, "XX", (i, i + 1))
        h.add(jy, "YY", (i, i + 1))
        h.add(jz, "ZZ", (i, i + 1))
    return h
