"""Observables: Pauli-sum Hamiltonians with streamed chunked evaluation."""

from .trotter import append_pauli_rotation, trotterize
from .pauli_sum import (
    PauliSum,
    PauliTerm,
    heisenberg_hamiltonian,
    ising_hamiltonian,
    maxcut_hamiltonian,
)

__all__ = [
    "PauliSum",
    "PauliTerm",
    "maxcut_hamiltonian",
    "ising_hamiltonian",
    "heisenberg_hamiltonian",
    "trotterize",
    "append_pauli_rotation",
]
