"""Trotterized time evolution for arbitrary Pauli-sum Hamiltonians.

Generalizes the hand-rolled Ising circuit: for any
:class:`~repro.observables.pauli_sum.PauliSum` ``H``, :func:`trotterize`
builds a circuit approximating ``exp(-i t H)``.

Each term ``c * P`` with Pauli string ``P`` contributes
``exp(-i (c t / steps) P)``, synthesized the standard way:

1. basis-rotate every X into Z (via H) and every Y into Z (via S† H... —
   concretely ``Rx(pi/2)``-style conjugation, here H for X and
   ``sdg; h`` for Y);
2. entangle the Z-support with a CX chain onto the last qubit;
3. apply ``Rz(2 * c * dt)`` on that qubit;
4. undo the chain and the basis rotations.

First-order (Lie-Trotter) and second-order (Strang / symmetrized) product
formulas are provided; the second-order error falls as O(dt^2) per step.
"""

from __future__ import annotations

from typing import List

from ..circuits.circuit import Circuit
from .pauli_sum import PauliSum, PauliTerm

__all__ = ["trotterize", "append_pauli_rotation"]


def append_pauli_rotation(circuit: Circuit, pauli: str, qubits, angle: float) -> None:
    """Append ``exp(-i angle/2 * P)`` for Pauli string ``P`` to ``circuit``.

    Matches the rotation-gate convention (``rz(theta) = exp(-i theta/2 Z)``),
    so ``angle`` plays the role of ``theta``.
    """
    support: List[tuple] = [
        (ch, q) for ch, q in zip(pauli.upper(), qubits) if ch != "I"
    ]
    if not support:
        # exp(-i angle/2 * I) — a global phase; representable exactly.
        circuit.add("gphase", 0, params=(-angle / 2.0,))
        return
    # 1. rotate each axis into Z
    for ch, q in support:
        if ch == "X":
            circuit.h(q)
        elif ch == "Y":
            # |y-basis> -> |z-basis>: Sdg then H
            circuit.sdg(q)
            circuit.h(q)
    zs = [q for _, q in support]
    # 2. parity chain onto the last support qubit
    for a, b in zip(zs, zs[1:]):
        circuit.cx(a, b)
    # 3. the rotation
    circuit.rz(angle, zs[-1])
    # 4. undo
    for a, b in reversed(list(zip(zs, zs[1:]))):
        circuit.cx(a, b)
    for ch, q in reversed(support):
        if ch == "X":
            circuit.h(q)
        elif ch == "Y":
            circuit.h(q)
            circuit.s(q)


def trotterize(
    hamiltonian: PauliSum,
    time: float,
    steps: int,
    order: int = 1,
    num_qubits: int = 0,
) -> Circuit:
    """Build a product-formula circuit approximating ``exp(-i * time * H)``.

    Args:
        hamiltonian: the Pauli-sum Hamiltonian (its constant term only adds
            a global phase and is skipped).
        time: total evolution time.
        steps: Trotter steps; error falls as 1/steps (order 1) or
            1/steps^2 (order 2).
        order: 1 = Lie-Trotter, 2 = Strang splitting (symmetrized).
        num_qubits: register size (default: the Hamiltonian's extent).

    Returns:
        the evolution circuit.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if order not in (1, 2):
        raise ValueError("order must be 1 or 2")
    n = num_qubits if num_qubits else hamiltonian.num_qubits
    if n < 1:
        raise ValueError("Hamiltonian acts on no qubits")
    if hamiltonian.num_qubits > n:
        raise ValueError("num_qubits smaller than the Hamiltonian's extent")
    dt = time / steps
    c = Circuit(n, name=f"trotter-o{order}x{steps}")
    terms: List[PauliTerm] = list(hamiltonian.terms)

    def half_sweep(scale: float, reverse: bool = False) -> None:
        seq = reversed(terms) if reverse else terms
        for t in seq:
            # exp(-i (coef * scale) P) = rotation with theta = 2*coef*scale
            append_pauli_rotation(c, t.pauli, t.qubits, 2.0 * t.coefficient * scale)

    for _ in range(steps):
        if order == 1:
            half_sweep(dt)
        else:
            half_sweep(dt / 2.0)
            half_sweep(dt / 2.0, reverse=True)
    return c
