"""Simulation results: the final (still-compressed) state plus statistics.

:class:`MemQSimResult` keeps the compressed chunk store alive, so queries
stream chunk-by-chunk and never materialize the dense vector unless
explicitly asked (``statevector()``). It also carries the complete timing /
memory / plan telemetry every benchmark consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..device.timeline import Stage, Timeline
from ..memory.accounting import MemoryTracker
from ..memory.chunkstore import CompressedChunkStore
from ..pipeline.planner import PlanReport
from ..pipeline.scheduler import SchedulerStats
from ..telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["MemQSimResult"]


@dataclass
class MemQSimResult:
    """Everything a MEMQSim run produced."""

    num_qubits: int
    store: CompressedChunkStore
    timeline: Timeline
    tracker: MemoryTracker
    plan: PlanReport
    scheduler_stats: SchedulerStats
    wall_seconds: float
    pipelined_seconds: float
    config_summary: str = ""
    telemetry: Telemetry = field(default=NULL_TELEMETRY, repr=False)
    #: resolved-knob echo (workers, execution, serpentine, ...) — the
    #: machine-readable companion to the ``config_summary`` string
    config_echo: Dict[str, Any] = field(default_factory=dict)
    #: gauge time-series captured by the run's ResourceMonitor (RSS, arena
    #: occupancy, cache hit rate, codec bytes); ``None`` unless the run
    #: had ``monitor_interval_ms > 0`` and telemetry enabled
    resource_timeline: Optional[Dict[str, Any]] = field(
        default=None, repr=False)
    #: the compile layer's :class:`~repro.compile.CompileReport` — gates in,
    #: ops out, per-pass fusion counts; ``None`` for results built outside
    #: :class:`~repro.core.memqsim.MemQSim` (e.g. hand-assembled in tests)
    compile_report: Optional[Any] = field(default=None, repr=False)
    #: the run's id — the same value stamped on log records and live bus
    #: events, so post-hoc artifacts correlate with live observability
    run_id: str = ""
    #: the resolved amplitude precision the run executed at
    precision: str = "c128"
    #: the executed circuit, kept only when the run started from |0...0>
    #: (enables the small-n dense c128 fidelity oracle); ``None`` disables
    oracle_circuit: Optional[Any] = field(default=None, repr=False)
    #: cache for :meth:`precision_fidelity` (it streams the store)
    _fidelity: Optional[Dict[str, Any]] = field(default=None, repr=False)

    # -- state queries (streaming; never densify unless asked) ------------------

    def statevector(self) -> np.ndarray:
        """Materialize the dense state (exponential memory — small n only)."""
        return self.store.to_statevector()

    def chunk_probability_masses(self) -> np.ndarray:
        """Per-chunk total probability, one decompression pass."""
        masses = np.empty(self.store.layout.num_chunks, dtype=np.float64)
        for k in range(self.store.layout.num_chunks):
            chunk = self.store.load(k)
            masses[k] = float(np.sum(chunk.real**2 + chunk.imag**2))
        return masses

    def norm(self) -> float:
        return float(np.sqrt(self.chunk_probability_masses().sum()))

    def state_digest(self) -> str:
        """Hex sha256 over the exact amplitude bytes, chunk by chunk.

        Streams one decompression pass (never densifies the full vector),
        so it is usable at any qubit count. Two runs produce the same
        digest iff their final states are **bit-identical** — the
        ``run_equivalence``-grade check, as one cheap comparable string.
        The service plane uses it to prove concurrent shared-arena jobs
        match their solo-run results.
        """
        import hashlib

        h = hashlib.sha256()
        for k in range(self.store.layout.num_chunks):
            h.update(np.ascontiguousarray(
                self.store.load(k), dtype=np.complex128).tobytes())
        return h.hexdigest()

    def probability_of(self, index: int) -> float:
        c, o = self.store.layout.split(index)
        amp = self.store.load(c)[o]
        return float((amp * amp.conjugate()).real)

    def amplitude(self, index: int) -> complex:
        c, o = self.store.layout.split(index)
        return complex(self.store.load(c)[o])

    def sample(self, shots: int, seed: Optional[int] = None) -> Dict[str, int]:
        """Sample bitstrings without densifying: chunk CDF then offset CDF."""
        rng = np.random.default_rng(seed)
        masses = self.chunk_probability_masses()
        total = masses.sum()
        if total <= 0:
            raise ValueError("zero-norm state")
        per_chunk = rng.multinomial(shots, masses / total)
        n = self.num_qubits
        counts: Dict[str, int] = {}
        cq = self.store.layout.chunk_qubits
        for k in np.flatnonzero(per_chunk):
            chunk = self.store.load(int(k))
            p = chunk.real**2 + chunk.imag**2
            s = p.sum()
            if s <= 0:
                continue
            cdf = np.cumsum(p / s)
            cdf[-1] = 1.0
            draws = np.searchsorted(cdf, rng.random(int(per_chunk[k])), side="right")
            base = int(k) << cq
            for off in draws:
                key = format(base | int(off), f"0{n}b")
                counts[key] = counts.get(key, 0) + 1
        return counts

    def expectation_z(self, qubit: int) -> float:
        """⟨Z_qubit⟩ streamed over chunks."""
        lay = self.store.layout
        total = 0.0
        for k in range(lay.num_chunks):
            chunk = self.store.load(k)
            p = chunk.real**2 + chunk.imag**2
            if lay.is_local(qubit):
                view = p.reshape(-1, 2, 1 << qubit)
                total += view[:, 0, :].sum() - view[:, 1, :].sum()
            else:
                bit = (k >> (qubit - lay.chunk_qubits)) & 1
                total += -p.sum() if bit else p.sum()
        return float(total)

    def expectation_pauli(self, pauli: str,
                          qubits: Optional[List[int]] = None) -> float:
        """⟨P⟩ for an arbitrary Pauli string, streamed over chunk pairs.

        X/Y letters pair amplitude ``i`` with ``i ^ x_mask``; the global
        part of the mask pairs whole chunks, so each chunk loads together
        with its partner and the phase machinery shared with the dense
        implementation does the rest.
        """
        from ..statevector.pauli import parse_pauli, pauli_phase

        ps = parse_pauli(pauli, qubits)
        if ps.num_qubits > self.num_qubits:
            raise ValueError("Pauli string touches qubits outside the state")
        lay = self.store.layout
        cq = lay.chunk_qubits
        cs = lay.chunk_size
        local_x = ps.x_mask & (cs - 1)
        global_bits = ps.x_mask >> cq
        offs = np.arange(cs, dtype=np.uint64)
        total = 0.0 + 0.0j
        for k in range(lay.num_chunks):
            bra = self.store.load(k)
            partner = k ^ global_bits
            ket_chunk = bra if partner == k else self.store.load(partner)
            idx = offs | np.uint64(k << cq)
            ket = ket_chunk[offs ^ np.uint64(local_x)]
            total += np.sum(bra.conj() * pauli_phase(ps, idx) * ket)
        return float(total.real)

    def fidelity_vs(self, dense_state: np.ndarray) -> float:
        """|<dense|self>|^2 computed chunk-streamed against a dense vector."""
        lay = self.store.layout
        acc = 0.0 + 0.0j
        cs = lay.chunk_size
        for k in range(lay.num_chunks):
            chunk = self.store.load(k)
            acc += np.vdot(dense_state[k * cs:(k + 1) * cs], chunk)
        return float(abs(acc) ** 2)

    def measure_qubit(self, qubit: int,
                      rng: Optional[np.random.Generator] = None) -> int:
        """Projectively measure one qubit, collapsing the *compressed* state.

        Streams two passes over the store: one to accumulate P(qubit=1),
        one to collapse. For a **global** qubit the discarded branch is
        whole chunks, which are replaced by the interned zero blob with no
        codec work at all — the chunked layout makes global-qubit collapse
        nearly free. Returns the observed bit.
        """
        if rng is None:
            rng = np.random.default_rng()
        lay = self.store.layout
        if not 0 <= qubit < self.num_qubits:
            raise ValueError(f"qubit {qubit} out of range")
        local = lay.is_local(qubit)
        gbit = 0 if local else qubit - lay.chunk_qubits
        # Pass 1: probability mass of the |1> branch.
        p1 = 0.0
        total = 0.0
        for k in range(lay.num_chunks):
            chunk = self.store.load(k)
            p = chunk.real**2 + chunk.imag**2
            total += float(p.sum())
            if local:
                view = p.reshape(-1, 2, 1 << qubit)
                p1 += float(view[:, 1, :].sum())
            elif (k >> gbit) & 1:
                p1 += float(p.sum())
        if total <= 0.0:
            raise ValueError("zero-norm state")
        prob_one = min(1.0, max(0.0, p1 / total))
        bit = 1 if rng.random() < prob_one else 0
        keep = prob_one if bit == 1 else 1.0 - prob_one
        if keep <= 0.0:
            bit = 1 - bit
            keep = 1.0 - keep
        scale = 1.0 / np.sqrt(keep * total)
        # Pass 2: collapse + renormalize.
        for k in range(lay.num_chunks):
            if not local:
                if ((k >> gbit) & 1) != bit:
                    self.store.zero_chunk(k)
                    continue
                chunk = self.store.load(k)
                chunk *= scale
                self.store.store(k, chunk)
                continue
            chunk = self.store.load(k)
            view = chunk.reshape(-1, 2, 1 << qubit)
            view[:, 1 - bit, :] = 0.0
            chunk *= scale
            self.store.store(k, chunk)
        return bit

    #: dense-oracle ceiling: 2^14 complex128 amplitudes = 256 KiB
    MAX_ORACLE_QUBITS = 14

    def precision_fidelity(self, max_oracle_qubits: int = MAX_ORACLE_QUBITS
                           ) -> Dict[str, Any]:
        """Tracked fidelity of the run's precision mode (computed once).

        Always reports the streamed norm and its drift from 1. For a
        reduced-precision run that started from |0...0> at small ``n``,
        also the measured state overlap ``|<psi_c128|psi>|^2`` against a
        dense complex128 oracle (``method="oracle"``); at larger ``n`` the
        analytic rounding bound stands in (``method="analytic-bound"``).
        Lazy by design: the extra store pass must not pollute the run's
        recorded access trace before a plan-vs-actual audit reads it.
        """
        if self._fidelity is not None:
            return self._fidelity
        from .precision import analytic_overlap_bound

        norm = self.norm()
        out: Dict[str, Any] = {
            "precision": self.precision,
            "norm": norm,
            "norm_drift": abs(1.0 - norm),
            "analytic_overlap_bound": analytic_overlap_bound(
                self.precision, self.scheduler_stats.gates_applied),
        }
        if self.precision == "c128":
            out["overlap"] = 1.0
            out["method"] = "exact"
        elif (self.oracle_circuit is not None
              and self.num_qubits <= max_oracle_qubits):
            from .backend import NumpyKernelBackend

            ref = np.zeros(1 << self.num_qubits, dtype=np.complex128)
            ref[0] = 1.0
            NumpyKernelBackend().apply(ref, list(self.oracle_circuit))
            out["overlap"] = self.fidelity_vs(ref)
            out["method"] = "oracle"
        else:
            out["overlap"] = None
            out["method"] = "analytic-bound"
        if self.telemetry.enabled:
            m = self.telemetry.metrics
            m.gauge("precision.norm_drift").set(out["norm_drift"])
            if out["overlap"] is not None:
                m.gauge("precision.overlap").set(out["overlap"])
        self._fidelity = out
        return out

    def save_state(self, path) -> int:
        """Checkpoint the compressed store to disk; returns bytes written.

        The file holds the blobs as-is (no densification); resume with
        ``MemQSim(...).run(next_circuit, checkpoint=path)``.
        """
        from ..memory.persist import save_store

        return save_store(self.store, path)

    # -- telemetry ---------------------------------------------------------------

    @property
    def serial_seconds(self) -> float:
        return self.timeline.serial_seconds()

    @property
    def stage_breakdown(self) -> Dict[str, float]:
        return self.timeline.stage_breakdown()

    @property
    def pipeline_speedup(self) -> float:
        if self.pipelined_seconds <= 0:
            return 1.0
        return self.serial_seconds / self.pipelined_seconds

    @property
    def compression_ratio(self) -> float:
        return self.store.compression_ratio()

    @property
    def peak_host_bytes(self) -> int:
        return (self.tracker.peak("chunk_store")
                + self.tracker.peak("host_buffers")
                + self.tracker.peak("chunk_cache"))

    @property
    def peak_device_bytes(self) -> int:
        return self.tracker.peak("device_arena")

    @property
    def dense_bytes(self) -> int:
        return MemoryTracker.dense_bytes(self.num_qubits)

    @property
    def qubit_headroom(self) -> float:
        """Extra qubits the same budget supports at the observed ratio."""
        ratio = self.compression_ratio
        if not math.isfinite(ratio) or ratio <= 0:
            return float("inf") if ratio > 0 else 0.0
        return math.log2(ratio)

    def _extra_qubits(self) -> float:
        """Qubit headroom from the *measured* peak store footprint."""
        ratio = self.tracker.effective_ratio(self.num_qubits)
        if not math.isfinite(ratio):
            return 0.0
        return MemoryTracker.extra_qubits_from_ratio(ratio) \
            if ratio > 0 else 0.0

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The attached telemetry's metrics snapshot (empty if disabled)."""
        return self.telemetry.snapshot()

    def to_dict(self, include_metrics: bool = True) -> Dict[str, Any]:
        """The full result as JSON-serializable plain data.

        Non-finite floats (e.g. an infinite compression ratio on an
        all-zero-delta store) become ``None`` so the payload is strict
        JSON.
        """
        def _num(x: float) -> Optional[float]:
            return x if math.isfinite(x) else None

        eff_ratio = self.tracker.effective_ratio(self.num_qubits)
        extra_q = (MemoryTracker.extra_qubits_from_ratio(eff_ratio)
                   if eff_ratio > 0 else 0.0)
        out: Dict[str, Any] = {
            "num_qubits": self.num_qubits,
            "run_id": self.run_id,
            "config": self.config_summary,
            "config_echo": dict(self.config_echo),
            "wall_seconds": self.wall_seconds,
            "serial_seconds": self.serial_seconds,
            "pipelined_seconds": self.pipelined_seconds,
            "pipeline_speedup": _num(self.pipeline_speedup),
            "stage_breakdown": self.stage_breakdown,
            "stage_event_counts": {
                st.value: c for st in Stage
                if (c := self.timeline.count(st))
            },
            "compression_ratio": _num(self.compression_ratio),
            "qubit_headroom": _num(self.qubit_headroom),
            "precision_fidelity": self.precision_fidelity(),
            "memory": {
                "peaks": {cat: self.tracker.peak(cat)
                          for cat in self.tracker.categories()},
                "peak_host_bytes": self.peak_host_bytes,
                "peak_device_bytes": self.peak_device_bytes,
                "total_peak_bytes": self.tracker.total_peak(),
                "dense_bytes": self.dense_bytes,
                # dense footprint over the *store's* peak (what the run
                # actually held resident), vs compression_ratio's
                # raw-vs-compressed blob accounting
                "effective_ratio": _num(eff_ratio),
                "extra_qubits_from_ratio": _num(extra_q),
                "effective_qubits": _num(self.num_qubits + extra_q),
            },
            "plan": {
                "num_stages": self.plan.num_stages,
                "num_local_stages": self.plan.num_local_stages,
                "num_permutation_stages": self.plan.num_permutation_stages,
                "group_passes": self.plan.group_passes,
                "max_group_size": self.plan.max_group_size,
            },
            "scheduler": {
                "group_passes": self.scheduler_stats.group_passes,
                "cpu_group_passes": self.scheduler_stats.cpu_group_passes,
                "permutation_stages": self.scheduler_stats.permutation_stages,
                "gates_applied": self.scheduler_stats.gates_applied,
                "gates_skipped_identity":
                    self.scheduler_stats.gates_skipped_identity,
            },
        }
        if self.compile_report is not None:
            out["compile"] = self.compile_report.to_dict()
        if self.telemetry.enabled and self.telemetry.traffic.enabled:
            out["traffic"] = self.telemetry.traffic.to_dict()
        if include_metrics and self.telemetry.enabled:
            out["metrics"] = self.metrics_snapshot()
        if self.resource_timeline is not None:
            out["resource_timeline"] = self.resource_timeline
        return out

    def report(self) -> str:
        bd = self.stage_breakdown
        lines = [
            f"MEMQSim result: n={self.num_qubits}  [{self.config_summary}]",
            f"  wall time          {self.wall_seconds * 1e3:10.2f} ms",
            f"  serial stage sum   {self.serial_seconds * 1e3:10.2f} ms",
            f"  pipelined makespan {self.pipelined_seconds * 1e3:10.2f} ms "
            f"({self.pipeline_speedup:.2f}x overlap)",
            "  stage breakdown:",
        ]
        for stage, secs in sorted(bd.items(), key=lambda kv: -kv[1]):
            lines.append(f"    {stage:<12} {secs * 1e3:10.2f} ms")
        lines += [
            f"  store ratio        {self.compression_ratio:10.2f}x "
            f"(qubit headroom {np.log2(max(self.compression_ratio, 1e-12)):.1f})",
            f"  peak host bytes    {self.peak_host_bytes:>14,} "
            f"(dense would be {self.dense_bytes:,})",
            f"  peak device bytes  {self.peak_device_bytes:>14,}",
            f"  effective qubits   {self.num_qubits} + "
            f"{self._extra_qubits():.1f} from the measured store footprint",
            f"  plan: {self.plan.num_stages} stages "
            f"({self.plan.num_local_stages} local, "
            f"{self.plan.num_permutation_stages} permutation), "
            f"{self.plan.group_passes} group passes",
            f"  scheduler: {self.scheduler_stats.gates_applied} gates applied, "
            f"{self.scheduler_stats.gates_skipped_identity} identity-skipped, "
            f"{self.scheduler_stats.cpu_group_passes} CPU-path groups",
        ]
        if self.compile_report is not None:
            cr = self.compile_report
            lines.append(
                f"  compile: {cr.gates_in} gates -> {cr.ops_out} ops "
                f"({cr.fusion_ratio:.2f}x, fusion="
                f"{'on' if cr.fusion_enabled else 'off'})"
            )
        if self.precision != "c128":
            fid = self.precision_fidelity()
            overlap = fid["overlap"]
            lines.append(
                f"  precision: {self.precision}  norm drift "
                f"{fid['norm_drift']:.2e}  overlap "
                + (f"{overlap:.9f} ({fid['method']})" if overlap is not None
                   else f">= {fid['analytic_overlap_bound']:.6f} "
                        f"(analytic bound)")
            )
        if self.telemetry.enabled:
            snap = self.metrics_snapshot()
            counters = snap.get("counters", {})
            lines.append(
                f"  telemetry: {snap.get('spans', 0)} spans, "
                f"{sum(1 for v in counters.values() if v)} active counters"
            )
            for name in ("transfer.h2d.bytes", "transfer.d2h.bytes",
                         "cache.hit", "cache.miss"):
                if counters.get(name):
                    lines.append(f"    {name:<20} {counters[name]:>14,}")
            totals = self.telemetry.traffic.totals()
            if totals:
                moved = sum(v["bytes"] for v in totals.values())
                lines.append(f"  traffic ledger: {moved:,} bytes across "
                             f"{len(totals)} tier edges")
                for edge, v in totals.items():
                    lines.append(f"    {edge:<22} {v['bytes']:>14,} B "
                                 f"({v['ops']:,} ops)")
        return "\n".join(lines)
