"""Amplitude precision modes: c128, c64, and mixed.

MEMQSim's economics are bytes-not-FLOPs: every tier edge (arena transfers,
codec payloads, disk blobs, cache lines) moves amplitudes, so halving the
element size compounds with the codec ratios across the whole hierarchy.
Three modes:

* ``c128`` — ``complex128`` everywhere (the default; bit-identical to the
  pre-precision pipeline).
* ``c64`` — ``complex64`` everywhere: storage, transfers, *and* kernel
  arithmetic. Fastest and smallest; round-off accumulates at float32 eps
  per gate (see :func:`analytic_overlap_bound`).
* ``mixed`` — ``complex64`` **at rest** on every tier edge (store blobs,
  staging buffers, arena views, H2D/D2H) but the kernels upcast each
  group buffer to ``complex128``, apply the fused op batch at full
  precision, and downcast on the way out. One rounding per store/load
  pair instead of one per gate.

``"auto"`` is resolved to a concrete mode by :mod:`repro.bench.decide`
before anything dtype-dependent (layout, plan key, codecs) sees it.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PRECISIONS",
    "DEFAULT_PRECISION",
    "storage_dtype",
    "compute_dtype",
    "storage_itemsize",
    "validate_precision",
    "analytic_overlap_bound",
]

#: concrete precision modes (``"auto"`` resolves to one of these)
PRECISIONS = ("c128", "c64", "mixed")
DEFAULT_PRECISION = "c128"

#: float32 unit roundoff — the per-operation error floor of c64 amplitudes
F32_EPS = 2.0 ** -24

_STORAGE = {
    "c128": np.dtype(np.complex128),
    "c64": np.dtype(np.complex64),
    "mixed": np.dtype(np.complex64),
}
_COMPUTE = {
    "c128": np.dtype(np.complex128),
    "c64": np.dtype(np.complex64),
    "mixed": np.dtype(np.complex128),
}


def validate_precision(precision: str, allow_auto: bool = False) -> str:
    """Check a precision knob value, returning it unchanged."""
    if precision in PRECISIONS or (allow_auto and precision == "auto"):
        return precision
    allowed = PRECISIONS + (("auto",) if allow_auto else ())
    raise ValueError(
        f"precision must be one of {allowed}, got {precision!r}")


def storage_dtype(precision: str) -> np.dtype:
    """The dtype amplitudes have *at rest* — store blobs, staging buffers,
    arena views, transfers. ``mixed`` stores ``complex64``."""
    try:
        return _STORAGE[precision]
    except KeyError:
        raise ValueError(
            f"no storage dtype for precision {precision!r} "
            f"(resolve 'auto' first)") from None


def compute_dtype(precision: str) -> np.dtype:
    """The dtype kernels accumulate in. ``mixed`` computes ``complex128``."""
    try:
        return _COMPUTE[precision]
    except KeyError:
        raise ValueError(
            f"no compute dtype for precision {precision!r} "
            f"(resolve 'auto' first)") from None


def storage_itemsize(precision: str) -> int:
    """Bytes per amplitude at rest (16 for c128, 8 for c64/mixed)."""
    return storage_dtype(precision).itemsize


def analytic_overlap_bound(precision: str, gates_applied: int) -> float:
    """A worst-case lower bound on ``|<psi_c128|psi>|^2`` from rounding.

    Each gate application at float32 perturbs the state by at most a few
    units of roundoff in relative norm; a unitarily-stable pipeline keeps
    the accumulated 2-norm error below ``~k * gates * eps_f32`` with a
    small constant ``k``. The overlap then obeys
    ``|<ref|psi>|^2 >= (1 - err)^2 >= 1 - 2 * err``. ``mixed`` rounds only
    at the store/load boundary (twice per gate *stage*, not per gate), but
    we conservatively charge it the same per-gate budget.

    This is the large-``n`` companion to the measured small-``n`` overlap
    in ``precision_fidelity`` — loose by design, never violated in
    practice.
    """
    if precision == "c128":
        return 1.0
    err = 4.0 * F32_EPS * max(1, int(gates_applied))
    return max(0.0, 1.0 - 2.0 * err)
