"""Pluggable kernel backends — the paper's modularity contribution.

MEMQSim "is independent of ... simulation computational tasks" and can be
plugged into different simulator backends (SV-Sim, Qiskit, ...). Here that
boundary is a one-method interface: a :class:`Backend` applies a batch of
gates to an amplitude buffer. The chunked pipeline never touches amplitudes
except through a backend, so swapping the update engine swaps nothing else.

Two implementations ship:

* :class:`NumpyKernelBackend` — the production strided/matmul kernels from
  :mod:`repro.statevector.kernels` (the SV-Sim stand-in);
* :class:`EinsumBackend` — an independent tensor-contraction engine used to
  cross-validate the kernels in tests (different code path, same numbers).
"""

from __future__ import annotations

import abc
from typing import Dict, Sequence, Type

import numpy as np

from ..circuits.gates import Gate
from ..statevector.kernels import apply_circuit_gate, apply_stored_diagonal, num_qubits_of

__all__ = [
    "Backend",
    "NumpyKernelBackend",
    "EinsumBackend",
    "MixedPrecisionBackend",
    "get_backend",
    "register_backend",
]


class Backend(abc.ABC):
    """Applies gate batches to amplitude buffers, in place."""

    name: str = "abstract"

    @abc.abstractmethod
    def apply(self, buf: np.ndarray, gates: Sequence[Gate]) -> None:
        """Apply ``gates`` in order to ``buf`` (length ``2^m``), in place."""

    def apply_ops(self, buf: np.ndarray, ops: Sequence[object]) -> None:
        """Apply a batch of compiled ops (:mod:`repro.compile` IR), in place.

        The default lowers each op to its :class:`Gate` and delegates to
        :meth:`apply`, so every backend — including the einsum
        cross-validator — consumes the compiled plan without knowing the
        IR. Raw :class:`Gate` items are accepted too.
        """
        self.apply(buf, [op.to_gate() if hasattr(op, "to_gate") else op
                         for op in ops])


class NumpyKernelBackend(Backend):
    """Default: strided fast paths + single-matmul generic kernel."""

    name = "numpy"

    def apply(self, buf: np.ndarray, gates: Sequence[Gate]) -> None:
        for g in gates:
            apply_circuit_gate(buf, g)


class EinsumBackend(Backend):
    """Reference engine: every gate as an einsum tensor contraction."""

    name = "einsum"

    def apply(self, buf: np.ndarray, gates: Sequence[Gate]) -> None:
        m = num_qubits_of(buf)
        for g in gates:
            if g.diag is not None:
                apply_stored_diagonal(buf, g.diag, g.qubits)
                continue
            k = len(g.qubits)
            tensor = buf.reshape((2,) * m)
            gt = g.matrix.reshape((2,) * (2 * k))
            # Gate tensor axes: first k are output (MSB-first within the
            # gate), last k are input. Little-endian gate qubits mean the
            # first listed qubit is the least significant — axis order in
            # the reshaped matrix is MSB first, so reverse.
            in_axes = [m - 1 - q for q in reversed(g.qubits)]
            out = np.einsum(
                gt,
                list(range(2 * k)),
                tensor,
                self._axes_spec(m, k, in_axes),
                self._out_spec(m, k, in_axes),
                optimize=True,
            )
            buf[...] = np.ascontiguousarray(out).reshape(-1)

    @staticmethod
    def _axes_spec(m: int, k: int, in_axes) -> list:
        # State tensor labels: fresh label for every axis; contracted axes
        # get the gate's input labels (k .. 2k-1).
        labels = list(range(2 * k, 2 * k + m))
        for i, ax in enumerate(in_axes):
            labels[ax] = k + i
        return labels

    @staticmethod
    def _out_spec(m: int, k: int, in_axes) -> list:
        labels = list(range(2 * k, 2 * k + m))
        for i, ax in enumerate(in_axes):
            labels[ax] = i  # replaced by the gate's output labels
        return labels


class MixedPrecisionBackend(Backend):
    """Wrapper implementing ``precision="mixed"``: c64 at rest, c128 compute.

    The streamed buffers arrive in complex64 (half the bytes on every
    tier edge); this wrapper upcasts the group buffer to complex128,
    runs the whole op batch at full precision through the inner backend,
    and rounds once back into the caller's buffer. Rounding error is one
    float32 quantization per stage pass instead of one per gate.
    """

    name = "mixed"

    def __init__(self, inner: Backend):
        self.inner = inner

    def apply(self, buf: np.ndarray, gates: Sequence[Gate]) -> None:
        self._with_upcast(buf, lambda hi: self.inner.apply(hi, gates))

    def apply_ops(self, buf: np.ndarray, ops: Sequence[object]) -> None:
        self._with_upcast(buf, lambda hi: self.inner.apply_ops(hi, ops))

    @staticmethod
    def _with_upcast(buf: np.ndarray, run) -> None:
        if buf.dtype == np.complex128:
            run(buf)  # already full precision (e.g. oracle comparisons)
            return
        hi = buf.astype(np.complex128)
        run(hi)
        np.copyto(buf, hi.astype(buf.dtype))


_BACKENDS: Dict[str, Type[Backend]] = {}


def register_backend(cls: Type[Backend]) -> Type[Backend]:
    _BACKENDS[cls.name] = cls
    return cls


register_backend(NumpyKernelBackend)
register_backend(EinsumBackend)


def get_backend(name: str) -> Backend:
    try:
        return _BACKENDS[name]()
    except KeyError:
        raise KeyError(f"unknown backend {name!r}; have {sorted(_BACKENDS)}") from None
