"""MEMQSim configuration.

One frozen dataclass gathers every knob the system exposes; everything has
a sensible default so ``MemQSim()`` works out of the box. The config also
hosts the *auto* policies: chunk-size selection against the device spec and
derived pool sizing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..compression.interface import Compressor, get_compressor
from ..device.spec import DeviceSpec, HostSpec

__all__ = ["MemQSimConfig"]


@dataclass(frozen=True)
class MemQSimConfig:
    """All MEMQSim knobs.

    Attributes:
        chunk_qubits: amplitudes per chunk = ``2^chunk_qubits``; 0 = auto
            (largest chunk that still leaves >= ``min_chunks`` chunks and
            fits the device double-buffered).
        compressor: registry name of the chunk codec.
        compressor_options: kwargs for the codec factory (e.g.
            ``{"error_bound": 1e-5, "mode": "abs"}``).
        transfer: ``"sync"`` | ``"async"`` | ``"buffer"`` — Table 1's three
            H2D/D2H strategies.
        device: simulated accelerator spec (capacity enforced).
        host: simulated host spec (cores feed the overlap model).
        cpu_offload_fraction: share of chunk groups updated host-side by
            idle cores (paper step 5). 0 disables.
        num_buffers: staging buffers in the host pool (2 = double buffer).
        enable_permutation_stages: execute global X/SWAP as blob relabeling.
        min_chunks: auto chunk sizing keeps at least this many chunks.
        max_chunk_qubits: auto chunk sizing cap (keeps codec latency sane).
        backend: kernel backend name (``"numpy"`` or ``"einsum"``), or
            ``"auto"`` — pick empirically from the committed bench corpus
            (:mod:`repro.bench.decide`).
        precision: amplitude precision — ``"c128"`` (default, complex128
            everywhere), ``"c64"`` (complex64 everywhere: half the bytes
            on every tier edge), ``"mixed"`` (complex64 at rest on every
            tier edge, complex128 accumulation inside the kernels), or
            ``"auto"`` (resolve from the bench corpus / micro-probe via
            :mod:`repro.bench.decide`). Plan-relevant: the element size
            changes what fits the device, so it participates in
            :meth:`plan_key`.
        fuse_gates: run the gate-fusion compile passes (1q folding,
            diagonal merging, window fusion) when lowering the plan; off
            still compiles, 1:1 gate-to-op.
        max_fuse_qubits: widest dense unitary the window-fusion pass may
            build (``2^k x 2^k`` matrix per fused op).
        num_devices: simulated accelerators; chunk groups are distributed
            round-robin and the overlap model gets one GPU + bus lane per
            device.
        cache_chunks: if > 0, keep this many decompressed chunks resident
            in a write-back cache (design challenge 3 — data locality);
            hits skip the codec entirely.
        cache_policy: eviction policy — ``"mru"`` (right for cyclic
            sweeps), ``"lru"``, or ``"belady"`` (plan-optimal: evict the
            chunk whose next use in the compiled schedule is farthest
            away; falls back to MRU for off-schedule accesses).
        serpentine_groups: alternate the group sweep direction per stage
            (boustrophedon) so the chunk cache keeps hitting across stage
            boundaries; free when no cache is configured.
        store: ``"memory"`` (default), ``"disk"`` — out-of-core blobs in
            an append log (RAM cost: the chunk index only) — or
            ``"tiered"`` — hot compressed blobs in RAM under the
            ``host_store_mb`` budget, plan-coldest blobs spilled to the
            append log. ``"memory"`` auto-upgrades to ``"tiered"`` when
            ``host_store_mb`` > 0.
        disk_path: log file for the disk/tiered store (default: a temp
            file).
        host_store_mb: RAM budget (MiB) for compressed blobs in the
            tiered store; <= 0 means unbounded (nothing spills until the
            budget is set).
        workers: codec worker processes. ``1`` (default) = the serial code
            path, unchanged; ``>1`` = fan chunk compress/decompress out to
            a process pool; ``0`` = auto (empirical probe: spare cores and
            a codec-bound chunk size, else 1).
        execution: ``"serial"`` | ``"parallel"`` | ``"auto"`` (default) —
            which stage engine runs the online stage. ``auto`` picks
            parallel exactly when the resolved worker count exceeds 1;
            ``parallel`` forces the overlapped engine even at 1 worker
            (inline codec, useful for deterministic engine testing).
        shm_threshold_bytes: codec job payloads at/above this size ship via
            ``multiprocessing.shared_memory`` instead of pickled bytes.
        monitor_interval_ms: if > 0 (and telemetry is enabled), run a
            :class:`~repro.telemetry.monitor.ResourceMonitor` sampling
            thread at this period for the duration of the run; its gauge
            time-series lands in the trace (counter events) and in
            ``MemQSimResult.to_dict()["resource_timeline"]``. 0 (default)
            keeps the allocation-free null monitor.
    """

    chunk_qubits: int = 0
    compressor: str = "szlike"
    compressor_options: Dict[str, object] = field(default_factory=dict)
    transfer: str = "sync"
    device: DeviceSpec = field(default_factory=DeviceSpec)
    host: HostSpec = field(default_factory=HostSpec)
    cpu_offload_fraction: float = 0.0
    num_buffers: int = 2
    enable_permutation_stages: bool = True
    min_chunks: int = 4
    max_chunk_qubits: int = 14
    backend: str = "numpy"
    precision: str = "c128"
    fuse_gates: bool = False
    max_fuse_qubits: int = 3
    num_devices: int = 1
    cache_chunks: int = 0
    cache_policy: str = "mru"
    serpentine_groups: bool = True
    store: str = "memory"
    disk_path: Optional[str] = None
    host_store_mb: float = 0.0
    workers: int = 1
    execution: str = "auto"
    shm_threshold_bytes: int = 1 << 20
    monitor_interval_ms: float = 0.0

    def make_compressor(self) -> Compressor:
        return get_compressor(self.compressor, **self.compressor_options)

    def storage_dtype(self):
        """The at-rest amplitude dtype for the resolved precision.

        Raises if precision is still ``"auto"`` — resolve through
        :func:`repro.bench.decide.resolve_auto_config` first.
        """
        from .precision import storage_dtype

        return storage_dtype(self.precision)

    def storage_itemsize(self) -> int:
        """Bytes per amplitude at rest (16 for c128, 8 for c64/mixed)."""
        from .precision import storage_itemsize

        return storage_itemsize(self.precision)

    def needs_auto_resolution(self) -> bool:
        """Whether any knob still needs :mod:`repro.bench.decide`."""
        return (self.precision == "auto" or self.backend == "auto"
                or self.workers == 0)

    def resolve_store(self) -> str:
        """The effective store kind: ``memory`` | ``disk`` | ``tiered``.

        A positive ``host_store_mb`` upgrades the default in-memory store
        to the tiered store (explicit ``store="disk"`` is left alone — it
        already holds every blob out of core).
        """
        if self.store == "memory" and self.host_store_mb > 0:
            return "tiered"
        return self.store

    def resolve_workers(self, chunk_size: int = 0) -> int:
        """The effective codec worker count (``workers=0`` probes)."""
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.workers:
            return self.workers
        from ..parallel.pool import auto_workers

        return auto_workers(self.make_compressor(),
                            chunk_size or (1 << 12))

    def resolve_chunk_qubits(self, num_qubits: int) -> int:
        """Pick the chunk size for an ``num_qubits``-qubit run."""
        if self.chunk_qubits:
            if self.chunk_qubits > num_qubits:
                raise ValueError(
                    f"chunk_qubits {self.chunk_qubits} > circuit qubits {num_qubits}"
                )
            return self.chunk_qubits
        # Auto: as large as possible subject to (a) >= min_chunks chunks,
        # (b) double-buffered group-of-2 fits the device, (c) the cap.
        import math

        by_chunks = num_qubits - max(1, int(math.log2(self.min_chunks)))
        dev_amps = self.device.memory_bytes // self.storage_itemsize()
        by_device = max(1, int(math.log2(max(2, dev_amps))) - 2)  # 2 bufs x group-of-2
        c = min(by_chunks, by_device, self.max_chunk_qubits)
        return max(1, c)

    def with_updates(self, **kwargs) -> "MemQSimConfig":
        """Functional update helper (configs are frozen)."""
        return replace(self, **kwargs)

    #: the knobs whose values change what :func:`repro.pipeline.plan_stages`
    #: and :func:`repro.compile.compile_stages` produce. Everything else
    #: (codec, transfer strategy, workers, caching, monitoring) affects how
    #: a plan is *executed*, never the plan itself.
    PLAN_KNOBS = (
        "chunk_qubits",
        "min_chunks",
        "max_chunk_qubits",
        "enable_permutation_stages",
        "fuse_gates",
        "max_fuse_qubits",
        "precision",
    )

    def plan_key(self) -> str:
        """Hash (hex sha256) of only the knobs that affect lowering.

        Combined with :meth:`~repro.circuits.circuit.Circuit
        .structural_hash`, this keys a compiled-plan cache: two configs
        with equal ``plan_key()`` resolve the same layout, stage split,
        and fused op stream for any given circuit. Device memory and the
        buffer count participate because they bound the chunk size and
        the group width (``max_group_qubits_for``); execution-only knobs
        (codec, transfer, workers, cache, monitor) deliberately do not.
        Precision participates because the amplitude itemsize changes
        what fits the device. ``"auto"`` knobs must be resolved first —
        a plan keyed on an unresolved knob would alias distinct plans.
        """
        import hashlib

        if self.precision == "auto":
            raise ValueError(
                "plan_key() on precision='auto'; resolve via "
                "repro.bench.decide.resolve_auto_config first")

        fields = [f"{k}={getattr(self, k)!r}" for k in self.PLAN_KNOBS]
        fields.append(f"device_bytes={self.device.memory_bytes}")
        fields.append(f"double_buffer={self.num_buffers > 1}")
        payload = "repro.plan/v1|" + "|".join(fields)
        return hashlib.sha256(payload.encode()).hexdigest()

    def summary(self) -> str:
        co = ", ".join(f"{k}={v}" for k, v in sorted(self.compressor_options.items()))
        return (
            f"chunk_qubits={self.chunk_qubits or 'auto'} "
            f"precision={self.precision} "
            f"compressor={self.compressor}({co}) transfer={self.transfer} "
            f"device={self.device.memory_bytes // (1 << 20)}MiB "
            f"offload={self.cpu_offload_fraction:g} buffers={self.num_buffers} "
            f"workers={self.workers or 'auto'} execution={self.execution}"
        )
