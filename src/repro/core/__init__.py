"""MEMQSim core: configuration, backends, simulator, results."""

from .backend import Backend, EinsumBackend, NumpyKernelBackend, get_backend, register_backend
from .config import MemQSimConfig
from .memqsim import MemQSim
from .results import MemQSimResult

__all__ = [
    "MemQSim",
    "MemQSimConfig",
    "MemQSimResult",
    "Backend",
    "NumpyKernelBackend",
    "EinsumBackend",
    "get_backend",
    "register_backend",
]
