"""MEMQSim: the memory-efficient chunked state-vector simulator.

This is the paper's contribution wired together:

* **offline stage** — resolve the chunk layout against the device spec,
  initialize the compressed chunk store (every chunk independently
  compressed in host memory), and partition the circuit into execution
  stages (:mod:`repro.pipeline.planner`);
* **online stage** — stream every chunk group through decompress -> H2D ->
  kernel -> D2H -> recompress (:mod:`repro.pipeline.scheduler`), optionally
  routing a fraction of groups to the idle-core CPU path;
* **telemetry** — per-stage measured timings, the overlapped-pipeline
  makespan, memory peaks by category, compression ratio and qubit headroom.

Example::

    from repro.circuits import qft
    from repro.core import MemQSim

    sim = MemQSim()                      # defaults: szlike codec, sync copy
    result = sim.run(qft(14))
    print(result.report())
    counts = result.sample(1000)
"""

from __future__ import annotations

import time
import uuid
from typing import Optional

import numpy as np

from ..circuits.circuit import Circuit
from ..compile import CompileOptions, compile_stages
from ..device.executor import DeviceExecutor
from ..device.timeline import PipelineModel, Timeline
from ..device.transfer import make_strategy
from ..memory.accounting import MemoryTracker
from ..memory.bufferpool import BufferPool
from ..memory.chunkstore import CompressedChunkStore
from ..memory.layout import ChunkLayout
from ..pipeline.planner import describe_plan, max_group_qubits_for, plan_stages
from ..pipeline.scheduler import StageScheduler
from ..statevector.statevector import StateVector
from ..telemetry import (
    NULL_PROGRESS,
    NULL_RESOURCE_MONITOR,
    NULL_TELEMETRY,
    ProgressTracker,
    ResourceMonitor,
    Telemetry,
    get_logger,
    set_run_id,
)
from .backend import MixedPrecisionBackend, get_backend
from .config import MemQSimConfig
from .results import MemQSimResult

__all__ = ["MemQSim"]

log = get_logger(__name__)


class MemQSim:
    """Memory-efficient modular state-vector simulator (the paper's system)."""

    def __init__(self, config: Optional[MemQSimConfig] = None,
                 telemetry: Optional[Telemetry] = None, *,
                 plan_cache=None, codec_pool=None, arena=None, cancel=None,
                 **overrides):
        """Create a simulator.

        Args:
            config: full configuration; defaults to :class:`MemQSimConfig`.
            telemetry: a :class:`~repro.telemetry.Telemetry` object to
                thread through every layer of the run (tracer spans per
                pipeline hop, metrics, memory gauges); default disabled.
            plan_cache: optional compiled-plan cache (duck-typed:
                ``lookup(key) -> entry | None`` and ``store(key, entry)``,
                see :class:`repro.serve.PlanCache`). When a submission's
                (circuit structural hash, plan-affecting config knobs,
                resolved chunk size) key hits, planning *and* compilation
                are skipped entirely and the cached lowered plan runs.
            codec_pool: optional externally-owned
                :class:`~repro.parallel.CodecWorkerPool` shared across
                runs (the service plane's amortized worker pool). Must be
                built for a codec byte-identical to this config's; the
                run uses it for parallel execution and never closes it.
            arena: optional externally-owned (possibly shared,
                multi-tenant) :class:`~repro.device.DeviceArena`; all
                device executors then allocate from it instead of
                creating private arenas.
            cancel: optional :class:`~repro.pipeline.CancelToken`; the
                schedulers poll it at group-pass boundaries and raise
                :class:`~repro.pipeline.JobCancelled`.
            **overrides: convenience field overrides applied on top, e.g.
                ``MemQSim(compressor="zlib", chunk_qubits=8)``.
        """
        base = config if config is not None else MemQSimConfig()
        self.config = base.with_updates(**overrides) if overrides else base
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.plan_cache = plan_cache
        self.codec_pool = codec_pool
        self.arena = arena
        self.cancel = cancel

    # -- public API ---------------------------------------------------------

    def run(
        self,
        circuit: Circuit,
        initial_state: Optional[StateVector] = None,
        checkpoint: Optional[str] = None,
        initial_store: Optional[CompressedChunkStore] = None,
    ) -> MemQSimResult:
        """Simulate ``circuit`` and return a streaming result handle.

        Args:
            circuit: the circuit to execute.
            initial_state: optional dense initial state (default |0...0>).
            checkpoint: optional path to a compressed-store checkpoint
                written by :meth:`MemQSimResult.save_state`; resumes from
                that state without ever densifying. The checkpoint's
                layout overrides the configured chunk size.
            initial_store: optional in-memory compressed store to continue
                from (e.g. ``previous_result.store``); reused in place,
                layout overrides the configured chunk size. At most one of
                the three initial-state options may be given.
        """
        cfg = self.config
        tel = self.telemetry
        run_id = uuid.uuid4().hex[:12]
        set_run_id(run_id)  # log records now carry [run_id/span]
        monitor = NULL_RESOURCE_MONITOR
        if tel.enabled and cfg.monitor_interval_ms > 0:
            monitor = ResourceMonitor(
                tel, interval_ms=cfg.monitor_interval_ms).start()
            tel.monitor = monitor
        try:
            return self._run(circuit, initial_state, checkpoint,
                             initial_store, monitor, run_id)
        finally:
            monitor.stop()  # idempotent; real stop happens pre-result
            if monitor is not NULL_RESOURCE_MONITOR:
                tel.monitor = NULL_RESOURCE_MONITOR
            # Freeze the progress clock on every exit path. The finished
            # tracker stays attached so post-run exposition (/metrics,
            # final dashboard frame) reports exactly 1.0; the next run
            # swaps in a fresh tracker.
            tel.progress.finish()
            set_run_id("")

    def _run(self, circuit, initial_state, checkpoint, initial_store,
             monitor, run_id: str = "") -> MemQSimResult:
        cfg = self.config
        tel = self.telemetry
        n = circuit.num_qubits
        t_wall = time.perf_counter()
        decisions = []
        if cfg.needs_auto_resolution():
            # Close every open knob (precision="auto", backend="auto",
            # workers=0) before anything dtype- or plan-dependent runs;
            # the decisions land in config_echo["decisions"].
            from ..bench.decide import resolve_auto_config

            cfg, decisions = resolve_auto_config(cfg, num_qubits=n)
        tel.emit("run.start", run_id=run_id, n=n, gates=len(circuit))
        given = sum(
            x is not None for x in (initial_state, checkpoint, initial_store)
        )
        if given > 1:
            raise ValueError(
                "pass at most one of initial_state / checkpoint / initial_store"
            )
        log.debug("run: n=%d gates=%d [%s]", n, len(circuit), cfg.summary())

        # ---- offline stage -------------------------------------------------
        tracker = MemoryTracker(telemetry=tel if tel.enabled else None)
        if initial_store is not None:
            # Unwrap a cache layer from a previous run's result if present
            # (flushing its dirty chunks into the underlying store first).
            if hasattr(initial_store, "flush"):
                initial_store.flush()
            store = getattr(initial_store, "inner", initial_store)
            if store.layout.num_qubits != n:
                raise ValueError(
                    f"initial store has {store.layout.num_qubits} qubits, "
                    f"circuit has {n}"
                )
            tracker = store.tracker
            if tel.enabled:
                tracker.attach_telemetry(tel)
                store.telemetry = tel
            layout = store.layout
            c = layout.chunk_qubits
        elif checkpoint is not None:
            from ..memory.persist import load_store

            store = load_store(checkpoint, cfg.make_compressor(), tracker)
            if tel.enabled:
                store.telemetry = tel
            if store.layout.num_qubits != n:
                raise ValueError(
                    f"checkpoint has {store.layout.num_qubits} qubits, "
                    f"circuit has {n}"
                )
            layout = store.layout
            c = layout.chunk_qubits
        else:
            c = cfg.resolve_chunk_qubits(n)
            layout = ChunkLayout(n, c, itemsize=cfg.storage_itemsize())
            store = self._make_store(layout, tracker, cfg)
            if initial_state is not None:
                if initial_state.num_qubits != n:
                    raise ValueError("initial state does not match circuit size")
                store.init_from_statevector(initial_state.data)
            else:
                store.init_zero_state()

        if layout.itemsize != cfg.storage_itemsize():
            # A checkpoint / initial store fixes the amplitude dtype; adopt
            # its precision so the plan key, sizing math, and buffers agree
            # with the blobs we are about to stream.
            adopted = "c64" if layout.itemsize == 8 else "c128"
            log.info("adopting precision=%s from the initial store "
                     "(itemsize %d)", adopted, layout.itemsize)
            cfg = cfg.with_updates(precision=adopted)
        dtype = layout.dtype

        t_max = max_group_qubits_for(layout, cfg.device, double_buffer=cfg.num_buffers > 1)
        # Plan cache: keyed on circuit structure + plan-affecting knobs +
        # the *resolved* chunk size (checkpoint / initial-store layouts
        # override the configured one, so `c` must be part of the key).
        plan = cplan = None
        cache_key = None
        if self.plan_cache is not None:
            cache_key = (circuit.structural_hash(), cfg.plan_key(), c)
            cached = self.plan_cache.lookup(cache_key)
            if cached is not None:
                plan, cplan = cached
                log.debug("plan cache hit (%s…)", cache_key[0][:12])
        if cplan is None:
            stages = plan_stages(
                circuit, layout, t_max,
                enable_permutation_stages=cfg.enable_permutation_stages,
            )
            plan = describe_plan(stages, layout)
            # Compile (lower + fuse) once; every amplitude-touching path —
            # the device executors, the CPU-offload path, the parallel
            # engine's workers — consumes this one lowered plan.
            cplan = compile_stages(
                stages, layout,
                CompileOptions(fusion=cfg.fuse_gates,
                               max_fuse_qubits=cfg.max_fuse_qubits),
                telemetry=tel,
            )
            log.debug("compile: %d gates -> %d ops (ratio %.2f, fusion=%s)",
                      cplan.report.gates_in, cplan.report.ops_out,
                      cplan.report.fusion_ratio, cfg.fuse_gates)
            if cache_key is not None:
                # Compiled stages are immutable once built; sharing the
                # same lowered plan across runs (and tenants) is safe.
                self.plan_cache.store(cache_key, (plan, cplan))
        if tel.enabled:
            # The offline stage ends here: store initialized, plan fixed.
            tel.tracer.record("offline", time.perf_counter() - t_wall,
                              stages=plan.num_stages,
                              group_passes=plan.group_passes,
                              chunk_qubits=c)
            # The compiled plan fixes the whole schedule, so total work is
            # exact from here on — attach the run's plan-aware tracker.
            tel.progress = ProgressTracker.from_plan(
                cplan.stages, layout, run_id=run_id).start()
        log.debug("offline: %d stages, %d group passes, chunk_qubits=%d",
                  plan.num_stages, plan.group_passes, c)

        # Host budget check: compressed store + staging must fit.
        group_qubits_used = plan.max_group_size
        buffer_amps = layout.chunk_size << group_qubits_used
        pool_bytes = cfg.num_buffers * buffer_amps * layout.itemsize
        if pool_bytes > cfg.host.memory_bytes:
            raise MemoryError(
                f"host budget {cfg.host.memory_bytes:,}B cannot hold "
                f"{cfg.num_buffers} staging buffers of "
                f"{buffer_amps * layout.itemsize:,}B"
            )

        # ---- online stage ----------------------------------------------------
        timeline = Timeline()

        def _strategy():
            return make_strategy(
                cfg.transfer, max_elements=buffer_amps, telemetry=tel,
                dtype=dtype,
            ) if cfg.transfer == "buffer" else make_strategy(
                cfg.transfer, telemetry=tel)

        transfer = _strategy()
        backend = get_backend(cfg.backend)
        if cfg.precision == "mixed":
            # c64 at rest on every tier edge; the kernels see c128.
            backend = MixedPrecisionBackend(backend)
        if cfg.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        executors = []
        for _ in range(cfg.num_devices):
            dev_transfer = transfer if len(executors) == 0 else _strategy()
            executors.append(DeviceExecutor(
                cfg.device, transfer=dev_transfer, timeline=timeline,
                tracker=tracker, backend=backend, telemetry=tel,
                arena=self.arena,
            ))
        from ..memory.hierarchy import MemoryHierarchy

        hierarchy = MemoryHierarchy.build(
            store, cache_chunks=cfg.cache_chunks,
            cache_policy=cfg.cache_policy, tracker=tracker, telemetry=tel,
        )
        # Belady eviction and plan-aware spilling both consume the same
        # predicted access schedule; the scheduler advances its cursor at
        # every group pass and permutation barrier.
        schedule = hierarchy.attach_plan(
            cplan.stages, layout, serpentine=cfg.serpentine_groups)
        store_like = hierarchy.store_like
        pool = BufferPool(cfg.num_buffers, buffer_amps, tracker, telemetry=tel,
                          dtype=dtype)
        if cfg.execution not in ("serial", "parallel", "auto"):
            raise ValueError(
                f"execution must be serial|parallel|auto, got {cfg.execution!r}"
            )
        workers = 1 if cfg.execution == "serial" \
            else cfg.resolve_workers(layout.chunk_size)
        use_parallel = cfg.execution == "parallel" or (
            cfg.execution == "auto" and workers > 1)
        if self.codec_pool is not None and cfg.execution != "serial":
            # An external (service-plane) pool amortizes worker startup
            # across jobs; use it whenever parallel execution is allowed.
            use_parallel = True
            workers = self.codec_pool.workers
        sched_kwargs = dict(
            cpu_offload_fraction=cfg.cpu_offload_fraction,
            fuse_gates=cfg.fuse_gates,
            serpentine=cfg.serpentine_groups,
            telemetry=tel,
            backend=backend,
            max_fuse_qubits=cfg.max_fuse_qubits,
            cancel=self.cancel,
            schedule=schedule,
        )
        codec_pool = None
        owns_codec_pool = False
        if use_parallel:
            from ..parallel import CodecWorkerPool, ParallelStageScheduler

            codec_pool = self.codec_pool
            if codec_pool is None:
                codec_pool = CodecWorkerPool(
                    store.compressor, workers=workers,
                    shm_threshold=cfg.shm_threshold_bytes, telemetry=tel,
                )
                owns_codec_pool = True
            scheduler = ParallelStageScheduler(
                layout, store_like, executors, pool, timeline,
                codec_pool=codec_pool, **sched_kwargs,
            )
            log.debug("online: parallel engine, %d codec workers (%s%s)",
                      workers,
                      "process pool" if codec_pool.is_parallel else "inline",
                      "" if owns_codec_pool else ", shared")
        else:
            scheduler = StageScheduler(
                layout, store_like, executors, pool, timeline, **sched_kwargs,
            )
        try:
            with tel.span("online", stages=plan.num_stages,
                          workers=workers if use_parallel else 1):
                scheduler.run(cplan.stages)
                if store_like is not store:
                    store_like.flush()
        finally:
            # Cleanup must run on *every* exit (including JobCancelled):
            # a shared external pool is never closed here, and executors
            # on a shared arena must not leak staging allocations.
            if codec_pool is not None and owns_codec_pool:
                codec_pool.close()
            pool.close()
            for ex in executors:
                ex.reset()

        # Close the resource timeline before timing stops so the final
        # sample (store recompressed, arena drained) is part of the record.
        monitor.stop()
        tel.progress.finish()
        wall = time.perf_counter() - t_wall
        tel.emit("run.end", run_id=run_id, n=n, seconds=wall)
        model = PipelineModel(
            cpu_codec_lanes=max(1, cfg.host.cores - 1),
            cpu_idle_lanes=max(1, cfg.host.idle_cores),
            gpu_lanes=cfg.num_devices,
        )
        pipelined = model.makespan(timeline)
        if tel.enabled:
            tel.tracer.record("run", wall, n=n, gates=len(circuit))
            m = tel.metrics
            m.counter("run.count").inc()
            m.gauge("run.wall.seconds").set(wall)
            m.gauge("run.pipelined.seconds").set(pipelined)
        log.info("run done: n=%d wall=%.3fs pipelined=%.3fs", n, wall,
                 pipelined)
        config_echo = {
            "chunk_qubits": c,
            "precision": cfg.precision,
            "backend": cfg.backend,
            "decisions": [d.to_dict() for d in decisions],
            "compressor": cfg.compressor,
            "transfer": cfg.transfer,
            "cpu_offload_fraction": cfg.cpu_offload_fraction,
            "num_devices": cfg.num_devices,
            "cache_chunks": cfg.cache_chunks,
            "cache_policy": cfg.cache_policy,
            "serpentine": cfg.serpentine_groups,
            "fuse_gates": cfg.fuse_gates,
            "fusion": cfg.fuse_gates,
            "max_fuse_qubits": cfg.max_fuse_qubits,
            "store": cfg.resolve_store(),
            "host_store_mb": cfg.host_store_mb,
            "hierarchy": hierarchy.describe(),
            "workers": workers if use_parallel else 1,
            "execution": "parallel" if use_parallel else "serial",
        }
        return MemQSimResult(
            num_qubits=n,
            store=store_like if cfg.cache_chunks else store,
            timeline=timeline,
            tracker=tracker,
            plan=plan,
            scheduler_stats=scheduler.stats,
            wall_seconds=wall,
            pipelined_seconds=pipelined,
            config_summary=cfg.summary(),
            telemetry=tel,
            config_echo=config_echo,
            resource_timeline=monitor.timeline(),
            compile_report=cplan.report,
            run_id=run_id,
            precision=cfg.precision,
            # Fidelity oracle is only meaningful for a known |0...0> start.
            oracle_circuit=circuit if (initial_state is None
                                       and checkpoint is None
                                       and initial_store is None) else None,
        )

    def _make_store(self, layout: ChunkLayout, tracker: MemoryTracker,
                    cfg: Optional[MemQSimConfig] = None):
        cfg = cfg if cfg is not None else self.config
        tel = self.telemetry
        kind = cfg.resolve_store()
        if kind == "memory":
            return CompressedChunkStore(layout, cfg.make_compressor(), tracker,
                                        telemetry=tel)
        if kind in ("disk", "tiered"):
            path = cfg.disk_path
            if path is None:
                import os
                import tempfile

                fd, path = tempfile.mkstemp(prefix="memqsim_", suffix=".log")
                os.close(fd)
            if kind == "disk":
                from ..memory.diskstore import DiskChunkStore

                return DiskChunkStore(layout, cfg.make_compressor(), path,
                                      tracker, telemetry=tel)
            from ..memory.hierarchy import TieredChunkStore

            budget = int(cfg.host_store_mb * (1 << 20))
            return TieredChunkStore(layout, cfg.make_compressor(), path,
                                    budget, tracker=tracker, telemetry=tel)
        raise ValueError(f"unknown store kind {cfg.store!r}")

    def sample(self, circuit: Circuit, shots: int, seed: Optional[int] = None):
        """Run and sample measurement outcomes (streamed, never dense)."""
        return self.run(circuit).sample(shots, seed=seed)

    def statevector(self, circuit: Circuit) -> np.ndarray:
        """Run and densify — convenience for tests and small circuits."""
        return self.run(circuit).statevector()

    def __repr__(self) -> str:
        return f"<MemQSim {self.config.summary()}>"
