"""Simulation-as-a-service: the persistent multi-tenant job daemon.

MEMQSim's pipeline is one-shot: build a simulator, run a circuit, tear
everything down. This package keeps the expensive parts alive across
submissions and shares them safely between concurrent tenants:

* :class:`ServeManager` — job queue with **shared-arena admission
  control** (lease ledger on one :class:`~repro.device.DeviceArena`;
  admitted jobs provably never OOM mid-run) and **fair round-robin
  arbitration** across tenants, plus an optional shared
  :class:`~repro.parallel.CodecWorkerPool`;
* :class:`PlanCache` — compiled plans keyed on (circuit structural hash,
  plan-affecting config knobs, resolved chunk size), so repeat
  submissions skip planning and compilation entirely
  (``serve.plan_cache.{hit,miss}`` counters);
* :class:`ServeServer` — the stdlib HTTP/JSON API (submit, poll
  state/progress/ETA, stream per-job SSE events, fetch results, cancel)
  in the PR 6 :class:`~repro.telemetry.live.TelemetryServer` idiom;
* :class:`ServeClient` — the matching stdlib client (CLI, tests, CI).

Start a daemon with ``python -m repro serve --port 9645``; see
``docs/serve.md`` for the API reference and capacity model.
"""

from .client import ServeAPIError, ServeClient
from .jobs import Job, JobRejected, device_lease_amplitudes
from .manager import ServeManager
from .plancache import PlanCache
from .server import DEFAULT_PORT, ServeServer

__all__ = [
    "DEFAULT_PORT",
    "Job",
    "JobRejected",
    "PlanCache",
    "ServeAPIError",
    "ServeClient",
    "ServeManager",
    "ServeServer",
    "device_lease_amplitudes",
]
