"""The job manager: shared-arena admission control and fair arbitration.

One :class:`ServeManager` owns the daemon's shared resources —

* **one** :class:`~repro.device.DeviceArena` sized by the daemon's device
  spec; every job's executors allocate from it,
* **one** :class:`PlanCache` keyed on (circuit hash, plan key, chunk size),
* optionally **one** :class:`~repro.parallel.CodecWorkerPool` (when the
  daemon's base config resolves to >1 workers), shared by jobs whose codec
  matches the pool's,

and runs the two control loops:

**Admission control.** Each submission's worst-case device working set is
computed up front (:func:`~repro.serve.jobs.device_lease_amplitudes`); a
job whose working set exceeds the arena outright is *rejected*, otherwise
it *queues* until an :class:`~repro.device.ArenaLease` of that size can be
granted. Because per-pass allocations never exceed the lease and the sum
of granted leases never exceeds capacity, admitted jobs can never hit
:class:`~repro.device.DeviceOutOfMemory` mid-run — concurrency degrades
into queueing, not into failures.

**Fair arbitration.** Queued jobs are grouped per tenant (FIFO within a
tenant) and granted round-robin across tenants: a rotating pointer scans
tenants from its current position and grants the first whose head job's
lease fits; the pointer advances only past tenants that were *granted*,
so a tenant skipped because the arena is momentarily full keeps its turn
— no tenant starves behind a chatty neighbour. (Known head-of-line
caveat: within one tenant a large queued job blocks that tenant's own
smaller jobs; across tenants it only yields its turn.)

Jobs run on worker threads; results, per-job telemetry, and cancellation
stay per-job, so concurrent runs are bit-identical to solo runs.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ..core.config import MemQSimConfig
from ..core.memqsim import MemQSim
from ..device.arena import DeviceArena
from ..memory.accounting import MemoryTracker
from ..pipeline.cancel import JobCancelled
from ..telemetry import Telemetry, get_logger
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobRejected,
    circuit_from_payload,
    config_from_payload,
)
from .plancache import PlanCache

__all__ = ["ServeManager"]

log = get_logger(__name__)


class ServeManager:
    """Multi-tenant job daemon core (no HTTP — see :mod:`.server`)."""

    def __init__(self, base_config: Optional[MemQSimConfig] = None,
                 telemetry: Optional[Telemetry] = None, *,
                 max_jobs: int = 4, plan_cache_capacity: int = 64,
                 events_dir: Optional[str] = None):
        """Args:
            base_config: the daemon's config; its ``device`` sizes the one
                shared arena, and submissions override only whitelisted
                execution knobs on top of it.
            telemetry: the *manager's* telemetry (``serve.*`` counters,
                shared-arena memory gauges, daemon ``/metrics``). Per-job
                telemetry is separate and always enabled.
            max_jobs: hard cap on simultaneously running jobs (the arena
                lease ledger is usually the binding constraint).
            plan_cache_capacity: distinct compiled plans kept resident.
            events_dir: when set, each finished job's event-bus tail is
                flushed to ``<events_dir>/<job_id>.events.jsonl``.
        """
        if max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")
        self.base_config = base_config if base_config is not None \
            else MemQSimConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        tel = self.telemetry
        self.tracker = MemoryTracker(telemetry=tel if tel.enabled else None)
        self.arena = DeviceArena(self.base_config.device, self.tracker)
        self.plan_cache = PlanCache(plan_cache_capacity, telemetry=tel)
        self.max_jobs = int(max_jobs)
        self.events_dir = events_dir
        self.codec_pool = self._make_shared_pool()
        self.started_at = time.time()

        self._jobs: Dict[str, Job] = {}
        self._queues: Dict[str, Deque[Job]] = {}
        self._rr: List[str] = []  # tenant round-robin order
        self._rr_idx = 0
        self._running: Dict[str, Job] = {}
        self._workers: List[threading.Thread] = []
        self._cv = threading.Condition()
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True)
        self._dispatcher.start()

    # -- shared codec pool ----------------------------------------------------

    def _make_shared_pool(self):
        """One worker pool for the daemon, when the base config wants one.

        Workers are pinned to one pickled codec at init, so only jobs
        whose resolved codec matches the base share it (checked per job
        in :meth:`_pool_for`); everyone else gets a private pool (or the
        serial path) from :class:`~repro.core.MemQSim` as usual.
        """
        cfg = self.base_config
        if cfg.execution == "serial":
            return None
        workers = cfg.resolve_workers()
        if workers <= 1:
            return None
        from ..parallel import CodecWorkerPool

        pool = CodecWorkerPool(cfg.make_compressor(), workers=workers,
                               shm_threshold=cfg.shm_threshold_bytes,
                               telemetry=self.telemetry)
        log.info("serve: shared codec pool, %d workers (%s)", workers,
                 "process pool" if pool.is_parallel else "inline")
        return pool

    def _pool_for(self, job: Job):
        pool = self.codec_pool
        if pool is None or job.config.execution == "serial":
            return None
        base = self.base_config
        if (job.config.compressor != base.compressor
                or job.config.compressor_options != base.compressor_options):
            return None
        return pool

    # -- submission / queries -------------------------------------------------

    def submit(self, payload: Dict[str, Any]) -> Job:
        """Parse, admit (or queue), and register one submission."""
        if not isinstance(payload, dict):
            raise JobRejected("submission must be a JSON object")
        circuit = circuit_from_payload(payload)
        config = config_from_payload(self.base_config, payload)
        try:
            job = Job(circuit, config,
                      tenant=str(payload.get("tenant", "default")),
                      shots=int(payload.get("shots", 0) or 0),
                      seed=payload.get("seed"))
        except ValueError as exc:  # e.g. chunk_qubits > circuit qubits
            raise JobRejected(str(exc)) from exc
        if job.lease_amplitudes > self.arena.capacity:
            self._count("serve.jobs.rejected")
            raise JobRejected(
                f"working set {job.lease_amplitudes * 16:,}B can never fit "
                f"the shared arena ({self.arena.capacity * 16:,}B); "
                f"lower chunk_qubits or grow --device-mb")
        with self._cv:
            if self._closed:
                raise JobRejected("daemon is shutting down", status=503)
            self._jobs[job.id] = job
            if job.tenant not in self._queues:
                self._queues[job.tenant] = deque()
                self._rr.append(job.tenant)
            self._queues[job.tenant].append(job)
            self._cv.notify_all()
        self._count("serve.jobs.submitted")
        self._refresh_gauges()
        self.telemetry.emit("serve.job.submitted", job_id=job.id,
                            tenant=job.tenant, n=circuit.num_qubits)
        log.info("serve: job %s submitted (tenant=%s n=%d lease=%dB)",
                 job.id, job.tenant, circuit.num_qubits, job.lease_amplitudes * 16)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._cv:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._cv:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a queued job immediately or a running one cooperatively."""
        with self._cv:
            job = self._jobs.get(job_id)
            if job is None or job.finished:
                return job
            if job.state == QUEUED:
                q = self._queues.get(job.tenant)
                if q is not None and job in q:
                    q.remove(job)
                job.state = CANCELLED
                job.finished_at = time.time()
                job.cancel.cancel("client request")
                self._count("serve.jobs.cancelled")
            else:
                job.cancel.cancel("client request")
            self._cv.notify_all()
        self._refresh_gauges()
        return job

    # -- arbitration ----------------------------------------------------------

    def _next_admissible_locked(self) -> Optional[Job]:
        """Round-robin scan: first tenant (from the pointer) whose head
        job's lease fits. Advances the pointer only past granted tenants."""
        n = len(self._rr)
        for off in range(n):
            tenant = self._rr[(self._rr_idx + off) % n]
            queue = self._queues.get(tenant)
            if not queue:
                continue
            job = queue[0]
            if self.arena.can_lease(job.lease_amplitudes):
                queue.popleft()
                self._rr_idx = (self._rr_idx + off + 1) % n
                return job
        return None

    def _dispatch_loop(self) -> None:
        while True:
            with self._cv:
                if self._closed and not self._running \
                        and not any(self._queues.values()):
                    return
                job = None
                if not self._closed and len(self._running) < self.max_jobs:
                    job = self._next_admissible_locked()
                if job is None:
                    self._cv.wait(timeout=0.2)
                    continue
                job.lease = self.arena.lease(job.lease_amplitudes,
                                             name=job.id)
                job.state = RUNNING
                job.started_at = time.time()
                self._running[job.id] = job
                worker = threading.Thread(
                    target=self._run_job, args=(job,),
                    name=f"repro-serve-job-{job.id}", daemon=True)
                self._workers.append(worker)
            self._refresh_gauges()
            worker.start()

    # -- job execution --------------------------------------------------------

    def _run_job(self, job: Job) -> None:
        tel = self.telemetry
        tel.emit("serve.job.start", job_id=job.id, tenant=job.tenant)
        sim = MemQSim(job.config, telemetry=job.telemetry,
                      plan_cache=self.plan_cache,
                      codec_pool=self._pool_for(job),
                      arena=self.arena, cancel=job.cancel)
        try:
            result = sim.run(job.circuit)
            job.result = result
            if job.shots:
                job.counts = result.sample(job.shots, seed=job.seed)
            job.state = DONE
            self._count("serve.jobs.completed")
            log.info("serve: job %s done (%.3fs)", job.id,
                     result.wall_seconds)
        except JobCancelled:
            job.state = CANCELLED
            self._count("serve.jobs.cancelled")
            log.info("serve: job %s cancelled (%s)", job.id,
                     job.cancel.reason)
        except Exception as exc:  # noqa: BLE001 — job faults stay per-job
            job.state = FAILED
            job.error = f"{type(exc).__name__}: {exc}"
            self._count("serve.jobs.failed")
            log.exception("serve: job %s failed", job.id)
        finally:
            job.finished_at = time.time()
            if job.lease is not None:
                self.arena.release_lease(job.lease)
            self._rollup_traffic(job)
            self._flush_events(job)
            tel.emit("serve.job.end", job_id=job.id, state=job.state)
            with self._cv:
                self._running.pop(job.id, None)
                self._cv.notify_all()
            self._refresh_gauges()

    def _flush_events(self, job: Job) -> None:
        if not self.events_dir:
            return
        try:
            os.makedirs(self.events_dir, exist_ok=True)
            path = os.path.join(self.events_dir,
                                f"{job.id}.events.jsonl")
            n = job.telemetry.bus.write_jsonl(path)
            log.debug("serve: job %s events flushed (%d lines)", job.id, n)
        except OSError as exc:
            log.warning("serve: job %s event flush failed: %s", job.id, exc)

    # -- shutdown -------------------------------------------------------------

    def shutdown(self, grace: float = 30.0) -> None:
        """Graceful stop: queued jobs cancel, running jobs stop at their
        next group-pass boundary (store-consistent), events flush, the
        shared pool and arena release. Idempotent."""
        with self._cv:
            if self._closed and not self._running:
                pass  # second call: still join below (idempotent)
            self._closed = True
            for queue in self._queues.values():
                while queue:
                    job = queue.popleft()
                    job.state = CANCELLED
                    job.finished_at = time.time()
                    job.cancel.cancel("daemon shutdown")
                    self._count("serve.jobs.cancelled")
                    self._flush_events(job)
            running = list(self._running.values())
            self._cv.notify_all()
        for job in running:
            job.cancel.cancel("daemon shutdown")
        deadline = time.monotonic() + max(0.0, grace)
        self._dispatcher.join(timeout=max(0.1, deadline - time.monotonic()))
        for worker in self._workers:
            worker.join(timeout=max(0.1, deadline - time.monotonic()))
        if self.codec_pool is not None:
            self.codec_pool.close()
            self.codec_pool = None
        self.arena.reset()
        self._refresh_gauges()
        log.info("serve: shutdown complete (%d jobs tracked)",
                 len(self._jobs))

    # -- telemetry ------------------------------------------------------------

    def _count(self, name: str) -> None:
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(name).inc()

    def _rollup_traffic(self, job: Job) -> None:
        """Fold a finished job's byte ledger into the daemon's counters.

        Each job runs on its own telemetry (per-job ledger); the daemon's
        ``/metrics`` should still answer "how many bytes has this process
        moved across each tier edge", so totals roll up here.
        """
        if not self.telemetry.enabled:
            return
        for edge, v in job.telemetry.traffic.totals().items():
            self.telemetry.metrics.counter(
                f"traffic.{edge}.bytes").inc(v["bytes"])

    def _refresh_gauges(self) -> None:
        if not self.telemetry.enabled:
            return
        m = self.telemetry.metrics
        with self._cv:
            queued = sum(len(q) for q in self._queues.values())
            running = len(self._running)
        m.gauge("serve.jobs.queued").set(queued)
        m.gauge("serve.jobs.running").set(running)
        m.gauge("serve.arena.leased.bytes").set(
            self.arena.leased_amplitudes * 16)

    def stats(self) -> Dict[str, Any]:
        """Daemon-level snapshot (the HTTP ``/`` endpoint)."""
        with self._cv:
            by_state: Dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            queued = sum(len(q) for q in self._queues.values())
            tenants = list(self._rr)
        return {
            "uptime_seconds": time.time() - self.started_at,
            "jobs": by_state,
            "queued": queued,
            "tenants": tenants,
            "max_jobs": self.max_jobs,
            "plan_cache": self.plan_cache.stats(),
            "arena": {
                "capacity_bytes": self.arena.capacity * 16,
                "leased_bytes": self.arena.leased_amplitudes * 16,
                "used_bytes": self.arena.used * 16,
                "peak_bytes": self.arena.peak_amplitudes * 16,
            },
            "codec_pool": {
                "shared": self.codec_pool is not None,
                "workers": getattr(self.codec_pool, "workers", 0),
            },
            "base_config": self.base_config.summary(),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (f"<ServeManager jobs={sum(s['jobs'].values())} "
                f"queued={s['queued']} tenants={len(s['tenants'])}>")
