"""HTTP/JSON front-end for the job daemon (stdlib only, PR 6 idiom).

Extends the :class:`~repro.telemetry.live.TelemetryServer` pattern — a
background :class:`~http.server.ThreadingHTTPServer`, silent handlers,
snapshot-under-lock reads — with the job API:

* ``POST /jobs`` — submit ``{"workload"|"qasm", "qubits", "tenant",
  "shots", "seed", "config": {...}}``; returns ``202`` with the job
  snapshot (or ``400`` when rejected at admission).
* ``GET /jobs`` — every job, oldest first.
* ``GET /jobs/{id}`` — one job's state, progress fraction, and ETA.
* ``GET /jobs/{id}/events`` — Server-Sent Events from the *job's own*
  event bus (``?tail=N`` backfills, ``?max_seconds=S`` bounds the read);
  the stream closes itself once the job finishes and the bus drains.
* ``GET /jobs/{id}/result`` — the finished result document (``409`` while
  the job is still queued/running, ``410`` for failed/cancelled).
* ``DELETE /jobs/{id}`` — cancel (queued: immediate; running: at the next
  group-pass boundary).
* ``GET /metrics`` — the daemon's shared telemetry in Prometheus text
  format (``serve.*`` counters, shared-arena gauges, plan-cache stats).
* ``GET /`` and ``GET /healthz`` — service info / liveness.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional
from urllib.parse import parse_qs, urlparse

from ..telemetry.live import render_prometheus
from .jobs import CANCELLED, DONE, FAILED, JobRejected
from .manager import ServeManager

__all__ = ["ServeServer", "DEFAULT_PORT"]

#: default service port (one above the telemetry exposition port)
DEFAULT_PORT = 9645

#: request body cap — submissions are circuits, not datasets
MAX_BODY_BYTES = 8 << 20


class _Handler(BaseHTTPRequestHandler):
    """Routes the job API; reads ``server.manager``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    def log_message(self, fmt: str, *args: Any) -> None:
        pass  # the daemon's own logging owns stderr

    # -- helpers -------------------------------------------------------------

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload, default=str).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, message: str, status: int) -> None:
        self._send_json({"error": message}, status)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise JobRejected("empty request body")
        if length > MAX_BODY_BYTES:
            raise JobRejected(f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise JobRejected(f"invalid JSON: {exc}") from exc

    @property
    def manager(self) -> ServeManager:
        return self.server.manager

    def _job_or_404(self, job_id: str):
        job = self.manager.get(job_id)
        if job is None:
            self._error(f"no such job: {job_id}", 404)
        return job

    # -- verbs ---------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        url = urlparse(self.path)
        try:
            if url.path == "/jobs":
                try:
                    job = self.manager.submit(self._read_body())
                except JobRejected as exc:
                    self._error(str(exc), exc.status)
                    return
                self._send_json({"job": job.snapshot()}, 202)
            else:
                self._error("not found", 404)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def do_DELETE(self) -> None:  # noqa: N802
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if len(parts) == 2 and parts[0] == "jobs":
                job = self._job_or_404(parts[1])
                if job is None:
                    return
                job = self.manager.cancel(job.id)
                self._send_json({"job": job.snapshot()})
            else:
                self._error("not found", 404)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def do_GET(self) -> None:  # noqa: N802
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if url.path == "/":
                info = self.manager.stats()
                info["service"] = "repro-serve"
                info["endpoints"] = [
                    "POST /jobs", "GET /jobs", "GET /jobs/{id}",
                    "GET /jobs/{id}/events", "GET /jobs/{id}/result",
                    "DELETE /jobs/{id}", "GET /metrics", "GET /healthz",
                ]
                self._send_json(info)
            elif url.path == "/healthz":
                self._send_json({"ok": True})
            elif url.path == "/metrics":
                body = render_prometheus(self.manager.telemetry)
                data = body.encode()
                self.send_response(200)
                self.send_header("Content-Type",
                                 "text/plain; version=0.0.4; charset=utf-8")
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)
            elif url.path == "/jobs":
                self._send_json(
                    {"jobs": [j.snapshot() for j in self.manager.jobs()]})
            elif len(parts) == 2 and parts[0] == "jobs":
                job = self._job_or_404(parts[1])
                if job is not None:
                    self._send_json({"job": job.snapshot()})
            elif len(parts) == 3 and parts[0] == "jobs":
                job = self._job_or_404(parts[1])
                if job is None:
                    return
                if parts[2] == "result":
                    self._serve_result(job)
                elif parts[2] == "events":
                    self._serve_events(job, parse_qs(url.query))
                else:
                    self._error("not found", 404)
            else:
                self._error("not found", 404)
        except (BrokenPipeError, ConnectionResetError):
            pass

    # -- endpoint bodies -----------------------------------------------------

    def _serve_result(self, job) -> None:
        if job.state == DONE:
            self._send_json(job.result_payload())
        elif job.state in (FAILED, CANCELLED):
            self._send_json({"job": job.snapshot()}, 410)
        else:
            self._send_json({"job": job.snapshot(),
                             "error": f"job is {job.state}"}, 409)

    def _serve_events(self, job, query: Dict[str, List[str]]) -> None:
        """SSE tail of the job's private bus; self-terminating."""
        bus = job.telemetry.bus
        if not bus.enabled:
            self._error("event bus disabled", 404)
            return
        tail = int(query.get("tail", ["25"])[0])
        max_seconds = float(query.get("max_seconds", ["0"])[0])
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        sub = bus.subscribe(tail=tail)
        deadline = (time.monotonic() + max_seconds) if max_seconds > 0 else None
        while not self.server.stopping.is_set():
            drained = True
            for ev in sub.poll():
                self.wfile.write(b"data: " + ev.to_json().encode() + b"\n\n")
                drained = False
            if sub.missed:
                self.wfile.write(
                    f": missed {sub.missed} events (ring overflow)\n\n"
                    .encode())
                sub.missed = 0
            self.wfile.flush()
            if job.finished and drained:
                self.wfile.write(
                    f"event: done\ndata: {{\"state\": \"{job.state}\"}}\n\n"
                    .encode())
                self.wfile.flush()
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(0.1)


class ServeServer:
    """Background HTTP server bound to one :class:`ServeManager`.

    ``port=0`` binds an ephemeral port (tests/CI); the bound port is on
    ``.port`` after :meth:`start`. Handler threads are daemons, so a
    crashed daemon never hangs on a live SSE stream.
    """

    def __init__(self, manager: ServeManager, port: int = DEFAULT_PORT,
                 host: str = "127.0.0.1"):
        self.manager = manager
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServeServer":
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        httpd.daemon_threads = True
        httpd.manager = self.manager
        httpd.stopping = threading.Event()
        self.port = httpd.server_address[1]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-serve-http", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.stopping.set()
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "ServeServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"<ServeServer {state} {self.url}>"
