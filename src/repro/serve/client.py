"""Thin stdlib HTTP client for the job daemon.

Wraps :mod:`urllib.request` so the CLI (``python -m repro submit/jobs/
result/cancel``), the test suite, and the CI smoke job all speak to the
daemon through one code path. Every method returns the decoded JSON
document; HTTP errors surface as :class:`ServeAPIError` carrying the
status code and the server's ``error`` message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

__all__ = ["ServeClient", "ServeAPIError"]


class ServeAPIError(RuntimeError):
    """Non-2xx response from the daemon."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """``ServeClient("http://127.0.0.1:9645")`` — one daemon, many calls."""

    def __init__(self, url: str, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.url + path, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {})
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", exc.reason)
            except Exception:  # noqa: BLE001 — body may not be JSON
                message = str(exc.reason)
            raise ServeAPIError(exc.code, message) from exc

    # -- API -----------------------------------------------------------------

    def info(self) -> Dict[str, Any]:
        return self._request("GET", "/")

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        req = urllib.request.Request(self.url + "/metrics")
        with urllib.request.urlopen(req, timeout=self.timeout) as resp:
            return resp.read().decode()

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /jobs``; returns the job snapshot."""
        return self._request("POST", "/jobs", payload)["job"]

    def jobs(self) -> list:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def result(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/{id}/result`` (raises 409/410 while unfinished)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")["job"]

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.1) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state (or time out)."""
        deadline = time.monotonic() + timeout
        while True:
            snap = self.job(job_id)
            if snap["state"] in ("done", "failed", "cancelled"):
                return snap
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {snap['state']} after {timeout}s")
            time.sleep(poll)

    def __repr__(self) -> str:
        return f"<ServeClient {self.url}>"
