"""Job model and submission parsing for the service plane.

A :class:`Job` is one tenant's simulation request moving through the
daemon: parsed circuit + resolved config, a state machine
(``queued → running → done|failed|cancelled``), a private
:class:`~repro.telemetry.Telemetry` object (own event bus + plan-aware
progress tracker — the per-job SSE stream and ETA come straight from
it), a :class:`~repro.pipeline.CancelToken`, and — once admitted — an
:class:`~repro.device.ArenaLease` on the shared device arena.

Submission payloads are plain JSON::

    {"workload": "qft", "qubits": 12,      # or "qasm": "<OpenQASM 2.0>"
     "tenant": "alice",                    # fairness domain (default "default")
     "shots": 1000, "seed": 7,             # optional sampling
     "config": {"compressor": "zlib", "chunk_qubits": 6, ...}}

Config overrides are whitelisted (:data:`CONFIG_OVERRIDES`): execution
knobs a tenant may choose. Device geometry is deliberately *not*
overridable — the daemon owns one shared arena and every job plans
against it, which is what makes the lease arithmetic sound.
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Any, Dict, Optional

from ..circuits import from_qasm, get_workload
from ..circuits.circuit import Circuit
from ..core.config import MemQSimConfig
from ..memory.layout import ChunkLayout
from ..pipeline.cancel import CancelToken
from ..pipeline.planner import max_group_qubits_for
from ..telemetry import Telemetry

__all__ = [
    "Job",
    "JobRejected",
    "circuit_from_payload",
    "config_from_payload",
    "device_lease_amplitudes",
    "CONFIG_OVERRIDES",
]

#: job states (terminal: done / failed / cancelled)
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL = frozenset({DONE, FAILED, CANCELLED})

#: submission config keys a tenant may override, mapped to config fields.
#: ``error_bound`` routes into ``compressor_options``; ``fusion`` is the
#: CLI-friendly alias for ``fuse_gates``. Device/host geometry and the
#: store kind are daemon-owned and absent on purpose.
CONFIG_OVERRIDES = {
    "compressor": "compressor",
    "error_bound": None,  # -> compressor_options["error_bound"]
    "chunk_qubits": "chunk_qubits",
    "transfer": "transfer",
    "cpu_offload_fraction": "cpu_offload_fraction",
    "fusion": "fuse_gates",
    "fuse_gates": "fuse_gates",
    "max_fuse_qubits": "max_fuse_qubits",
    "cache_chunks": "cache_chunks",
    "cache_policy": "cache_policy",
    "workers": "workers",
    "execution": "execution",
    "serpentine": "serpentine_groups",
}


class JobRejected(ValueError):
    """Submission refused at admission time (bad payload / can never fit).

    ``status`` is the HTTP status the API maps this refusal to: 400 for
    anything wrong with the submission itself, 503 when the daemon is
    draining and refuses all new work.
    """

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def circuit_from_payload(payload: Dict[str, Any]) -> Circuit:
    """Build the submitted circuit (named workload or inline QASM)."""
    qasm = payload.get("qasm")
    workload = payload.get("workload")
    if qasm and workload:
        raise JobRejected("pass workload or qasm, not both")
    if qasm:
        try:
            return from_qasm(qasm)
        except Exception as exc:  # parse errors -> 400, not a 500
            raise JobRejected(f"bad qasm: {exc}") from exc
    if not workload:
        raise JobRejected("submission needs a workload name or qasm text")
    qubits = int(payload.get("qubits", 12))
    try:
        return get_workload(str(workload), qubits)
    except Exception as exc:  # unknown name / bad qubit count -> 400
        raise JobRejected(f"bad workload: {exc}") from exc


def config_from_payload(base: MemQSimConfig,
                        payload: Dict[str, Any]) -> MemQSimConfig:
    """Apply whitelisted ``config`` overrides onto the daemon's base."""
    overrides = payload.get("config") or {}
    if not isinstance(overrides, dict):
        raise JobRejected("config must be a JSON object")
    unknown = sorted(set(overrides) - set(CONFIG_OVERRIDES))
    if unknown:
        raise JobRejected(
            f"unknown config override(s): {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(CONFIG_OVERRIDES))})")
    updates: Dict[str, Any] = {}
    for key, value in overrides.items():
        field = CONFIG_OVERRIDES[key]
        if field is not None:
            updates[field] = value
    cfg = base.with_updates(**updates) if updates else base
    if "error_bound" in overrides or "compressor" in overrides:
        comp = cfg.compressor
        opts = dict(cfg.compressor_options)
        if comp in ("szlike", "adaptive"):
            if "error_bound" in overrides:
                opts["error_bound"] = float(overrides["error_bound"])
        else:
            opts.pop("error_bound", None)  # lossless codecs take no bound
        cfg = cfg.with_updates(compressor_options=opts)
    return cfg


def device_lease_amplitudes(num_qubits: int, cfg: MemQSimConfig) -> int:
    """Worst-case simultaneous device demand of one run, in amplitudes.

    Per group pass the scheduler allocates exactly one device buffer of
    ``chunk_size << t`` amplitudes (freed in a ``finally``), and the
    planner caps ``t`` at :func:`max_group_qubits_for` — so this bound is
    tight and a lease of this size provably covers the whole run.
    """
    c = cfg.resolve_chunk_qubits(num_qubits)
    layout = ChunkLayout(num_qubits, c)
    t = max_group_qubits_for(layout, cfg.device,
                             double_buffer=cfg.num_buffers > 1)
    return layout.chunk_size << t


class Job:
    """One submission's full lifecycle state."""

    def __init__(self, circuit: Circuit, config: MemQSimConfig,
                 tenant: str = "default", shots: int = 0,
                 seed: Optional[int] = None):
        self.id = uuid.uuid4().hex[:12]
        self.tenant = tenant or "default"
        self.circuit = circuit
        self.config = config
        self.shots = int(shots)
        self.seed = seed
        self.state = QUEUED
        self.error: Optional[str] = None
        self.cancel = CancelToken()
        #: per-job telemetry: own event bus (SSE stream), own plan-aware
        #: progress tracker (fraction/ETA), own tracer — never shared, so
        #: one tenant's firehose cannot drown another's.
        self.telemetry = Telemetry()
        self.structural_hash = circuit.structural_hash()
        self.plan_key = config.plan_key()
        self.lease_amplitudes = device_lease_amplitudes(
            circuit.num_qubits, config)
        self.lease = None  # ArenaLease once admitted
        self.result = None  # MemQSimResult once done
        self.counts: Optional[Dict[str, int]] = None
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._digest: Optional[str] = None
        self._digest_lock = threading.Lock()

    # -- views ---------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL

    def state_digest(self) -> Optional[str]:
        """sha256 over the final state's chunk stream (memoized)."""
        if self.result is None:
            return None
        with self._digest_lock:
            if self._digest is None:
                self._digest = self.result.state_digest()
            return self._digest

    def snapshot(self) -> Dict[str, Any]:
        """The JSON shape served by ``GET /jobs/{id}``."""
        progress = self.telemetry.progress
        snap: Dict[str, Any] = {
            "id": self.id,
            "tenant": self.tenant,
            "state": self.state,
            "circuit": {
                "name": getattr(self.circuit, "name", ""),
                "num_qubits": self.circuit.num_qubits,
                "gates": len(self.circuit),
            },
            "structural_hash": self.structural_hash,
            "plan_key": self.plan_key,
            "lease_amplitudes": self.lease_amplitudes,
            "lease_bytes": self.lease_amplitudes * 16,
            "shots": self.shots,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "progress": progress.snapshot() if progress.enabled
            else {"enabled": False},
        }
        return snap

    def result_payload(self) -> Dict[str, Any]:
        """The JSON shape served by ``GET /jobs/{id}/result``."""
        if self.result is None:
            raise ValueError(f"job {self.id} has no result (state={self.state})")
        payload = {
            "job": self.snapshot(),
            "result": self.result.to_dict(include_metrics=False),
            "state_digest": self.state_digest(),
        }
        if self.counts is not None:
            payload["counts"] = self.counts
        return payload

    def __repr__(self) -> str:
        return (f"<Job {self.id} tenant={self.tenant} state={self.state} "
                f"n={self.circuit.num_qubits}>")
