"""The compiled-plan cache: amortize the offline stage across submissions.

The daemon's planner/compiler work — stage partitioning, group placement,
gate lowering and fusion — depends only on the circuit's structure and on
the plan-affecting config knobs, never on amplitudes. Identical
submissions (the common case for a service: the same parameterized
circuit re-run with different shots/codecs/tenants) can therefore reuse
one lowered plan.

:class:`PlanCache` is a small thread-safe LRU keyed on

    (``Circuit.structural_hash()``, ``MemQSimConfig.plan_key()``,
     resolved ``chunk_qubits``)

— exactly the tuple :class:`~repro.core.MemQSim` builds when handed a
``plan_cache``. Cached entries hold ``(PlanReport, CompiledPlan)``; both
are immutable once built, so entries are shared across concurrent jobs
without copying. Hit/miss/eviction counts surface as the
``serve.plan_cache.*`` counters on the daemon's telemetry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

from ..telemetry import NULL_TELEMETRY

__all__ = ["PlanCache"]

#: default number of distinct (circuit, config) plans kept resident
DEFAULT_CAPACITY = 64


class PlanCache:
    """Thread-safe LRU cache of compiled plans.

    Duck-type contract consumed by :class:`~repro.core.MemQSim`:
    ``lookup(key) -> entry | None`` and ``store(key, entry)``.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, telemetry=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key: Hashable) -> Optional[Any]:
        """The cached entry for ``key``, or ``None`` (counts hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if self.telemetry.enabled:
            name = "serve.plan_cache.hit" if entry is not None \
                else "serve.plan_cache.miss"
            self.telemetry.metrics.counter(name).inc()
        return entry

    def store(self, key: Hashable, entry: Any) -> None:
        """Insert (or refresh) ``key``; evicts least-recently-used."""
        evicted = 0
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted and self.telemetry.enabled:
            self.telemetry.metrics.counter("serve.plan_cache.evict").inc(
                evicted)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:
        s = self.stats()
        return (f"<PlanCache {s['size']}/{s['capacity']} "
                f"hits={s['hits']} misses={s['misses']}>")
