"""MEMQSim reproduction: memory-efficient, modularized state-vector simulation.

Public entry points:

* :class:`repro.circuits.Circuit` and the generators in ``repro.circuits``
* :class:`repro.statevector.DenseSimulator` — full-memory baseline
* :class:`repro.core.MemQSim` — the paper's compressed chunked simulator
"""

__version__ = "1.0.0"
