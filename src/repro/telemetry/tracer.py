"""Tracing spans with Chrome-trace / Perfetto and JSONL export.

A :class:`Tracer` records nestable, attributed intervals of work::

    with tracer.span("h2d", chunk=3, nbytes=65536):
        ...upload...

Spans are timestamped with :func:`time.perf_counter` relative to the
tracer's epoch, carry arbitrary key/value attributes, and know their
nesting depth and parent (per thread). The whole log exports as

* **Chrome trace** (``trace_events`` JSON) — load the file at
  ``chrome://tracing`` or https://ui.perfetto.dev to see the pipeline
  lanes; every span is one complete (``"ph": "X"``) event with ``ts`` and
  ``dur`` in microseconds;
* **JSONL** — one span object per line, for ad-hoc ``jq``/pandas analysis.

:class:`NullTracer` is the disabled twin: ``span()`` hands back a shared
no-op context manager, so tracing costs two attribute lookups and a
``with`` block when off.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .logutil import set_active_span

__all__ = ["Span", "Tracer", "NullTracer"]


class Span:
    """One completed (or in-flight) unit of traced work."""

    __slots__ = ("name", "start", "duration", "args", "tid", "depth", "parent")

    def __init__(self, name: str, start: float = 0.0, duration: float = 0.0,
                 args: Optional[Dict[str, Any]] = None, tid: int = 0,
                 depth: int = 0, parent: Optional[str] = None):
        self.name = name
        self.start = start          # seconds since tracer epoch
        self.duration = duration    # seconds
        self.args = args if args is not None else {}
        self.tid = tid
        self.depth = depth
        self.parent = parent

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_event(self) -> Dict[str, Any]:
        """This span as one Chrome ``trace_events`` complete event."""
        return {
            "name": self.name,
            "cat": str(self.args.get("cat", "repro")),
            "ph": "X",
            "ts": self.start * 1e6,
            "dur": self.duration * 1e6,
            "pid": 1,
            "tid": self.tid,
            "args": dict(self.args),
        }

    def __repr__(self) -> str:
        return (f"<Span {self.name} +{self.start * 1e3:.3f}ms "
                f"dur={self.duration * 1e3:.3f}ms depth={self.depth} "
                f"args={self.args}>")


class _SpanCtx:
    """Context manager that opens/closes one span on a tracer."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._open(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self.span)
        return False


class _NullSpanCtx:
    """Shared no-op span context (the disabled-tracing fast path)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN_CTX = _NullSpanCtx()


class Tracer:
    """Collects spans; thread-safe appends, per-thread nesting stacks."""

    enabled = True

    def __init__(self, process_name: str = "repro"):
        self.process_name = process_name
        self._epoch = time.perf_counter()
        #: wall-clock time of the epoch — lets spans measured in *other*
        #: processes (codec workers) be placed on this tracer's timeline.
        self.epoch_wall = time.time()
        self.spans: List[Span] = []
        #: counter samples: ``(name, t_seconds, {series: value})`` — exported
        #: as Chrome ``"ph": "C"`` events (stacked counter tracks).
        self.counters: List[Tuple[str, float, Dict[str, float]]] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tids: Dict[int, int] = {}

    @property
    def now(self) -> float:
        """Seconds since this tracer's epoch (the span/counter time base)."""
        return time.perf_counter() - self._epoch

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **args) -> _SpanCtx:
        """Open a nested span: ``with tracer.span("kernel", chunk=2): ...``"""
        return _SpanCtx(self, Span(name, args=args, tid=self._tid()))

    def counter(self, name: str, t: Optional[float] = None,
                **series: float) -> None:
        """Record one counter sample: ``tracer.counter("rss", bytes=1024)``.

        Counter samples render as stacked counter tracks in trace viewers
        (one track per ``name``, one colored band per ``series`` key).
        ``t`` is seconds since the tracer epoch; default *now*.
        """
        if t is None:
            t = time.perf_counter() - self._epoch
        with self._lock:
            self.counters.append((name, max(0.0, t), dict(series)))

    def record(self, name: str, duration: float, **args) -> Span:
        """Log an already-measured span ending *now* (duration seconds)."""
        now = time.perf_counter() - self._epoch
        sp = Span(name, start=max(0.0, now - duration),
                  duration=max(0.0, duration), args=args, tid=self._tid())
        stack = self._stack()
        if stack:
            sp.depth = len(stack)
            sp.parent = stack[-1].name
        with self._lock:
            self.spans.append(sp)
        return sp

    def instant(self, name: str, **args) -> Span:
        """Zero-duration marker (rendered as a tick in trace viewers)."""
        return self.record(name, 0.0, **args)

    def record_at(self, name: str, duration: float, *,
                  wall_start: Optional[float] = None,
                  start: Optional[float] = None,
                  tid: Optional[int] = None, **args) -> Span:
        """Log a span measured elsewhere, placed at an explicit start time.

        Codec worker processes time their own jobs; the parent merges them
        into one coherent Chrome trace by passing the worker's wall-clock
        start (``wall_start`` = ``time.time()`` at job start), which is
        mapped onto this tracer's epoch. ``tid`` puts the span on its own
        lane (one per worker) in trace viewers.
        """
        if wall_start is not None:
            start = wall_start - self.epoch_wall
        elif start is None:
            start = time.perf_counter() - self._epoch - duration
        sp = Span(name, start=max(0.0, start),
                  duration=max(0.0, duration), args=args,
                  tid=self._tid() if tid is None else tid)
        with self._lock:
            self.spans.append(sp)
        return sp

    # -- span lifecycle (used by _SpanCtx) ----------------------------------------

    def _open(self, sp: Span) -> None:
        stack = self._stack()
        sp.depth = len(stack)
        sp.parent = stack[-1].name if stack else None
        stack.append(sp)
        set_active_span(sp.name)  # log records now carry this span
        sp.start = time.perf_counter() - self._epoch

    def _close(self, sp: Span) -> None:
        sp.duration = time.perf_counter() - self._epoch - sp.start
        stack = self._stack()
        if stack and stack[-1] is sp:
            stack.pop()
        elif sp in stack:  # out-of-order exit; still unwind correctly
            stack.remove(sp)
        set_active_span(stack[-1].name if stack else None)
        with self._lock:
            self.spans.append(sp)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def total_seconds(self, name: Optional[str] = None) -> float:
        return sum(s.duration for s in self.spans
                   if name is None or s.name == name)

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self.counters.clear()

    # -- export --------------------------------------------------------------------

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The full log in Chrome ``trace_events`` JSON object format."""
        events: List[Dict[str, Any]] = [{
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": self.process_name},
        }]
        events.extend(s.to_event() for s in sorted(self.spans,
                                                   key=lambda s: s.start))
        events.extend(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": t * 1e6,
                "pid": 1,
                "args": dict(series),
            }
            for name, t, series in sorted(self.counters, key=lambda c: c[1])
        )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> int:
        """Write the Chrome-trace JSON file; returns bytes written."""
        payload = json.dumps(self.to_chrome_trace(), default=str)
        with open(path, "w") as fh:
            fh.write(payload)
        return len(payload)

    def to_jsonl(self) -> List[str]:
        """One JSON object per span, in start order."""
        return [
            json.dumps({
                "name": s.name, "start": s.start, "duration": s.duration,
                "tid": s.tid, "depth": s.depth, "parent": s.parent,
                "args": s.args,
            }, default=str)
            for s in sorted(self.spans, key=lambda s: s.start)
        ]

    def write_jsonl(self, path: str) -> int:
        lines = self.to_jsonl()
        with open(path, "w") as fh:
            for line in lines:
                fh.write(line)
                fh.write("\n")
        return len(lines)

    def summary(self, top: int = 10) -> str:
        """Per-name totals, descending — a quick where-did-time-go table."""
        agg: Dict[str, Tuple[int, float]] = {}
        for s in self.spans:
            c, t = agg.get(s.name, (0, 0.0))
            agg[s.name] = (c + 1, t + s.duration)
        rows = sorted(agg.items(), key=lambda kv: -kv[1][1])[:top]
        lines = [f"{'span':<20} {'count':>8} {'total':>12}"]
        for name, (c, t) in rows:
            lines.append(f"{name:<20} {c:>8} {t * 1e3:>10.2f}ms")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Tracer {len(self.spans)} spans>"


class NullTracer:
    """Disabled tracer: every operation is a cheap no-op."""

    enabled = False
    spans: Tuple[Span, ...] = ()
    counters: Tuple = ()
    epoch_wall = 0.0
    now = 0.0

    def span(self, name: str, **args) -> _NullSpanCtx:
        return _NULL_SPAN_CTX

    def counter(self, name: str, t: Optional[float] = None,
                **series: float) -> None:
        return None

    def record(self, name: str, duration: float, **args) -> None:
        return None

    def record_at(self, name: str, duration: float, **kwargs) -> None:
        return None

    def instant(self, name: str, **args) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def find(self, name: str) -> List[Span]:
        return []

    def total_seconds(self, name: Optional[str] = None) -> float:
        return 0.0

    def clear(self) -> None:
        pass

    def to_chrome_trace(self) -> Dict[str, Any]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> int:
        payload = json.dumps(self.to_chrome_trace())
        with open(path, "w") as fh:
            fh.write(payload)
        return len(payload)

    def to_jsonl(self) -> List[str]:
        return []

    def write_jsonl(self, path: str) -> int:
        open(path, "w").close()
        return 0

    def summary(self, top: int = 10) -> str:
        return "(tracing disabled)"

    def __repr__(self) -> str:
        return "<NullTracer>"
